// Ablation A1 — dead-link removal on contact failure.
//
// The paper's simulator keeps a dead descriptor in the view until view
// selection crowds it out; real implementations typically evict a
// descriptor whose node failed to answer. This ablation reruns the
// Figure 7 experiment with the eviction extension enabled to quantify how
// much of the self-healing story is attributable to view selection alone.
//
// Expected shape: eviction barely changes head view selection (already
// exponential) but dramatically accelerates rand view selection, because
// eviction removes exactly the linear-decay bottleneck. (tail,rand,push)
// flips from accumulating dead links to shedding them.
#include <iostream>

#include "bench_util.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/failure.hpp"
#include "pss/experiments/reporting.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/100);
  const auto extra_cycles =
      static_cast<Cycle>(env::scaled("PSS_EXTRA_CYCLES", 60, 120));

  experiments::print_banner(
      std::cout, "Ablation A1 — evict dead descriptors on contact failure",
      "design choice discussed in Sections 7-8 (extension)", params,
      "extra_cycles=" + std::to_string(extra_cycles));

  const std::vector<ProtocolSpec> specs = {
      ProtocolSpec::newscast(),
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPushPull},
      {PeerSelection::kTail, ViewSelection::kRand, ViewPropagation::kPush},
  };

  static constexpr obs::FieldSpec kFields[] = {
      {"protocol", obs::FieldType::kStr},
      {"evict", obs::FieldType::kBool},
      {"cycles_after_failure", obs::FieldType::kU64},
      {"dead_links", obs::FieldType::kU64},
  };
  static constexpr obs::MetricSchema kSchema{
      "pss.bench.ablation_dead_link_removal", 1, kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "ablation_dead_link_removal", kSchema,
      bench::run_metadata("ablation_dead_link_removal", "cycle", params));

  TextTable table;
  table.row()
      .cell("protocol")
      .cell("evict")
      .cell("dead@0")
      .cell("dead@10")
      .cell("dead@30")
      .cell("dead@end")
      .cell("cycles_to_1pct");
  for (const auto& spec : specs) {
    for (bool evict : {false, true}) {
      auto p = params;
      p.remove_dead_on_failure = evict;
      const auto r = experiments::run_self_healing(spec, p, extra_cycles, 0.5);
      const auto cycles = r.cycles_to_reach(r.dead_links_at_failure / 100);
      table.row()
          .cell(spec.name())
          .cell(evict ? "yes" : "no")
          .cell(static_cast<std::int64_t>(r.dead_links_at_failure))
          .cell(static_cast<std::int64_t>(r.dead_links[9]))
          .cell(static_cast<std::int64_t>(r.dead_links[29]))
          .cell(static_cast<std::int64_t>(r.dead_links.back()))
          .cell(cycles == experiments::SelfHealingResult::kNever
                    ? "-"
                    : std::to_string(cycles));
      const std::string spec_name = spec.name();
      for (std::size_t i = 0; i < r.dead_links.size(); ++i) {
        trace.row({std::string_view(spec_name), evict, i + 1,
                   static_cast<std::uint64_t>(r.dead_links[i])});
      }
    }
  }
  table.print(std::cout);
  trace.finish(std::cout);
  return 0;
}
