// Ablation A4 — the degenerate design-space regions excluded in
// Section 4.3:
//   (head,*,*)  "results in severe clustering",
//   (*,tail,*)  "cannot handle dynamism (joining nodes) at all",
//   (*,*,pull)  "converges to a star topology".
// The paper drops these after preliminary experiments; this bench IS that
// preliminary experiment, made reproducible.
#include <cmath>
#include <iostream>
#include <set>

#include "bench_util.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/reporting.hpp"
#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/1000, /*quick_cycles=*/80,
                                     /*full_cycles=*/150);
  params.growth_per_cycle = std::max<std::size_t>(1, params.n / 50);

  experiments::print_banner(
      std::cout, "Ablation A4 — degeneracies of the excluded variants",
      "Jelasity et al., Middleware 2004, Section 4.3", params);

  static constexpr obs::FieldSpec kFields[] = {
      {"protocol", obs::FieldType::kStr},
      {"metric", obs::FieldType::kStr},
      {"value", obs::FieldType::kF64},
  };
  static constexpr obs::MetricSchema kSchema{
      "pss.bench.ablation_excluded_variants", 1, kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "ablation_excluded_variants", kSchema,
      bench::run_metadata("ablation_excluded_variants", "cycle", params));

  TextTable table;
  table.row()
      .cell("protocol")
      .cell("clustering")
      .cell("max degree")
      .cell("degree stddev")
      .cell("latecomers known");

  auto report = [&](const ProtocolSpec& spec) {
    // Converged state from random bootstrap.
    auto net = sim::bootstrap::make_random(spec, params.protocol_options(),
                                           params.n, params.seed);
    sim::CycleEngine engine(net);
    engine.run(params.cycles);
    const auto g = graph::UndirectedGraph::from_network(net);
    Rng metric_rng(params.seed ^ 0xC0FFEEULL);
    const double clustering = graph::clustering_coefficient_sampled(
        g, params.clustering_sample, metric_rng);
    const auto summary = graph::degree_summary(g);

    // Joiner visibility from the growing scenario: how many of the
    // last-joined half are referenced by anyone at the end?
    auto grown = experiments::run_growing_scenario(spec, params);
    std::set<NodeId> referenced;
    for (NodeId id = 0; id < grown.network.size(); ++id) {
      for (const auto& d : grown.network.node(id).view().entries()) {
        if (d.address >= params.n / 2) referenced.insert(d.address);
      }
    }
    const double known_fraction = static_cast<double>(referenced.size()) /
                                  (static_cast<double>(params.n) / 2);
    table.row()
        .cell(spec.name())
        .cell(clustering, 4)
        .cell(static_cast<std::int64_t>(summary.max))
        .cell(std::sqrt(summary.variance), 2)
        .cell(format_double(100 * known_fraction, 1) + "%");
    const std::string spec_name = spec.name();
    trace.row({std::string_view(spec_name), "clustering", clustering});
    trace.row({std::string_view(spec_name), "max_degree",
               static_cast<double>(summary.max)});
    trace.row({std::string_view(spec_name), "degree_stddev",
               std::sqrt(summary.variance)});
    trace.row({std::string_view(spec_name), "latecomers_known", known_fraction});
  };

  // Healthy control first, then one representative of each degeneracy.
  report(ProtocolSpec::newscast());
  report({PeerSelection::kHead, ViewSelection::kHead, ViewPropagation::kPushPull});
  report({PeerSelection::kRand, ViewSelection::kTail, ViewPropagation::kPushPull});
  report({PeerSelection::kRand, ViewSelection::kHead, ViewPropagation::kPull});

  table.print(std::cout);
  std::cout << "\nexpected shape: row 2 (head peer selection) has clustering "
               "far above the control; row 3 (tail view selection) leaves "
               "latecomers unknown; row 4 (pull) grows a hub (max degree and "
               "stddev explode).\n";
  trace.finish(std::cout);
  return 0;
}
