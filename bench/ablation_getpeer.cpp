// Ablation A3 — getPeer() strategy and sampling quality.
//
// Section 2 of the paper specifies getPeer() abstractly and notes that
// implementations may optimize for diversity across consecutive calls;
// Section 3 uses the simplest strategy (uniform from the current view).
// This ablation quantifies, for a consumer drawing k samples per cycle on
// a running overlay:
//   - coverage: distinct peers returned over a window,
//   - balance: coefficient of variation of per-peer hit counts over the
//     whole run (1.0-ish for uniform-over-changing-views; 0 = perfectly
//     even), compared against the IDEAL uniform sampler baseline.
//
// Expected shape: the shuffled-queue strategy dominates on short-window
// coverage; over long horizons both gossip strategies approach (but do not
// reach) the ideal sampler's balance — the paper's headline conclusion that
// gossip-based sampling is NOT uniform.
#include <cmath>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/reporting.hpp"
#include "pss/service/ideal_uniform_sampler.hpp"
#include "pss/service/peer_sampling_service.hpp"
#include "pss/service/sampling_quality.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/60);
  const std::size_t draws_per_cycle = 10;
  const std::size_t observe_cycles = 50;

  experiments::print_banner(
      std::cout, "Ablation A3 — getPeer() strategy vs ideal uniform sampling",
      "Section 2 (service quality) + Section 3 (implementation)", params,
      "draws/cycle=" + std::to_string(draws_per_cycle) +
          " observe=" + std::to_string(observe_cycles) + " cycles");

  static constexpr obs::FieldSpec kFields[] = {
      {"strategy", obs::FieldType::kStr},
      {"distinct_peers", obs::FieldType::kU64},
      {"hit_cv", obs::FieldType::kF64},
      {"chi_square", obs::FieldType::kF64},
      {"p_value", obs::FieldType::kF64},
      {"uniform_at_1pct", obs::FieldType::kBool},
  };
  static constexpr obs::MetricSchema kSchema{"pss.bench.ablation_getpeer", 1,
                                             kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "ablation_getpeer", kSchema,
      bench::run_metadata("ablation_getpeer", "cycle", params));

  TextTable table;
  table.row()
      .cell("strategy")
      .cell("distinct peers")
      .cell("hit-count CV")
      .cell("chi-square")
      .cell("p-value")
      .cell("uniform@1%");

  auto run_strategy = [&](const std::string& label,
                          PeerSamplingService::GetPeerStrategy strategy) {
    auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                           params.protocol_options(), params.n,
                                           params.seed);
    sim::CycleEngine engine(net);
    engine.run(params.cycles);  // converge first
    PeerSamplingService service(net.node(0), Rng(params.seed ^ 0x6E7BEE5ULL),
                                strategy);
    // The consumer is node 0; map the stream into [0, n-1) for the
    // uniformity assessment over the other n-1 peers.
    std::vector<NodeId> samples;
    for (std::size_t cycle = 0; cycle < observe_cycles; ++cycle) {
      engine.run_cycle();
      for (std::size_t i = 0; i < draws_per_cycle; ++i)
        samples.push_back(service.get_peer() - 1);
    }
    const auto report = assess_uniformity(samples, params.n - 1);
    table.row()
        .cell(label)
        .cell(static_cast<std::int64_t>(report.distinct))
        .cell(report.hit_cv, 3)
        .cell(report.chi_square, 1)
        .cell(report.p_value, 4)
        .cell(report.plausibly_uniform() ? "yes" : "NO");
    trace.row({std::string_view(label),
               static_cast<std::uint64_t>(report.distinct), report.hit_cv,
               report.chi_square, report.p_value, report.plausibly_uniform()});
    return samples.size();
  };

  const std::size_t total_draws =
      run_strategy("gossip uniform-from-view",
                   PeerSamplingService::GetPeerStrategy::kUniformFromView);
  run_strategy("gossip shuffled-queue",
               PeerSamplingService::GetPeerStrategy::kShuffledQueue);

  // Ideal baseline: same number of draws from the true uniform service.
  // Self is n-1 in a population of n, so samples land in [0, n-1) directly.
  IdealUniformSampler ideal(static_cast<NodeId>(params.n - 1), params.n - 1,
                            Rng(params.seed ^ 0x1DEA1ULL));
  std::vector<NodeId> control;
  control.reserve(total_draws);
  for (std::size_t i = 0; i < total_draws; ++i) control.push_back(ideal.get_peer());
  const auto report = assess_uniformity(control, params.n - 1);
  table.row()
      .cell("ideal uniform sampler")
      .cell(static_cast<std::int64_t>(report.distinct))
      .cell(report.hit_cv, 3)
      .cell(report.chi_square, 1)
      .cell(report.p_value, 4)
      .cell(report.plausibly_uniform() ? "yes" : "NO");
  trace.row({"ideal", static_cast<std::uint64_t>(report.distinct),
             report.hit_cv, report.chi_square, report.p_value,
             report.plausibly_uniform()});

  table.print(std::cout);
  std::cout << "\n(CV computed over ALL nodes, counting never-sampled nodes "
               "as zero hits; smaller = closer to uniform)\n";
  trace.finish(std::cout);
  return 0;
}
