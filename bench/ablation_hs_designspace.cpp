// Ablation A6 — the generalized (H, S) design space (the follow-up
// framework of the journal version, TOCS 2007), evaluated with this
// paper's methodology: converged degree balance, dead-link decay after a
// 50% failure, and connectivity.
//
// Expected shape (TOCS Figs. 5/9, consistent with this paper's view
// selection findings): healer (H = c/2) purges dead links exponentially
// fast; swapper (S = c/2) produces the narrowest degree distribution but
// heals slowly; blind (H = S = 0) is in between on both axes. Intermediate
// (H, S) trade the two properties smoothly.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/reporting.hpp"
#include "pss/sim/hs_overlay.hpp"
#include "pss/stats/descriptive.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/100);
  const auto heal_cycles =
      static_cast<Cycle>(env::get_int("PSS_EXTRA_CYCLES", 40));
  const std::size_t c = params.view_size;

  experiments::print_banner(
      std::cout, "Ablation A6 — generalized (H,S) protocol family",
      "follow-up design space (TOCS 2007) under this paper's methodology",
      params, "heal window=" + std::to_string(heal_cycles) + " cycles");

  struct Config {
    const char* name;
    HSParams hs;
  };
  const std::vector<Config> configs = {
      {"blind   (H=0,   S=0)", HSParams::blind(c)},
      {"healer  (H=c/2, S=0)", HSParams::healer_profile(c)},
      {"swapper (H=0,   S=c/2)", HSParams::swapper_profile(c)},
      {"mixed   (H=c/4, S=c/4)", {c, c / 4, c / 4, false, true}},
      {"cyclon-like (tail, S=c/2)", {c, 0, c / 2, true, true}},
  };

  static constexpr obs::FieldSpec kFields[] = {
      {"config", obs::FieldType::kStr},
      {"degree_mean", obs::FieldType::kF64},
      {"degree_stddev", obs::FieldType::kF64},
      {"dead_at_failure", obs::FieldType::kU64},
      {"dead_after_heal_window", obs::FieldType::kU64},
      {"connected", obs::FieldType::kBool},
  };
  static constexpr obs::MetricSchema kSchema{
      "pss.bench.ablation_hs_designspace", 1, kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "ablation_hs_designspace", kSchema,
      bench::run_metadata("ablation_hs_designspace", "cycle", params));

  TextTable table;
  table.row()
      .cell("config")
      .cell("deg mean")
      .cell("deg stddev")
      .cell("dead@0")
      .cell("dead@+" + std::to_string(heal_cycles))
      .cell("connected");
  for (const auto& config : configs) {
    sim::HSOverlay overlay(params.n, config.hs, params.seed);
    overlay.run(params.cycles);
    stats::Accumulator acc;
    for (std::size_t d : overlay.degrees()) acc.add(static_cast<double>(d));
    const double deg_mean = acc.mean();
    const double deg_sd = acc.stddev_population();
    overlay.kill_random(params.n / 2);
    const auto dead0 = overlay.count_dead_links();
    overlay.run(heal_cycles);
    const auto dead1 = overlay.count_dead_links();
    const bool connected = overlay.connected();
    table.row()
        .cell(config.name)
        .cell(deg_mean, 2)
        .cell(deg_sd, 2)
        .cell(static_cast<std::int64_t>(dead0))
        .cell(static_cast<std::int64_t>(dead1))
        .cell(connected ? "yes" : "NO");
    trace.row({config.name, deg_mean, deg_sd,
               static_cast<std::uint64_t>(dead0),
               static_cast<std::uint64_t>(dead1), connected});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: healer's dead links collapse to ~0 within "
               "the window at the price of the widest degree spread; swapper "
               "keeps the narrowest degree spread but retains dead links; "
               "blind sits between; mixed (H=S=c/4) gets both fast healing "
               "and a moderate spread. The tail-peer swapper keeps Cyclon's "
               "degree balance but NOT its healing — real Cyclon also evicts "
               "the contacted descriptor on exchange/timeout, a mechanism "
               "outside the pure (H,S) space.\n";
  trace.finish(std::cout);
  return 0;
}
