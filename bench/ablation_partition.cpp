// Ablation A5 — temporary network partitions (paper Section 8 discussion
// and the Section 10 dual-view proposal).
//
// The network splits into two halves for a configurable number of cycles,
// then heals. During the split each side's views gradually lose descriptors
// of the other side; if that memory hits zero, the overlay can never
// re-merge. Compares:
//   - head view selection (Newscast): forgets the other side exponentially
//     fast — quick self-repair becomes a disadvantage;
//   - rand view selection: long memory, re-merges after long splits;
//   - the dual-view combination of Section 10: fast healing AND re-merge.
#include <iostream>

#include "bench_util.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/dual_overlay.hpp"
#include "pss/experiments/partition.hpp"
#include "pss/experiments/reporting.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/60,
                                     /*full_cycles=*/300);
  const auto post_cycles = static_cast<Cycle>(env::get_int("PSS_POST_CYCLES", 30));

  experiments::print_banner(
      std::cout, "Ablation A5 — temporary network partition and re-merge",
      "Jelasity et al., Middleware 2004, Sections 8 and 10", params,
      "split=50%, post_cycles=" + std::to_string(post_cycles));

  const std::vector<Cycle> split_durations = {5, 10, 20, 40};

  static constexpr obs::FieldSpec kFields[] = {
      {"protocol", obs::FieldType::kStr},
      {"split_cycles", obs::FieldType::kU64},
      {"cross_at_split", obs::FieldType::kU64},
      {"cross_at_heal", obs::FieldType::kU64},
      {"remerged", obs::FieldType::kBool},
  };
  static constexpr obs::MetricSchema kSchema{"pss.bench.ablation_partition", 1,
                                             kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "ablation_partition", kSchema,
      bench::run_metadata("ablation_partition", "cycle", params));

  TextTable table;
  table.row()
      .cell("protocol")
      .cell("split cycles")
      .cell("cross links @split")
      .cell("cross links @heal")
      .cell("re-merged");

  const std::vector<ProtocolSpec> specs = {
      ProtocolSpec::newscast(),
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPushPull},
  };
  for (const auto& spec : specs) {
    for (Cycle split : split_durations) {
      const auto r = experiments::run_partition_experiment(spec, params, 0.5,
                                                           split, post_cycles);
      table.row()
          .cell(spec.name())
          .cell(static_cast<std::int64_t>(split))
          .cell(static_cast<std::int64_t>(r.cross_links_at_split))
          .cell(static_cast<std::int64_t>(r.cross_links_at_heal))
          .cell(r.remerged() ? "yes" : "NO");
      const std::string spec_name = spec.name();
      trace.row({std::string_view(spec_name), static_cast<std::uint64_t>(split),
                 static_cast<std::uint64_t>(r.cross_links_at_split),
                 static_cast<std::uint64_t>(r.cross_links_at_heal),
                 r.remerged()});
    }
  }

  // Dual-view combination (Section 10): run the same schedule manually.
  for (Cycle split : split_durations) {
    experiments::DualOverlay dual(params.n, params.protocol_options(),
                                  params.seed);
    dual.run(params.cycles);
    Rng rng(params.seed ^ 0x9A97171090ULL);
    const auto picks = rng.sample_indices(params.n, params.n / 2);
    for (std::size_t idx : picks)
      dual.set_partition_group(static_cast<NodeId>(idx), 1);
    const auto cross_at_split = dual.count_cross_partition_links();
    dual.run(split);
    const auto cross_at_heal = dual.count_cross_partition_links();
    dual.clear_partitions();
    dual.run(post_cycles);
    const bool remerged = dual.combined_connected();
    table.row()
        .cell("dual-view (head+rand)")
        .cell(static_cast<std::int64_t>(split))
        .cell(static_cast<std::int64_t>(cross_at_split))
        .cell(static_cast<std::int64_t>(cross_at_heal))
        .cell(remerged ? "yes" : "NO");
    trace.row({"dual-view", static_cast<std::uint64_t>(split),
               static_cast<std::uint64_t>(cross_at_split),
               static_cast<std::uint64_t>(cross_at_heal), remerged});
  }

  table.print(std::cout);
  std::cout << "\nexpected shape: Newscast's cross-side memory collapses "
               "within a few cycles (long splits end in permanent partition); "
               "rand view selection and the dual-view combination retain "
               "memory and re-merge.\n";
  trace.finish(std::cout);
  return 0;
}
