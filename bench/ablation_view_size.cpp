// Ablation A2 — view size c.
//
// The paper fixes c = 30 (Section 4.3). This ablation sweeps c for
// Newscast and (rand,rand,pushpull) and reports the converged overlay
// properties plus robustness at 80% node removal.
//
// Expected shape: average degree scales ~linearly with c; clustering falls
// and robustness improves as c grows; path length shrinks slowly. Newscast
// needs a moderate c (>= ~3 ln N) to stay reliably connected, while rand
// view selection tolerates smaller views.
#include <iostream>

#include "bench_util.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/failure.hpp"
#include "pss/experiments/reporting.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

int main() {
  using namespace pss;
  auto base = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/100);

  experiments::print_banner(std::cout, "Ablation A2 — view size sweep",
                            "parameter fixed to c=30 in Section 4.3", base);

  const std::vector<std::size_t> view_sizes = {10, 20, 30, 50};
  const std::vector<ProtocolSpec> specs = {
      ProtocolSpec::newscast(),
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPushPull},
  };

  static constexpr obs::FieldSpec kFields[] = {
      {"protocol", obs::FieldType::kStr},
      {"c", obs::FieldType::kU64},
      {"avg_degree", obs::FieldType::kF64},
      {"clustering", obs::FieldType::kF64},
      {"path_len", obs::FieldType::kF64},
      {"components", obs::FieldType::kU64},
      {"outside_largest_at_80pct", obs::FieldType::kF64},
  };
  static constexpr obs::MetricSchema kSchema{"pss.bench.ablation_view_size", 1,
                                             kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "ablation_view_size", kSchema,
      bench::run_metadata("ablation_view_size", "cycle", base));

  TextTable table;
  table.row()
      .cell("protocol")
      .cell("c")
      .cell("avg_degree")
      .cell("clustering")
      .cell("path_len")
      .cell("components")
      .cell("outside@80%rm");
  for (const auto& spec : specs) {
    for (std::size_t c : view_sizes) {
      auto params = base;
      params.view_size = c;
      auto result = experiments::run_random_scenario(spec, params);
      const auto& fin = result.final_sample();
      const auto robustness = experiments::run_static_robustness(
          result.network, {0.80}, 20, params.seed ^ 0xAB1A7E0ULL);
      table.row()
          .cell(spec.name())
          .cell(static_cast<std::int64_t>(c))
          .cell(fin.avg_degree, 2)
          .cell(fin.clustering, 4)
          .cell(fin.path_length, 3)
          .cell(static_cast<std::int64_t>(fin.components))
          .cell(robustness[0].avg_outside_largest, 2);
      const std::string spec_name = spec.name();
      trace.row({std::string_view(spec_name), c, fin.avg_degree,
                 fin.clustering, fin.path_length,
                 static_cast<std::uint64_t>(fin.components),
                 robustness[0].avg_outside_largest});
    }
  }
  table.print(std::cout);
  trace.finish(std::cout);
  return 0;
}
