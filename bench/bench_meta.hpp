// Run-metadata helpers shared by ALL bench drivers — figure/table drivers
// (via bench_util.hpp) and the scale drivers, which deliberately do not
// link pss_experiments. Keep this header free of experiment/scenario
// dependencies: protocol spec + obs metadata only.
#pragma once

#include <cstdint>
#include <string_view>

#include "pss/obs/metric_sink.hpp"
#include "pss/protocol/spec.hpp"

namespace pss::bench {

/// The wire id ps*9+vs*3+vp — the same encoding as
/// transport::encode_protocol, computed locally so drivers do not link the
/// transport layer (equality pinned by tests/metric_sink_test).
inline std::int32_t protocol_wire_id(const ProtocolSpec& spec) {
  return static_cast<std::int32_t>(spec.peer_selection) * 9 +
         static_cast<std::int32_t>(spec.view_selection) * 3 +
         static_cast<std::int32_t>(spec.view_propagation);
}

/// Run metadata from explicit knobs (the scale drivers parse their own
/// environment instead of using ScenarioParams). `protocol` must outlive
/// the sink's begin() / RunRecorder construction (see RunMetadata).
inline obs::RunMetadata make_run_metadata(
    std::string_view bench, std::string_view engine, std::string_view protocol,
    std::int32_t protocol_id, std::size_t n, std::size_t view_size,
    std::uint64_t cycles, std::uint64_t seed) {
  obs::RunMetadata meta;
  meta.bench = bench;
  meta.engine = engine;
  meta.protocol = protocol;
  meta.protocol_id = protocol_id;
  meta.n = n;
  meta.view_size = view_size;
  meta.cycles = cycles;
  meta.seed = seed;
  return meta;
}

}  // namespace pss::bench
