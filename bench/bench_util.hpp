// Shared scaffolding for the bench harness.
//
// Every bench binary regenerates one table or figure of the paper. Because
// the paper-scale experiments (N = 10^4, 300 cycles, up to 100 runs) take
// minutes to hours, each bench has a quick default that preserves the
// qualitative shape and a paper-scale mode enabled by PSS_FULL=1. All
// parameters can be overridden individually:
//   PSS_N, PSS_C, PSS_CYCLES, PSS_RUNS, PSS_SEED,
//   PSS_PATH_SOURCES, PSS_CLUSTERING_SAMPLE, PSS_CSV_DIR, PSS_TRACE_DIR.
//
// Recording goes through the metrics-export subsystem (pss/obs/): a
// figure/table driver declares its row schema next to the emitting loop
// and streams rows through a BenchTrace, which fans them out to a
// schema-headered CSV (PSS_CSV_DIR) and a JSONL trace (PSS_TRACE_DIR —
// the format scripts/render_report.py renders figures from). Scale
// drivers write their BENCH_*.json via obs::RunRecorder instead.
#pragma once

#include <filesystem>
#include <memory>
#include <ostream>
#include <string>

#include "bench_meta.hpp"
#include "pss/common/env.hpp"
#include "pss/experiments/scenario.hpp"
#include "pss/obs/sinks.hpp"

namespace pss::bench {

/// Builds scenario parameters from the environment with per-bench quick
/// defaults. Paper-scale (PSS_FULL) always means N=10^4, c=30.
inline experiments::ScenarioParams scaled_params(std::int64_t quick_n,
                                                 std::int64_t quick_cycles,
                                                 std::int64_t full_cycles = 300,
                                                 std::int64_t quick_c = 30) {
  experiments::ScenarioParams p;
  p.n = static_cast<std::size_t>(env::scaled("PSS_N", quick_n, 10'000));
  p.view_size = static_cast<std::size_t>(env::scaled("PSS_C", quick_c, 30));
  p.cycles = static_cast<Cycle>(env::scaled("PSS_CYCLES", quick_cycles, full_cycles));
  p.seed = static_cast<std::uint64_t>(env::get_int("PSS_SEED", 42));
  p.path_sources =
      static_cast<std::size_t>(env::get_int("PSS_PATH_SOURCES", 100));
  p.clustering_sample =
      static_cast<std::size_t>(env::get_int("PSS_CLUSTERING_SAMPLE", 1000));
  // Keep the paper's growth profile: the overlay reaches full size at cycle
  // ~100 regardless of N (10^4 nodes at 100 per cycle).
  p.growth_per_cycle = std::max<std::size_t>(1, p.n / 100);
  return p;
}

/// Number of repeated runs for aggregate benches.
inline std::size_t scaled_runs(std::int64_t quick, std::int64_t full = 100) {
  return static_cast<std::size_t>(env::scaled("PSS_RUNS", quick, full));
}

/// Run metadata for a bench's header. Protocol defaults to "-"/-1 (mixed):
/// most figure traces carry the protocol as a per-row column instead.
/// `protocol` must outlive the sink's begin() call (see RunMetadata).
inline obs::RunMetadata run_metadata(std::string_view bench,
                                     std::string_view engine,
                                     const experiments::ScenarioParams& p,
                                     std::string_view protocol = "-",
                                     std::int32_t protocol_id = -1) {
  return make_run_metadata(bench, engine, protocol, protocol_id, p.n,
                           p.view_size, p.cycles, p.seed);
}

/// One figure/table driver's recording stream: a schema-headered CSV under
/// PSS_CSV_DIR and a JSONL trace under PSS_TRACE_DIR, fanned out from one
/// row call. Either directory being unset simply drops that backend; with
/// neither set, rows are validated against the schema and discarded.
class BenchTrace {
 public:
  BenchTrace(const std::string& name, const obs::MetricSchema& schema,
             const obs::RunMetadata& meta) {
    if (auto dir = env::get("PSS_CSV_DIR")) {
      std::filesystem::create_directories(*dir);
      csv_ = std::make_unique<obs::CsvMetricSink>(*dir + "/" + name + ".csv");
      fan_.add(*csv_);
    }
    if (auto dir = env::get("PSS_TRACE_DIR")) {
      std::filesystem::create_directories(*dir);
      jsonl_ =
          std::make_unique<obs::JsonlMetricSink>(*dir + "/" + name + ".jsonl");
      fan_.add(*jsonl_);
    }
    fan_.begin(schema, meta);
  }

  void row(std::initializer_list<obs::MetricValue> values) { fan_.row(values); }

  /// The fan-out, for handing to library recorders (print_series).
  obs::MetricSink& sink() { return fan_; }

  bool enabled() const { return fan_.count() > 0; }

  /// Closes both files and prints where they went.
  void finish(std::ostream& os) {
    fan_.finish();
    if (csv_) os << "csv: " << csv_->path() << "\n";
    if (jsonl_) os << "trace: " << jsonl_->path() << "\n";
  }

 private:
  std::unique_ptr<obs::CsvMetricSink> csv_;
  std::unique_ptr<obs::JsonlMetricSink> jsonl_;
  obs::FanOutSink fan_;
};

}  // namespace pss::bench
