// Shared scaffolding for the bench harness.
//
// Every bench binary regenerates one table or figure of the paper. Because
// the paper-scale experiments (N = 10^4, 300 cycles, up to 100 runs) take
// minutes to hours, each bench has a quick default that preserves the
// qualitative shape and a paper-scale mode enabled by PSS_FULL=1. All
// parameters can be overridden individually:
//   PSS_N, PSS_C, PSS_CYCLES, PSS_RUNS, PSS_SEED,
//   PSS_PATH_SOURCES, PSS_CLUSTERING_SAMPLE, PSS_CSV_DIR.
#pragma once

#include <string>

#include "pss/common/env.hpp"
#include "pss/experiments/scenario.hpp"

namespace pss::bench {

/// Builds scenario parameters from the environment with per-bench quick
/// defaults. Paper-scale (PSS_FULL) always means N=10^4, c=30.
inline experiments::ScenarioParams scaled_params(std::int64_t quick_n,
                                                 std::int64_t quick_cycles,
                                                 std::int64_t full_cycles = 300,
                                                 std::int64_t quick_c = 30) {
  experiments::ScenarioParams p;
  p.n = static_cast<std::size_t>(env::scaled("PSS_N", quick_n, 10'000));
  p.view_size = static_cast<std::size_t>(env::scaled("PSS_C", quick_c, 30));
  p.cycles = static_cast<Cycle>(env::scaled("PSS_CYCLES", quick_cycles, full_cycles));
  p.seed = static_cast<std::uint64_t>(env::get_int("PSS_SEED", 42));
  p.path_sources =
      static_cast<std::size_t>(env::get_int("PSS_PATH_SOURCES", 100));
  p.clustering_sample =
      static_cast<std::size_t>(env::get_int("PSS_CLUSTERING_SAMPLE", 1000));
  // Keep the paper's growth profile: the overlay reaches full size at cycle
  // ~100 regardless of N (10^4 nodes at 100 per cycle).
  p.growth_per_cycle = std::max<std::size_t>(1, p.n / 100);
  return p;
}

/// Number of repeated runs for aggregate benches.
inline std::size_t scaled_runs(std::int64_t quick, std::int64_t full = 100) {
  return static_cast<std::size_t>(env::scaled("PSS_RUNS", quick, full));
}

}  // namespace pss::bench
