// Figure 2 — "Dynamics of graph properties in the growing scenario":
// clustering coefficient (a), average node degree (b) and average path
// length (c) over 300 cycles, for the six protocols that remain stable in
// this scenario. The horizontal reference is the uniform random-view
// topology; growth completes at cycle ~100.
//
// Expected shape (paper): pushpull variants converge quickly after growth
// ends; push variants converge extremely slowly (their curves are still far
// from the random baseline at cycle 300); (*,rand,pushpull) sits closest to
// the random line for these three aggregate metrics.
#include <iostream>

#include "bench_util.hpp"
#include "pss/experiments/reporting.hpp"
#include "pss/obs/schemas.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/150);
  params.sample_interval = std::max<Cycle>(1, params.cycles / 30);

  experiments::print_banner(
      std::cout, "Figure 2 — graph property dynamics, growing scenario",
      "Jelasity et al., Middleware 2004, Fig. 2", params,
      "growth=" + std::to_string(params.growth_per_cycle) + "/cycle");

  const auto baseline = experiments::measure_random_baseline(params);
  std::cout << "uniform random baseline: avg_degree="
            << format_double(baseline.avg_degree, 2)
            << " clustering=" << format_double(baseline.clustering, 4)
            << " path_len=" << format_double(baseline.path_length, 3) << "\n\n";

  // Figure 2 plots the six stable protocols; (rand,head,push) and
  // (tail,head,push) are excluded there because they partition (Table 1).
  const std::vector<ProtocolSpec> specs = {
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPush},
      {PeerSelection::kTail, ViewSelection::kRand, ViewPropagation::kPush},
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPushPull},
      {PeerSelection::kTail, ViewSelection::kRand, ViewPropagation::kPushPull},
      ProtocolSpec::newscast(),
      {PeerSelection::kTail, ViewSelection::kHead, ViewPropagation::kPushPull},
  };

  bench::BenchTrace trace("fig2_growing", obs::schemas::kSeries,
                          bench::run_metadata("fig2_growing", "cycle", params));
  for (const auto& spec : specs) {
    const auto result = experiments::run_growing_scenario(spec, params);
    experiments::print_series(std::cout, spec.name(), result.series,
                              &trace.sink());
  }
  trace.finish(std::cout);
  return 0;
}
