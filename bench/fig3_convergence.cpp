// Figure 3 — "Dynamics of graph properties" from the ring-lattice (a,c,e)
// and uniform random (b,d,f) initial topologies: average path length,
// clustering coefficient and average node degree over the first 100 cycles,
// for all 8 evaluated protocols, against the uniform random baseline.
//
// Expected shape (paper): every protocol converges quickly to the same
// values from both starting conditions (self-organization); clustering
// stays above the random baseline while path length lands close to it;
// (*,rand,pushpull) is nearest the random line, head view selection gives
// lower converged degree (~53) than rand view selection (~58-60).
#include <iostream>

#include "bench_util.hpp"
#include "pss/experiments/reporting.hpp"
#include "pss/obs/schemas.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/100,
                                     /*full_cycles=*/100);
  params.sample_interval = std::max<Cycle>(1, params.cycles / 25);

  experiments::print_banner(
      std::cout, "Figure 3 — convergence from lattice and random topologies",
      "Jelasity et al., Middleware 2004, Fig. 3", params);

  const auto baseline = experiments::measure_random_baseline(params);
  std::cout << "uniform random baseline: avg_degree="
            << format_double(baseline.avg_degree, 2)
            << " clustering=" << format_double(baseline.clustering, 4)
            << " path_len=" << format_double(baseline.path_length, 3) << "\n\n";

  bench::BenchTrace trace(
      "fig3_convergence", obs::schemas::kSeries,
      bench::run_metadata("fig3_convergence", "cycle", params));
  for (const char* scenario : {"lattice", "random"}) {
    std::cout << "--- initial topology: " << scenario << " ---\n\n";
    for (const auto& spec : ProtocolSpec::evaluated()) {
      const auto result = std::string(scenario) == "lattice"
                              ? experiments::run_lattice_scenario(spec, params)
                              : experiments::run_random_scenario(spec, params);
      experiments::print_series(std::cout,
                                std::string(scenario) + " " + spec.name(),
                                result.series, &trace.sink());
    }
  }
  trace.finish(std::cout);
  return 0;
}
