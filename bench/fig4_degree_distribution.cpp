// Figure 4 — "Degree distributions on the log-log scale, when starting
// from a random topology", snapshots at cycles 0 (the random topology),
// 3, 30 and 300, for the 8 evaluated protocols.
//
// Expected shape (paper): the protocols split sharply by VIEW SELECTION.
// Head view selection keeps a narrow, balanced distribution that reaches
// its final shape within a few cycles; rand view selection develops an
// unbalanced heavy tail (degrees several times c) and converges slowly.
// Degree is always >= c because every node keeps c out-links.
//
// Snapshots run on the streaming GraphCensus (no edge-list/snapshot-graph
// materialization), which produces bit-identical histograms to the exact
// pipeline; set PSS_EXACT_METRICS=1 to force the legacy exact path (small
// N only — it builds an UndirectedGraph per snapshot).
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "pss/experiments/reporting.hpp"
#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/obs/graph_census.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/stats/histogram.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/150);
  const bool exact = env::get_int("PSS_EXACT_METRICS", 0) != 0;

  experiments::print_banner(
      std::cout, "Figure 4 — degree distributions from the random topology",
      "Jelasity et al., Middleware 2004, Fig. 4", params);

  // Snapshot cycles: exponentially spaced as in the paper (0, 3, 30, 300),
  // clamped to the configured horizon.
  std::vector<Cycle> snapshots = {0, 3, 30, 300};
  for (auto& s : snapshots) s = std::min<Cycle>(s, params.cycles);
  snapshots.erase(std::unique(snapshots.begin(), snapshots.end()),
                  snapshots.end());

  static constexpr obs::FieldSpec kFields[] = {
      {"protocol", obs::FieldType::kStr},
      {"cycle", obs::FieldType::kU64},
      {"degree", obs::FieldType::kU64},
      {"count", obs::FieldType::kU64},
  };
  static constexpr obs::MetricSchema kSchema{
      "pss.bench.fig4_degree_distribution", 1, kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "fig4_degree_distribution", kSchema,
      bench::run_metadata("fig4_degree_distribution", "cycle", params));

  obs::GraphCensus census;  // scratch reused across protocols and snapshots
  for (const auto& spec : ProtocolSpec::evaluated()) {
    std::cout << "protocol " << spec.name() << "\n";
    auto network = sim::bootstrap::make_random(spec, params.protocol_options(),
                                               params.n, params.seed);
    sim::CycleEngine engine(network);
    for (Cycle snapshot : snapshots) {
      engine.run(snapshot - engine.cycle());
      stats::Histogram hist;
      double mean = 0;
      std::size_t max_degree = 0;
      if (exact) {
        const auto g = graph::UndirectedGraph::from_network(network);
        for (std::uint32_t v = 0; v < g.vertex_count(); ++v)
          hist.add(g.degree(v));
        const auto summary = graph::degree_summary(g);
        mean = summary.mean;
        max_degree = summary.max;
      } else {
        census.rebuild(network);
        const auto counts = census.degree_histogram();
        for (std::size_t d = 0; d < counts.size(); ++d) {
          if (counts[d] > 0) hist.add(d, counts[d]);
        }
        mean = census.degree_stats().mean;
        max_degree = census.degree_stats().max;
      }
      hist.print_loglog(std::cout,
                        "  cycle " + std::to_string(snapshot) + "  (mean=" +
                            format_double(mean, 1) + " max=" +
                            std::to_string(max_degree) + ")");
      const std::string spec_name = spec.name();
      for (const auto& [degree, count] : hist.points()) {
        trace.row({std::string_view(spec_name),
                   static_cast<std::uint64_t>(snapshot),
                   static_cast<std::uint64_t>(degree),
                   static_cast<std::uint64_t>(count)});
      }
    }
    std::cout << "\n";
  }
  trace.finish(std::cout);
  return 0;
}
