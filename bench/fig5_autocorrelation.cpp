// Figure 5 — "Autocorrelation of the degree of a fixed random node as a
// function of time lag, measured in cycles, computed from a 300 cycle
// sample", for the four rand-peer-selection protocols, with the 99%
// white-noise confidence band.
//
// Expected shape (paper): (rand,head,pushpull) is practically random (stays
// inside the band); (rand,head,push) shows weak high-frequency periodicity;
// (rand,rand,*) show low-frequency oscillation with strong short-term
// correlation (large r_k at small lags, slow decay).
#include <iostream>

#include "bench_util.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/degree_trace.hpp"
#include "pss/experiments/reporting.hpp"
#include "pss/stats/autocorrelation.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/100);
  const auto trace_cycles =
      static_cast<Cycle>(env::scaled("PSS_TRACE_CYCLES", 300, 300));
  const std::size_t max_lag =
      std::min<std::size_t>(140, trace_cycles - 1);

  experiments::print_banner(
      std::cout, "Figure 5 — degree autocorrelation of a fixed node",
      "Jelasity et al., Middleware 2004, Fig. 5", params,
      "trace_cycles=" + std::to_string(trace_cycles) +
          " max_lag=" + std::to_string(max_lag));

  const double band = stats::autocorrelation_confidence99(trace_cycles);
  std::cout << "99% white-noise confidence band: +/-" << format_double(band, 3)
            << "\n\n";

  const std::vector<ProtocolSpec> specs = {
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPush},
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPushPull},
      {PeerSelection::kRand, ViewSelection::kHead, ViewPropagation::kPush},
      ProtocolSpec::newscast(),
  };

  static constexpr obs::FieldSpec kFields[] = {
      {"protocol", obs::FieldType::kStr},
      {"lag", obs::FieldType::kU64},
      {"autocorrelation", obs::FieldType::kF64},
  };
  static constexpr obs::MetricSchema kSchema{
      "pss.bench.fig5_autocorrelation", 1, kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "fig5_autocorrelation", kSchema,
      bench::run_metadata("fig5_autocorrelation", "cycle", params));

  std::vector<std::vector<double>> curves;
  for (const auto& spec : specs) {
    // Trace a handful of nodes and use the first one, as in the paper; the
    // remaining traces feed the excess-fraction summary.
    const auto degree_trace =
        experiments::run_degree_trace(spec, params, 5, trace_cycles);
    curves.push_back(stats::autocorrelation(degree_trace.series[0], max_lag));
    double excess = 0;
    for (const auto& series : degree_trace.series)
      excess += stats::autocorrelation_excess_fraction(series, max_lag);
    std::cout << spec.name() << ": fraction of lags outside the 99% band = "
              << format_double(
                     excess / static_cast<double>(degree_trace.series.size()),
                     3)
              << "\n";
    const std::string spec_name = spec.name();
    for (std::size_t lag = 0; lag <= max_lag; ++lag) {
      trace.row({std::string_view(spec_name), lag, curves.back()[lag]});
    }
  }

  std::cout << "\n";
  TextTable table;
  auto& header = table.row().cell("lag");
  for (const auto& spec : specs) header.cell(spec.name());
  for (std::size_t lag = 0; lag <= max_lag;
       lag += (lag < 20 ? 2 : 10)) {  // dense at the head of the curve
    auto& row = table.row().cell(static_cast<std::int64_t>(lag));
    for (const auto& curve : curves) row.cell(curve[lag], 3);
  }
  table.print(std::cout);
  trace.finish(std::cout);
  return 0;
}
