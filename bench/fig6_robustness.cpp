// Figure 6 — "The number of nodes that do not belong to the largest
// connected cluster" after removing 65%-95% of the nodes of the converged
// overlay (cycle 300 of the random initialization scenario), averaged over
// 100 experiments, for all 8 evaluated protocols.
//
// Expected shape (paper): no partitioning at all below ~69% removal; above
// it the curves rise steeply but stay small in absolute terms — the
// survivors always form one giant cluster plus a scattering of outliers
// (the classic random-graph giant-component phenomenon). All 8 protocols
// behave consistently.
#include <iostream>

#include "bench_util.hpp"
#include "pss/common/csv.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/failure.hpp"
#include "pss/experiments/reporting.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/100);
  const std::size_t trials = bench::scaled_runs(/*quick=*/20);

  experiments::print_banner(
      std::cout, "Figure 6 — connectivity under massive node removal",
      "Jelasity et al., Middleware 2004, Fig. 6", params,
      "trials=" + std::to_string(trials));

  const std::vector<double> fractions = {0.65, 0.70, 0.75, 0.80,
                                         0.85, 0.90, 0.95};

  CsvSink csv("fig6_robustness");
  csv.write_row({"protocol", "removed_fraction", "avg_outside_largest",
                 "partitioned_fraction"});

  TextTable table;
  auto& header = table.row().cell("removed");
  for (const auto& spec : ProtocolSpec::evaluated()) header.cell(spec.name());

  std::vector<std::vector<experiments::RemovalPoint>> results;
  for (const auto& spec : ProtocolSpec::evaluated()) {
    auto network = sim::bootstrap::make_random(spec, params.protocol_options(),
                                               params.n, params.seed);
    sim::CycleEngine engine(network);
    engine.run(params.cycles);
    results.push_back(experiments::run_static_robustness(
        network, fractions, trials, params.seed ^ 0xF16ULL));
    for (const auto& point : results.back()) {
      csv.write_row({spec.name(), format_double(point.removed_fraction, 2),
                     format_double(point.avg_outside_largest, 3),
                     format_double(point.partitioned_fraction, 3)});
    }
  }
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    auto& row = table.row().cell(format_double(100 * fractions[f], 0) + "%");
    for (const auto& protocol_points : results)
      row.cell(protocol_points[f].avg_outside_largest, 2);
  }
  table.print(std::cout);
  std::cout << "\n(cells: average number of nodes outside the largest "
               "connected cluster)\n";
  std::cout << "expected shape (paper): ~0 below 70% removal, then a steep "
               "but small-valued rise; consistent across all protocols.\n";
  if (csv.enabled()) std::cout << "csv: " << csv.path() << "\n";
  return 0;
}
