// Figure 6 — "The number of nodes that do not belong to the largest
// connected cluster" after removing 65%-95% of the nodes of the converged
// overlay (cycle 300 of the random initialization scenario), averaged over
// 100 experiments, for all 8 evaluated protocols.
//
// Expected shape (paper): no partitioning at all below ~69% removal; above
// it the curves rise steeply but stay small in absolute terms — the
// survivors always form one giant cluster plus a scattering of outliers
// (the classic random-graph giant-component phenomenon). All 8 protocols
// behave consistently.
#include <iostream>

#include "bench_util.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/failure.hpp"
#include "pss/experiments/reporting.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/100);
  const std::size_t trials = bench::scaled_runs(/*quick=*/20);

  experiments::print_banner(
      std::cout, "Figure 6 — connectivity under massive node removal",
      "Jelasity et al., Middleware 2004, Fig. 6", params,
      "trials=" + std::to_string(trials));

  const std::vector<double> fractions = {0.65, 0.70, 0.75, 0.80,
                                         0.85, 0.90, 0.95};

  static constexpr obs::FieldSpec kFields[] = {
      {"protocol", obs::FieldType::kStr},
      {"removed_fraction", obs::FieldType::kF64},
      {"avg_outside_largest", obs::FieldType::kF64},
      {"partitioned_fraction", obs::FieldType::kF64},
  };
  static constexpr obs::MetricSchema kSchema{"pss.bench.fig6_robustness", 1,
                                             kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "fig6_robustness", kSchema,
      bench::run_metadata("fig6_robustness", "cycle", params));

  TextTable table;
  auto& header = table.row().cell("removed");
  for (const auto& spec : ProtocolSpec::evaluated()) header.cell(spec.name());

  std::vector<std::vector<experiments::RemovalPoint>> results;
  for (const auto& spec : ProtocolSpec::evaluated()) {
    auto network = sim::bootstrap::make_random(spec, params.protocol_options(),
                                               params.n, params.seed);
    sim::CycleEngine engine(network);
    engine.run(params.cycles);
    results.push_back(experiments::run_static_robustness(
        network, fractions, trials, params.seed ^ 0xF16ULL));
    const std::string spec_name = spec.name();
    for (const auto& point : results.back()) {
      trace.row({std::string_view(spec_name), point.removed_fraction,
                 point.avg_outside_largest, point.partitioned_fraction});
    }
  }
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    auto& row = table.row().cell(format_double(100 * fractions[f], 0) + "%");
    for (const auto& protocol_points : results)
      row.cell(protocol_points[f].avg_outside_largest, 2);
  }
  table.print(std::cout);
  std::cout << "\n(cells: average number of nodes outside the largest "
               "connected cluster)\n";
  std::cout << "expected shape (paper): ~0 below 70% removal, then a steep "
               "but small-valued rise; consistent across all protocols.\n";
  trace.finish(std::cout);
  return 0;
}
