// Figure 7 — "The evolution of the number of dead links in the overlay
// following the failure of 50% of the nodes in cycle 300", for all 8
// evaluated protocols.
//
// Expected shape (paper): head view selection removes dead links
// exponentially fast (the (*,head,pushpull) curves overlap and hit zero
// within ~20 cycles; (rand,head,push) close behind, (tail,head,push)
// noticeably slower). Rand view selection decays at best linearly —
// tens of thousands of dead links remain 200 cycles after the failure —
// and (tail,rand,push) even accumulates dead links.
#include <iostream>

#include "bench_util.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/failure.hpp"
#include "pss/experiments/reporting.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/100);
  const auto extra_cycles =
      static_cast<Cycle>(env::scaled("PSS_EXTRA_CYCLES", 100, 200));

  experiments::print_banner(
      std::cout, "Figure 7 — dead-link decay after 50% node failure",
      "Jelasity et al., Middleware 2004, Fig. 7", params,
      "failure at cycle " + std::to_string(params.cycles) + ", observed for " +
          std::to_string(extra_cycles) + " further cycles");

  static constexpr obs::FieldSpec kFields[] = {
      {"protocol", obs::FieldType::kStr},
      {"cycles_after_failure", obs::FieldType::kU64},
      {"dead_links", obs::FieldType::kU64},
  };
  static constexpr obs::MetricSchema kSchema{"pss.bench.fig7_selfhealing", 1,
                                             kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "fig7_selfhealing", kSchema,
      bench::run_metadata("fig7_selfhealing", "cycle", params));

  std::vector<experiments::SelfHealingResult> results;
  for (const auto& spec : ProtocolSpec::evaluated()) {
    results.push_back(
        experiments::run_self_healing(spec, params, extra_cycles, 0.5));
    const auto& r = results.back();
    const std::string spec_name = spec.name();
    for (std::size_t i = 0; i < r.dead_links.size(); ++i) {
      trace.row({std::string_view(spec_name), i + 1,
                 static_cast<std::uint64_t>(r.dead_links[i])});
    }
  }

  TextTable table;
  auto& header = table.row().cell("cycle+");
  for (const auto& spec : ProtocolSpec::evaluated()) header.cell(spec.name());
  {
    auto& row0 = table.row().cell("0");
    for (const auto& r : results)
      row0.cell(static_cast<std::int64_t>(r.dead_links_at_failure));
  }
  for (Cycle after = 5; after <= extra_cycles;
       after += (after < 40 ? 5 : 20)) {
    auto& row = table.row().cell(std::to_string(after));
    for (const auto& r : results)
      row.cell(static_cast<std::int64_t>(r.dead_links[after - 1]));
  }
  table.print(std::cout);

  std::cout << "\nhealing summary (cycles to reach 1% of the initial dead "
               "links; '-' = not reached):\n";
  TextTable summary;
  summary.row().cell("protocol").cell("cycles_to_1pct");
  const auto evaluated = ProtocolSpec::evaluated();
  for (std::size_t i = 0; i < evaluated.size(); ++i) {
    const auto target = results[i].dead_links_at_failure / 100;
    const auto cycles = results[i].cycles_to_reach(target);
    summary.row()
        .cell(evaluated[i].name())
        .cell(cycles == experiments::SelfHealingResult::kNever
                  ? "-"
                  : std::to_string(cycles));
  }
  summary.print(std::cout);
  trace.finish(std::cout);
  return 0;
}
