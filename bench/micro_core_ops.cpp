// Micro-benchmarks (google-benchmark) of the hot kernels: view merge and
// selection (object-graph and fused flat variants), a full pushpull
// exchange, scheduler schedule/pop (calendar queue vs. binary heap), one
// simulation cycle at several network sizes, graph snapshot construction
// and the metric estimators. These bound the cost of the experiment harness
// and catch performance regressions in the exchange path.
#include <benchmark/benchmark.h>

#include <queue>
#include <utility>

#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/membership/flat_ops.hpp"
#include "pss/membership/simd.hpp"
#include "pss/membership/view.hpp"
#include "pss/protocol/flat_exchange.hpp"
#include "pss/protocol/gossip_node.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/calendar_queue.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace {

using namespace pss;

View make_view(std::size_t size, std::uint64_t seed, NodeId lo = 0) {
  Rng rng(seed);
  std::vector<NodeDescriptor> entries;
  entries.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    entries.push_back({static_cast<NodeId>(lo + rng.below(10 * size)),
                       static_cast<HopCount>(rng.below(20))});
  }
  return View(std::move(entries));
}

void BM_ViewMerge(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  const View a = make_view(c, 1);
  const View b = make_view(c, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(View::merge(a, b));
  }
}
BENCHMARK(BM_ViewMerge)->Arg(30)->Arg(100);

void BM_ViewSelectHeadUnbiased(benchmark::State& state) {
  const View merged = make_view(61, 3);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(merged.select_head_unbiased(30, rng));
  }
}
BENCHMARK(BM_ViewSelectHeadUnbiased);

void BM_ViewSelectRand(benchmark::State& state) {
  const View merged = make_view(61, 5);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(merged.select_rand(30, rng));
  }
}
BENCHMARK(BM_ViewSelectRand);

void BM_PushPullExchange(benchmark::State& state) {
  GossipNode a(0, ProtocolSpec::newscast(), ProtocolOptions{30, false}, Rng(1));
  GossipNode b(1, ProtocolSpec::newscast(), ProtocolOptions{30, false}, Rng(2));
  a.set_view(make_view(30, 7, 2));
  b.set_view(make_view(30, 8, 2));
  for (auto _ : state) {
    auto reply = b.handle_message(a.make_active_buffer());
    a.handle_reply(*reply);
  }
}
BENCHMARK(BM_PushPullExchange);

void BM_FlatMergeSelectHead(benchmark::State& state) {
  // The fused streaming kernel behind every (.,head,.) absorb — compare
  // with BM_ViewMerge + BM_ViewSelectHeadUnbiased, which together are the
  // object-graph algebra it replaces. Arg is the SIMD tier: 0 = scalar
  // oracle, 1 = the CPU's detected tier (same code the engines dispatch
  // to), so the pair reads as the vectorization speedup of the kernel.
  simd::set_level_for_testing(state.range(0) == 0 ? simd::Level::kScalar
                                                  : simd::detected_level());
  const View a = make_view(31, 11);
  const View b = make_view(30, 12);
  Rng rng(13);
  flat::Scratch scratch;
  std::vector<NodeDescriptor> out;
  for (auto _ : state) {
    flat::merge_select_head(a.entries(), b.entries(), 7, 30, rng, out, scratch,
                            /*age_a=*/1);
    benchmark::DoNotOptimize(out.data());
  }
  simd::set_level_for_testing(simd::detected_level());
}
BENCHMARK(BM_FlatMergeSelectHead)->Arg(0)->Arg(1);

// --- Scalar vs SIMD on the event-engine absorb kernels ----------------------
// The slab-based request/reply handlers ParallelEventEngine's W-parts run,
// on realistic converged inputs: Arg 0 pins the scalar reference, Arg 1
// dispatches the detected tier. FlatViewStore state is re-assigned each
// iteration so every absorb sees the same input (the kernel mutates the
// slot), which prices the kernel itself, not a drifting view.

void BM_FlatHandleRequest(benchmark::State& state) {
  simd::set_level_for_testing(state.range(0) == 0 ? simd::Level::kScalar
                                                  : simd::detected_level());
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, 1000, 42);
  sim::CycleEngine warm(net);
  warm.run(5);
  auto& arena = net.arena();
  // A converged active buffer: node 1's view plus itself.
  std::vector<NodeDescriptor> request(31);
  const std::uint32_t req_n = flat::write_active_buffer(
      net.view_span(1), 1, true, request.data());
  std::vector<NodeDescriptor> reply(31);
  std::vector<NodeDescriptor> snapshot(net.view_span(0).begin(),
                                       net.view_span(0).end());
  flat::Scratch scratch;
  for (auto _ : state) {
    arena.views.assign(0, snapshot);
    benchmark::DoNotOptimize(flat::handle_request(arena, 0, request.data(),
                                                  req_n, reply.data(),
                                                  net.spec(), net.options(),
                                                  scratch));
  }
  simd::set_level_for_testing(simd::detected_level());
}
BENCHMARK(BM_FlatHandleRequest)->Arg(0)->Arg(1);

void BM_FlatHandleReply(benchmark::State& state) {
  simd::set_level_for_testing(state.range(0) == 0 ? simd::Level::kScalar
                                                  : simd::detected_level());
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, 1000, 42);
  sim::CycleEngine warm(net);
  warm.run(5);
  auto& arena = net.arena();
  std::vector<NodeDescriptor> reply(31);
  const std::uint32_t reply_n = flat::write_active_buffer(
      net.view_span(1), 1, true, reply.data());
  std::vector<NodeDescriptor> snapshot(net.view_span(0).begin(),
                                       net.view_span(0).end());
  flat::Scratch scratch;
  for (auto _ : state) {
    arena.views.assign(0, snapshot);
    flat::handle_reply(arena, 0, reply.data(), reply_n, net.spec(),
                       net.options(), scratch);
    benchmark::DoNotOptimize(arena.views.view_of(0).data());
  }
  simd::set_level_for_testing(simd::detected_level());
}
BENCHMARK(BM_FlatHandleReply)->Arg(0)->Arg(1);

void BM_SimdAgeWriteBoth(benchmark::State& state) {
  // The fused wakeup kernel (age slot in place + stream aged copy): Arg 0
  // scalar, Arg 1 detected tier.
  simd::set_level_for_testing(state.range(0) == 0 ? simd::Level::kScalar
                                                  : simd::detected_level());
  std::vector<NodeDescriptor> view(30), out(30);
  Rng rng(21);
  for (auto& d : view) {
    d = {static_cast<NodeId>(rng.below(1000)),
         static_cast<HopCount>(rng.below(8))};
  }
  for (auto _ : state) {
    simd::age_write_both(view.data(), out.data(), view.size());
    benchmark::DoNotOptimize(out.data());
  }
  simd::set_level_for_testing(simd::detected_level());
}
BENCHMARK(BM_SimdAgeWriteBoth)->Arg(0)->Arg(1);

// --- Scheduler: calendar queue vs. binary heap -----------------------------
// The classic "hold" model at event-engine scale: a pending set of `n`
// events; each step pops the minimum and schedules a replacement — a mix of
// rearm-like (+1 period) and message-like (short latency) timestamps,
// exactly the event engine's steady-state access pattern.

struct HoldEvent {
  NodeId from = 0;
  NodeId to = 0;
  std::uint32_t slab = 0;
  std::uint32_t kind = 0;
  std::uint64_t exchange_id = 0;
};

void BM_CalendarQueueHold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::CalendarQueue<HoldEvent> q(2.0);
  Rng rng(17);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < n; ++i) {
    q.push(rng.uniform(), seq++, HoldEvent{});
  }
  for (auto _ : state) {
    const auto item = q.pop();
    const double at = rng.chance(0.33) ? item.at + 1.0
                                       : item.at + 0.01 + rng.uniform() * 0.09;
    q.push(at, seq++, item.value);
    benchmark::DoNotOptimize(seq);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CalendarQueueHold)->Arg(1 << 10)->Arg(1 << 17)->Arg(1 << 20);

void BM_BinaryHeapHold(benchmark::State& state) {
  using Entry = std::pair<double, std::uint64_t>;
  const auto n = static_cast<std::size_t>(state.range(0));
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> q;
  Rng rng(17);
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < n; ++i) q.emplace(rng.uniform(), seq++);
  for (auto _ : state) {
    const auto [at, id] = q.top();
    q.pop();
    const double next =
        rng.chance(0.33) ? at + 1.0 : at + 0.01 + rng.uniform() * 0.09;
    q.emplace(next, seq++);
    benchmark::DoNotOptimize(seq);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BinaryHeapHold)->Arg(1 << 10)->Arg(1 << 17)->Arg(1 << 20);

void BM_SimulationCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, n, 42);
  sim::CycleEngine engine(net);
  for (auto _ : state) {
    engine.run_cycle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulationCycle)->Arg(1000)->Arg(10000);

void BM_GraphSnapshot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, n, 42);
  sim::CycleEngine engine(net);
  engine.run(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::UndirectedGraph::from_network(net));
  }
}
BENCHMARK(BM_GraphSnapshot)->Arg(1000)->Arg(10000);

void BM_ClusteringSampled(benchmark::State& state) {
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, 10000, 42);
  sim::CycleEngine engine(net);
  engine.run(5);
  const auto g = graph::UndirectedGraph::from_network(net);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::clustering_coefficient_sampled(g, 1000, rng));
  }
}
BENCHMARK(BM_ClusteringSampled);

void BM_PathLengthSampled(benchmark::State& state) {
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, 10000, 42);
  sim::CycleEngine engine(net);
  engine.run(5);
  const auto g = graph::UndirectedGraph::from_network(net);
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::average_path_length_sampled(g, 100, rng));
  }
}
BENCHMARK(BM_PathLengthSampled);

void BM_ConnectedComponents(benchmark::State& state) {
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, 10000, 42);
  sim::CycleEngine engine(net);
  engine.run(5);
  const auto g = graph::UndirectedGraph::from_network(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::connected_components(g));
  }
}
BENCHMARK(BM_ConnectedComponents);

}  // namespace

BENCHMARK_MAIN();
