// Micro-benchmarks (google-benchmark) of the hot kernels: view merge and
// selection, a full pushpull exchange, one simulation cycle at several
// network sizes, graph snapshot construction and the metric estimators.
// These bound the cost of the experiment harness and catch performance
// regressions in the exchange path.
#include <benchmark/benchmark.h>

#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/membership/view.hpp"
#include "pss/protocol/gossip_node.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace {

using namespace pss;

View make_view(std::size_t size, std::uint64_t seed, NodeId lo = 0) {
  Rng rng(seed);
  std::vector<NodeDescriptor> entries;
  entries.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    entries.push_back({static_cast<NodeId>(lo + rng.below(10 * size)),
                       static_cast<HopCount>(rng.below(20))});
  }
  return View(std::move(entries));
}

void BM_ViewMerge(benchmark::State& state) {
  const auto c = static_cast<std::size_t>(state.range(0));
  const View a = make_view(c, 1);
  const View b = make_view(c, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(View::merge(a, b));
  }
}
BENCHMARK(BM_ViewMerge)->Arg(30)->Arg(100);

void BM_ViewSelectHeadUnbiased(benchmark::State& state) {
  const View merged = make_view(61, 3);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(merged.select_head_unbiased(30, rng));
  }
}
BENCHMARK(BM_ViewSelectHeadUnbiased);

void BM_ViewSelectRand(benchmark::State& state) {
  const View merged = make_view(61, 5);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(merged.select_rand(30, rng));
  }
}
BENCHMARK(BM_ViewSelectRand);

void BM_PushPullExchange(benchmark::State& state) {
  GossipNode a(0, ProtocolSpec::newscast(), ProtocolOptions{30, false}, Rng(1));
  GossipNode b(1, ProtocolSpec::newscast(), ProtocolOptions{30, false}, Rng(2));
  a.set_view(make_view(30, 7, 2));
  b.set_view(make_view(30, 8, 2));
  for (auto _ : state) {
    auto reply = b.handle_message(a.make_active_buffer());
    a.handle_reply(*reply);
  }
}
BENCHMARK(BM_PushPullExchange);

void BM_SimulationCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, n, 42);
  sim::CycleEngine engine(net);
  for (auto _ : state) {
    engine.run_cycle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulationCycle)->Arg(1000)->Arg(10000);

void BM_GraphSnapshot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, n, 42);
  sim::CycleEngine engine(net);
  engine.run(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::UndirectedGraph::from_network(net));
  }
}
BENCHMARK(BM_GraphSnapshot)->Arg(1000)->Arg(10000);

void BM_ClusteringSampled(benchmark::State& state) {
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, 10000, 42);
  sim::CycleEngine engine(net);
  engine.run(5);
  const auto g = graph::UndirectedGraph::from_network(net);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::clustering_coefficient_sampled(g, 1000, rng));
  }
}
BENCHMARK(BM_ClusteringSampled);

void BM_PathLengthSampled(benchmark::State& state) {
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, 10000, 42);
  sim::CycleEngine engine(net);
  engine.run(5);
  const auto g = graph::UndirectedGraph::from_network(net);
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::average_path_length_sampled(g, 100, rng));
  }
}
BENCHMARK(BM_PathLengthSampled);

void BM_ConnectedComponents(benchmark::State& state) {
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{30, false}, 10000, 42);
  sim::CycleEngine engine(net);
  engine.run(5);
  const auto g = graph::UndirectedGraph::from_network(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::connected_components(g));
  }
}
BENCHMARK(BM_ConnectedComponents);

}  // namespace

BENCHMARK_MAIN();
