// Scale driver for the flat asynchronous engines: events/second, memory and
// steady-state allocation behavior at N ∈ {10^4, 10^5, 10^6}, swept over a
// thread ladder × {scalar, simd} kernel matrix, plus the recorded speedup
// over the frozen LegacyEventEngine baseline.
//
// This is the async counterpart of scale_million_nodes: the same Newscast
// instance and random bootstrap, but driven through the discrete-event
// message layer (per-message latency, drop probability, reply timeouts)
// instead of atomic cycles. Each cell of the matrix runs the identical
// scenario from a fresh bootstrap: the sequential EventEngine (threads = 0
// in the output) and the ParallelEventEngine at each ladder entry, under
// the scalar kernels and under the best SIMD tier the CPU reports. Each
// run warms the engine for a few periods — letting the calendar queue,
// message pool and scratch buffers reach their high-water marks — then
// measures a timed window, counting every global operator new/delete in
// between: the recorded `steady_allocations` is the engine's whole-process
// allocation count during the measured window.
//
// Digest gate: every cell must end in the bit-identical network state —
// the FNV state digest (views, liveness, per-node stats, Rng probes) of
// each run is compared against the scalar sequential reference, and any
// divergence across thread counts or kernel tiers makes the driver exit
// non-zero ("digest_ok": false). This is the ParallelEventEngine
// Deterministic contract and the SIMD dispatch contract enforced at the
// scale the test suite cannot reach.
//
// The legacy baseline (heap-of-Views object-graph engine) runs the same
// scenario where it is feasible (it is the 10^4-capped engine this driver
// exists to retire); `PSS_ASYNC_LEGACY=auto` runs it up to 10^5 nodes.
// Results overwrite BENCH_async.json.
//
// Knobs (see docs/PERFORMANCE.md):
//   PSS_ASYNC_NS      comma-separated network sizes (default 10000,100000,1000000)
//   PSS_ASYNC_THREADS comma-separated parallel-engine lane counts (default 1,2,4)
//   PSS_ASYNC_KERNELS "both" (default), "scalar", "simd"
//   PSS_PERIODS       measured periods per run            (default 20)
//   PSS_WARMUP        warm-up periods before measuring    (default 5)
//   PSS_C             view size c                         (default 30)
//   PSS_SEED          master seed                         (default 42)
//   PSS_DROP          message drop probability            (default 0)
//   PSS_ASYNC_LEGACY  "auto" (n <= 1e5), "1" (always), "0" (never)
//   PSS_ASYNC_JSON    output path                         (default BENCH_async.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "pss/common/env.hpp"
#include "pss/membership/simd.hpp"
#include "pss/obs/run_recorder.hpp"
#include "pss/scenarios/digest.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/legacy_event_engine.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/parallel_event_engine.hpp"

// --- Whole-process allocation counter --------------------------------------
// Overriding the global allocation functions in the bench binary counts
// every heap allocation made while the engine runs — the strongest form of
// the "zero steady-state allocation" claim, since nothing can hide behind a
// custom pool or a standard-library container.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::size_t> parse_sizes(const std::string& text,
                                     const char* knob) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) {
      std::size_t consumed = 0;
      unsigned long long value = 0;
      try {
        value = std::stoull(token, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != token.size() || value == 0) {
        std::fprintf(stderr,
                     "%s: bad entry '%s' (want a comma-separated list of "
                     "positive integers)\n",
                     knob, token.c_str());
        std::exit(1);
      }
      out.push_back(static_cast<std::size_t>(value));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Events the engine processed: wake-ups plus every delivered message
/// (dropped ones never enter the queue); comparable across all engines.
std::uint64_t events_processed(const pss::sim::EventEngineStats& s) {
  return s.wakeups + (s.messages_sent - s.messages_dropped);
}

const char* level_name(pss::simd::Level level) {
  switch (level) {
    case pss::simd::Level::kScalar:
      return "scalar";
    case pss::simd::Level::kSSE2:
      return "sse2";
    case pss::simd::Level::kAVX2:
      return "avx2";
  }
  return "unknown";
}

/// One matrix cell: engine ∈ {flat sequential (threads = 0), parallel at a
/// ladder entry, legacy baseline}, under one kernel tier.
struct RunResult {
  std::size_t n = 0;
  std::string engine;    ///< "flat", "parallel", "legacy"
  std::string kernel;    ///< "scalar", "sse2", "avx2" ("-" for legacy)
  unsigned threads = 0;  ///< 0 for the sequential engines
  double setup_seconds = 0;
  double run_seconds = 0;
  double events_per_second = 0;
  std::uint64_t events = 0;
  std::uint64_t steady_allocations = 0;
  double bytes_per_node = 0;
  double mean_view_size = 0;
  std::uint64_t digest = 0;  ///< post-run state digest (0 for legacy)
  bool gated = false;        ///< participates in the digest gate
  std::uint64_t windows = 0; ///< parallel engine only
  std::uint64_t deferred_tasks = 0;
  std::uint64_t pooled_tasks = 0;
  pss::sim::EventEngineStats stats;
};

/// Builds the standard scenario and runs warmup + measured periods through
/// `Engine`, filling the timing/allocation/digest fields of `r`. Returns
/// the engine by value-channel side effects only; parallel-only counters
/// are harvested by the caller through the lambda hook.
template <typename Engine, typename Harvest, typename... EngineArgs>
void run_cell(RunResult& r, const pss::ProtocolSpec& spec, std::size_t c,
              std::uint64_t seed, pss::sim::EventEngineConfig cfg,
              std::size_t warmup, std::size_t periods, Harvest&& harvest,
              EngineArgs&&... args) {
  using namespace pss;
  const auto t_setup = Clock::now();
  sim::Network net(spec, ProtocolOptions{c, false}, seed);
  net.reserve_nodes(r.n);
  net.add_nodes(r.n);
  sim::bootstrap::init_random(net);
  Engine engine(net, cfg, std::forward<EngineArgs>(args)...);
  engine.run_cycles(warmup);  // queue/pool/scratch reach high-water marks
  r.setup_seconds = seconds_since(t_setup);

  const auto warm_stats = engine.stats();
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto t_run = Clock::now();
  engine.run_cycles(periods);
  r.run_seconds = seconds_since(t_run);
  r.steady_allocations =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;

  r.stats = engine.stats();
  r.events = events_processed(r.stats) - events_processed(warm_stats);
  r.events_per_second = static_cast<double>(r.events) / r.run_seconds;
  std::size_t engine_bytes = 0;
  if constexpr (requires { engine.resident_bytes(); }) {
    engine_bytes = engine.resident_bytes();
  }
  r.bytes_per_node =
      static_cast<double>(net.resident_bytes() + engine_bytes) /
      static_cast<double>(r.n);
  std::uint64_t total_view = 0;
  for (NodeId id = 0; id < r.n; ++id) total_view += net.view_span(id).size();
  r.mean_view_size =
      static_cast<double>(total_view) / static_cast<double>(r.n);
  r.digest = scenarios::state_digest(net);
  harvest(engine);
}

}  // namespace

int main() {
  using namespace pss;

  const auto sizes =
      parse_sizes(env::get("PSS_ASYNC_NS").value_or("10000,100000,1000000"),
                  "PSS_ASYNC_NS");
  const auto ladder = parse_sizes(
      env::get("PSS_ASYNC_THREADS").value_or("1,2,4"), "PSS_ASYNC_THREADS");
  const std::string kernel_mode =
      env::get("PSS_ASYNC_KERNELS").value_or("both");
  const auto periods = static_cast<std::size_t>(env::get_int("PSS_PERIODS", 20));
  const auto warmup = static_cast<std::size_t>(env::get_int("PSS_WARMUP", 5));
  const auto c = static_cast<std::size_t>(env::get_int("PSS_C", 30));
  const auto seed = static_cast<std::uint64_t>(env::get_int("PSS_SEED", 42));
  const double drop = env::get_double("PSS_DROP", 0.0);
  const std::string legacy_mode =
      env::get("PSS_ASYNC_LEGACY").value_or("auto");
  const std::string out_path =
      env::get("PSS_ASYNC_JSON").value_or("BENCH_async.json");

  // Kernel tiers for the matrix: scalar always; the "simd" leg is whatever
  // the CPU detected (skipped when detection says scalar — e.g. under
  // PSS_FORCE_SCALAR — rather than silently measured twice).
  std::vector<simd::Level> kernels;
  if (kernel_mode == "scalar") {
    kernels = {simd::Level::kScalar};
  } else if (kernel_mode == "simd") {
    kernels = {simd::detected_level()};
  } else {
    kernels = {simd::Level::kScalar};
    if (simd::detected_level() != simd::Level::kScalar) {
      kernels.push_back(simd::detected_level());
    }
  }

  const ProtocolSpec spec = ProtocolSpec::newscast();
  sim::EventEngineConfig cfg;
  cfg.drop_probability = drop;

  std::vector<RunResult> results;
  bool digest_ok = true;
  std::printf(
      "scale_async: spec=%s c=%zu periods=%zu warmup=%zu drop=%.2f seed=%llu "
      "simd=%s threads={",
      spec.name().c_str(), c, periods, warmup, drop,
      static_cast<unsigned long long>(seed),
      level_name(simd::detected_level()));
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    std::printf("%s%zu", i ? "," : "", ladder[i]);
  }
  std::printf("}\n");

  const auto no_harvest = [](const auto&) {};
  for (const std::size_t n : sizes) {
    std::uint64_t reference_digest = 0;
    bool have_reference = false;
    for (const simd::Level kernel : kernels) {
      simd::set_level_for_testing(kernel);
      // Sequential engine under this kernel tier.
      RunResult seq;
      seq.n = n;
      seq.engine = "flat";
      seq.kernel = level_name(kernel);
      seq.gated = true;
      run_cell<sim::EventEngine>(seq, spec, c, seed, cfg, warmup, periods,
                                 no_harvest);
      if (!have_reference) {
        reference_digest = seq.digest;  // scalar sequential = the oracle
        have_reference = true;
      }
      std::printf(
          "  n=%-8zu flat/%-6s        setup=%6.2fs run=%6.2fs %10.0f ev/s  "
          "%6.1f B/node  steady_allocs=%llu  digest=%016llx\n",
          n, seq.kernel.c_str(), seq.setup_seconds, seq.run_seconds,
          seq.events_per_second, seq.bytes_per_node,
          static_cast<unsigned long long>(seq.steady_allocations),
          static_cast<unsigned long long>(seq.digest));
      results.push_back(seq);

      // Parallel engine ladder under this kernel tier.
      for (const std::size_t threads : ladder) {
        RunResult par;
        par.n = n;
        par.engine = "parallel";
        par.kernel = level_name(kernel);
        par.threads = static_cast<unsigned>(threads);
        par.gated = true;
        run_cell<sim::ParallelEventEngine>(
            par, spec, c, seed, cfg, warmup, periods,
            [&par](const sim::ParallelEventEngine& e) {
              par.windows = e.windows();
              par.deferred_tasks = e.deferred_tasks();
              par.pooled_tasks = e.pooled_tasks();
            },
            static_cast<unsigned>(threads));
        std::printf(
            "  n=%-8zu parallel/%-6s t=%zu  run=%6.2fs %10.0f ev/s  "
            "windows=%llu deferred=%llu pooled=%llu  digest=%016llx\n",
            n, par.kernel.c_str(), threads, par.run_seconds,
            par.events_per_second,
            static_cast<unsigned long long>(par.windows),
            static_cast<unsigned long long>(par.deferred_tasks),
            static_cast<unsigned long long>(par.pooled_tasks),
            static_cast<unsigned long long>(par.digest));
        results.push_back(par);
      }
    }
    simd::set_level_for_testing(simd::detected_level());

    // The gate: every flat/parallel cell of this n must match the scalar
    // sequential reference bit for bit.
    for (const RunResult& r : results) {
      if (r.n != n || !r.gated) continue;
      if (r.digest != reference_digest) {
        digest_ok = false;
        std::fprintf(stderr,
                     "DIGEST MISMATCH n=%zu engine=%s kernel=%s threads=%u: "
                     "%016llx != reference %016llx\n",
                     n, r.engine.c_str(), r.kernel.c_str(), r.threads,
                     static_cast<unsigned long long>(r.digest),
                     static_cast<unsigned long long>(reference_digest));
      }
    }

    const bool run_legacy =
        legacy_mode == "1" || (legacy_mode == "auto" && n <= 100000);
    if (run_legacy) {
      RunResult legacy;
      legacy.n = n;
      legacy.engine = "legacy";
      legacy.kernel = "-";
      run_cell<sim::LegacyEventEngine>(legacy, spec, c, seed, cfg, warmup,
                                       periods, no_harvest);
      legacy.digest = 0;  // outside the gate: frozen baseline, own arena
      // Speedup of the fastest measured flat/parallel cell at this n.
      double best = 0;
      for (const RunResult& r : results) {
        if (r.n == n && r.gated) best = std::max(best, r.events_per_second);
      }
      std::printf(
          "  n=%-8zu legacy:              run=%6.2fs %10.0f ev/s  -> best "
          "flat speedup %.1fx\n",
          n, legacy.run_seconds, legacy.events_per_second,
          best / legacy.events_per_second);
      results.push_back(legacy);
    }
  }

  const std::string spec_name = spec.name();
  obs::RunRecorder rec(
      "scale_async", 1,
      bench::make_run_metadata("scale_async", "event", spec_name,
                               bench::protocol_wire_id(spec), sizes.back(), c,
                               periods, seed));
  rec.json().key("params");
  rec.json().begin_object();
  rec.json().field("periods", static_cast<std::uint64_t>(periods));
  rec.json().field("warmup_periods", static_cast<std::uint64_t>(warmup));
  rec.json().field("drop_probability", drop);
  rec.json().field("simd_detected", level_name(simd::detected_level()));
  rec.json().end_object();
  rec.json().key("runs");
  rec.json().begin_array();
  for (const RunResult& r : results) {
    rec.json().begin_object();
    rec.json().field("n", static_cast<std::uint64_t>(r.n));
    rec.json().field("engine", r.engine);
    rec.json().field("kernel", r.kernel);
    rec.json().field("threads", r.threads);
    rec.json().field("setup_seconds", r.setup_seconds);
    rec.json().field("run_seconds", r.run_seconds);
    rec.json().field("events", r.events);
    rec.json().field("events_per_second", r.events_per_second);
    rec.json().field("steady_allocations", r.steady_allocations);
    rec.json().field("bytes_per_node", r.bytes_per_node);
    rec.json().field("mean_view_size", r.mean_view_size);
    rec.json().field("windows", r.windows);
    rec.json().field("deferred_tasks", r.deferred_tasks);
    rec.json().field("pooled_tasks", r.pooled_tasks);
    rec.json().field("wakeups", r.stats.wakeups);
    rec.json().field("messages_sent", r.stats.messages_sent);
    rec.json().field("messages_dropped", r.stats.messages_dropped);
    rec.json().field("replies_delivered", r.stats.replies_delivered);
    rec.json().field("replies_stale", r.stats.replies_stale);
    rec.json().field("digest", obs::to_hex16(r.digest));
    rec.json().end_object();
  }
  rec.json().end_array();
  rec.gate("digest", digest_ok);
  if (!rec.write(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!digest_ok) {
    std::fprintf(stderr, "digest gate FAILED\n");
    return 1;
  }
  std::printf("digest gate OK (all thread counts x kernels bit-identical)\n");
  return 0;
}
