// Scale driver for the flat asynchronous engine: events/second, memory and
// steady-state allocation behavior at N ∈ {10^4, 10^5, 10^6}, plus the
// recorded speedup over the frozen LegacyEventEngine baseline.
//
// This is the async counterpart of scale_million_nodes: the same Newscast
// instance and random bootstrap, but driven through the discrete-event
// message layer (per-message latency, drop probability, reply timeouts)
// instead of atomic cycles. Each run warms the engine for a few periods —
// letting the calendar queue, message pool and scratch buffers reach their
// high-water marks — then measures a timed window, counting every global
// operator new/delete in between: the recorded `steady_allocations` is the
// engine's whole-process allocation count during the measured window, and
// the flat engine's async hot path is allocation-free in steady state.
//
// The legacy baseline (heap-of-Views object-graph engine) runs the same
// scenario where it is feasible (it is the 10^4-capped engine this driver
// exists to retire); `PSS_ASYNC_LEGACY=auto` runs it up to 10^5 nodes.
// Results append to BENCH_async.json.
//
// Knobs (see docs/PERFORMANCE.md):
//   PSS_ASYNC_NS     comma-separated network sizes (default 10000,100000,1000000)
//   PSS_PERIODS      measured periods per run            (default 20)
//   PSS_WARMUP       warm-up periods before measuring    (default 5)
//   PSS_C            view size c                         (default 30)
//   PSS_SEED         master seed                         (default 42)
//   PSS_DROP         message drop probability            (default 0)
//   PSS_ASYNC_LEGACY "auto" (n <= 1e5), "1" (always), "0" (never)
//   PSS_ASYNC_JSON   output path                         (default BENCH_async.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "pss/common/env.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/legacy_event_engine.hpp"
#include "pss/sim/network.hpp"

// --- Whole-process allocation counter --------------------------------------
// Overriding the global allocation functions in the bench binary counts
// every heap allocation made while the engine runs — the strongest form of
// the "zero steady-state allocation" claim, since nothing can hide behind a
// custom pool or a standard-library container.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::size_t> parse_sizes(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) {
      std::size_t consumed = 0;
      unsigned long long value = 0;
      try {
        value = std::stoull(token, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != token.size() || value == 0) {
        std::fprintf(stderr,
                     "PSS_ASYNC_NS: bad network size '%s' (want a "
                     "comma-separated list of positive integers)\n",
                     token.c_str());
        std::exit(1);
      }
      out.push_back(static_cast<std::size_t>(value));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Events the engine processed: wake-ups plus every delivered message
/// (dropped ones never enter the queue); comparable across both engines.
std::uint64_t events_processed(const pss::sim::EventEngineStats& s) {
  return s.wakeups + (s.messages_sent - s.messages_dropped);
}

struct RunResult {
  std::size_t n = 0;
  double setup_seconds = 0;
  double run_seconds = 0;
  double events_per_second = 0;
  std::uint64_t events = 0;
  std::uint64_t steady_allocations = 0;
  double bytes_per_node = 0;
  double mean_view_size = 0;
  double legacy_run_seconds = 0;       ///< 0 when the baseline was skipped
  double legacy_events_per_second = 0;
  double speedup_vs_legacy = 0;
  pss::sim::EventEngineStats stats;
};

}  // namespace

int main() {
  using namespace pss;

  const auto sizes = parse_sizes(
      env::get("PSS_ASYNC_NS").value_or("10000,100000,1000000"));
  const auto periods = static_cast<std::size_t>(env::get_int("PSS_PERIODS", 20));
  const auto warmup = static_cast<std::size_t>(env::get_int("PSS_WARMUP", 5));
  const auto c = static_cast<std::size_t>(env::get_int("PSS_C", 30));
  const auto seed = static_cast<std::uint64_t>(env::get_int("PSS_SEED", 42));
  const double drop = env::get_double("PSS_DROP", 0.0);
  const std::string legacy_mode =
      env::get("PSS_ASYNC_LEGACY").value_or("auto");
  const std::string out_path =
      env::get("PSS_ASYNC_JSON").value_or("BENCH_async.json");

  const ProtocolSpec spec = ProtocolSpec::newscast();
  sim::EventEngineConfig cfg;
  cfg.drop_probability = drop;

  std::vector<RunResult> results;
  std::printf(
      "scale_async: spec=%s c=%zu periods=%zu warmup=%zu drop=%.2f seed=%llu\n",
      spec.name().c_str(), c, periods, warmup, drop,
      static_cast<unsigned long long>(seed));

  for (const std::size_t n : sizes) {
    RunResult r;
    r.n = n;

    const auto t_setup = Clock::now();
    sim::Network net(spec, ProtocolOptions{c, false}, seed);
    net.reserve_nodes(n);
    net.add_nodes(n);
    sim::bootstrap::init_random(net);
    sim::EventEngine engine(net, cfg);
    engine.run_cycles(warmup);  // queue/pool/scratch reach high-water marks
    r.setup_seconds = seconds_since(t_setup);

    const auto warm_stats = engine.stats();
    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    const auto t_run = Clock::now();
    engine.run_cycles(periods);
    r.run_seconds = seconds_since(t_run);
    r.steady_allocations =
        g_alloc_count.load(std::memory_order_relaxed) - allocs_before;

    r.stats = engine.stats();
    r.events = events_processed(r.stats) - events_processed(warm_stats);
    r.events_per_second = static_cast<double>(r.events) / r.run_seconds;
    r.bytes_per_node =
        static_cast<double>(net.resident_bytes() + engine.resident_bytes()) /
        static_cast<double>(n);
    std::uint64_t total_view = 0;
    for (NodeId id = 0; id < n; ++id) total_view += net.view_span(id).size();
    r.mean_view_size = static_cast<double>(total_view) / static_cast<double>(n);

    std::printf(
        "  n=%-8zu flat:   setup=%6.2fs run=%6.2fs  %10.0f events/s  "
        "%6.1f B/node  steady_allocs=%llu  mean_view=%.2f\n",
        n, r.setup_seconds, r.run_seconds, r.events_per_second,
        r.bytes_per_node, static_cast<unsigned long long>(r.steady_allocations),
        r.mean_view_size);

    const bool run_legacy =
        legacy_mode == "1" || (legacy_mode == "auto" && n <= 100000);
    if (run_legacy) {
      sim::Network legacy_net(spec, ProtocolOptions{c, false}, seed);
      legacy_net.reserve_nodes(n);
      legacy_net.add_nodes(n);
      sim::bootstrap::init_random(legacy_net);
      sim::LegacyEventEngine legacy(legacy_net, cfg);
      legacy.run_cycles(warmup);
      const auto legacy_warm = events_processed(legacy.stats());
      const auto t_legacy = Clock::now();
      legacy.run_cycles(periods);
      r.legacy_run_seconds = seconds_since(t_legacy);
      const std::uint64_t legacy_events =
          events_processed(legacy.stats()) - legacy_warm;
      r.legacy_events_per_second =
          static_cast<double>(legacy_events) / r.legacy_run_seconds;
      r.speedup_vs_legacy = r.events_per_second / r.legacy_events_per_second;
      std::printf(
          "  n=%-8zu legacy: run=%6.2fs  %10.0f events/s  -> flat speedup "
          "%.1fx\n",
          n, r.legacy_run_seconds, r.legacy_events_per_second,
          r.speedup_vs_legacy);
    }
    results.push_back(r);
  }

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"scale_async\",\n"
       << "  \"spec\": \"" << spec.name() << "\",\n"
       << "  \"view_size\": " << c << ",\n"
       << "  \"periods\": " << periods << ",\n"
       << "  \"warmup_periods\": " << warmup << ",\n"
       << "  \"drop_probability\": " << drop << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\n"
         << "      \"n\": " << r.n << ",\n"
         << "      \"setup_seconds\": " << r.setup_seconds << ",\n"
         << "      \"run_seconds\": " << r.run_seconds << ",\n"
         << "      \"events\": " << r.events << ",\n"
         << "      \"events_per_second\": " << r.events_per_second << ",\n"
         << "      \"steady_allocations\": " << r.steady_allocations << ",\n"
         << "      \"bytes_per_node\": " << r.bytes_per_node << ",\n"
         << "      \"mean_view_size\": " << r.mean_view_size << ",\n"
         << "      \"wakeups\": " << r.stats.wakeups << ",\n"
         << "      \"messages_sent\": " << r.stats.messages_sent << ",\n"
         << "      \"messages_dropped\": " << r.stats.messages_dropped << ",\n"
         << "      \"replies_delivered\": " << r.stats.replies_delivered
         << ",\n"
         << "      \"replies_stale\": " << r.stats.replies_stale << ",\n"
         << "      \"legacy_run_seconds\": " << r.legacy_run_seconds << ",\n"
         << "      \"legacy_events_per_second\": "
         << r.legacy_events_per_second << ",\n"
         << "      \"speedup_vs_legacy\": " << r.speedup_vs_legacy << "\n"
         << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
