// Scale driver for the streaming observability subsystem: per-snapshot
// measurement cost, steady-state allocation behaviour and an
// exact-vs-streaming cross-check, at N ∈ {10^4, 10^5, 10^6}.
//
// The paper's whole evaluation is graph observables; this driver shows they
// can now be traced *during* a million-node run. Each network size stands
// up the flagship Newscast instance, attaches a StreamingObserver to the
// batched CycleEngine (cadence 1: every cycle records live count, degree
// summaries, components, sampled clustering and path length) and runs the
// usual 20-cycle window. The first cycle is the warm-up that sizes every
// census buffer; the remaining cycles run under a whole-process operator
// new/delete counter, and the recorded `steady_allocations` must be zero —
// the streaming path neither builds an UndirectedGraph/edge list nor
// allocates after warm-up (the bench hard-fails otherwise).
//
// At sizes up to PSS_METRICS_EXACT_MAX the streaming results are
// cross-checked against the exact graph::metrics pipeline: degree
// histogram, degree summary and component structure must be bit-identical,
// and the sampled estimators must reproduce the exact module's estimators
// draw-for-draw from a cloned Rng. Any mismatch is a hard failure — the
// equivalence contract is enforced on every bench run, not just in the
// test suite. Results append to BENCH_metrics.json.
//
// Knobs (see docs/PERFORMANCE.md):
//   PSS_METRICS_NS        comma-separated sizes    (default 10000,100000,1000000)
//   PSS_CYCLES            cycles per run           (default 20)
//   PSS_C                 view size c              (default 30)
//   PSS_SEED              master seed              (default 42)
//   PSS_CLUSTERING_SAMPLE clustering sample        (default 1000)
//   PSS_PATH_SOURCES      BFS sources              (default 8)
//   PSS_METRICS_EXACT_MAX largest n cross-checked  (default 10000)
//   PSS_METRICS_JSON      output path              (default BENCH_metrics.json)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "pss/common/env.hpp"
#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/obs/run_recorder.hpp"
#include "pss/obs/sinks.hpp"
#include "pss/obs/streaming_observer.hpp"
#include "pss/scenarios/digest.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/network.hpp"

// --- Whole-process allocation counter --------------------------------------
// Same idiom as scale_async: overriding the global allocation functions
// counts every heap allocation made while the measured window runs, so the
// zero-steady-state-allocation claim cannot hide behind a pool or a
// standard-library container.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::size_t> parse_sizes(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) {
      std::size_t consumed = 0;
      unsigned long long value = 0;
      const bool digits_only =
          token.find_first_not_of("0123456789") == std::string::npos;
      try {
        if (digits_only) value = std::stoull(token, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != token.size() || value == 0) {
        std::fprintf(stderr,
                     "PSS_METRICS_NS: bad network size '%s' (want a "
                     "comma-separated list of positive integers)\n",
                     token.c_str());
        std::exit(1);
      }
      out.push_back(static_cast<std::size_t>(value));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Compares every streamed observable against the exact graph::metrics
/// pipeline on the same snapshot; prints and returns false on any mismatch.
bool cross_check_exact(const pss::sim::Network& net, pss::obs::GraphCensus& census,
                       std::size_t clustering_sample, std::size_t path_sources,
                       std::uint64_t estimator_seed) {
  using namespace pss;
  bool ok = true;
  const auto fail = [&ok](const char* what) {
    std::fprintf(stderr, "FATAL: streaming/exact mismatch: %s\n", what);
    ok = false;
  };

  census.rebuild(net);
  const auto g = graph::UndirectedGraph::from_network(net);

  // Degree histogram: bit-equal, including the trailing max-degree bucket.
  const auto exact_hist = graph::degree_histogram(g);
  const auto hist = census.degree_histogram();
  if (exact_hist.size() != hist.size()) {
    fail("degree histogram size");
  } else {
    for (std::size_t d = 0; d < hist.size(); ++d) {
      if (exact_hist[d] != hist[d]) {
        fail("degree histogram bucket");
        break;
      }
    }
  }

  // Degree summary: bit-equal doubles (same accumulation order).
  const auto exact_sum = graph::degree_summary(g);
  const obs::DegreeStats& sum = census.degree_stats();
  if (exact_sum.min != sum.min || exact_sum.max != sum.max ||
      exact_sum.mean != sum.mean || exact_sum.variance != sum.variance) {
    fail("degree summary");
  }

  // Components: count, largest and the full size multiset.
  const auto exact_comp = graph::connected_components(g);
  const obs::ComponentStats& comp = census.components();
  const auto comp_sizes = census.component_sizes();
  if (exact_comp.count != comp.count || exact_comp.largest != comp.largest ||
      exact_comp.sizes.size() != comp_sizes.size()) {
    fail("component structure");
  } else {
    for (std::size_t i = 0; i < comp_sizes.size(); ++i) {
      if (exact_comp.sizes[i] != comp_sizes[i]) {
        fail("component size multiset");
        break;
      }
    }
  }

  // Edge/vertex counts and mean degree.
  if (g.vertex_count() != census.live_count() ||
      g.edge_count() != census.undirected_edge_count()) {
    fail("vertex/edge counts");
  }

  // Sampled estimators: cloned Rngs must reproduce the exact module's
  // estimators draw-for-draw.
  {
    Rng streaming_rng(estimator_seed);
    Rng exact_rng(estimator_seed);
    if (clustering_sample > 0) {
      const double c_stream =
          census.clustering_sampled(clustering_sample, streaming_rng);
      const double c_exact = graph::clustering_coefficient_sampled(
          g, clustering_sample, exact_rng);
      if (c_stream != c_exact) fail("sampled clustering");
    }
    if (path_sources > 0) {
      const auto p_stream =
          census.path_length_sampled(path_sources, streaming_rng);
      const auto p_exact =
          graph::average_path_length_sampled(g, path_sources, exact_rng);
      if (p_stream.average != p_exact.average ||
          p_stream.reachable_fraction != p_exact.reachable_fraction ||
          p_stream.diameter != p_exact.diameter) {
        fail("sampled path length");
      }
    }
  }
  return ok;
}

struct RunResult {
  std::size_t n = 0;
  double setup_seconds = 0;
  double run_seconds = 0;
  std::size_t snapshots = 0;
  double snapshot_seconds = 0;  ///< standalone census + estimator pass
  std::uint64_t steady_allocations = 0;
  double census_bytes_per_node = 0;
  bool exact_checked = false;
  bool exact_match = false;
  pss::obs::SnapshotRecord final_record;
};

}  // namespace

int main() {
  using namespace pss;

  const auto sizes = parse_sizes(
      env::get("PSS_METRICS_NS").value_or("10000,100000,1000000"));
  const auto cycles = static_cast<Cycle>(env::get_int("PSS_CYCLES", 20));
  const auto c = static_cast<std::size_t>(env::get_int("PSS_C", 30));
  const auto seed = static_cast<std::uint64_t>(env::get_int("PSS_SEED", 42));
  const auto clustering_sample =
      static_cast<std::size_t>(env::get_int("PSS_CLUSTERING_SAMPLE", 1000));
  const auto path_sources =
      static_cast<std::size_t>(env::get_int("PSS_PATH_SOURCES", 8));
  const auto exact_max =
      static_cast<std::size_t>(env::get_int("PSS_METRICS_EXACT_MAX", 10'000));
  const std::string out_path =
      env::get("PSS_METRICS_JSON").value_or("BENCH_metrics.json");

  const ProtocolSpec spec = ProtocolSpec::newscast();
  std::vector<RunResult> results;

  std::printf(
      "scale_metrics: spec=%s c=%zu cycles=%u seed=%llu "
      "clustering_sample=%zu path_sources=%zu\n",
      spec.name().c_str(), c, cycles, static_cast<unsigned long long>(seed),
      clustering_sample, path_sources);

  for (const std::size_t n : sizes) {
    RunResult r;
    r.n = n;

    const auto t_setup = Clock::now();
    sim::Network net(spec, ProtocolOptions{c, false}, seed);
    net.reserve_nodes(n);
    net.add_nodes(n);
    sim::bootstrap::init_random(net);
    r.setup_seconds = seconds_since(t_setup);

    obs::ObserverConfig ocfg;
    ocfg.clustering_sample = clustering_sample;
    ocfg.path_sources = path_sources;
    ocfg.reserve_records = cycles + 1;
    obs::StreamingObserver observer(ocfg);

    sim::CycleEngine engine(net);
    engine.attach_probe(observer);

    const auto t_run = Clock::now();
    // Cycle 1 is the warm-up: it sizes every census buffer (the in-CSR is
    // reserved at its n*c ceiling). Everything after it must not allocate.
    engine.run(1);
    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    if (cycles > 1) engine.run(cycles - 1);
    r.steady_allocations =
        g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    r.run_seconds = seconds_since(t_run);
    r.snapshots = observer.records().size();
    r.final_record = observer.latest();
    r.census_bytes_per_node =
        static_cast<double>(observer.census().storage_bytes()) /
        static_cast<double>(n);

    // Standalone cost of one full snapshot (census + both estimators),
    // separated from engine time.
    {
      Rng timing_rng(seed ^ 0xC0FFEE);
      const auto t_snap = Clock::now();
      observer.census().rebuild(net);
      if (clustering_sample > 0) {
        (void)observer.census().clustering_sampled(clustering_sample,
                                                   timing_rng);
      }
      if (path_sources > 0) {
        (void)observer.census().path_length_sampled(path_sources, timing_rng);
      }
      r.snapshot_seconds = seconds_since(t_snap);
    }

    if (n <= exact_max) {
      r.exact_checked = true;
      r.exact_match = cross_check_exact(net, observer.census(),
                                        clustering_sample, path_sources,
                                        seed ^ 0xE5717A7E);
      if (!r.exact_match) {
        std::fprintf(stderr,
                     "FATAL: streaming estimators diverged from exact "
                     "graph::metrics at n=%zu\n",
                     n);
        return 1;
      }
    }

    if (r.steady_allocations != 0) {
      std::fprintf(stderr,
                   "FATAL: streaming observability path allocated %llu times "
                   "after warm-up at n=%zu\n",
                   static_cast<unsigned long long>(r.steady_allocations), n);
      return 1;
    }

    const obs::SnapshotRecord& f = r.final_record;
    std::printf(
        "  n=%-8zu setup=%6.2fs run=%6.2fs snap=%7.3fs  deg[min=%zu mean=%.2f "
        "max=%zu]  comps=%zu largest=%zu  clust=%.4f path=%.3f%s%s\n",
        n, r.setup_seconds, r.run_seconds, r.snapshot_seconds, f.degree.min,
        f.degree.mean, f.degree.max, f.components.count, f.components.largest,
        f.clustering, f.path.average, r.exact_checked ? "  (=exact)" : "",
        r.steady_allocations == 0 ? "  0 steady allocs" : "");
    results.push_back(r);
  }

  // Differential: a sink-attached run must be digest-identical to the
  // sink-free run above — attaching a recorder cannot perturb the
  // simulation. Re-runs the smallest ladder size with a RingBufferSink on
  // the observer and compares full-state digests.
  std::uint64_t digest_plain = 0;
  std::uint64_t digest_sinked = 0;
  std::uint64_t sink_rows = 0;
  std::uint64_t plain_snapshots = 0;
  {
    const std::size_t n = sizes.front();
    obs::ObserverConfig ocfg;
    ocfg.clustering_sample = clustering_sample;
    ocfg.path_sources = path_sources;
    ocfg.reserve_records = cycles + 1;

    const auto run_once = [&](obs::MetricSink* sink,
                              std::uint64_t* snapshots_out) {
      sim::Network net(spec, ProtocolOptions{c, false}, seed);
      net.reserve_nodes(n);
      net.add_nodes(n);
      sim::bootstrap::init_random(net);
      obs::StreamingObserver observer(ocfg);
      if (sink) {
        const std::string spec_name = spec.name();
        observer.attach_sink(
            *sink, bench::make_run_metadata("scale_metrics", "cycle",
                                            spec_name,
                                            bench::protocol_wire_id(spec), n,
                                            c, cycles, seed));
      }
      sim::CycleEngine engine(net);
      engine.attach_probe(observer);
      engine.run(cycles);
      if (snapshots_out) *snapshots_out = observer.records().size();
      return scenarios::state_digest(net);
    };

    digest_plain = run_once(nullptr, &plain_snapshots);
    obs::RingBufferSink ring(cycles + 1);
    digest_sinked = run_once(&ring, nullptr);
    sink_rows = ring.total_appended();
  }
  const bool sink_differential_ok =
      digest_plain == digest_sinked && sink_rows == plain_snapshots;
  if (!sink_differential_ok) {
    std::fprintf(stderr,
                 "FATAL: sink-attached run diverged (plain=%s sinked=%s "
                 "rows=%llu)\n",
                 obs::to_hex16(digest_plain).c_str(),
                 obs::to_hex16(digest_sinked).c_str(),
                 static_cast<unsigned long long>(sink_rows));
  }

  const std::string spec_name = spec.name();
  obs::RunRecorder rec(
      "scale_metrics", 1,
      bench::make_run_metadata("scale_metrics", "cycle", spec_name,
                               bench::protocol_wire_id(spec), sizes.back(), c,
                               cycles, seed));
  rec.json().key("params");
  rec.json().begin_object();
  rec.json().field("clustering_sample",
                   static_cast<std::uint64_t>(clustering_sample));
  rec.json().field("path_sources", static_cast<std::uint64_t>(path_sources));
  rec.json().field("exact_max", static_cast<std::uint64_t>(exact_max));
  rec.json().end_object();
  rec.json().key("runs");
  rec.json().begin_array();
  bool all_exact = true;
  bool all_alloc_free = true;
  for (const RunResult& r : results) {
    const obs::SnapshotRecord& f = r.final_record;
    rec.json().begin_object();
    rec.json().field("n", static_cast<std::uint64_t>(r.n));
    rec.json().field("setup_seconds", r.setup_seconds);
    rec.json().field("run_seconds", r.run_seconds);
    rec.json().field("snapshots", static_cast<std::uint64_t>(r.snapshots));
    rec.json().field("snapshot_seconds", r.snapshot_seconds);
    rec.json().field("steady_allocations", r.steady_allocations);
    rec.json().field("census_bytes_per_node", r.census_bytes_per_node);
    rec.json().field("exact_checked", r.exact_checked);
    rec.json().field("exact_match", r.exact_match);
    rec.json().key("final");
    rec.json().begin_object();
    rec.json().field("cycle", static_cast<std::uint64_t>(f.cycle));
    rec.json().field("live", static_cast<std::uint64_t>(f.live));
    rec.json().field("undirected_edges",
                     static_cast<std::uint64_t>(f.undirected_edges));
    rec.json().field("degree_min", static_cast<std::uint64_t>(f.degree.min));
    rec.json().field("degree_max", static_cast<std::uint64_t>(f.degree.max));
    rec.json().field("degree_mean", f.degree.mean);
    rec.json().field("degree_variance", f.degree.variance);
    rec.json().field("in_degree_mean", f.in_degree.mean);
    rec.json().field("out_degree_mean", f.out_degree.mean);
    rec.json().field("components",
                     static_cast<std::uint64_t>(f.components.count));
    rec.json().field("largest_component",
                     static_cast<std::uint64_t>(f.components.largest));
    rec.json().field("outside_largest",
                     static_cast<std::uint64_t>(f.components.outside_largest));
    rec.json().field("partitioned", f.components.count > 1);
    rec.json().field("clustering", f.clustering);
    rec.json().field("path_length", f.path.average);
    rec.json().field("reachable_fraction", f.path.reachable_fraction);
    rec.json().field("diameter", static_cast<std::uint64_t>(f.path.diameter));
    rec.json().end_object();
    rec.json().end_object();
    all_exact = all_exact && (!r.exact_checked || r.exact_match);
    all_alloc_free = all_alloc_free && r.steady_allocations == 0;
  }
  rec.json().end_array();
  rec.json().key("differential");
  rec.json().begin_object();
  rec.json().field("n", static_cast<std::uint64_t>(sizes.front()));
  rec.json().field("digest_plain", obs::to_hex16(digest_plain));
  rec.json().field("digest_sinked", obs::to_hex16(digest_sinked));
  rec.json().field("sink_rows", sink_rows);
  rec.json().end_object();
  rec.gate("exact_match", all_exact);
  rec.gate("zero_steady_allocations", all_alloc_free);
  rec.gate("sink_differential", sink_differential_ok);
  if (!rec.write(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return rec.gates_ok() ? 0 : 1;
}
