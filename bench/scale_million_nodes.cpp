// Scale driver for the flat simulation core: cycles/second and bytes/node
// at N ∈ {10^4, 10^5, 10^6}.
//
// This is not a paper figure — the paper's experiments stop at 10^4–10^5
// nodes — but the ROADMAP's first recorded perf trajectory toward
// production scale. It stands up a Newscast network (the paper's flagship
// (rand,head,pushpull) instance, c = 30), random-bootstraps it, runs 20
// cycles through the batched CycleEngine and reports wall-clock throughput
// plus the memory footprint of the arena, appending machine-readable
// results to BENCH_scale.json.
//
// Knobs (see docs/PERFORMANCE.md):
//   PSS_SCALE_NS   comma-separated network sizes   (default 10000,100000,1000000)
//   PSS_CYCLES     cycles per run                  (default 20)
//   PSS_C          view size c                     (default 30)
//   PSS_SEED       master seed                     (default 42)
//   PSS_SCALE_JSON output path                     (default BENCH_scale.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "pss/common/env.hpp"
#include "pss/obs/run_recorder.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/network.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::size_t> parse_sizes(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) {
      // Whole-token decimal only: reject partial parses ("1e6", "10k")
      // instead of silently truncating them to a tiny network.
      std::size_t consumed = 0;
      unsigned long long value = 0;
      try {
        value = std::stoull(token, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != token.size() || value == 0) {
        std::fprintf(stderr,
                     "PSS_SCALE_NS: bad network size '%s' (want a "
                     "comma-separated list of positive integers)\n",
                     token.c_str());
        std::exit(1);
      }
      out.push_back(static_cast<std::size_t>(value));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

struct RunResult {
  std::size_t n = 0;
  double setup_seconds = 0;
  double run_seconds = 0;
  double cycles_per_second = 0;
  double exchanges_per_second = 0;
  double bytes_per_node = 0;
  double mean_view_size = 0;
  std::uint64_t exchanges = 0;
  std::uint64_t failed_contacts = 0;
  std::uint64_t empty_views = 0;
};

}  // namespace

int main() {
  using namespace pss;

  const auto sizes = parse_sizes(
      env::get("PSS_SCALE_NS").value_or("10000,100000,1000000"));
  const auto cycles = static_cast<Cycle>(env::get_int("PSS_CYCLES", 20));
  const auto c = static_cast<std::size_t>(env::get_int("PSS_C", 30));
  const auto seed = static_cast<std::uint64_t>(env::get_int("PSS_SEED", 42));
  const std::string out_path =
      env::get("PSS_SCALE_JSON").value_or("BENCH_scale.json");

  const ProtocolSpec spec = ProtocolSpec::newscast();
  std::vector<RunResult> results;

  std::printf("scale_million_nodes: spec=%s c=%zu cycles=%u seed=%llu\n",
              spec.name().c_str(), c, cycles,
              static_cast<unsigned long long>(seed));

  for (const std::size_t n : sizes) {
    RunResult r;
    r.n = n;

    const auto t_setup = Clock::now();
    sim::Network net(spec, ProtocolOptions{c, false}, seed);
    net.reserve_nodes(n);
    net.add_nodes(n);
    sim::bootstrap::init_random(net);
    r.setup_seconds = seconds_since(t_setup);

    sim::CycleEngine engine(net);
    const auto t_run = Clock::now();
    engine.run(cycles);
    r.run_seconds = seconds_since(t_run);

    const auto& stats = engine.stats();
    r.exchanges = stats.exchanges;
    r.failed_contacts = stats.failed_contacts;
    r.empty_views = stats.empty_views;
    r.cycles_per_second = cycles / r.run_seconds;
    r.exchanges_per_second = static_cast<double>(stats.exchanges) / r.run_seconds;
    r.bytes_per_node = static_cast<double>(net.resident_bytes()) /
                       static_cast<double>(n);
    std::uint64_t total_view = 0;
    for (NodeId id = 0; id < n; ++id) total_view += net.view_span(id).size();
    r.mean_view_size = static_cast<double>(total_view) / static_cast<double>(n);

    std::printf(
        "  n=%-8zu setup=%6.2fs run=%6.2fs  %8.2f cycles/s  %10.0f exch/s  "
        "%6.1f B/node  mean_view=%.2f\n",
        n, r.setup_seconds, r.run_seconds, r.cycles_per_second,
        r.exchanges_per_second, r.bytes_per_node, r.mean_view_size);
    results.push_back(r);
  }

  const std::string spec_name = spec.name();
  obs::RunRecorder rec(
      "scale_million_nodes", 1,
      bench::make_run_metadata("scale_million_nodes", "cycle", spec_name,
                               bench::protocol_wire_id(spec), sizes.back(), c,
                               cycles, seed));
  rec.json().key("runs");
  rec.json().begin_array();
  bool all_exchanged = true;
  for (const RunResult& r : results) {
    rec.json().begin_object();
    rec.json().field("n", static_cast<std::uint64_t>(r.n));
    rec.json().field("setup_seconds", r.setup_seconds);
    rec.json().field("run_seconds", r.run_seconds);
    rec.json().field("cycles_per_second", r.cycles_per_second);
    rec.json().field("exchanges_per_second", r.exchanges_per_second);
    rec.json().field("bytes_per_node", r.bytes_per_node);
    rec.json().field("mean_view_size", r.mean_view_size);
    rec.json().field("exchanges", r.exchanges);
    rec.json().field("failed_contacts", r.failed_contacts);
    rec.json().field("empty_views", r.empty_views);
    rec.json().end_object();
    all_exchanged = all_exchanged && r.exchanges > 0;
  }
  rec.json().end_array();
  rec.gate("exchanges_nonzero", all_exchanged);
  if (!rec.write(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return rec.gates_ok() ? 0 : 1;
}
