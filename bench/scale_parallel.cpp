// Thread-scaling driver for the sharded parallel cycle engine.
//
// For each network size it records the sequential CycleEngine baseline,
// then ParallelCycleEngine runs across a thread ladder in both policies
// (Deterministic — bit-identical to the baseline, verified in-run by a
// state digest — and Relaxed), appending machine-readable results to
// BENCH_parallel.json. Every run stands up an identical freshly-seeded
// network, so digests and throughputs are directly comparable.
//
// Knobs (see docs/PERFORMANCE.md):
//   PSS_PAR_NS      comma-separated network sizes     (default 1000000)
//   PSS_PAR_THREADS comma-separated thread counts     (default 1,2,4,8)
//   PSS_CYCLES      cycles per run                    (default 10)
//   PSS_C           view size c                       (default 30)
//   PSS_SEED        master seed                       (default 42)
//   PSS_PAR_JSON    output path                 (default BENCH_parallel.json)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "pss/common/env.hpp"
#include "pss/obs/run_recorder.hpp"
#include "pss/scenarios/digest.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/parallel_cycle_engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::size_t> parse_list(const std::string& text,
                                    const char* knob) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) {
      std::size_t consumed = 0;
      unsigned long long value = 0;
      // Digits only up front: stoull would otherwise accept "-1" by
      // wraparound and "  7" by skipping whitespace.
      const bool digits_only =
          token.find_first_not_of("0123456789") == std::string::npos;
      try {
        if (digits_only) value = std::stoull(token, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != token.size() || value == 0) {
        std::fprintf(stderr,
                     "%s: bad entry '%s' (want a comma-separated list of "
                     "positive integers)\n",
                     knob, token.c_str());
        std::exit(1);
      }
      out.push_back(static_cast<std::size_t>(value));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// The equivalence digest lives in pss/scenarios/digest.hpp (shared with
// scale_scenarios and the differential test suite, so every "bit-identical"
// claim in the repo is checked by the same fold).
using pss::scenarios::state_digest;

struct RunResult {
  std::string mode;  // "sequential" | "deterministic" | "relaxed"
  std::size_t n = 0;
  unsigned threads = 1;
  double run_seconds = 0;
  double exchanges_per_second = 0;
  double speedup = 1.0;  // vs the sequential baseline at the same n
  std::uint64_t exchanges = 0;
  std::uint64_t digest = 0;
  bool matches_sequential = false;
};

}  // namespace

int main() {
  using namespace pss;

  const auto sizes =
      parse_list(env::get("PSS_PAR_NS").value_or("1000000"), "PSS_PAR_NS");
  const auto threads_list = parse_list(
      env::get("PSS_PAR_THREADS").value_or("1,2,4,8"), "PSS_PAR_THREADS");
  const auto cycles = static_cast<Cycle>(env::get_int("PSS_CYCLES", 10));
  const auto c = static_cast<std::size_t>(env::get_int("PSS_C", 30));
  const auto seed = static_cast<std::uint64_t>(env::get_int("PSS_SEED", 42));
  const std::string out_path =
      env::get("PSS_PAR_JSON").value_or("BENCH_parallel.json");

  const ProtocolSpec spec = ProtocolSpec::newscast();
  std::vector<RunResult> results;

  std::printf("scale_parallel: spec=%s c=%zu cycles=%u seed=%llu\n",
              spec.name().c_str(), c, cycles,
              static_cast<unsigned long long>(seed));

  auto make_net = [&](std::size_t n) {
    sim::Network net(spec, ProtocolOptions{c, false}, seed);
    net.reserve_nodes(n);
    net.add_nodes(n);
    sim::bootstrap::init_random(net);
    return net;
  };

  for (const std::size_t n : sizes) {
    // Sequential baseline.
    RunResult base;
    base.mode = "sequential";
    base.n = n;
    {
      sim::Network net = make_net(n);
      sim::CycleEngine engine(net);
      const auto t = Clock::now();
      engine.run(cycles);
      base.run_seconds = seconds_since(t);
      base.exchanges = engine.stats().exchanges;
      base.exchanges_per_second =
          static_cast<double>(base.exchanges) / base.run_seconds;
      base.digest = state_digest(net);
      base.matches_sequential = true;
    }
    std::printf("  n=%-8zu %-13s t=%u  %6.2fs  %10.0f exch/s\n", n,
                base.mode.c_str(), base.threads, base.run_seconds,
                base.exchanges_per_second);
    results.push_back(base);

    for (const char* mode : {"deterministic", "relaxed"}) {
      const sim::ParallelPolicy policy =
          std::string(mode) == "deterministic"
              ? sim::ParallelPolicy::kDeterministic
              : sim::ParallelPolicy::kRelaxed;
      for (const std::size_t t_count : threads_list) {
        RunResult r;
        r.mode = mode;
        r.n = n;
        r.threads = static_cast<unsigned>(t_count);
        sim::Network net = make_net(n);
        sim::ParallelCycleEngine engine(net, {r.threads, policy});
        const auto t = Clock::now();
        engine.run(cycles);
        r.run_seconds = seconds_since(t);
        r.exchanges = engine.stats().exchanges;
        r.exchanges_per_second =
            static_cast<double>(r.exchanges) / r.run_seconds;
        r.speedup = base.run_seconds / r.run_seconds;
        r.digest = state_digest(net);
        r.matches_sequential = r.digest == base.digest;
        if (policy == sim::ParallelPolicy::kDeterministic &&
            !r.matches_sequential) {
          // The equivalence contract is checked on every bench run, not
          // just in the test suite: a digest mismatch is a hard failure.
          std::fprintf(stderr,
                       "FATAL: deterministic run (n=%zu, threads=%u) "
                       "diverged from the sequential baseline\n",
                       n, r.threads);
          return 1;
        }
        std::printf(
            "  n=%-8zu %-13s t=%u  %6.2fs  %10.0f exch/s  %4.2fx%s\n", n,
            r.mode.c_str(), r.threads, r.run_seconds, r.exchanges_per_second,
            r.speedup, r.matches_sequential ? "  (=seq)" : "");
        results.push_back(r);
      }
    }
  }

  const std::string spec_name = spec.name();
  obs::RunRecorder rec(
      "scale_parallel", 1,
      bench::make_run_metadata("scale_parallel", "parallel-cycle", spec_name,
                               bench::protocol_wire_id(spec), sizes.back(), c,
                               cycles, seed));
  rec.json().key("runs");
  rec.json().begin_array();
  bool deterministic_ok = true;
  for (const RunResult& r : results) {
    rec.json().begin_object();
    rec.json().field("mode", r.mode);
    rec.json().field("n", static_cast<std::uint64_t>(r.n));
    rec.json().field("threads", r.threads);
    rec.json().field("run_seconds", r.run_seconds);
    rec.json().field("exchanges_per_second", r.exchanges_per_second);
    rec.json().field("speedup_vs_sequential", r.speedup);
    rec.json().field("exchanges", r.exchanges);
    rec.json().field("state_digest", obs::to_hex16(r.digest));
    rec.json().field("matches_sequential", r.matches_sequential);
    rec.json().end_object();
    if (r.mode == "deterministic") {
      deterministic_ok = deterministic_ok && r.matches_sequential;
    }
  }
  rec.json().end_array();
  rec.gate("deterministic_matches_sequential", deterministic_ok);
  if (!rec.write(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return rec.gates_ok() ? 0 : 1;
}
