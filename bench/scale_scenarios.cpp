// Scenario sweep driver: every registered adversarial / trace-driven
// scenario, at scale, with the differential contract checked in-run.
//
// Phase 1 — differential gate (the scenario subsystem's reason to exist):
// for each engine (sequential CycleEngine, Deterministic
// ParallelCycleEngine, EventEngine) a run with a zero-byzantine
// AdversaryModel attached must be bit-identical — state digest AND census
// digest — to the unhooked run, and a CycleEngine run under uniform-mode
// TraceChurn must be bit-identical to the same run under plain ChurnModel.
// Any divergence is a hard failure (exit 1), in the style of
// BENCH_parallel.json's deterministic-vs-sequential gate: the equivalence
// contract is enforced on every bench run, not just in the test suite.
//
// Phase 2 — scenario scan: each registry entry runs on a fresh
// identically-seeded network per size, adversary and churn attached as the
// spec demands, and the paper's observables stream out of one GraphCensus
// rebuild per run: degree stats (Figure 4 / Table 2), nodes outside the
// largest component (Figure 6), dead links (Figure 7), cross-partition
// links, plus the attack-facing extras (max byzantine in-degree — the hub
// formation signal — and forged message count).
//
// Results append to BENCH_scenarios.json. Knobs:
//   PSS_SCEN_NS     comma-separated network sizes   (default 10000)
//   PSS_SCEN_CYCLES cycles per run                  (default 30)
//   PSS_C           view size c                     (default 30)
//   PSS_SEED        master seed                     (default 42)
//   PSS_SCEN_JSON   output path          (default BENCH_scenarios.json)
//   PSS_SCEN_LIST   comma-separated scenario names  (default: all)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "pss/common/env.hpp"
#include "pss/obs/graph_census.hpp"
#include "pss/obs/run_recorder.hpp"
#include "pss/scenarios/adversary.hpp"
#include "pss/scenarios/digest.hpp"
#include "pss/scenarios/scenario_spec.hpp"
#include "pss/scenarios/trace_churn.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/churn.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/parallel_cycle_engine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) out.push_back(token);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::vector<std::size_t> parse_sizes(const std::string& text,
                                     const char* knob) {
  std::vector<std::size_t> out;
  for (const std::string& token : split_list(text)) {
    std::size_t consumed = 0;
    unsigned long long value = 0;
    const bool digits_only =
        token.find_first_not_of("0123456789") == std::string::npos;
    try {
      if (digits_only) value = std::stoull(token, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != token.size() || value == 0) {
      std::fprintf(stderr,
                   "%s: bad entry '%s' (want a comma-separated list of "
                   "positive integers)\n",
                   knob, token.c_str());
      std::exit(1);
    }
    out.push_back(static_cast<std::size_t>(value));
  }
  return out;
}

struct DiffCheck {
  std::string check;
  std::uint64_t plain_digest = 0;
  std::uint64_t hooked_digest = 0;
  bool matches = false;
};

struct ScanResult {
  std::string scenario;
  std::size_t n = 0;
  double run_seconds = 0;
  std::uint64_t exchanges = 0;
  std::size_t live = 0;
  std::size_t joined = 0;
  std::size_t left = 0;
  double mean_degree = 0;
  std::size_t max_degree = 0;
  std::size_t components = 0;
  std::size_t outside_largest = 0;
  std::uint64_t dead_links = 0;
  std::uint64_t cross_links = 0;
  std::uint32_t max_byzantine_in_degree = 0;
  std::uint32_t max_honest_in_degree = 0;
  std::uint64_t forged_messages = 0;
  std::uint64_t state_digest = 0;
  std::uint64_t census_digest = 0;
};

}  // namespace

int main() {
  using namespace pss;

  const auto sizes = parse_sizes(
      env::get("PSS_SCEN_NS").value_or("10000"), "PSS_SCEN_NS");
  const auto cycles =
      static_cast<Cycle>(env::get_int("PSS_SCEN_CYCLES", 30));
  const auto c = static_cast<std::size_t>(env::get_int("PSS_C", 30));
  const auto seed = static_cast<std::uint64_t>(env::get_int("PSS_SEED", 42));
  const std::string out_path =
      env::get("PSS_SCEN_JSON").value_or("BENCH_scenarios.json");
  const auto wanted = split_list(env::get("PSS_SCEN_LIST").value_or(""));

  const ProtocolSpec spec = ProtocolSpec::newscast();
  std::printf("scale_scenarios: spec=%s c=%zu cycles=%u seed=%llu\n",
              spec.name().c_str(), c, cycles,
              static_cast<unsigned long long>(seed));

  auto make_net = [&](std::size_t n) {
    sim::Network net(spec, ProtocolOptions{c, false}, seed);
    net.reserve_nodes(n);
    net.add_nodes(n);
    sim::bootstrap::init_random(net);
    return net;
  };

  // ---- Phase 1: differential gate ----------------------------------------
  // A zero-byzantine adversary must be invisible; uniform-mode TraceChurn
  // must be ChurnModel. Checked at the smallest requested size.
  const std::size_t dn = *std::min_element(sizes.begin(), sizes.end());
  std::vector<DiffCheck> diffs;
  auto gate = [&](std::string check, std::uint64_t plain,
                  std::uint64_t hooked) {
    const bool ok = plain == hooked;
    std::printf("  differential %-28s %s\n", check.c_str(),
                ok ? "ok" : "DIVERGED");
    diffs.push_back({std::move(check), plain, hooked, ok});
    if (!ok) {
      std::fprintf(stderr,
                   "FATAL: differential check '%s' diverged "
                   "(plain=%llu hooked=%llu)\n",
                   diffs.back().check.c_str(),
                   static_cast<unsigned long long>(plain),
                   static_cast<unsigned long long>(hooked));
      std::exit(1);
    }
  };

  // Zero-byzantine tampers of both kinds; kHubPoison needs no range config.
  scenarios::AdversaryConfig none_hub;
  none_hub.kind = scenarios::AdversaryKind::kHubPoison;
  none_hub.byzantine_count = 0;
  scenarios::AdversaryConfig none_forge = none_hub;
  none_forge.kind = scenarios::AdversaryKind::kForgery;
  none_forge.fabricated_base = static_cast<NodeId>(4 * dn);
  none_forge.fabricated_range = dn;

  obs::GraphCensus census;
  {
    auto run_cycle_engine = [&](sim::ExchangeTamper* tamper) {
      sim::Network net = make_net(dn);
      sim::CycleEngine engine(net);
      if (tamper) engine.attach_adversary(*tamper);
      engine.run(cycles);
      census.rebuild(net);
      return std::pair{scenarios::state_digest(net),
                       scenarios::census_digest(census)};
    };
    const auto plain = run_cycle_engine(nullptr);
    scenarios::AdversaryModel hub(none_hub);
    const auto hooked_hub = run_cycle_engine(&hub);
    gate("cycle/state", plain.first, hooked_hub.first);
    gate("cycle/census", plain.second, hooked_hub.second);
    scenarios::AdversaryModel forge(none_forge);
    const auto hooked_forge = run_cycle_engine(&forge);
    gate("cycle/state-forgery", plain.first, hooked_forge.first);
  }
  {
    auto run_parallel = [&](sim::ExchangeTamper* tamper) {
      sim::Network net = make_net(dn);
      sim::ParallelCycleEngine engine(
          net, {2, sim::ParallelPolicy::kDeterministic});
      if (tamper) engine.attach_adversary(*tamper);
      engine.run(cycles);
      return scenarios::state_digest(net);
    };
    const std::uint64_t plain = run_parallel(nullptr);
    scenarios::AdversaryModel hub(none_hub);
    gate("parallel-det/state", plain, run_parallel(&hub));
  }
  {
    auto run_event = [&](sim::ExchangeTamper* tamper) {
      sim::Network net = make_net(dn);
      sim::EventEngine engine(net, sim::EventEngineConfig{});
      if (tamper) engine.attach_adversary(*tamper);
      engine.run_cycles(cycles);
      return scenarios::state_digest(net);
    };
    const std::uint64_t plain = run_event(nullptr);
    scenarios::AdversaryModel hub(none_hub);
    gate("event/state", plain, run_event(&hub));
  }
  {
    sim::ChurnConfig churn_cfg{dn / 100, dn / 100, 3};
    auto run_churned = [&](bool trace) {
      sim::Network net = make_net(dn);
      sim::CycleEngine engine(net);
      sim::ChurnModel plain_churn(churn_cfg, Rng(seed ^ 0xC0FFEEULL));
      scenarios::TraceChurn trace_churn({churn_cfg, {}, {}, {}},
                                        Rng(seed ^ 0xC0FFEEULL));
      for (Cycle t = 0; t < cycles; ++t) {
        engine.run_cycle();
        if (trace) {
          trace_churn.apply(net);
        } else {
          plain_churn.apply(net);
        }
      }
      return scenarios::state_digest(net);
    };
    gate("trace-churn-uniform/state", run_churned(false), run_churned(true));
  }

  // ---- Phase 2: scenario scan --------------------------------------------
  std::vector<ScanResult> results;
  for (const std::size_t n : sizes) {
    for (const scenarios::ScenarioSpec& scen : scenarios::scenario_registry()) {
      if (!wanted.empty() &&
          std::find(wanted.begin(), wanted.end(), scen.name) == wanted.end()) {
        continue;
      }
      ScanResult r;
      r.scenario = scen.name;
      r.n = n;
      sim::Network net = make_net(n);
      sim::CycleEngine engine(net);
      scenarios::AdversaryModel adversary(
          scen.adversary_for(n, c, seed ^ 0xAD5ULL));
      if (scen.has_adversary()) engine.attach_adversary(adversary);
      scenarios::TraceChurn churn(scen.churn_for(n, seed ^ 0x5E55ULL),
                                  Rng(seed ^ 0xC0FFEEULL));
      const auto t0 = Clock::now();
      for (Cycle t = 0; t < cycles; ++t) {
        engine.run_cycle();
        if (scen.has_churn()) churn.apply(net);
      }
      r.run_seconds = seconds_since(t0);
      r.exchanges = engine.stats().exchanges;
      r.live = net.live_count();
      r.joined = churn.stats().joined;
      r.left = churn.stats().left;
      census.rebuild(net);
      r.mean_degree = census.degree_stats().mean;
      r.max_degree = census.degree_stats().max;
      r.components = census.components().count;
      r.outside_largest = census.components().outside_largest;
      r.dead_links = census.dead_link_count();
      r.cross_links = census.cross_partition_link_count();
      if (scen.has_adversary()) {
        const std::size_t byz = adversary.config().byzantine_count;
        for (NodeId id = 0; id < net.size(); ++id) {
          if (!net.is_live(id)) continue;
          auto& slot = id < byz ? r.max_byzantine_in_degree
                                : r.max_honest_in_degree;
          slot = std::max(slot, census.in_degree(id));
        }
        r.forged_messages = adversary.forged_messages();
      }
      r.state_digest = scenarios::state_digest(net);
      r.census_digest = scenarios::census_digest(census);
      std::printf(
          "  n=%-8zu %-16s %6.2fs live=%-8zu deg=%6.2f comp=%zu "
          "outside=%zu dead=%llu byz_in=%u\n",
          n, r.scenario.c_str(), r.run_seconds, r.live, r.mean_degree,
          r.components, r.outside_largest,
          static_cast<unsigned long long>(r.dead_links),
          r.max_byzantine_in_degree);
      results.push_back(std::move(r));
    }
  }

  // ---- JSON ---------------------------------------------------------------
  const std::string spec_name = spec.name();
  obs::RunRecorder rec(
      "scale_scenarios", 1,
      bench::make_run_metadata("scale_scenarios", "cycle", spec_name,
                               bench::protocol_wire_id(spec), sizes.back(), c,
                               cycles, seed));
  rec.json().key("params");
  rec.json().begin_object();
  rec.json().field("differential_n", static_cast<std::uint64_t>(dn));
  rec.json().end_object();
  rec.json().key("differential");
  rec.json().begin_array();
  bool differential_ok = true;
  for (const DiffCheck& d : diffs) {
    rec.json().begin_object();
    rec.json().field("check", d.check);
    rec.json().field("plain_digest", obs::to_hex16(d.plain_digest));
    rec.json().field("hooked_digest", obs::to_hex16(d.hooked_digest));
    rec.json().field("matches", d.matches);
    rec.json().end_object();
    differential_ok = differential_ok && d.matches;
  }
  rec.json().end_array();
  rec.json().key("runs");
  rec.json().begin_array();
  for (const ScanResult& r : results) {
    rec.json().begin_object();
    rec.json().field("scenario", r.scenario);
    rec.json().field("n", static_cast<std::uint64_t>(r.n));
    rec.json().field("run_seconds", r.run_seconds);
    rec.json().field("exchanges", r.exchanges);
    rec.json().field("live", static_cast<std::uint64_t>(r.live));
    rec.json().field("joined", static_cast<std::uint64_t>(r.joined));
    rec.json().field("left", static_cast<std::uint64_t>(r.left));
    rec.json().field("mean_degree", r.mean_degree);
    rec.json().field("max_degree", static_cast<std::uint64_t>(r.max_degree));
    rec.json().field("components", static_cast<std::uint64_t>(r.components));
    rec.json().field("outside_largest",
                     static_cast<std::uint64_t>(r.outside_largest));
    rec.json().field("dead_links", r.dead_links);
    rec.json().field("cross_partition_links", r.cross_links);
    rec.json().field("max_byzantine_in_degree", r.max_byzantine_in_degree);
    rec.json().field("max_honest_in_degree", r.max_honest_in_degree);
    rec.json().field("forged_messages", r.forged_messages);
    rec.json().field("state_digest", obs::to_hex16(r.state_digest));
    rec.json().field("census_digest", obs::to_hex16(r.census_digest));
    rec.json().end_object();
  }
  rec.json().end_array();
  rec.gate("differential", differential_ok);
  if (!rec.write(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return rec.gates_ok() ? 0 : 1;
}
