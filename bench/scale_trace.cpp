// scale_trace: the tracing seam against its non-perturbation contract.
//
// Phase 1 is a hard differential gate, in the scale_transport mold: for
// every engine that carries the TraceProbe seam — CycleEngine,
// ParallelCycleEngine (deterministic, 2 and 4 lanes), EventEngine,
// ParallelEventEngine and the ServiceNode/LoopbackDriver wire stack —
// three freshly-seeded runs of the same workload must finish with equal
// scenarios::state_digest: untraced (no probe attached), disarmed (probe
// attached, armed=false) and armed (TraceRecorder + Profiler through a
// TraceTee). Any divergence means tracing perturbed the protocol; the
// driver exits non-zero so CI can gate on `"differential_ok": true`. The
// armed run must also have recorded spans, or the gate is vacuous
// (relaxed-policy runs are instrumented too but are not digest-stable
// run-to-run, so they are exercised by tests, not gated here).
//
// Phase 2 measures what an armed flight recorder costs: EventEngine
// exchanges/s untraced vs armed at the sizes in PSS_TRACE_NS (default
// 10000,100000), with ring-overflow drops reported (overflow is the
// flight-recorder contract, not an error).
//
// Knobs: PSS_TRACE_NS, PSS_TRACE_CYCLES, PSS_TRACE_RING, PSS_C,
//        PSS_SEED, PSS_TRACE_JSON.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "pss/common/env.hpp"
#include "pss/obs/profiler.hpp"
#include "pss/obs/run_recorder.hpp"
#include "pss/obs/trace.hpp"
#include "pss/scenarios/digest.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/parallel_cycle_engine.hpp"
#include "pss/sim/parallel_event_engine.hpp"
#include "pss/transport/loopback_driver.hpp"

namespace {

using namespace pss;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::size_t> parse_sizes(const std::string& csv,
                                     const char* knob) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    std::string token = csv.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;
    std::size_t consumed = 0;
    unsigned long long value = 0;
    const bool digits_only =
        token.find_first_not_of("0123456789") == std::string::npos;
    try {
      if (digits_only) value = std::stoull(token, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != token.size() || value == 0) {
      std::fprintf(stderr,
                   "%s: bad entry '%s' (want a comma-separated list of "
                   "positive integers)\n",
                   knob, token.c_str());
      std::exit(1);
    }
    out.push_back(static_cast<std::size_t>(value));
  }
  return out;
}

/// One probe bundle per traced run: recorder + profiler behind a tee, so
/// the differential exercises the exact attachment the daemon uses.
struct TraceKit {
  obs::TraceRecorder recorder;
  obs::Profiler profiler;
  obs::TraceTee tee;
  TraceKit(std::size_t ring, bool armed) : recorder(ring) {
    tee.add(recorder);
    tee.add(profiler);
    recorder.set_armed(armed);
    profiler.set_armed(armed);
  }
};

enum class Probe { kNone, kDisarmed, kArmed };

struct RunOutcome {
  std::uint64_t digest = 0;
  std::uint64_t exchanges = 0;
  double seconds = 0;
  std::uint64_t events = 0;   ///< recorder.total_recorded() (armed runs)
  std::uint64_t dropped = 0;  ///< ring-overflow overwrites
};

struct DiffCheck {
  std::string check;
  std::uint64_t baseline_digest = 0;
  std::uint64_t disarmed_digest = 0;
  std::uint64_t armed_digest = 0;
  std::uint64_t events = 0;
  bool matches = false;
};

struct OverheadRow {
  std::size_t n = 0;
  std::uint64_t exchanges = 0;
  double untraced_seconds = 0;
  double traced_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
};

}  // namespace

int main() {
  const auto sizes = parse_sizes(
      env::get("PSS_TRACE_NS").value_or("10000,100000"), "PSS_TRACE_NS");
  const auto cycles =
      static_cast<std::size_t>(env::get_int("PSS_TRACE_CYCLES", 20));
  const auto ring =
      static_cast<std::size_t>(env::get_int("PSS_TRACE_RING", 1 << 16));
  const auto c = static_cast<std::size_t>(env::get_int("PSS_C", 20));
  const auto seed = static_cast<std::uint64_t>(env::get_int("PSS_SEED", 42));
  const std::string out_path =
      env::get("PSS_TRACE_JSON").value_or("BENCH_trace.json");

  const ProtocolSpec spec = ProtocolSpec::newscast();
  const ProtocolOptions options{c, false};
  std::printf("scale_trace: spec=%s c=%zu cycles=%zu ring=%zu seed=%llu\n",
              spec.name().c_str(), c, cycles, ring,
              static_cast<unsigned long long>(seed));

  auto make_net = [&](std::size_t n) {
    return sim::bootstrap::make_random(spec, options, n, seed);
  };

  // Each runner builds a fresh identically-seeded world, optionally hangs
  // the probe kit on the engine, runs, and digests. The kit outlives the
  // run only long enough to read its counters.
  auto run_cycle = [&](std::size_t n, Probe probe) {
    sim::Network net = make_net(n);
    sim::CycleEngine engine(net);
    TraceKit kit(ring, probe == Probe::kArmed);
    if (probe != Probe::kNone) engine.attach_trace(kit.tee);
    const auto t0 = Clock::now();
    engine.run(static_cast<Cycle>(cycles));
    return RunOutcome{scenarios::state_digest(net), engine.stats().exchanges,
                      seconds_since(t0), kit.recorder.total_recorded(),
                      kit.recorder.dropped()};
  };
  auto run_parallel_cycle = [&](std::size_t n, unsigned threads,
                                Probe probe) {
    sim::Network net = make_net(n);
    sim::ParallelCycleEngine engine(
        net, {threads, sim::ParallelPolicy::kDeterministic});
    TraceKit kit(ring, probe == Probe::kArmed);
    if (probe != Probe::kNone) engine.attach_trace(kit.tee);
    const auto t0 = Clock::now();
    engine.run(static_cast<Cycle>(cycles));
    return RunOutcome{scenarios::state_digest(net), engine.stats().exchanges,
                      seconds_since(t0), kit.recorder.total_recorded(),
                      kit.recorder.dropped()};
  };
  auto run_event = [&](std::size_t n, Probe probe) {
    sim::Network net = make_net(n);
    sim::EventEngine engine(net, sim::EventEngineConfig{});
    TraceKit kit(ring, probe == Probe::kArmed);
    if (probe != Probe::kNone) engine.attach_trace(kit.tee);
    const auto t0 = Clock::now();
    engine.run_cycles(cycles);
    return RunOutcome{scenarios::state_digest(net), engine.stats().wakeups,
                      seconds_since(t0), kit.recorder.total_recorded(),
                      kit.recorder.dropped()};
  };
  auto run_parallel_event = [&](std::size_t n, unsigned threads,
                                Probe probe) {
    sim::Network net = make_net(n);
    sim::ParallelEventEngine engine(net, sim::EventEngineConfig{}, threads);
    TraceKit kit(ring, probe == Probe::kArmed);
    if (probe != Probe::kNone) engine.attach_trace(kit.tee);
    const auto t0 = Clock::now();
    engine.run_cycles(cycles);
    return RunOutcome{scenarios::state_digest(net), engine.stats().wakeups,
                      seconds_since(t0), kit.recorder.total_recorded(),
                      kit.recorder.dropped()};
  };
  auto run_service = [&](std::size_t n, Probe probe) {
    sim::Network net = make_net(n);
    transport::LoopbackTransport bus(transport::LoopbackConfig{}, net.rng());
    transport::LoopbackDriver driver(net, bus);
    TraceKit kit(ring, probe == Probe::kArmed);
    if (probe != Probe::kNone) driver.attach_trace(kit.tee);
    const auto t0 = Clock::now();
    driver.run_cycles(cycles);
    return RunOutcome{scenarios::state_digest(net),
                      driver.engine_stats().wakeups, seconds_since(t0),
                      kit.recorder.total_recorded(), kit.recorder.dropped()};
  };

  // ---- Phase 1: differential gate ----------------------------------------
  // Checked at the smallest requested size; a mismatch is fatal.
  const std::size_t dn = *std::min_element(sizes.begin(), sizes.end());
  std::vector<DiffCheck> diffs;
  bool events_ok = true;
  auto gate = [&](std::string check, const RunOutcome& baseline,
                  const RunOutcome& disarmed, const RunOutcome& armed) {
    const bool ok = baseline.digest == disarmed.digest &&
                    baseline.digest == armed.digest;
    std::printf("  differential %-24s %s  (%llu spans)\n", check.c_str(),
                ok ? "ok" : "DIVERGED",
                static_cast<unsigned long long>(armed.events));
    diffs.push_back({std::move(check), baseline.digest, disarmed.digest,
                     armed.digest, armed.events, ok});
    events_ok = events_ok && armed.events > 0;
    if (!ok) {
      std::fprintf(stderr,
                   "FATAL: differential check '%s' diverged "
                   "(baseline=%llu disarmed=%llu armed=%llu)\n",
                   diffs.back().check.c_str(),
                   static_cast<unsigned long long>(baseline.digest),
                   static_cast<unsigned long long>(disarmed.digest),
                   static_cast<unsigned long long>(armed.digest));
      std::exit(1);
    }
  };

  gate("cycle", run_cycle(dn, Probe::kNone), run_cycle(dn, Probe::kDisarmed),
       run_cycle(dn, Probe::kArmed));
  for (const unsigned t : {2u, 4u}) {
    gate("parallel_cycle/t=" + std::to_string(t),
         run_parallel_cycle(dn, t, Probe::kNone),
         run_parallel_cycle(dn, t, Probe::kDisarmed),
         run_parallel_cycle(dn, t, Probe::kArmed));
  }
  gate("event", run_event(dn, Probe::kNone), run_event(dn, Probe::kDisarmed),
       run_event(dn, Probe::kArmed));
  gate("parallel_event/t=4", run_parallel_event(dn, 4, Probe::kNone),
       run_parallel_event(dn, 4, Probe::kDisarmed),
       run_parallel_event(dn, 4, Probe::kArmed));
  gate("service/loopback", run_service(dn, Probe::kNone),
       run_service(dn, Probe::kDisarmed), run_service(dn, Probe::kArmed));

  // ---- Phase 2: armed flight-recorder overhead ---------------------------
  std::vector<OverheadRow> rows;
  for (const std::size_t n : sizes) {
    const RunOutcome off = run_event(n, Probe::kNone);
    const RunOutcome on = run_event(n, Probe::kArmed);
    if (off.digest != on.digest) {
      std::fprintf(stderr, "FATAL: overhead run diverged at n=%zu\n", n);
      return 1;
    }
    events_ok = events_ok && on.events > 0;
    OverheadRow row{n,          off.exchanges, off.seconds,
                    on.seconds, on.events,     on.dropped};
    std::printf(
        "  overhead n=%-8zu untraced %8.0f ex/s   armed %8.0f ex/s  "
        "(%.2fx, %llu spans, %llu overwritten)\n",
        n, row.exchanges / std::max(row.untraced_seconds, 1e-9),
        row.exchanges / std::max(row.traced_seconds, 1e-9),
        row.traced_seconds / std::max(row.untraced_seconds, 1e-9),
        static_cast<unsigned long long>(row.events),
        static_cast<unsigned long long>(row.dropped));
    rows.push_back(row);
  }

  // ---- JSON ---------------------------------------------------------------
  const std::string spec_name = spec.name();
  obs::RunRecorder rec(
      "scale_trace", 1,
      bench::make_run_metadata("scale_trace", "event", spec_name,
                               bench::protocol_wire_id(spec), sizes.back(), c,
                               cycles, seed));
  rec.json().key("params");
  rec.json().begin_object();
  rec.json().field("differential_n", static_cast<std::uint64_t>(dn));
  rec.json().field("ring_capacity", static_cast<std::uint64_t>(ring));
  rec.json().end_object();
  rec.json().key("differential");
  rec.json().begin_array();
  bool differential_ok = true;
  for (const DiffCheck& d : diffs) {
    rec.json().begin_object();
    rec.json().field("check", d.check);
    rec.json().field("baseline_digest", obs::to_hex16(d.baseline_digest));
    rec.json().field("disarmed_digest", obs::to_hex16(d.disarmed_digest));
    rec.json().field("armed_digest", obs::to_hex16(d.armed_digest));
    rec.json().field("events", d.events);
    rec.json().field("matches", d.matches);
    rec.json().end_object();
    differential_ok = differential_ok && d.matches;
  }
  rec.json().end_array();
  rec.json().key("runs");
  rec.json().begin_array();
  for (const OverheadRow& r : rows) {
    rec.json().begin_object();
    rec.json().field("n", static_cast<std::uint64_t>(r.n));
    rec.json().field("exchanges", r.exchanges);
    rec.json().field("untraced_seconds", r.untraced_seconds);
    rec.json().field("traced_seconds", r.traced_seconds);
    rec.json().field("untraced_exchanges_per_s",
                     r.exchanges / std::max(r.untraced_seconds, 1e-9));
    rec.json().field("traced_exchanges_per_s",
                     r.exchanges / std::max(r.traced_seconds, 1e-9));
    rec.json().field("overhead_ratio",
                     r.traced_seconds / std::max(r.untraced_seconds, 1e-9));
    rec.json().field("events_recorded", r.events);
    rec.json().field("events_overwritten", r.dropped);
    rec.json().end_object();
  }
  rec.json().end_array();
  rec.gate("differential", differential_ok);
  rec.gate("events_recorded", events_ok);
  if (!rec.write(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return rec.gates_ok() ? 0 : 1;
}
