// scale_transport: the wire stack against its reference semantics.
//
// Phase 1 is a hard differential gate, in the scale_scenarios mold: a
// ServiceNode/LoopbackTransport run must finish bit-identical to an
// EventEngine run under cloned seeds — equal scenarios::state_digest
// (views, NodeStats, per-node Rng positions) and equal engine-level
// counters — for every evaluated protocol at zero delay / zero loss, and
// for newscast under latency jitter plus message loss. Any divergence
// exits non-zero, so CI can gate on `"differential_ok": true`.
//
// Phase 2 measures what the seam costs: exchanges/s for EventEngine vs
// the same workload over encode -> loopback queue -> decode, at the sizes
// in PSS_TRANS_NS (default 1000,10000).
//
// Phase 3 leaves the simulator entirely: standalone ServiceNodes gossip
// over nonblocking UDP sockets on localhost, many nodes per socket
// (header-demuxed). UDP is best-effort, so this phase reports throughput
// and delivery ratio but is not digest-gated.
//
// Knobs: PSS_TRANS_NS, PSS_TRANS_CYCLES, PSS_TRANS_UDP_NS,
//        PSS_TRANS_UDP_CYCLES, PSS_TRANS_SOCKETS, PSS_TRANS_PORT,
//        PSS_TRANS_JSON, PSS_C, PSS_SEED.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "pss/common/env.hpp"
#include "pss/common/rng.hpp"
#include "pss/obs/run_recorder.hpp"
#include "pss/scenarios/digest.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/transport/loopback_driver.hpp"
#include "pss/transport/udp_transport.hpp"

namespace {

using namespace pss;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::vector<std::size_t> parse_sizes(const std::string& csv,
                                     const char* knob) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    std::string token = csv.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;
    std::size_t consumed = 0;
    unsigned long long value = 0;
    const bool digits_only =
        token.find_first_not_of("0123456789") == std::string::npos;
    try {
      if (digits_only) value = std::stoull(token, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != token.size() || value == 0) {
      std::fprintf(stderr,
                   "%s: bad entry '%s' (want a comma-separated list of "
                   "positive integers)\n",
                   knob, token.c_str());
      std::exit(1);
    }
    out.push_back(static_cast<std::size_t>(value));
  }
  return out;
}

struct DiffCheck {
  std::string check;
  std::uint64_t engine_digest = 0;
  std::uint64_t transport_digest = 0;
  bool matches = false;
};

struct LoopbackRow {
  std::size_t n = 0;
  std::uint64_t exchanges = 0;
  double engine_seconds = 0;
  double transport_seconds = 0;
  std::uint64_t state_digest = 0;
};

struct UdpRow {
  std::size_t n = 0;
  std::size_t sockets = 0;
  double run_seconds = 0;
  std::uint64_t requests = 0;
  std::uint64_t replies = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t oversized = 0;
  std::uint64_t rejected = 0;
};

struct TransportRun {
  std::uint64_t digest = 0;
  sim::EventEngineStats stats;
  double seconds = 0;
};

TransportRun run_loopback(const ProtocolSpec& spec,
                          const ProtocolOptions& options, std::size_t n,
                          std::uint64_t seed, std::size_t cycles,
                          const sim::EventEngineConfig& config) {
  sim::Network net = sim::bootstrap::make_random(spec, options, n, seed);
  transport::LoopbackConfig bus_config;
  bus_config.min_delay = config.min_latency;
  bus_config.max_delay = config.max_latency;
  bus_config.loss_probability = config.drop_probability;
  transport::LoopbackTransport bus(bus_config, net.rng());
  transport::LoopbackDriver driver(
      net, bus,
      transport::LoopbackDriverConfig{config.period, config.reply_timeout});
  const auto t0 = Clock::now();
  driver.run_cycles(cycles);
  return {scenarios::state_digest(net), driver.engine_stats(),
          seconds_since(t0)};
}

TransportRun run_engine(const ProtocolSpec& spec,
                        const ProtocolOptions& options, std::size_t n,
                        std::uint64_t seed, std::size_t cycles,
                        const sim::EventEngineConfig& config) {
  sim::Network net = sim::bootstrap::make_random(spec, options, n, seed);
  sim::EventEngine engine(net, config);
  const auto t0 = Clock::now();
  engine.run_cycles(cycles);
  return {scenarios::state_digest(net), engine.stats(), seconds_since(t0)};
}

bool stats_equal(const sim::EventEngineStats& a,
                 const sim::EventEngineStats& b) {
  return a.wakeups == b.wakeups && a.messages_sent == b.messages_sent &&
         a.messages_dropped == b.messages_dropped &&
         a.messages_to_dead == b.messages_to_dead &&
         a.replies_delivered == b.replies_delivered &&
         a.replies_stale == b.replies_stale;
}

}  // namespace

int main() {
  const auto sizes = parse_sizes(
      env::get("PSS_TRANS_NS").value_or("1000,10000"), "PSS_TRANS_NS");
  const auto cycles =
      static_cast<std::size_t>(env::get_int("PSS_TRANS_CYCLES", 20));
  const auto udp_sizes = parse_sizes(
      env::get("PSS_TRANS_UDP_NS").value_or("1000"), "PSS_TRANS_UDP_NS");
  const auto udp_cycles =
      static_cast<std::size_t>(env::get_int("PSS_TRANS_UDP_CYCLES", 10));
  const auto udp_sockets =
      static_cast<std::size_t>(env::get_int("PSS_TRANS_SOCKETS", 8));
  const auto base_port =
      static_cast<std::uint16_t>(env::get_int("PSS_TRANS_PORT", 19000));
  const auto c = static_cast<std::size_t>(env::get_int("PSS_C", 20));
  const auto seed = static_cast<std::uint64_t>(env::get_int("PSS_SEED", 42));
  const std::string out_path =
      env::get("PSS_TRANS_JSON").value_or("BENCH_transport.json");

  const ProtocolOptions options{c, false};
  std::printf("scale_transport: c=%zu cycles=%zu seed=%llu\n", c, cycles,
              static_cast<unsigned long long>(seed));

  // ---- Phase 1: differential gate ----------------------------------------
  // Checked at the smallest requested size; a mismatch is fatal.
  const std::size_t dn = *std::min_element(sizes.begin(), sizes.end());
  std::vector<DiffCheck> diffs;
  auto gate = [&](std::string check, const TransportRun& engine,
                  const TransportRun& transport) {
    const bool ok = engine.digest == transport.digest &&
                    stats_equal(engine.stats, transport.stats);
    std::printf("  differential %-28s %s\n", check.c_str(),
                ok ? "ok" : "DIVERGED");
    diffs.push_back({std::move(check), engine.digest, transport.digest, ok});
    if (!ok) {
      std::fprintf(stderr,
                   "FATAL: differential check '%s' diverged "
                   "(engine=%llu transport=%llu)\n",
                   diffs.back().check.c_str(),
                   static_cast<unsigned long long>(engine.digest),
                   static_cast<unsigned long long>(transport.digest));
      std::exit(1);
    }
  };

  sim::EventEngineConfig ideal;
  ideal.min_latency = 0.0;
  ideal.max_latency = 0.0;
  ideal.drop_probability = 0.0;
  for (const ProtocolSpec& spec : ProtocolSpec::evaluated()) {
    gate("zero-zero/" + spec.name(),
         run_engine(spec, options, dn, seed, cycles, ideal),
         run_loopback(spec, options, dn, seed, cycles, ideal));
  }

  sim::EventEngineConfig lossy;  // default latency jitter 0.01..0.10
  lossy.drop_probability = 0.15;
  gate("latency-loss/newscast",
       run_engine(ProtocolSpec::newscast(), options, dn, seed, cycles, lossy),
       run_loopback(ProtocolSpec::newscast(), options, dn, seed, cycles,
                    lossy));
  gate("determinism/replay",
       run_loopback(ProtocolSpec::newscast(), options, dn, seed, cycles,
                    lossy),
       run_loopback(ProtocolSpec::newscast(), options, dn, seed, cycles,
                    lossy));

  // ---- Phase 2: loopback seam cost ---------------------------------------
  // Same workload, default engine config (latency jitter, no loss); the
  // digests must still match, so phase 2 feeds the gate too.
  std::vector<LoopbackRow> loopback_rows;
  const sim::EventEngineConfig jitter;  // engine defaults
  for (const std::size_t n : sizes) {
    const ProtocolSpec spec = ProtocolSpec::newscast();
    const TransportRun engine =
        run_engine(spec, options, n, seed, cycles, jitter);
    const TransportRun loopback =
        run_loopback(spec, options, n, seed, cycles, jitter);
    gate("loopback-scale/n=" + std::to_string(n), engine, loopback);
    LoopbackRow row;
    row.n = n;
    row.exchanges = engine.stats.wakeups;
    row.engine_seconds = engine.seconds;
    row.transport_seconds = loopback.seconds;
    row.state_digest = loopback.digest;
    std::printf(
        "  loopback n=%-8zu engine %8.0f ex/s   wire %8.0f ex/s  (%.2fx)\n",
        n, row.exchanges / std::max(row.engine_seconds, 1e-9),
        row.exchanges / std::max(row.transport_seconds, 1e-9),
        row.transport_seconds / std::max(row.engine_seconds, 1e-9));
    loopback_rows.push_back(row);
  }

  // ---- Phase 3: UDP localhost --------------------------------------------
  // k sockets host n standalone nodes (node i on socket i % k); `now` is
  // in cycle units and each cycle ticks every node then drains all sockets
  // until quiescent. Best-effort: reported, not gated.
  std::vector<UdpRow> udp_rows;
  for (std::size_t run_index = 0; run_index < udp_sizes.size(); ++run_index) {
    const std::size_t n = udp_sizes[run_index];
    const std::size_t k = std::min(udp_sockets, n);
    // Distinct port range per run so back-to-back runs never collide.
    const auto port =
        static_cast<std::uint16_t>(base_port + 64 * run_index);
    const transport::UdpAddressBook book =
        transport::UdpAddressBook::local_range(port, n, k);
    const transport::WireCodec codec(options.view_size);

    std::vector<std::unique_ptr<transport::UdpTransport>> sockets;
    sockets.reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
      sockets.push_back(std::make_unique<transport::UdpTransport>(
          book, static_cast<NodeId>(s), codec.max_frame_bytes()));
    }

    std::deque<transport::ServiceNode> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.emplace_back(static_cast<NodeId>(i), ProtocolSpec::newscast(),
                         options, Rng(seed ^ (0x0DDULL + i)),
                         *sockets[i % k]);
    }
    Rng boot(seed ^ 0xB007ULL);
    std::vector<NodeId> contacts;
    for (std::size_t i = 0; i < n; ++i) {
      contacts.clear();
      contacts.push_back(static_cast<NodeId>((i + 1) % n));
      for (int j = 0; j < 4; ++j) {
        contacts.push_back(static_cast<NodeId>(boot.below(n)));
      }
      nodes[i].init(contacts);
    }

    const double now_step = 1.0;
    const auto t0 = Clock::now();
    auto handler = [&](NodeId to, std::span<const std::byte> bytes,
                       double now) {
      if (to < n) nodes[to].on_datagram(bytes, now);
    };
    for (std::size_t cycle = 0; cycle < udp_cycles; ++cycle) {
      const double now = (cycle + 1) * now_step;
      for (std::size_t i = 0; i < n; ++i) nodes[i].on_tick(now);
      // Drain until two quiet passes: requests beget replies, so one pass
      // is not enough; the kernel queue empties within a few.
      std::size_t quiet = 0;
      for (std::size_t pass = 0; pass < 64 && quiet < 2; ++pass) {
        std::size_t received = 0;
        for (auto& socket : sockets) {
          received += socket->poll(
              [&](NodeId to, std::span<const std::byte> bytes) {
                handler(to, bytes, now);
              });
        }
        quiet = received == 0 ? quiet + 1 : 0;
      }
    }
    UdpRow row;
    row.n = n;
    row.sockets = k;
    row.run_seconds = seconds_since(t0);
    for (const auto& node : nodes) {
      row.requests += node.stats().requests_sent;
      row.replies += node.stats().replies_delivered;
      row.rejected += node.stats().frames_rejected;
    }
    for (const auto& socket : sockets) {
      row.datagrams_sent += socket->stats().datagrams_sent;
      row.send_failures += socket->stats().send_failures;
      row.oversized += socket->stats().oversized_dropped;
    }
    std::printf(
        "  udp      n=%-8zu sockets=%zu %8.0f ex/s  delivery=%.3f "
        "(sent=%llu failures=%llu)\n",
        n, k, row.requests / std::max(row.run_seconds, 1e-9),
        row.requests ? static_cast<double>(row.replies) / row.requests : 0.0,
        static_cast<unsigned long long>(row.datagrams_sent),
        static_cast<unsigned long long>(row.send_failures));
    udp_rows.push_back(row);
  }

  // ---- JSON ---------------------------------------------------------------
  const ProtocolSpec meta_spec = ProtocolSpec::newscast();
  const std::string spec_name = meta_spec.name();
  obs::RunRecorder rec(
      "scale_transport", 1,
      bench::make_run_metadata("scale_transport", "service", spec_name,
                               bench::protocol_wire_id(meta_spec),
                               sizes.back(), c, cycles, seed));
  rec.json().key("params");
  rec.json().begin_object();
  rec.json().field("differential_n", static_cast<std::uint64_t>(dn));
  rec.json().field("udp_cycles", static_cast<std::uint64_t>(udp_cycles));
  rec.json().end_object();
  rec.json().key("differential");
  rec.json().begin_array();
  bool differential_ok = true;
  for (const DiffCheck& d : diffs) {
    rec.json().begin_object();
    rec.json().field("check", d.check);
    rec.json().field("engine_digest", obs::to_hex16(d.engine_digest));
    rec.json().field("transport_digest", obs::to_hex16(d.transport_digest));
    rec.json().field("matches", d.matches);
    rec.json().end_object();
    differential_ok = differential_ok && d.matches;
  }
  rec.json().end_array();
  rec.json().key("loopback");
  rec.json().begin_array();
  for (const LoopbackRow& r : loopback_rows) {
    rec.json().begin_object();
    rec.json().field("n", static_cast<std::uint64_t>(r.n));
    rec.json().field("exchanges", r.exchanges);
    rec.json().field("engine_seconds", r.engine_seconds);
    rec.json().field("transport_seconds", r.transport_seconds);
    rec.json().field("engine_exchanges_per_s",
                     r.exchanges / std::max(r.engine_seconds, 1e-9));
    rec.json().field("transport_exchanges_per_s",
                     r.exchanges / std::max(r.transport_seconds, 1e-9));
    rec.json().field("state_digest", obs::to_hex16(r.state_digest));
    rec.json().end_object();
  }
  rec.json().end_array();
  rec.json().key("udp");
  rec.json().begin_array();
  for (const UdpRow& r : udp_rows) {
    rec.json().begin_object();
    rec.json().field("n", static_cast<std::uint64_t>(r.n));
    rec.json().field("sockets", static_cast<std::uint64_t>(r.sockets));
    rec.json().field("run_seconds", r.run_seconds);
    rec.json().field("requests", r.requests);
    rec.json().field("replies", r.replies);
    rec.json().field("exchanges_per_s",
                     r.requests / std::max(r.run_seconds, 1e-9));
    rec.json().field(
        "delivery_ratio",
        r.requests ? static_cast<double>(r.replies) / r.requests : 0.0);
    rec.json().field("datagrams_sent", r.datagrams_sent);
    rec.json().field("send_failures", r.send_failures);
    rec.json().field("oversized_dropped", r.oversized);
    rec.json().field("frames_rejected", r.rejected);
    rec.json().end_object();
  }
  rec.json().end_array();
  rec.gate("differential", differential_ok);
  if (!rec.write(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return rec.gates_ok() ? 0 : 1;
}
