// Table 1 — "Protocols where partitioning was observed in the growing
// overlay scenario. Data corresponds to cycle 300."
//
// Paper values (N = 10^4, c = 30, 100 runs):
//   protocol            partitioned  avg #clusters  avg largest cluster
//   (rand,head,push)    100%         58.36          4112.09
//   (rand,rand,push)    33%          2.27           9572.18
//   (tail,head,push)    100%         38.19          7150.52
//   (tail,rand,push)    1%           2.00           9941.00
// The pushpull variants never partitioned; they are included below as the
// control group.
#include <iostream>

#include "bench_util.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/reporting.hpp"

int main() {
  using namespace pss;
  // Partitioning is a large-scale phenomenon: it needs N/c well above the
  // connectivity threshold of the star-shaped growth topology. The quick
  // configuration (N=2000, c=15, 300 cycles) is the smallest one that
  // reliably exhibits it; PSS_FULL restores the paper's N=10^4, c=30.
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/300,
                                     /*full_cycles=*/300, /*quick_c=*/15);
  const std::size_t runs = bench::scaled_runs(/*quick=*/5);

  experiments::print_banner(
      std::cout, "Table 1 — partitioning in the growing overlay scenario",
      "Jelasity et al., Middleware 2004, Table 1", params,
      "runs=" + std::to_string(runs) +
          " | growth=" + std::to_string(params.growth_per_cycle) + "/cycle");

  const std::vector<ProtocolSpec> specs = {
      {PeerSelection::kRand, ViewSelection::kHead, ViewPropagation::kPush},
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPush},
      {PeerSelection::kTail, ViewSelection::kHead, ViewPropagation::kPush},
      {PeerSelection::kTail, ViewSelection::kRand, ViewPropagation::kPush},
      // Control group: the paper reports these never partition.
      ProtocolSpec::newscast(),
      {PeerSelection::kTail, ViewSelection::kHead, ViewPropagation::kPushPull},
  };

  static constexpr obs::FieldSpec kFields[] = {
      {"protocol", obs::FieldType::kStr},
      {"runs", obs::FieldType::kU64},
      {"partitioned_runs", obs::FieldType::kU64},
      {"partitioned_pct", obs::FieldType::kF64},
      {"avg_clusters", obs::FieldType::kF64},
      {"avg_largest", obs::FieldType::kF64},
  };
  static constexpr obs::MetricSchema kSchema{"pss.bench.table1_partitioning",
                                             1, kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "table1_partitioning", kSchema,
      bench::run_metadata("table1_partitioning", "cycle", params));

  TextTable table;
  table.row()
      .cell("protocol")
      .cell("partitioned runs")
      .cell("avg # of clusters")
      .cell("avg largest cluster");
  for (const auto& spec : specs) {
    const auto stats = experiments::run_growing_partitioning(spec, params, runs);
    table.row()
        .cell(spec.name())
        .cell(format_double(100.0 * stats.partitioned_fraction(), 0) + "%")
        .cell(stats.partitioned_runs > 0 ? format_double(stats.avg_clusters, 2)
                                         : "-")
        .cell(stats.partitioned_runs > 0 ? format_double(stats.avg_largest, 2)
                                         : "-");
    const std::string spec_name = spec.name();
    trace.row({std::string_view(spec_name),
               static_cast<std::uint64_t>(stats.runs),
               static_cast<std::uint64_t>(stats.partitioned_runs),
               100.0 * stats.partitioned_fraction(), stats.avg_clusters,
               stats.avg_largest});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape (paper): (rand,head,push) and "
               "(tail,head,push) partition in (almost) every run into many "
               "clusters; (rand,rand,push) partitions in a minority of runs "
               "into ~2 clusters; (tail,rand,push) rarely; pushpull variants "
               "never.\n";
  trace.finish(std::cout);
  return 0;
}
