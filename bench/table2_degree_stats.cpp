// Table 2 — "Statistics describing the dynamics of the degree of
// individual nodes": after convergence from the random topology, trace the
// degree of 50 fixed nodes for K = 300 cycles and report
//   D_300 — mean degree over all nodes in the last cycle,
//   d̄     — mean of the 50 per-node time-averaged degrees,
//   √σ    — sample standard deviation (n-1 = 49) of those time averages.
//
// Paper values (N = 10^4, c = 30):
//   (rand,head,push)      52.623  52.703   1.394
//   (tail,head,push)      54.785  55.519   2.690
//   (rand,head,pushpull)  52.717  52.933   1.756
//   (tail,head,pushpull)  53.916  53.888   2.176
//   (rand,rand,push)      58.404  60.804  19.062
//   (tail,rand,push)      58.844  58.746  17.287
//   (rand,rand,pushpull)  59.569  61.306  13.886
//   (tail,rand,pushpull)  59.666  58.616   9.756
// Expected shape: all nodes oscillate around the same mean (d̄ ≈ D_K), and
// √σ is an order of magnitude larger under rand view selection.
#include <iostream>

#include "bench_util.hpp"
#include "pss/common/table.hpp"
#include "pss/experiments/degree_trace.hpp"
#include "pss/experiments/reporting.hpp"

int main() {
  using namespace pss;
  auto params = bench::scaled_params(/*quick_n=*/2000, /*quick_cycles=*/100);
  const auto trace_cycles =
      static_cast<Cycle>(env::scaled("PSS_TRACE_CYCLES", 150, 300));
  const std::size_t traced = 50;

  experiments::print_banner(
      std::cout, "Table 2 — dynamics of individual node degrees",
      "Jelasity et al., Middleware 2004, Table 2", params,
      "traced=" + std::to_string(traced) +
          " trace_cycles=" + std::to_string(trace_cycles));

  static constexpr obs::FieldSpec kFields[] = {
      {"protocol", obs::FieldType::kStr},
      {"D_K", obs::FieldType::kF64},
      {"d_bar", obs::FieldType::kF64},
      {"sqrt_sigma", obs::FieldType::kF64},
  };
  static constexpr obs::MetricSchema kSchema{"pss.bench.table2_degree_stats",
                                             1, kFields, std::size(kFields)};
  bench::BenchTrace trace(
      "table2_degree_stats", kSchema,
      bench::run_metadata("table2_degree_stats", "cycle", params));

  TextTable table;
  table.row().cell("protocol").cell("D_K").cell("d-bar").cell("sqrt(sigma)");
  // Paper row order: head view selection block, then rand view selection.
  const std::vector<ProtocolSpec> specs = {
      {PeerSelection::kRand, ViewSelection::kHead, ViewPropagation::kPush},
      {PeerSelection::kTail, ViewSelection::kHead, ViewPropagation::kPush},
      ProtocolSpec::newscast(),
      {PeerSelection::kTail, ViewSelection::kHead, ViewPropagation::kPushPull},
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPush},
      {PeerSelection::kTail, ViewSelection::kRand, ViewPropagation::kPush},
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPushPull},
      {PeerSelection::kTail, ViewSelection::kRand, ViewPropagation::kPushPull},
  };
  for (const auto& spec : specs) {
    const auto trace_result =
        experiments::run_degree_trace(spec, params, traced, trace_cycles);
    table.row()
        .cell(spec.name())
        .cell(trace_result.final_avg_degree, 3)
        .cell(trace_result.mean_of_node_means(), 3)
        .cell(trace_result.stddev_of_node_means(), 3);
    const std::string spec_name = spec.name();
    trace.row({std::string_view(spec_name), trace_result.final_avg_degree,
               trace_result.mean_of_node_means(),
               trace_result.stddev_of_node_means()});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape (paper): d-bar tracks D_K for every "
               "protocol; sqrt(sigma) is ~1-3 under head view selection and "
               "~10-19 under rand view selection (scaled down with c at "
               "quick settings).\n";
  trace.finish(std::cout);
  return 0;
}
