// Epidemic broadcast over the peer sampling service — the application the
// paper's introduction motivates first (information dissemination, [6,9]).
//
// Compares dissemination speed and redundancy when infected nodes pick
// targets (a) via the gossip-based sampling service backed by several
// framework protocols, and (b) via the ideal uniform sampler the classical
// analyses assume. The gap illustrates the paper's headline point: gossip
// overlays are NOT uniform samplers, and the deviation has measurable
// application-level cost.
//
//   $ ./examples/broadcast_dissemination [N] [fanout]
#include <iostream>
#include <string>

#include "pss/apps/broadcast.hpp"
#include "pss/common/table.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

int main(int argc, char** argv) {
  using namespace pss;
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 2000;
  const std::size_t fanout = argc > 2 ? std::stoul(argv[2]) : 1;
  const std::uint64_t seed = 42;

  std::cout << "epidemic broadcast, N=" << n << " fanout=" << fanout << "\n\n";

  apps::BroadcastParams params{.fanout = fanout, .max_rounds = 100};

  TextTable table;
  table.row()
      .cell("sampler")
      .cell("rounds to full")
      .cell("messages")
      .cell("redundant")
      .cell("coverage@10");

  auto report = [&](const std::string& label, const apps::BroadcastResult& r) {
    const std::size_t at10 =
        r.infected_per_round.size() > 10 ? r.infected_per_round[10]
                                         : r.infected_per_round.back();
    table.row()
        .cell(label)
        .cell(r.reached_all() ? std::to_string(r.rounds_to_full) : "never")
        .cell(static_cast<std::int64_t>(r.messages))
        .cell(static_cast<std::int64_t>(r.redundant_deliveries))
        .cell(static_cast<std::int64_t>(at10));
  };

  // Gossip-backed sampling with three representative protocols.
  for (const auto& spec :
       {ProtocolSpec::newscast(), ProtocolSpec::lpbcast(),
        ProtocolSpec{PeerSelection::kTail, ViewSelection::kRand,
                     ViewPropagation::kPushPull}}) {
    auto net = sim::bootstrap::make_random(spec, ProtocolOptions{30, false}, n,
                                           seed);
    sim::CycleEngine engine(net);
    engine.run(50);  // converge the overlay before broadcasting
    const auto result = apps::run_broadcast_over_gossip(
        net, engine, params, /*origin=*/0, Rng(seed + 1));
    report("gossip " + spec.name(), result);
  }

  // Ideal uniform baseline.
  const auto ideal =
      apps::run_broadcast_ideal(n, params, /*origin=*/0, Rng(seed + 2));
  report("ideal uniform", ideal);

  table.print(std::cout);
  std::cout << "\nNote: with fanout 1 the classical push-gossip bound is "
               "~log2(N) + ln(N) rounds under uniform sampling; gossip-based "
               "sampling tracks it closely despite non-uniformity, at "
               "slightly higher redundancy.\n";
  return 0;
}
