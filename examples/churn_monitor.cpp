// Overlay health under continuous churn — the operational scenario the
// paper's failure experiments (Section 7) approximate with one catastrophic
// event. Runs Newscast and (rand,rand,pushpull) under sustained join/leave
// turnover and prints a per-interval health report: live population, dead
// links, connectivity, and degree spread.
//
//   $ ./examples/churn_monitor [N] [churn_per_cycle] [cycles]
#include <cmath>
#include <iostream>
#include <string>

#include "pss/common/table.hpp"
#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/churn.hpp"
#include "pss/sim/cycle_engine.hpp"

int main(int argc, char** argv) {
  using namespace pss;
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 2000;
  const std::size_t churn = argc > 2 ? std::stoul(argv[2]) : n / 50;  // 2%
  const Cycle cycles = argc > 3 ? static_cast<Cycle>(std::stoul(argv[3])) : 120;
  const std::uint64_t seed = 42;

  std::cout << "churn monitor: N=" << n << ", " << churn
            << " joins + " << churn << " leaves per cycle, " << cycles
            << " cycles\n";

  for (const auto& spec :
       {ProtocolSpec::newscast(),
        ProtocolSpec{PeerSelection::kRand, ViewSelection::kRand,
                     ViewPropagation::kPushPull}}) {
    std::cout << "\nprotocol " << spec.name() << "\n";
    auto net = sim::bootstrap::make_random(spec, ProtocolOptions{30, false}, n,
                                           seed);
    sim::CycleEngine engine(net);
    sim::ChurnModel churn_model(
        {.leaves_per_cycle = churn, .joins_per_cycle = churn,
         .contacts_per_join = 1},
        Rng(seed + 7));

    TextTable table;
    table.row()
        .cell("cycle")
        .cell("live")
        .cell("dead links")
        .cell("dead/links%")
        .cell("components")
        .cell("largest")
        .cell("deg mean")
        .cell("deg max");
    const Cycle report_every = std::max<Cycle>(1, cycles / 10);
    for (Cycle cycle = 1; cycle <= cycles; ++cycle) {
      churn_model.apply(net);
      engine.run_cycle();
      if (cycle % report_every == 0) {
        const auto g = graph::UndirectedGraph::from_network(net);
        const auto comp = graph::connected_components(g);
        const auto deg = graph::degree_summary(g);
        const auto dead = net.count_dead_links();
        const auto total_links = net.live_count() * 30;
        table.row()
            .cell(static_cast<std::int64_t>(cycle))
            .cell(static_cast<std::int64_t>(net.live_count()))
            .cell(static_cast<std::int64_t>(dead))
            .cell(100.0 * static_cast<double>(dead) /
                      static_cast<double>(total_links),
                  1)
            .cell(static_cast<std::int64_t>(comp.count))
            .cell(static_cast<std::int64_t>(comp.largest))
            .cell(deg.mean, 1)
            .cell(static_cast<std::int64_t>(deg.max));
      }
    }
    table.print(std::cout);
    std::cout << "turnover: " << churn_model.stats().joined << " joined, "
              << churn_model.stats().left << " left ("
              << format_double(100.0 * churn_model.stats().left /
                                   static_cast<double>(n),
                               0)
              << "% of initial population replaced)\n";
  }
  std::cout << "\nexpected: head view selection (Newscast) keeps the dead-"
               "link fraction low and the overlay connected; rand view "
               "selection carries a much larger standing population of "
               "dead links under identical churn.\n";
  return 0;
}
