// Gossip-based averaging on top of the peer sampling service — the
// aggregation workload of [14,16] in the paper's bibliography.
//
// Every node starts with a value (a linear ramp); each round every node
// averages with one sampled peer while the membership protocol keeps
// gossiping underneath. The variance decay rate is a sensitive probe of
// sampling quality: uniform sampling contracts the variance by a constant
// factor per round, and the gossip-backed services approach that factor.
//
//   $ ./examples/gossip_aggregation [N] [rounds]
#include <iostream>
#include <string>

#include "pss/apps/aggregation.hpp"
#include "pss/common/table.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

int main(int argc, char** argv) {
  using namespace pss;
  const std::size_t n = argc > 1 ? std::stoul(argv[1]) : 2000;
  const Cycle rounds = argc > 2 ? static_cast<Cycle>(std::stoul(argv[2])) : 40;
  const std::uint64_t seed = 42;

  std::cout << "push-pull averaging, N=" << n << " rounds=" << rounds << "\n\n";

  apps::AggregationParams params{.rounds = rounds};

  TextTable table;
  table.row()
      .cell("sampler")
      .cell("initial var")
      .cell("final var")
      .cell("contraction/round")
      .cell("rounds to var<1");

  auto report = [&](const std::string& label, const apps::AggregationResult& r) {
    const auto hit = r.rounds_to_variance(1.0);
    table.row()
        .cell(label)
        .cell(r.variance_per_round.front(), 1)
        .cell(r.variance_per_round.back(), 6)
        .cell(r.mean_contraction(), 3)
        .cell(hit == apps::AggregationResult::kNever ? "never"
                                                     : std::to_string(hit));
  };

  for (const auto& spec :
       {ProtocolSpec::newscast(),
        ProtocolSpec{PeerSelection::kRand, ViewSelection::kRand,
                     ViewPropagation::kPushPull},
        ProtocolSpec::lpbcast()}) {
    auto net = sim::bootstrap::make_random(spec, ProtocolOptions{30, false}, n,
                                           seed);
    sim::CycleEngine engine(net);
    engine.run(50);
    const auto result = apps::run_averaging_over_gossip(
        net, engine, params, apps::ramp_values(n), Rng(seed + 1));
    report("gossip " + spec.name(), result);
  }

  const auto ideal =
      apps::run_averaging_ideal(params, apps::ramp_values(n), Rng(seed + 2));
  report("ideal uniform", ideal);

  table.print(std::cout);
  std::cout << "\nTheory (uniform sampling, one exchange per node per "
               "round): variance contracts by ~1/(2*sqrt(e)) ~ 0.303 per "
               "round. A contraction factor above that signals sampling "
               "bias (correlated or clustered partners).\n";
  return 0;
}
