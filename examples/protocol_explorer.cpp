// Protocol explorer: a small CLI over the whole framework. Pick any of the
// 27 design-space points (or "newscast"/"lpbcast"), a bootstrap scenario
// and a scale; get the convergence series and converged overlay summary —
// a miniature PeerSim.
//
//   $ ./examples/protocol_explorer rand,head,pushpull random 2000 100
//   $ ./examples/protocol_explorer tail,rand,push lattice
//   $ ./examples/protocol_explorer --list
#include <iostream>
#include <string>

#include "pss/experiments/reporting.hpp"
#include "pss/experiments/scenario.hpp"
#include "pss/graph/random_graph.hpp"

namespace {

void print_usage() {
  std::cout <<
      "usage: protocol_explorer <protocol> [scenario] [N] [cycles]\n"
      "  protocol: ps,vs,vp with ps in {rand,head,tail}, vs in\n"
      "            {rand,head,tail}, vp in {push,pull,pushpull};\n"
      "            or 'newscast' / 'lpbcast'\n"
      "  scenario: random | lattice | growing   (default random)\n"
      "  N:        network size                 (default 2000)\n"
      "  cycles:   cycles to run                (default 100)\n"
      "  --list    print all 27 protocol names and exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pss;
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string arg1 = argv[1];
  if (arg1 == "--list") {
    std::cout << "evaluated in the paper (Section 4.3):\n";
    for (const auto& spec : ProtocolSpec::evaluated())
      std::cout << "  " << spec.name() << "\n";
    std::cout << "excluded as degenerate (Section 4.3):\n";
    for (const auto& spec : ProtocolSpec::excluded())
      std::cout << "  " << spec.name() << "\n";
    return 0;
  }
  const auto spec = ProtocolSpec::parse(arg1);
  if (!spec) {
    std::cerr << "unrecognized protocol: " << arg1 << "\n";
    print_usage();
    return 1;
  }
  const std::string scenario = argc > 2 ? argv[2] : "random";
  experiments::ScenarioParams params;
  params.n = argc > 3 ? std::stoul(argv[3]) : 2000;
  params.cycles = argc > 4 ? static_cast<Cycle>(std::stoul(argv[4])) : 100;
  params.sample_interval = std::max<Cycle>(1, params.cycles / 20);
  params.growth_per_cycle = std::max<std::size_t>(1, params.n / 100);

  experiments::print_banner(std::cout, "protocol explorer",
                            "framework of Section 3", params,
                            "scenario=" + scenario);

  experiments::ScenarioResult result = [&] {
    if (scenario == "lattice")
      return experiments::run_lattice_scenario(*spec, params);
    if (scenario == "growing")
      return experiments::run_growing_scenario(*spec, params);
    if (scenario == "random")
      return experiments::run_random_scenario(*spec, params);
    std::cerr << "unknown scenario '" << scenario << "', using random\n";
    return experiments::run_random_scenario(*spec, params);
  }();

  experiments::print_series(std::cout, spec->name(), result.series, nullptr);

  const auto baseline = experiments::measure_random_baseline(params);
  const auto& fin = result.final_sample();
  std::cout << "converged vs uniform random baseline:\n";
  TextTable table;
  table.row().cell("metric").cell(spec->name()).cell("random baseline");
  table.row().cell("avg degree").cell(fin.avg_degree, 2).cell(baseline.avg_degree, 2);
  table.row().cell("clustering").cell(fin.clustering, 4).cell(baseline.clustering, 4);
  table.row().cell("path length").cell(fin.path_length, 3).cell(baseline.path_length, 3);
  table.print(std::cout);
  if (fin.components > 1) {
    std::cout << "WARNING: overlay is partitioned (" << fin.components
              << " components, largest " << fin.largest_component << ")\n";
  }
  return 0;
}
