// Quickstart: the peer sampling service in ~60 lines.
//
// Builds a 1000-node simulated network running Newscast
// (= (rand,head,pushpull) in the paper's notation), converges it, and uses
// the two-method service API — init() and getPeer() — exactly as a gossip
// application would.
//
//   $ ./examples/quickstart
#include <iostream>
#include <set>

#include "pss/experiments/scenario.hpp"
#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/service/peer_sampling_service.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

int main() {
  using namespace pss;

  // 1. A simulated network: every node runs the same gossip protocol.
  const ProtocolSpec protocol = ProtocolSpec::newscast();
  const ProtocolOptions options{.view_size = 20, .remove_dead_on_failure = false};
  auto network = sim::bootstrap::make_random(protocol, options,
                                             /*n=*/1000, /*seed=*/42);
  std::cout << "running " << protocol.name() << " on " << network.size()
            << " nodes (view size c=" << options.view_size << ")\n";

  // 2. Run the cycle-driven engine until the overlay converges.
  sim::CycleEngine engine(network);
  engine.run(50);
  const auto g = graph::UndirectedGraph::from_network(network);
  std::cout << "after " << engine.cycle() << " cycles: avg degree "
            << graph::average_degree(g) << ", path length "
            << graph::average_path_length(g).average << ", connected="
            << (graph::connected_components(g).connected() ? "yes" : "no")
            << "\n";

  // 3. The service API as a joining node uses it: a fresh node enters the
  //    group knowing three bootstrap contacts, init() seeds its view, and
  //    a few gossip cycles integrate it into the overlay.
  const NodeId joiner = network.add_node();
  PeerSamplingService service(network.node(joiner), Rng(7));
  const std::vector<NodeId> contacts{1, 2, 3};
  service.init(contacts);
  engine.run(5);
  std::cout << "fresh node " << joiner << " joined via 3 contacts; after 5 "
            << "cycles its view holds " << network.node(joiner).view().size()
            << " peers\n";
  std::cout << "getPeer() x 10:";
  for (int i = 0; i < 10; ++i) std::cout << " " << service.get_peer();
  std::cout << "\n";

  // 4. Keep gossiping while the application samples: the view refreshes
  //    every cycle, so consecutive samples roam over the whole network.
  std::set<NodeId> seen;
  for (int cycle = 0; cycle < 20; ++cycle) {
    engine.run_cycle();
    for (int i = 0; i < 5; ++i) seen.insert(service.get_peer());
  }
  std::cout << "distinct peers sampled over 20 more cycles: " << seen.size()
            << " (view holds only " << options.view_size << ")\n";
  return 0;
}
