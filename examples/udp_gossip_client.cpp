// A peer sampling client: joins a running daemon mesh over UDP and consumes
// the service API — init() and getPeer() — from transport-maintained state.
//
// The client is just another ServiceNode process (same loop as the daemon);
// the difference is what sits on top: a PeerSamplingService wrapping the
// node's GossipNode, so samples come from the view the wire protocol built,
// not from a simulator arena.
//
//   $ ./udp_gossip_client --id=0 --nodes=5 --port-base=17000 --cycles=15
//
// Prints a peer sample each cycle; exits non-zero if the service never
// returned a usable sample.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/service/peer_sampling_service.hpp"
#include "pss/transport/service_node.hpp"
#include "pss/transport/udp_transport.hpp"

namespace {

std::int64_t arg_int(int argc, char** argv, const std::string& key,
                     std::int64_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      try {
        return std::stoll(arg.substr(prefix.size()));
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad value for %s\n", arg.c_str());
        std::exit(2);
      }
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pss;

  const auto id = static_cast<NodeId>(arg_int(argc, argv, "id", 0));
  const auto n = static_cast<std::size_t>(arg_int(argc, argv, "nodes", 5));
  const auto port_base =
      static_cast<std::uint16_t>(arg_int(argc, argv, "port-base", 17000));
  const auto cycles =
      static_cast<std::size_t>(arg_int(argc, argv, "cycles", 15));
  const auto period_ms = arg_int(argc, argv, "period-ms", 40);
  const auto seed = static_cast<std::uint64_t>(arg_int(argc, argv, "seed", 42));
  const auto c = static_cast<std::size_t>(arg_int(argc, argv, "c", 8));
  if (id >= n) {
    std::fprintf(stderr, "--id=%u must be < --nodes=%zu\n", id, n);
    return 2;
  }

  const ProtocolOptions options{c, false};
  const transport::UdpAddressBook book =
      transport::UdpAddressBook::local_range(port_base, n, n);
  const transport::WireCodec codec(options.view_size);
  transport::UdpTransport socket(book, id, codec.max_frame_bytes());
  transport::ServiceNode node(id, ProtocolSpec::newscast(), options,
                              Rng(seed + id), socket);

  std::vector<NodeId> contacts;
  for (NodeId peer = 0; peer < n; ++peer) {
    if (peer != id) contacts.push_back(peer);
  }
  node.init(contacts);

  // The application-facing API rides on the transport-maintained view.
  PeerSamplingService service(node.gossip_node(), Rng(seed + 99));

  const auto period = std::chrono::milliseconds(period_ms);
  const auto poll_slice = period / 8;
  std::set<NodeId> sampled;
  for (std::size_t cycle = 1; cycle <= cycles; ++cycle) {
    const double now = static_cast<double>(cycle);
    node.on_tick(now);
    const auto deadline = std::chrono::steady_clock::now() + period;
    while (std::chrono::steady_clock::now() < deadline) {
      const std::size_t got =
          socket.poll([&](NodeId, std::span<const std::byte> bytes) {
            node.on_datagram(bytes, now);
          });
      if (got == 0) std::this_thread::sleep_for(poll_slice);
    }
    const NodeId peer = service.get_peer();
    if (peer != kInvalidNode) {
      sampled.insert(peer);
      std::printf("cycle %zu: getPeer() -> %u (view %zu)\n", cycle, peer,
                  node.view().size());
    }
  }

  const auto peers = service.get_peers(c);
  std::printf("client %u: %zu distinct samples, final get_peers(%zu) -> %zu "
              "peers, requests=%llu replies=%llu\n",
              id, sampled.size(), c, peers.size(),
              static_cast<unsigned long long>(node.stats().requests_sent),
              static_cast<unsigned long long>(node.stats().replies_delivered));
  if (sampled.empty() || peers.empty()) {
    std::fprintf(stderr, "client %u: service produced no samples\n", id);
    return 1;
  }
  return 0;
}
