// A peer sampling daemon: one OS process, one UDP socket, one ServiceNode.
//
// Each daemon owns node id --id out of --nodes processes, listens on
// 127.0.0.1:(--port-base + id), bootstraps its view from every other id,
// and then runs the middleware loop for --cycles rounds: tick the active
// thread once per --period-ms, draining the socket in between. `now` is
// passed to the stack in cycle units, so reply timeouts span half a round
// regardless of wall-clock pacing.
//
//   $ ./udp_gossip_daemon --id=1 --nodes=5 --port-base=17000 --cycles=15
//
// Live observability (the metrics-export subsystem, docs/METRICS.md):
//   --metrics=PATH       stream one pss.transport.service_tick row per
//                        tick to PATH as self-describing JSON-lines
//                        (flushed per row, so the file is tailable);
//   --metrics-ring=N     additionally keep the last N rows in a binary
//                        ring buffer;
//   --metrics-dump=PATH  write the ring's self-contained binary dump at
//                        exit (requires --metrics-ring).
//
// Causal tracing + runtime profiling (docs/TRACING.md):
//   --trace-dump=PATH    attach a TraceRecorder flight recorder and write
//                        its PSSTRACE1 dump at exit; dumps from several
//                        daemon processes stitch into causal request->
//                        reply chains via scripts/trace_tool.py;
//   --trace-ring=N       flight-recorder capacity in events (default 4096);
//   --http-port=N        serve counters + per-phase latency histograms +
//                        ring stats in Prometheus text exposition format
//                        on 127.0.0.1:N (0 = ephemeral; the bound port is
//                        printed);
//   --http-linger-ms=N   keep serving for N ms after the last cycle, so a
//                        scraper started alongside the daemon always gets
//                        a complete snapshot (scripts/udp_smoke.sh).
//
// Exits 0 only if the session actually gossiped (requests answered and
// replies delivered) — scripts/udp_smoke.sh and CI gate on that.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/obs/profiler.hpp"
#include "pss/obs/pull_endpoint.hpp"
#include "pss/obs/sinks.hpp"
#include "pss/obs/trace.hpp"
#include "pss/transport/service_node.hpp"
#include "pss/transport/udp_transport.hpp"
#include "pss/transport/wire.hpp"

namespace {

std::int64_t arg_int(int argc, char** argv, const std::string& key,
                     std::int64_t fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      try {
        return std::stoll(arg.substr(prefix.size()));
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad value for %s\n", arg.c_str());
        std::exit(2);
      }
    }
  }
  return fallback;
}

std::string arg_str(int argc, char** argv, const std::string& key,
                    const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pss;

  const auto id = static_cast<NodeId>(arg_int(argc, argv, "id", 0));
  const auto n = static_cast<std::size_t>(arg_int(argc, argv, "nodes", 5));
  const auto port_base =
      static_cast<std::uint16_t>(arg_int(argc, argv, "port-base", 17000));
  const auto cycles =
      static_cast<std::size_t>(arg_int(argc, argv, "cycles", 15));
  const auto period_ms = arg_int(argc, argv, "period-ms", 40);
  const auto seed = static_cast<std::uint64_t>(arg_int(argc, argv, "seed", 42));
  const auto c = static_cast<std::size_t>(arg_int(argc, argv, "c", 8));
  const std::string metrics_path = arg_str(argc, argv, "metrics", "");
  const auto ring_capacity =
      static_cast<std::size_t>(arg_int(argc, argv, "metrics-ring", 0));
  const std::string dump_path = arg_str(argc, argv, "metrics-dump", "");
  const std::string trace_path = arg_str(argc, argv, "trace-dump", "");
  const auto trace_ring =
      static_cast<std::size_t>(arg_int(argc, argv, "trace-ring", 4096));
  const auto http_port = arg_int(argc, argv, "http-port", -1);
  const auto http_linger_ms = arg_int(argc, argv, "http-linger-ms", 0);
  if (id >= n) {
    std::fprintf(stderr, "--id=%u must be < --nodes=%zu\n", id, n);
    return 2;
  }
  if (!dump_path.empty() && ring_capacity == 0) {
    std::fprintf(stderr, "--metrics-dump requires --metrics-ring=N\n");
    return 2;
  }

  const ProtocolOptions options{c, false};
  const transport::UdpAddressBook book =
      transport::UdpAddressBook::local_range(port_base, n, n);
  const transport::WireCodec codec(options.view_size);
  transport::UdpTransport socket(book, id, codec.max_frame_bytes());
  const ProtocolSpec spec = ProtocolSpec::newscast();
  transport::ServiceNode node(id, spec, options, Rng(seed + id), socket);

  // Optional live metrics: JSONL stream, in-memory ring, or both fanned
  // out from the node's single recording seam.
  std::unique_ptr<obs::JsonlMetricSink> jsonl;
  std::unique_ptr<obs::RingBufferSink> ring;
  obs::FanOutSink fan;
  if (!metrics_path.empty()) {
    jsonl = std::make_unique<obs::JsonlMetricSink>(metrics_path);
    if (!jsonl->ok()) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   metrics_path.c_str());
      return 2;
    }
    fan.add(*jsonl);
  }
  if (ring_capacity > 0) {
    ring = std::make_unique<obs::RingBufferSink>(ring_capacity);
    fan.add(*ring);
  }
  const std::string spec_name = spec.name();
  obs::RunMetadata meta;
  meta.bench = "udp_gossip_daemon";
  meta.engine = "service";
  meta.protocol = spec_name;
  meta.protocol_id = transport::encode_protocol(spec);
  meta.n = n;
  meta.view_size = c;
  meta.cycles = cycles;
  meta.seed = seed;
  if (fan.count() > 0) node.attach_sink(fan, meta);

  // Tracing seam: flight recorder + always-on profiler behind one tee.
  // Either knob arms both — the pull endpoint serves the profiler's
  // histograms, the dump file carries the recorder's spans.
  std::unique_ptr<obs::TraceRecorder> trace;
  obs::Profiler profiler;
  obs::TraceTee tee;
  if (!trace_path.empty() || http_port >= 0) {
    trace = std::make_unique<obs::TraceRecorder>(trace_ring);
    tee.add(*trace);
    tee.add(profiler);
    node.attach_trace(tee);
  }
  std::unique_ptr<obs::PullEndpoint> http;
  if (http_port >= 0) {
    http = std::make_unique<obs::PullEndpoint>(
        static_cast<std::uint16_t>(http_port));
    if (!http->ok()) {
      std::fprintf(stderr, "daemon %u: cannot bind 127.0.0.1:%lld\n", id,
                   static_cast<long long>(http_port));
      return 2;
    }
    // The smoke script parses this line to find an ephemeral port.
    std::printf("daemon %u: http endpoint on 127.0.0.1:%u\n", id,
                http->port());
    std::fflush(stdout);
  }

  std::vector<NodeId> contacts;
  for (NodeId peer = 0; peer < n; ++peer) {
    if (peer != id) contacts.push_back(peer);
  }
  node.init(contacts);

  const auto period = std::chrono::milliseconds(period_ms);
  const auto poll_slice = period / 8;
  auto on_datagram = [&](double now) {
    return [&node, now](NodeId, std::span<const std::byte> bytes) {
      node.on_datagram(bytes, now);
    };
  };
  // Re-renders the pull-endpoint document: driver counters, trace-ring
  // stats, per-phase latency histograms. Called once per tick — a scrape
  // gets whatever snapshot is current.
  auto publish = [&] {
    if (!http) return;
    std::string text;
    char buf[160];
    auto counter = [&](const char* name, unsigned long long v) {
      std::snprintf(buf, sizeof buf, "# TYPE %s counter\n%s %llu\n", name,
                    name, v);
      text += buf;
    };
    auto gauge = [&](const char* name, unsigned long long v) {
      std::snprintf(buf, sizeof buf, "# TYPE %s gauge\n%s %llu\n", name, name,
                    v);
      text += buf;
    };
    const transport::ServiceNodeStats& s = node.stats();
    counter("pss_ticks_total", s.wakeups);
    counter("pss_requests_sent_total", s.requests_sent);
    counter("pss_replies_delivered_total", s.replies_delivered);
    counter("pss_replies_stale_total", s.replies_stale);
    counter("pss_frames_rejected_total", s.frames_rejected);
    gauge("pss_view_size", node.view().size());
    if (trace) {
      counter("pss_trace_events_total", trace->total_recorded());
      counter("pss_trace_events_overwritten_total", trace->dropped());
      gauge("pss_trace_ring_capacity", trace->capacity());
    }
    profiler.render_prometheus(text);
    http->set_text(std::move(text));
  };
  for (std::size_t cycle = 1; cycle <= cycles; ++cycle) {
    const double now = static_cast<double>(cycle);
    node.on_tick(now);
    const auto deadline = std::chrono::steady_clock::now() + period;
    while (std::chrono::steady_clock::now() < deadline) {
      if (socket.poll(on_datagram(now)) == 0) {
        std::this_thread::sleep_for(poll_slice);
      }
    }
    publish();
  }
  // One grace round so late replies from slower peers still land.
  const double end = static_cast<double>(cycles);
  for (int pass = 0; pass < 8; ++pass) {
    if (socket.poll(on_datagram(end)) == 0) {
      std::this_thread::sleep_for(poll_slice);
    }
  }
  publish();
  // Hold the endpoint open so a scraper started alongside the daemon can
  // still pull the final snapshot; keep draining the socket meanwhile.
  if (http && http_linger_ms > 0) {
    const auto linger_deadline = std::chrono::steady_clock::now() +
                                 std::chrono::milliseconds(http_linger_ms);
    while (std::chrono::steady_clock::now() < linger_deadline) {
      if (socket.poll(on_datagram(end)) == 0) {
        std::this_thread::sleep_for(poll_slice);
      }
    }
  }

  const transport::ServiceNodeStats& s = node.stats();
  std::printf(
      "daemon %u: ticks=%llu requests=%llu replies=%llu stale=%llu "
      "rejected=%llu view=%zu\n",
      id, static_cast<unsigned long long>(s.wakeups),
      static_cast<unsigned long long>(s.requests_sent),
      static_cast<unsigned long long>(s.replies_delivered),
      static_cast<unsigned long long>(s.replies_stale),
      static_cast<unsigned long long>(s.frames_rejected),
      node.view().size());
  if (jsonl) {
    jsonl->finish();
    if (!jsonl->ok()) {
      std::fprintf(stderr, "daemon %u: metrics write to %s failed\n", id,
                   metrics_path.c_str());
      return 1;
    }
    std::printf("daemon %u: metrics written to %s\n", id, metrics_path.c_str());
  }
  if (ring && !dump_path.empty()) {
    if (!ring->dump(dump_path)) {
      std::fprintf(stderr, "daemon %u: ring dump to %s failed\n", id,
                   dump_path.c_str());
      return 1;
    }
    std::printf("daemon %u: ring dump (%zu of %llu rows) written to %s\n", id,
                ring->size(),
                static_cast<unsigned long long>(ring->total_appended()),
                dump_path.c_str());
  }
  if (trace && !trace_path.empty()) {
    if (!trace->dump(trace_path, meta)) {
      std::fprintf(stderr, "daemon %u: trace dump to %s failed\n", id,
                   trace_path.c_str());
      return 1;
    }
    std::printf("daemon %u: trace dump (%zu of %llu spans) written to %s\n",
                id, trace->size(),
                static_cast<unsigned long long>(trace->total_recorded()),
                trace_path.c_str());
  }
  const bool gossiped = s.requests_sent > 0 && s.replies_delivered > 0 &&
                        !node.view().empty();
  if (!gossiped) {
    std::fprintf(stderr, "daemon %u: no gossip happened\n", id);
    return 1;
  }
  return 0;
}
