#!/usr/bin/env python3
"""Compare two or more BENCH_*.json envelopes and render regression curves.

Every scale driver records its results through obs::RunRecorder as a
self-describing envelope (schema name + version, meta, driver sections,
gates). Given >= 2 such documents IN CHRONOLOGICAL ORDER (oldest first —
e.g. the committed baseline then a fresh nightly re-run), this tool:

  * groups the inputs by schema name and refuses to compare documents of
    different schema versions (the repo-wide versioning rule: a reader
    never guesses a layout);
  * flattens every numeric leaf into a labelled metric, using identifying
    keys (n, check, mode, threads, phase, ...) instead of array indices,
    so "runs[n=10000].traced_exchanges_per_s" stays stable when the
    ladder grows;
  * renders one markdown table per schema: first value, last value,
    delta %, and an ASCII trend curve across all inputs;
  * reports gate flips (a gate true in one document and false in a later
    one) prominently — those are regressions by definition.

Exit status is 0 unless --fail-regress PCT is given and some metric
matching --watch regressed (fell) by more than PCT percent between the
first and last document. Throughput-style metrics (suffix `_per_s`) are
watched by default.

Usage:
    python3 scripts/bench_trend.py OLD.json NEW.json [MORE.json...]
        [-o TREND.md] [--watch REGEX] [--fail-regress PCT]
"""

from __future__ import annotations

import argparse
import json
import re
import sys

SPARK_LEVELS = " .:-=+*#%@"

# List-item keys that identify a row better than its index does.
ID_KEYS = ("check", "mode", "phase", "protocol", "n", "threads", "sockets",
           "bucket", "removed_fraction")

# Envelope keys that are not driver metrics.
SKIP_TOP = {"schema", "meta", "gates", "gates_ok"}


def label_for(item, index):
    if isinstance(item, dict):
        parts = [f"{k}={item[k]}" for k in ID_KEYS if k in item]
        if parts:
            return ",".join(parts)
    return str(index)


def flatten(node, prefix="", out=None):
    """Numeric leaves only; digest strings and labels are not trends."""
    if out is None:
        out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            if prefix == "" and key in SKIP_TOP:
                continue
            flatten(value, f"{prefix}.{key}" if prefix else key, out)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            flatten(item, f"{prefix}[{label_for(item, index)}]", out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = node
    return out


def spark(values):
    lo, hi = min(values), max(values)
    if hi == lo:
        return "=" * len(values)
    return "".join(SPARK_LEVELS[int((v - lo) / (hi - lo) *
                                    (len(SPARK_LEVELS) - 1))]
                   for v in values)


def fmt(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"bench_trend: {path}: {exc}")
    schema = doc.get("schema")
    if not isinstance(schema, dict) or "name" not in schema:
        raise SystemExit(f"bench_trend: {path}: not a RunRecorder envelope "
                         "(missing schema object)")
    return doc


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+",
                        help="BENCH_*.json documents, oldest first")
    parser.add_argument("-o", "--output", default="-",
                        help="output markdown path (default stdout)")
    parser.add_argument("--watch", default=r"_per_s$",
                        help="regex of metric labels watched for regression "
                             "(default: throughput suffixes)")
    parser.add_argument("--fail-regress", type=float, default=None,
                        metavar="PCT",
                        help="exit non-zero if a watched metric fell more "
                             "than PCT%% between first and last document")
    args = parser.parse_args(argv[1:])
    if len(args.files) < 2:
        parser.error("need at least two documents to compare")
    watch = re.compile(args.watch)

    groups = {}  # schema name -> [(path, doc)]
    for path in args.files:
        doc = load(path)
        groups.setdefault(doc["schema"]["name"], []).append((path, doc))

    out = ["# Bench trend report", ""]
    regressions = []
    for name in sorted(groups):
        series = groups[name]
        out.append(f"## `{name}`")
        out.append("_documents (oldest first): " +
                   ", ".join(f"`{p}`" for p, _ in series) + "_")
        out.append("")
        if len(series) < 2:
            out.append("_Only one document — nothing to compare._")
            out.append("")
            continue
        versions = {doc["schema"].get("version") for _, doc in series}
        if len(versions) != 1:
            raise SystemExit(
                f"bench_trend: {name}: mixed schema versions "
                f"{sorted(versions)}; comparing across versions would "
                "compare different field layouts")

        # Gate flips first — a gate that was true and went false is a
        # regression whatever the numbers say.
        gate_series = [doc.get("gates", {}) for _, doc in series]
        all_gates = sorted({g for gates in gate_series for g in gates})
        flips = []
        for gate in all_gates:
            values = [gates.get(gate) for gates in gate_series]
            known = [v for v in values if v is not None]
            if known and not all(v is True for v in known):
                flips.append((gate, values))
        if flips:
            out.append("### Gate regressions")
            for gate, values in flips:
                out.append(f"* **{gate}**: " +
                           " -> ".join(str(v) for v in values))
            out.append("")
            regressions.extend(f"gate {g}" for g, _ in flips)

        flats = [flatten(doc) for _, doc in series]
        labels = [label for label in flats[0]
                  if all(label in f for f in flats)]
        dropped = {label for f in flats for label in f} - set(labels)
        out.append("| metric | first | last | delta % | trend |")
        out.append("|---|---|---|---|---|")
        for label in labels:
            values = [f[label] for f in flats]
            first, last = values[0], values[-1]
            delta = ((last - first) / abs(first) * 100.0) if first else 0.0
            out.append(f"| `{label}` | {fmt(first)} | {fmt(last)} | "
                       f"{delta:+.1f} | `{spark(values)}` |")
            if (watch.search(label) and args.fail_regress is not None
                    and first and delta < -args.fail_regress):
                regressions.append(f"{label} ({delta:+.1f}%)")
        out.append("")
        if dropped:
            out.append(f"_{len(dropped)} metric(s) not present in every "
                       "document were skipped._")
            out.append("")

    if regressions and args.fail_regress is not None:
        out.append("## REGRESSIONS")
        out.extend(f"* {r}" for r in regressions)
        out.append("")

    text = "\n".join(out) + "\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"bench_trend: wrote {args.output}")
    if regressions and args.fail_regress is not None:
        print("bench_trend: regressions detected:", file=sys.stderr)
        for r in regressions:
            print(f"  - {r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
