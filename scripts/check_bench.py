#!/usr/bin/env python3
"""Validate committed BENCH_*.json documents against the schema registry.

Every scale driver writes its results through obs::RunRecorder, which
produces a self-describing envelope:

    {"schema": {"name": "pss.bench.<bench>", "version": N},
     "meta":   {bench, engine, protocol, protocol_id, n, c, cycles, seed, git},
     ...driver sections...,
     "gates":  {"<gate>": bool, ...},
     "gates_ok": bool}

This checker is the CI gate over those documents (it replaced the ad-hoc
`grep '"digest_ok": true'` steps): it refuses unknown schema names and
versions (the versioning rule in src/obs/include/pss/obs/metric_sink.hpp),
requires every registered section and gate to be present, requires every
gate to be true, and structurally validates digest fields — 16 lowercase
hex digits, and pairs whose `matches` flag is true must actually be equal.

Usage:
    python3 scripts/check_bench.py [FILE...]
With no arguments it checks every BENCH_*.json in the repository root.
Exit status 0 iff every file passes.
"""

from __future__ import annotations

import glob
import json
import os
import re
import sys

HEX16 = re.compile(r"^[0-9a-f]{16}$")
DIGEST_KEY = re.compile(r"(^|_)digest($|_)|_digest\b")

META_KEYS = {
    "bench": str,
    "engine": str,
    "protocol": str,
    "protocol_id": int,
    "n": int,
    "c": int,
    "cycles": int,
    "seed": int,
    "git": str,
}

# The registry: schema name -> version -> (required sections, required gates).
# ANY field-list change in a driver bumps its version and adds an entry here;
# a version this table does not know is a hard failure, never a warning.
REGISTRY = {
    "pss.bench.scale_million_nodes": {
        1: {"sections": ["runs"], "gates": ["exchanges_nonzero"]},
    },
    "pss.bench.scale_metrics": {
        1: {
            "sections": ["params", "runs", "differential"],
            "gates": ["exact_match", "zero_steady_allocations",
                      "sink_differential"],
        },
    },
    "pss.bench.scale_async": {
        1: {"sections": ["params", "runs"], "gates": ["digest"]},
    },
    "pss.bench.scale_parallel": {
        1: {"sections": ["runs"],
            "gates": ["deterministic_matches_sequential"]},
    },
    "pss.bench.scale_scenarios": {
        1: {"sections": ["params", "differential", "runs"],
            "gates": ["differential"]},
    },
    "pss.bench.scale_transport": {
        1: {"sections": ["params", "differential", "loopback", "udp"],
            "gates": ["differential"]},
    },
    "pss.bench.scale_trace": {
        1: {"sections": ["params", "differential", "runs"],
            "gates": ["differential", "events_recorded"]},
    },
}


def iter_digest_items(node, path=""):
    """Yields (path, key, value) for every *digest* key anywhere in the doc."""
    if isinstance(node, dict):
        for key, value in node.items():
            here = f"{path}.{key}" if path else key
            if DIGEST_KEY.search(key) and not isinstance(value, (dict, list)):
                yield here, key, value
            yield from iter_digest_items(value, here)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from iter_digest_items(value, f"{path}[{index}]")


def check_digest_pairs(node, path, errors):
    """Entries that claim `matches: true` must have equal digest pairs."""
    if isinstance(node, dict):
        digests = [v for k, v in node.items()
                   if DIGEST_KEY.search(k) and isinstance(v, str)]
        if node.get("matches") is True and len(digests) >= 2:
            if len(set(digests)) != 1:
                errors.append(
                    f"{path}: matches=true but digests differ: {digests}")
        for key, value in node.items():
            check_digest_pairs(value, f"{path}.{key}" if path else key, errors)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            check_digest_pairs(value, f"{path}[{index}]", errors)


def check_file(path):
    errors = []
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"unreadable or invalid JSON: {exc}"]

    schema = doc.get("schema")
    if not isinstance(schema, dict):
        return ["missing top-level 'schema' object (pre-RunRecorder format?)"]
    name, version = schema.get("name"), schema.get("version")
    versions = REGISTRY.get(name)
    if versions is None:
        return [f"unknown schema name {name!r}"]
    spec = versions.get(version)
    if spec is None:
        return [f"schema {name} version {version} not in the registry "
                f"(known: {sorted(versions)}); readers refuse unknown versions"]

    meta = doc.get("meta")
    if not isinstance(meta, dict):
        errors.append("missing 'meta' object")
    else:
        for key, expected_type in META_KEYS.items():
            if key not in meta:
                errors.append(f"meta.{key} missing")
            elif not isinstance(meta[key], expected_type):
                errors.append(f"meta.{key} is {type(meta[key]).__name__}, "
                              f"want {expected_type.__name__}")
        expected_bench = name.removeprefix("pss.bench.")
        if meta.get("bench") != expected_bench:
            errors.append(f"meta.bench={meta.get('bench')!r} does not match "
                          f"schema name {name!r}")

    for section in spec["sections"]:
        value = doc.get(section)
        if value is None:
            errors.append(f"required section {section!r} missing")
        elif isinstance(value, list) and not value:
            errors.append(f"required section {section!r} is empty")

    gates = doc.get("gates")
    if not isinstance(gates, dict):
        errors.append("missing 'gates' object")
    else:
        for gate in spec["gates"]:
            if gate not in gates:
                errors.append(f"required gate {gate!r} missing")
        for gate, value in gates.items():
            if value is not True:
                errors.append(f"gate {gate!r} is {value!r}, want true")
        if doc.get("gates_ok") is not all(v is True for v in gates.values()):
            errors.append("gates_ok does not equal the conjunction of gates")
    if doc.get("gates_ok") is not True:
        errors.append(f"gates_ok is {doc.get('gates_ok')!r}, want true")

    # Gate names may themselves contain "digest" (boolean verdicts, not
    # digest values), so the structural scan skips the gates object.
    body = {k: v for k, v in doc.items() if k != "gates"}
    for dpath, _key, value in iter_digest_items(body):
        if not isinstance(value, str) or not HEX16.match(value):
            errors.append(f"{dpath}: digest {value!r} is not 16 lowercase "
                          "hex digits (see obs::to_hex16)")
    check_digest_pairs(doc, "", errors)
    return errors


def main(argv):
    paths = argv[1:]
    if not paths:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print("check_bench: no BENCH_*.json files found", file=sys.stderr)
        return 1

    failed = 0
    for path in paths:
        errors = check_file(path)
        label = os.path.relpath(path)
        if errors:
            failed += 1
            print(f"FAIL {label}")
            for error in errors:
                print(f"  - {error}")
        else:
            print(f"ok   {label}")
    if failed:
        print(f"check_bench: {failed}/{len(paths)} file(s) failed",
              file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
