#!/usr/bin/env python3
"""Check that relative markdown links in the repo point at existing files.

Scans every tracked *.md file for [text](target) links, resolves relative
targets against the file's directory, and fails with a listing of broken
ones. External links (http/https/mailto) and pure intra-page anchors are
skipped; a '#fragment' suffix on a relative link is ignored for existence
checking. No dependencies beyond the standard library.

Usage: python3 scripts/check_links.py [repo-root]
"""

import os
import re
import sys

# [text](target) — skips images' leading '!' capture-wise (same syntax) and
# tolerates titles: [text](target "title").
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "build", ".cache"}


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    broken = []
    checked = 0
    for path in sorted(markdown_files(root)):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            checked += 1
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target))
            if not os.path.exists(resolved):
                broken.append((os.path.relpath(path, root), match.group(1)))
    if broken:
        print(f"{len(broken)} broken markdown link(s):")
        for source, target in broken:
            print(f"  {source}: {target}")
        return 1
    print(f"all {checked} relative markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
