#!/usr/bin/env python3
"""Render a markdown report from recorded JSONL metric traces.

The bench drivers record their figure data as self-describing JSON-lines
files (set PSS_TRACE_DIR; see docs/METRICS.md): line 1 is a header object
carrying the schema name/version, the typed field list, and the run
metadata; every further line is one row. This script turns a directory of
such traces into one markdown report reproducing the paper's evaluation
figures (Jelasity et al., Middleware 2004):

    Figure 2  — pss.experiments.series        (growing overlay convergence)
    Figure 4  — pss.bench.fig4_degree_distribution
    Figure 5  — pss.bench.fig5_autocorrelation
    Figure 6  — pss.bench.fig6_robustness
    Figure 7  — pss.bench.fig7_selfhealing
    snapshots — pss.obs.snapshot              (any StreamingObserver trace)

Versioning rule (src/obs/include/pss/obs/metric_sink.hpp): a known schema
name with an unknown version is a hard error — this reader refuses to
guess a column layout. A schema name it has never heard of degrades to a
generic table, clearly marked as such.

Usage:
    python3 scripts/render_report.py TRACE_DIR [-o REPORT.md]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

SPARK_LEVELS = " .:-=+*#%@"


class TraceError(Exception):
    pass


def load_trace(path):
    """Returns (header, rows) for one JSONL trace file."""
    with open(path, encoding="utf-8") as handle:
        first = handle.readline()
        if not first.strip():
            raise TraceError("empty file")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise TraceError(f"bad header line: {exc}") from exc
        if header.get("pss_metrics") != 1:
            raise TraceError("not a pss-metrics JSONL file "
                             "(missing pss_metrics=1 header)")
        rows = []
        for lineno, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise TraceError(f"line {lineno}: {exc}") from exc
    return header, rows


def spark(values, width=60):
    """One-line ASCII chart of a numeric series (min..max normalized)."""
    values = [v for v in values if isinstance(v, (int, float))]
    if not values:
        return "(no data)"
    if len(values) > width:
        # Downsample by bucket mean so long runs still fit one line.
        step = len(values) / width
        values = [
            sum(values[int(i * step):max(int(i * step) + 1,
                                         int((i + 1) * step))]) /
            max(1, int((i + 1) * step) - int(i * step))
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    if hi == lo:
        return SPARK_LEVELS[0] * len(values) + f"  (constant {lo:g})"
    chars = [SPARK_LEVELS[int((v - lo) / (hi - lo) *
                              (len(SPARK_LEVELS) - 1))] for v in values]
    return "".join(chars) + f"  [{lo:g} .. {hi:g}]"


def fmt(value):
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def meta_block(header):
    meta = header.get("meta", {})
    schema = header.get("schema", {})
    keys = ["bench", "engine", "protocol", "protocol_id", "n", "c",
            "cycles", "seed", "git"]
    pairs = " · ".join(f"{k}={meta.get(k)}" for k in keys if k in meta)
    return (f"schema `{schema.get('name')}` v{schema.get('version')} — "
            f"{pairs}\n")


def by_protocol(rows):
    groups = {}
    for row in rows:
        groups.setdefault(row.get("protocol", "-"), []).append(row)
    return groups


def table(out, fields, rows, limit=None):
    out.append("| " + " | ".join(fields) + " |")
    out.append("|" + "|".join("---" for _ in fields) + "|")
    shown = rows if limit is None else rows[:limit]
    for row in shown:
        out.append("| " + " | ".join(fmt(row.get(f, "")) for f in fields) +
                   " |")
    if limit is not None and len(rows) > limit:
        out.append(f"| … {len(rows) - limit} more rows … " +
                   "|" * len(fields))
    out.append("")


def render_series(out, header, rows):
    """Figure 2/3 style: per-protocol convergence of the overlay metrics."""
    out.append(meta_block(header))
    for protocol, series in sorted(by_protocol(rows).items()):
        series.sort(key=lambda r: r.get("cycle", 0))
        out.append(f"**{protocol}** ({len(series)} cycles)")
        out.append("")
        out.append("```")
        for metric in ("avg_degree", "clustering", "path_length",
                       "largest_component"):
            if any(metric in r for r in series):
                out.append(f"{metric:>18}  "
                           f"{spark([r.get(metric) for r in series])}")
        out.append("```")
        final = series[-1]
        out.append("")
        out.append(f"final cycle {final.get('cycle')}: " + ", ".join(
            f"{k}={fmt(final[k])}" for k in
            ("live_nodes", "avg_degree", "clustering", "path_length",
             "components", "dead_links") if k in final))
        out.append("")


def render_fig4(out, header, rows):
    """Degree distribution histogram per protocol (log-tail table)."""
    out.append(meta_block(header))
    for protocol, hist in sorted(by_protocol(rows).items()):
        counts = {}
        for row in hist:
            counts[row["degree"]] = counts.get(row["degree"], 0) + row["count"]
        degrees = sorted(counts)
        total = sum(counts.values())
        out.append(f"**{protocol}** — {total} node-samples, degree range "
                   f"[{degrees[0]}, {degrees[-1]}]")
        out.append("")
        out.append("```")
        out.append("degree  " + spark([counts.get(d, 0)
                                       for d in range(degrees[0],
                                                      degrees[-1] + 1)]))
        out.append("```")
        out.append("")


def render_fig5(out, header, rows):
    """Autocorrelation of the degree time series, per protocol."""
    out.append(meta_block(header))
    for protocol, series in sorted(by_protocol(rows).items()):
        series.sort(key=lambda r: r.get("lag", 0))
        out.append(f"**{protocol}**")
        out.append("")
        out.append("```")
        out.append("autocorr  " +
                   spark([r.get("autocorrelation") for r in series]))
        out.append("```")
        out.append("")


def render_fig6(out, header, rows):
    out.append(meta_block(header))
    fields = ["protocol", "removed_fraction", "avg_outside_largest",
              "partitioned_fraction"]
    table(out, fields, sorted(rows, key=lambda r: (r.get("protocol", ""),
                                                   r.get("removed_fraction",
                                                         0))))


def render_fig7(out, header, rows):
    out.append(meta_block(header))
    for protocol, series in sorted(by_protocol(rows).items()):
        series.sort(key=lambda r: r.get("cycles_after_failure", 0))
        out.append(f"**{protocol}**")
        out.append("")
        out.append("```")
        out.append("dead_links  " +
                   spark([r.get("dead_links") for r in series]))
        out.append("```")
        healed = [r for r in series if r.get("dead_links") == 0]
        if healed:
            out.append(f"first fully-healed cycle: "
                       f"{healed[0]['cycles_after_failure']}")
        out.append("")


def render_snapshot(out, header, rows):
    out.append(meta_block(header))
    out.append("```")
    for metric in ("live", "degree_mean", "degree_variance", "clustering",
                   "path_length", "dead_links", "components"):
        if any(metric in r for r in rows):
            out.append(f"{metric:>16}  {spark([r.get(metric) for r in rows])}")
    out.append("```")
    out.append("")


def render_profile(out, header, rows):
    """Per-phase latency percentile table from pss.obs.profile histogram
    rows (one row per non-empty log2 bucket; see obs::Profiler). The
    percentile rule matches Profiler::percentile_ns — the upper edge of
    the first bucket whose cumulative count reaches ceil(q * total)."""
    import math

    out.append(meta_block(header))
    phases = {}
    for row in rows:
        phases.setdefault(row.get("phase", "-"), []).append(row)

    def percentile(buckets, total, q):
        rank = max(1, math.ceil(q * total))
        seen = 0
        for b in buckets:
            seen += b["count"]
            if seen >= rank:
                return b["hi_ns"]
        return buckets[-1]["hi_ns"] if buckets else 0

    stats_rows = []
    for phase, buckets in sorted(phases.items()):
        buckets.sort(key=lambda b: b.get("bucket", 0))
        total = sum(b["count"] for b in buckets)
        if total == 0:
            continue
        stats_rows.append({
            "phase": phase,
            "count": total,
            "p50_ns": percentile(buckets, total, 0.50),
            "p90_ns": percentile(buckets, total, 0.90),
            "p99_ns": percentile(buckets, total, 0.99),
            "max_ns": buckets[-1]["hi_ns"],
        })
    table(out, ["phase", "count", "p50_ns", "p90_ns", "p99_ns", "max_ns"],
          stats_rows)
    for phase, buckets in sorted(phases.items()):
        lo = min(b["bucket"] for b in buckets)
        hi = max(b["bucket"] for b in buckets)
        counts = {b["bucket"]: b["count"] for b in buckets}
        out.append("```")
        out.append(f"{phase:>16}  " +
                   spark([counts.get(b, 0) for b in range(lo, hi + 1)]))
        out.append("```")
    out.append("")


def render_generic(out, header, rows):
    out.append(meta_block(header))
    out.append("_Unregistered schema — generic table render._")
    out.append("")
    fields = [f["name"] for f in header.get("fields", [])]
    if fields and rows:
        table(out, fields, rows, limit=40)


# (title, renderer) per known schema name, keyed by supported version.
RENDERERS = {
    "pss.experiments.series": {1: ("Figure 2/3 — convergence of the overlay",
                                   render_series)},
    "pss.bench.fig4_degree_distribution": {
        1: ("Figure 4 — degree distribution", render_fig4)},
    "pss.bench.fig5_autocorrelation": {
        1: ("Figure 5 — degree autocorrelation", render_fig5)},
    "pss.bench.fig6_robustness": {
        1: ("Figure 6 — robustness to node removal", render_fig6)},
    "pss.bench.fig7_selfhealing": {
        1: ("Figure 7 — self-healing after catastrophic failure",
            render_fig7)},
    "pss.obs.snapshot": {1: ("Streamed snapshots", render_snapshot)},
    "pss.obs.profile": {
        1: ("Runtime profiler — per-phase exchange latency",
            render_profile)},
}


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace_dir", help="directory of *.jsonl traces")
    parser.add_argument("-o", "--output", default="-",
                        help="output markdown path (default stdout)")
    args = parser.parse_args(argv[1:])

    paths = sorted(
        os.path.join(args.trace_dir, name)
        for name in os.listdir(args.trace_dir) if name.endswith(".jsonl"))
    if not paths:
        print(f"render_report: no .jsonl traces in {args.trace_dir}",
              file=sys.stderr)
        return 1

    out = ["# Peer sampling service — recorded evaluation report", ""]
    failed = 0
    for path in paths:
        name = os.path.basename(path)
        try:
            header, rows = load_trace(path)
        except TraceError as exc:
            print(f"render_report: {name}: {exc}", file=sys.stderr)
            failed += 1
            continue
        schema = header.get("schema", {})
        versions = RENDERERS.get(schema.get("name"))
        if versions is not None and schema.get("version") not in versions:
            print(f"render_report: {name}: schema {schema.get('name')} "
                  f"version {schema.get('version')} not supported "
                  f"(known: {sorted(versions)})", file=sys.stderr)
            failed += 1
            continue
        if versions is None:
            title, renderer = f"{schema.get('name')}", render_generic
        else:
            title, renderer = versions[schema["version"]]
        out.append(f"## {title}")
        out.append(f"_source: `{name}`, {len(rows)} rows_")
        out.append("")
        renderer(out, header, rows)

    text = "\n".join(out) + "\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"render_report: wrote {args.output} "
              f"({len(paths) - failed}/{len(paths)} traces rendered)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
