#!/usr/bin/env python3
"""Read PSSTRACE1 flight-recorder dumps and stitch causal exchange chains.

A dump is self-describing (see src/obs/include/pss/obs/trace.hpp):

    offset  0: magic "PSSTRACE1" (9 bytes) + 1 pad byte
    offset 10: u16 event_stride_bytes (32)
    offset 12: u32 header_len
    offset 16: u64 capacity_events
    offset 24: u64 total_recorded
    offset 32: u64 event_count
    offset 40: header_len bytes of JSON  {"pss_metrics":1,"schema":
               {"name":"pss.obs.trace","version":1},"fields":[...],"meta":...}
    then event_count packed 32-byte little-endian events, oldest first.

This tool refuses unknown schema names/versions and unexpected strides —
the versioning rule every reader in this repo follows.

Because both UDP endpoints stamp their spans with the same wire u64
exchange id (src/transport/wire.hpp), dumps taken from SEPARATE daemon
processes stitch into causal chains keyed by (exchange_id, initiator,
peer):

    request_sent on A(->B)  ->  merge_apply on B(from A)
                            ->  reply_received on A(from B)

Commands:
    dump FILE...                 print events as text
    stitch FILE... [--json] [--require-chain N] [--max-chains N]
                                 stitch chains + per-phase latency stats

`stitch --require-chain N` exits non-zero unless at least N chains have
both a request_sent and the matching remote merge_apply — the CI
assertion that cross-process causality survives a real UDP session
(scripts/udp_smoke.sh).
"""

from __future__ import annotations

import argparse
import json
import math
import struct
import sys

MAGIC = b"PSSTRACE1"
STRIDE = 32
SCHEMA_NAME = "pss.obs.trace"
KNOWN_VERSIONS = {1}
NO_PEER = 0xFFFFFFFF

PHASES = {
    0: "select",
    1: "merge_apply",
    2: "request_sent",
    3: "reply_received",
    4: "timeout",
}


class Event:
    __slots__ = ("wall_ns", "exchange_id", "node", "peer", "duration_ns",
                 "tick", "kind", "source")

    def __init__(self, fields, source):
        (self.wall_ns, self.exchange_id, self.node, self.peer,
         self.duration_ns, self.tick, self.kind, _reserved) = fields
        self.source = source

    @property
    def phase(self):
        return PHASES.get(self.kind, f"kind{self.kind}")

    def as_dict(self):
        return {
            "wall_ns": self.wall_ns,
            "exchange_id": self.exchange_id,
            "node": self.node,
            "peer": None if self.peer == NO_PEER else self.peer,
            "duration_ns": self.duration_ns,
            "tick": self.tick,
            "phase": self.phase,
            "source": self.source,
        }


def load_dump(path):
    """Returns (header_dict, [Event])."""
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < 40 or blob[:9] != MAGIC:
        raise SystemExit(f"{path}: not a PSSTRACE1 dump")
    stride, header_len = struct.unpack_from("<HI", blob, 10)
    _capacity, _total, count = struct.unpack_from("<QQQ", blob, 16)
    if stride != STRIDE:
        raise SystemExit(f"{path}: event stride {stride}, expected {STRIDE}")
    try:
        header = json.loads(blob[40:40 + header_len])
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path}: bad embedded header: {exc}")
    schema = header.get("schema", {})
    if schema.get("name") != SCHEMA_NAME:
        raise SystemExit(f"{path}: schema {schema.get('name')!r}, "
                         f"expected {SCHEMA_NAME!r}")
    if schema.get("version") not in KNOWN_VERSIONS:
        raise SystemExit(
            f"{path}: schema version {schema.get('version')!r} not in "
            f"{sorted(KNOWN_VERSIONS)}; readers refuse unknown versions")
    offset = 40 + header_len
    need = offset + count * STRIDE
    if len(blob) < need:
        raise SystemExit(f"{path}: truncated ({len(blob)} bytes, need {need})")
    events = [Event(struct.unpack_from("<QQIIIHBB", blob, offset + i * STRIDE),
                    path)
              for i in range(count)]
    return header, events


def percentile(sorted_values, q):
    if not sorted_values:
        return 0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def phase_stats(events):
    by_phase = {}
    for e in events:
        by_phase.setdefault(e.phase, []).append(e.duration_ns)
    stats = {}
    for phase, durations in sorted(by_phase.items()):
        durations.sort()
        stats[phase] = {
            "count": len(durations),
            "p50_ns": percentile(durations, 0.50),
            "p90_ns": percentile(durations, 0.90),
            "p99_ns": percentile(durations, 0.99),
            "max_ns": durations[-1],
        }
    return stats


def stitch_chains(events):
    """Chains keyed by (exchange_id, initiator, peer) — the id alone can
    collide across processes, the endpoint pair disambiguates."""
    chains = {}

    def chain(key):
        return chains.setdefault(
            key, {"exchange_id": key[0], "initiator": key[1], "peer": key[2],
                  "request_sent": None, "merge_apply": None,
                  "reply_received": None, "timeout": None})

    for e in events:
        if e.peer == NO_PEER or e.exchange_id == 0:
            continue
        if e.phase in ("request_sent", "reply_received", "timeout"):
            slot = chain((e.exchange_id, e.node, e.peer))
        elif e.phase == "merge_apply":
            # Passive side: e.node is the peer, e.peer the initiator.
            slot = chain((e.exchange_id, e.peer, e.node))
        else:
            continue
        if slot[e.phase] is None:
            slot[e.phase] = e

    out = []
    for key in sorted(chains):
        c = chains[key]
        rs, ma, rr = c["request_sent"], c["merge_apply"], c["reply_received"]
        complete = rs is not None and ma is not None
        cross = complete and rs.source != ma.source
        row = {
            "exchange_id": c["exchange_id"],
            "initiator": c["initiator"],
            "peer": c["peer"],
            "complete": complete,
            "cross_process": cross,
            "timed_out": c["timeout"] is not None,
            "request_to_merge_ns":
                ma.wall_ns - rs.wall_ns if complete else None,
            "request_to_reply_ns":
                rr.wall_ns - rs.wall_ns if rs and rr else None,
            "phases": {p: c[p].as_dict() for p in
                       ("request_sent", "merge_apply", "reply_received",
                        "timeout") if c[p] is not None},
        }
        out.append(row)
    return out


def cmd_dump(args):
    for path in args.files:
        header, events = load_dump(path)
        meta = header.get("meta", {})
        print(f"# {path}: {len(events)} events "
              f"(n={meta.get('n')}, engine={meta.get('engine')})")
        for e in events:
            peer = "-" if e.peer == NO_PEER else e.peer
            print(f"{e.wall_ns} {e.phase:<14} node={e.node:<8} peer={peer:<8} "
                  f"xid={e.exchange_id:<8} dur={e.duration_ns}ns "
                  f"tick={e.tick}")
    return 0


def cmd_stitch(args):
    events = []
    for path in args.files:
        _header, file_events = load_dump(path)
        events.extend(file_events)
    chains = stitch_chains(events)
    complete = [c for c in chains if c["complete"]]
    cross = [c for c in complete if c["cross_process"]]
    stats = phase_stats(events)

    report = {
        "files": args.files,
        "events": len(events),
        "chains": len(chains),
        "complete_chains": len(complete),
        "cross_process_chains": len(cross),
        "phase_stats": stats,
        "sample_chains": chains[:args.max_chains],
    }
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        print(f"events={len(events)} chains={len(chains)} "
              f"complete={len(complete)} cross_process={len(cross)}")
        print(f"{'phase':<16} {'count':>8} {'p50':>10} {'p90':>10} "
              f"{'p99':>10} {'max':>10}  (ns)")
        for phase, s in stats.items():
            print(f"{phase:<16} {s['count']:>8} {s['p50_ns']:>10} "
                  f"{s['p90_ns']:>10} {s['p99_ns']:>10} {s['max_ns']:>10}")
        for c in complete[:args.max_chains]:
            hops = " -> ".join(p for p in ("request_sent", "merge_apply",
                                           "reply_received")
                               if p in c["phases"])
            print(f"chain xid={c['exchange_id']} "
                  f"{c['initiator']}->{c['peer']}: {hops} "
                  f"(req->merge {c['request_to_merge_ns']}ns"
                  + (f", req->reply {c['request_to_reply_ns']}ns"
                     if c["request_to_reply_ns"] is not None else "") + ")")

    if args.require_chain > 0 and len(complete) < args.require_chain:
        print(f"trace_tool: FAIL — {len(complete)} complete chain(s), "
              f"need {args.require_chain}", file=sys.stderr)
        return 1
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_dump = sub.add_parser("dump", help="print events as text")
    p_dump.add_argument("files", nargs="+")
    p_dump.set_defaults(func=cmd_dump)

    p_stitch = sub.add_parser("stitch", help="stitch causal chains")
    p_stitch.add_argument("files", nargs="+")
    p_stitch.add_argument("--json", action="store_true",
                          help="emit the full report as JSON")
    p_stitch.add_argument("--require-chain", type=int, default=0,
                          metavar="N",
                          help="exit non-zero unless >= N complete chains")
    p_stitch.add_argument("--max-chains", type=int, default=10, metavar="N",
                          help="sample chains to print/embed")
    p_stitch.set_defaults(func=cmd_stitch)

    args = parser.parse_args(argv[1:])
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
