#!/usr/bin/env bash
# End-to-end UDP gossip session smoke: 4 daemons + 1 client on localhost.
#
# Usage: scripts/udp_smoke.sh <build-examples-dir> [port-base]
#
# Every process must exit 0 — the daemons assert they actually exchanged
# views, the client asserts the PeerSamplingService produced samples. CI
# runs this after the tier-1 build.
set -u

EXAMPLES_DIR=${1:?usage: udp_smoke.sh <build-examples-dir> [port-base]}
PORT_BASE=${2:-$((17000 + RANDOM % 2000))}
NODES=5
CYCLES=15
PERIOD_MS=40

echo "udp_smoke: port-base=${PORT_BASE} nodes=${NODES} cycles=${CYCLES}"

pids=()
for id in 1 2 3 4; do
  "${EXAMPLES_DIR}/udp_gossip_daemon" \
    --id="${id}" --nodes="${NODES}" --port-base="${PORT_BASE}" \
    --cycles="${CYCLES}" --period-ms="${PERIOD_MS}" &
  pids+=($!)
done

"${EXAMPLES_DIR}/udp_gossip_client" \
  --id=0 --nodes="${NODES}" --port-base="${PORT_BASE}" \
  --cycles="${CYCLES}" --period-ms="${PERIOD_MS}" &
pids+=($!)

status=0
for pid in "${pids[@]}"; do
  if ! wait "${pid}"; then
    status=1
  fi
done

if [ "${status}" -ne 0 ]; then
  echo "udp_smoke: FAILED" >&2
  exit 1
fi
echo "udp_smoke: ok"
