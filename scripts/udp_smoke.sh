#!/usr/bin/env bash
# End-to-end UDP gossip session smoke: 4 daemons + 1 client on localhost.
#
# Usage: scripts/udp_smoke.sh <build-examples-dir> [port-base]
#
# Every process must exit 0 — the daemons assert they actually exchanged
# views, the client asserts the PeerSamplingService produced samples. CI
# runs this after the tier-1 build.
set -u

EXAMPLES_DIR=${1:?usage: udp_smoke.sh <build-examples-dir> [port-base]}
PORT_BASE=${2:-$((17000 + RANDOM % 2000))}
NODES=5
CYCLES=15
PERIOD_MS=40

echo "udp_smoke: port-base=${PORT_BASE} nodes=${NODES} cycles=${CYCLES}"

METRICS_DIR=$(mktemp -d)
trap 'rm -rf "${METRICS_DIR}"' EXIT

pids=()
for id in 1 2 3 4; do
  extra=()
  if [ "${id}" -eq 1 ]; then
    # Daemon 1 also exercises the live metrics path: JSONL stream plus a
    # ring buffer smaller than the run, dumped at exit.
    extra=(--metrics="${METRICS_DIR}/daemon1.jsonl"
           --metrics-ring=4
           --metrics-dump="${METRICS_DIR}/daemon1.ring")
  fi
  "${EXAMPLES_DIR}/udp_gossip_daemon" \
    --id="${id}" --nodes="${NODES}" --port-base="${PORT_BASE}" \
    --cycles="${CYCLES}" --period-ms="${PERIOD_MS}" "${extra[@]}" &
  pids+=($!)
done

"${EXAMPLES_DIR}/udp_gossip_client" \
  --id=0 --nodes="${NODES}" --port-base="${PORT_BASE}" \
  --cycles="${CYCLES}" --period-ms="${PERIOD_MS}" &
pids+=($!)

status=0
for pid in "${pids[@]}"; do
  if ! wait "${pid}"; then
    status=1
  fi
done

if [ "${status}" -ne 0 ]; then
  echo "udp_smoke: FAILED" >&2
  exit 1
fi

# The metrics stream must be self-describing: line 1 carries the schema
# name + version, and every tick produced one row (header + CYCLES lines).
if ! head -1 "${METRICS_DIR}/daemon1.jsonl" \
    | grep -q '"name":"pss.transport.service_tick","version":1'; then
  echo "udp_smoke: FAILED (metrics JSONL missing schema header)" >&2
  exit 1
fi
lines=$(wc -l < "${METRICS_DIR}/daemon1.jsonl")
if [ "${lines}" -ne $((CYCLES + 1)) ]; then
  echo "udp_smoke: FAILED (expected $((CYCLES + 1)) metrics lines, got ${lines})" >&2
  exit 1
fi
if ! head -c 8 "${METRICS_DIR}/daemon1.ring" | grep -q 'PSSRING1'; then
  echo "udp_smoke: FAILED (ring dump missing magic)" >&2
  exit 1
fi
echo "udp_smoke: metrics ok (JSONL header + ${lines} lines, ring dump)"
echo "udp_smoke: ok"
