#!/usr/bin/env bash
# End-to-end UDP gossip session smoke: 4 daemons + 1 client on localhost.
#
# Usage: scripts/udp_smoke.sh <build-examples-dir> [port-base]
#
# Every process must exit 0 — the daemons assert they actually exchanged
# views, the client asserts the PeerSamplingService produced samples. CI
# runs this after the tier-1 build. On top of the gossip assertion:
#   * daemon 1 streams JSONL metrics + a binary ring dump (checked below);
#   * every daemon writes a PSSTRACE1 flight-recorder dump, and
#     scripts/trace_tool.py must stitch them into at least one complete
#     cross-process request->reply chain — the causal-tracing contract;
#   * daemon 1 serves the Prometheus pull endpoint, which must answer a
#     scrape with the profiler histograms while the session runs.
set -u

EXAMPLES_DIR=${1:?usage: udp_smoke.sh <build-examples-dir> [port-base]}
PORT_BASE=${2:-$((17000 + RANDOM % 2000))}
SCRIPT_DIR=$(cd "$(dirname "$0")" && pwd)
NODES=5
CYCLES=15
PERIOD_MS=40

echo "udp_smoke: port-base=${PORT_BASE} nodes=${NODES} cycles=${CYCLES}"

METRICS_DIR=$(mktemp -d)
trap 'rm -rf "${METRICS_DIR}"' EXIT

pids=()
for id in 1 2 3 4; do
  # Every daemon carries the flight recorder so the dumps stitch into
  # cross-process causal chains below.
  extra=(--trace-dump="${METRICS_DIR}/trace${id}.bin")
  if [ "${id}" -eq 1 ]; then
    # Daemon 1 also exercises the live metrics path (JSONL stream plus a
    # ring buffer smaller than the run, dumped at exit) and the Prometheus
    # pull endpoint; its stdout is captured to recover the ephemeral port.
    extra+=(--metrics="${METRICS_DIR}/daemon1.jsonl"
            --metrics-ring=4
            --metrics-dump="${METRICS_DIR}/daemon1.ring"
            --http-port=0
            --http-linger-ms=3000)
    "${EXAMPLES_DIR}/udp_gossip_daemon" \
      --id="${id}" --nodes="${NODES}" --port-base="${PORT_BASE}" \
      --cycles="${CYCLES}" --period-ms="${PERIOD_MS}" "${extra[@]}" \
      > "${METRICS_DIR}/daemon1.log" 2>&1 &
  else
    "${EXAMPLES_DIR}/udp_gossip_daemon" \
      --id="${id}" --nodes="${NODES}" --port-base="${PORT_BASE}" \
      --cycles="${CYCLES}" --period-ms="${PERIOD_MS}" "${extra[@]}" &
  fi
  pids+=($!)
done

# Scrape the pull endpoint while the session runs: recover the bound port
# from daemon 1's banner, then poll until the profiler histograms appear.
HTTP_PORT=""
for _ in $(seq 1 50); do
  HTTP_PORT=$(grep -o 'http endpoint on 127.0.0.1:[0-9]*' \
                "${METRICS_DIR}/daemon1.log" 2>/dev/null \
              | grep -o '[0-9]*$' || true)
  [ -n "${HTTP_PORT}" ] && break
  sleep 0.1
done
SCRAPE=""
if [ -n "${HTTP_PORT}" ]; then
  for _ in $(seq 1 50); do
    SCRAPE=$(curl -s --max-time 2 "http://127.0.0.1:${HTTP_PORT}/metrics" \
             || true)
    case "${SCRAPE}" in *pss_phase_duration_ns*) break ;; esac
    sleep 0.1
  done
fi

"${EXAMPLES_DIR}/udp_gossip_client" \
  --id=0 --nodes="${NODES}" --port-base="${PORT_BASE}" \
  --cycles="${CYCLES}" --period-ms="${PERIOD_MS}" &
pids+=($!)

status=0
for pid in "${pids[@]}"; do
  if ! wait "${pid}"; then
    status=1
  fi
done

cat "${METRICS_DIR}/daemon1.log"

if [ "${status}" -ne 0 ]; then
  echo "udp_smoke: FAILED" >&2
  exit 1
fi

case "${SCRAPE}" in
  *pss_phase_duration_ns*) ;;
  *)
    echo "udp_smoke: FAILED (pull endpoint did not serve histograms)" >&2
    exit 1 ;;
esac
echo "udp_smoke: pull endpoint ok (port ${HTTP_PORT})"

# The metrics stream must be self-describing: line 1 carries the schema
# name + version, and every tick produced one row (header + CYCLES lines).
if ! head -1 "${METRICS_DIR}/daemon1.jsonl" \
    | grep -q '"name":"pss.transport.service_tick","version":1'; then
  echo "udp_smoke: FAILED (metrics JSONL missing schema header)" >&2
  exit 1
fi
lines=$(wc -l < "${METRICS_DIR}/daemon1.jsonl")
if [ "${lines}" -ne $((CYCLES + 1)) ]; then
  echo "udp_smoke: FAILED (expected $((CYCLES + 1)) metrics lines, got ${lines})" >&2
  exit 1
fi
if ! head -c 8 "${METRICS_DIR}/daemon1.ring" | grep -q 'PSSRING1'; then
  echo "udp_smoke: FAILED (ring dump missing magic)" >&2
  exit 1
fi
echo "udp_smoke: metrics ok (JSONL header + ${lines} lines, ring dump)"

# Every daemon must have dumped a PSSTRACE1 flight recording, and the four
# dumps must stitch into at least one complete cross-process request->
# reply chain — the causal-tracing acceptance check (docs/TRACING.md).
for id in 1 2 3 4; do
  if ! head -c 9 "${METRICS_DIR}/trace${id}.bin" | grep -q 'PSSTRACE1'; then
    echo "udp_smoke: FAILED (trace dump ${id} missing magic)" >&2
    exit 1
  fi
done
if ! python3 "${SCRIPT_DIR}/trace_tool.py" stitch \
    "${METRICS_DIR}"/trace*.bin --require-chain 1; then
  echo "udp_smoke: FAILED (no cross-process causal chain stitched)" >&2
  exit 1
fi
echo "udp_smoke: trace stitching ok"
echo "udp_smoke: ok"
