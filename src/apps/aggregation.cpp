#include "pss/apps/aggregation.hpp"

#include <cmath>
#include <functional>

#include "pss/common/check.hpp"
#include "pss/stats/descriptive.hpp"

namespace pss::apps {

double AggregationResult::mean_contraction() const {
  if (variance_per_round.size() < 2) return 1.0;
  // Geometric mean of the per-round ratios, ignoring rounds where the
  // variance already collapsed to (near) zero.
  double log_sum = 0;
  std::size_t counted = 0;
  for (std::size_t r = 0; r + 1 < variance_per_round.size(); ++r) {
    const double before = variance_per_round[r];
    const double after = variance_per_round[r + 1];
    if (before > 1e-12 && after > 1e-12) {
      log_sum += std::log(after / before);
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(counted));
}

std::size_t AggregationResult::rounds_to_variance(double target) const {
  for (std::size_t r = 0; r < variance_per_round.size(); ++r) {
    if (variance_per_round[r] <= target) return r;
  }
  return kNever;
}

namespace {

double population_variance(const std::vector<double>& values) {
  stats::Accumulator acc;
  for (double v : values) acc.add(v);
  return acc.variance_population();
}

/// Shared averaging loop: `partner(i)` returns the exchange partner of
/// node i this round, or an out-of-range index for "skip".
template <typename PartnerFn>
AggregationResult run_rounds(std::vector<double> values,
                             const AggregationParams& params,
                             PartnerFn&& partner,
                             const std::function<void()>& advance_round) {
  const std::size_t n = values.size();
  PSS_CHECK_MSG(n >= 2, "aggregation needs at least two nodes");
  AggregationResult result;
  {
    stats::Accumulator acc;
    for (double v : values) acc.add(v);
    result.true_mean = acc.mean();
  }
  result.variance_per_round.push_back(population_variance(values));
  for (Cycle round = 0; round < params.rounds; ++round) {
    if (advance_round) advance_round();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = partner(i);
      if (j >= n || j == i) continue;
      const double avg = (values[i] + values[j]) / 2.0;
      values[i] = avg;
      values[j] = avg;
    }
    result.variance_per_round.push_back(population_variance(values));
  }
  return result;
}

}  // namespace

AggregationResult run_averaging_over_gossip(sim::Network& network,
                                            sim::CycleEngine& engine,
                                            const AggregationParams& params,
                                            std::vector<double> initial_values,
                                            Rng rng) {
  const auto live = network.live_nodes();
  PSS_CHECK_MSG(initial_values.size() == live.size(),
                "one initial value per live node required");
  std::vector<std::uint32_t> index_of(network.size(), 0);
  for (std::uint32_t i = 0; i < live.size(); ++i) index_of[live[i]] = i;
  auto partner = [&](std::size_t i) -> std::size_t {
    const View& view = network.node(live[i]).view();
    if (view.empty()) return live.size();  // skip
    const NodeId target = view.peer_rand(rng);
    if (!network.is_live(target)) return live.size();
    return index_of[target];
  };
  auto advance = [&] { engine.run_cycle(); };
  return run_rounds(std::move(initial_values), params, partner, advance);
}

AggregationResult run_averaging_ideal(const AggregationParams& params,
                                      std::vector<double> initial_values,
                                      Rng rng) {
  const std::size_t n = initial_values.size();
  auto partner = [&rng, n](std::size_t i) -> std::size_t {
    auto pick = static_cast<std::size_t>(rng.below(n - 1));
    if (pick >= i) ++pick;
    return pick;
  };
  return run_rounds(std::move(initial_values), params, partner, {});
}

std::vector<double> ramp_values(std::size_t n) {
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i);
  return values;
}

std::vector<double> peak_values(std::size_t n) {
  std::vector<double> values(n, 0.0);
  if (n > 0) values[0] = static_cast<double>(n);
  return values;
}

}  // namespace pss::apps
