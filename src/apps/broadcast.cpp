#include "pss/apps/broadcast.hpp"

#include <functional>

#include "pss/common/check.hpp"
#include "pss/service/ideal_uniform_sampler.hpp"

namespace pss::apps {

namespace {

/// Shared epidemic loop; `sample(self)` returns the next gossip target for
/// an infected node (kInvalidNode = no peer available).
template <typename SampleFn>
BroadcastResult run_epidemic(std::size_t population, NodeId origin,
                             const BroadcastParams& params, SampleFn&& sample,
                             const std::function<void()>& advance_round) {
  PSS_CHECK_MSG(params.fanout > 0, "fanout must be positive");
  PSS_CHECK_MSG(origin < population, "origin outside the population");
  BroadcastResult result;
  std::vector<std::uint8_t> infected(population, 0);
  std::vector<NodeId> holders;
  infected[origin] = 1;
  holders.push_back(origin);
  result.infected_per_round.push_back(1);

  for (Cycle round = 1; round <= params.max_rounds; ++round) {
    if (advance_round) advance_round();
    // Infections discovered this round take effect next round (synchronous
    // rounds, as in the standard push-gossip analysis).
    std::vector<NodeId> newly;
    for (NodeId holder : holders) {
      for (std::size_t f = 0; f < params.fanout; ++f) {
        const NodeId target = sample(holder);
        if (target == kInvalidNode) continue;
        ++result.messages;
        if (infected[target]) {
          ++result.redundant_deliveries;
        } else {
          infected[target] = 1;
          newly.push_back(target);
        }
      }
    }
    holders.insert(holders.end(), newly.begin(), newly.end());
    result.infected_per_round.push_back(holders.size());
    if (holders.size() == population) {
      result.rounds_to_full = round;
      break;
    }
  }
  return result;
}

}  // namespace

BroadcastResult run_broadcast_over_gossip(sim::Network& network,
                                          sim::CycleEngine& engine,
                                          const BroadcastParams& params,
                                          NodeId origin, Rng rng) {
  PSS_CHECK_MSG(network.is_live(origin), "origin must be live");
  const auto live = network.live_nodes();
  // The epidemic runs over the live population; re-index for the dense
  // infected[] array.
  std::vector<std::uint32_t> index_of(network.size(), 0);
  for (std::uint32_t i = 0; i < live.size(); ++i) index_of[live[i]] = i;

  auto sample = [&](NodeId holder_index) -> NodeId {
    const NodeId holder = live[holder_index];
    const View& view = network.node(holder).view();
    if (view.empty()) return kInvalidNode;
    const NodeId target = view.peer_rand(rng);
    if (!network.is_live(target)) return kInvalidNode;  // dead link: lost
    return index_of[target];
  };
  auto advance = [&] { engine.run_cycle(); };
  return run_epidemic(live.size(), index_of[origin], params, sample, advance);
}

BroadcastResult run_broadcast_ideal(std::size_t n, const BroadcastParams& params,
                                    NodeId origin, Rng rng) {
  PSS_CHECK_MSG(n >= 2, "population too small");
  auto sample = [&rng, n](NodeId holder) -> NodeId {
    // Uniform over the group minus the holder itself.
    auto pick = static_cast<NodeId>(rng.below(n - 1));
    if (pick >= holder) ++pick;
    return pick;
  };
  return run_epidemic(n, origin, params, sample, {});
}

}  // namespace pss::apps
