// Gossip-based averaging on top of the peer sampling service — the
// aggregation application family the paper cites ([14,16] in its
// bibliography: push-pull averaging à la Jelasity-Montresor and
// Kempe-Dobra-Gehrke).
//
// Model: every node holds a numeric value. Each round, every node draws one
// peer from its sampling service and both replace their values with the
// pair average. The global mean is invariant; the variance contracts
// geometrically — at a rate that depends on how uniform the sampling is,
// which makes aggregation a sensitive end-to-end probe of sampling quality.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/network.hpp"

namespace pss::apps {

struct AggregationParams {
  Cycle rounds = 40;
};

struct AggregationResult {
  double true_mean = 0;
  /// variance_per_round[r] = empirical variance of node values after round
  /// r (index 0 = initial variance).
  std::vector<double> variance_per_round;
  /// Mean per-round contraction factor var[r+1]/var[r] over the run
  /// (uniform sampling theory: ~1/(2*sqrt(e)) ≈ 0.303 per round for the
  /// pairwise-average protocol with one exchange per node per round).
  double mean_contraction() const;
  /// Rounds until variance dropped below `target` (kNever if not reached).
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
  std::size_t rounds_to_variance(double target) const;
};

/// Runs push-pull averaging where each node's partner comes from its gossip
/// view (uniform-from-view getPeer); the membership protocol advances one
/// cycle per aggregation round, concurrently, as in the modular
/// architecture of [15]. `initial_values[i]` is the value of live node i
/// (in live_nodes() order).
AggregationResult run_averaging_over_gossip(sim::Network& network,
                                            sim::CycleEngine& engine,
                                            const AggregationParams& params,
                                            std::vector<double> initial_values,
                                            Rng rng);

/// Baseline: partners drawn by the ideal uniform sampler.
AggregationResult run_averaging_ideal(const AggregationParams& params,
                                      std::vector<double> initial_values,
                                      Rng rng);

/// Convenience: a linear ramp 0..n-1 (variance (n^2-1)/12), a common
/// worst-ish-case initial distribution for averaging experiments.
std::vector<double> ramp_values(std::size_t n);

/// Convenience: a "peak" distribution — one node holds n, everyone else 0
/// (counting via averaging; the hardest initial distribution).
std::vector<double> peak_values(std::size_t n);

}  // namespace pss::apps
