// Epidemic (gossip-based) information dissemination on top of the peer
// sampling service — the application class the paper's introduction leads
// with ([6,9] in its bibliography; analysis in Pittel [24] assumes uniform
// sampling).
//
// Model: SI epidemic in rounds. One origin node holds a message; each
// round, every infected node pushes the message to `fanout` peers obtained
// from its sampling service. The run tracks coverage per round and the
// number of redundant deliveries (a direct measure of how the overlay's
// deviation from uniform sampling hurts dissemination efficiency).
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/network.hpp"

namespace pss::apps {

struct BroadcastParams {
  std::size_t fanout = 1;   ///< peers contacted per infected node per round
  Cycle max_rounds = 100;   ///< stop after this many rounds regardless
};

struct BroadcastResult {
  /// infected_per_round[r] = number of nodes holding the message after
  /// round r (index 0 = initial state, exactly 1).
  std::vector<std::size_t> infected_per_round;
  /// Rounds needed to reach every live node; kNever when max_rounds hit.
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
  std::size_t rounds_to_full = kNever;
  /// Messages that arrived at an already-infected node.
  std::uint64_t redundant_deliveries = 0;
  /// Total messages sent.
  std::uint64_t messages = 0;

  bool reached_all() const { return rounds_to_full != kNever; }
};

/// Runs the epidemic over a live gossip overlay: each round advances the
/// membership protocol by one cycle, then every infected node samples
/// `fanout` targets from its CURRENT view (uniform-from-view getPeer).
/// `rng` drives only the application-level sampling.
BroadcastResult run_broadcast_over_gossip(sim::Network& network,
                                          sim::CycleEngine& engine,
                                          const BroadcastParams& params,
                                          NodeId origin, Rng rng);

/// Baseline: identical epidemic but peers are drawn by the ideal uniform
/// sampler over the full live membership (what the theory in [24] assumes).
BroadcastResult run_broadcast_ideal(std::size_t n, const BroadcastParams& params,
                                    NodeId origin, Rng rng);

}  // namespace pss::apps
