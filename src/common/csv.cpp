#include "pss/common/csv.hpp"

#include <filesystem>

#include "pss/common/env.hpp"

namespace pss {

CsvSink::CsvSink(const std::string& name) {
  auto dir = env::get("PSS_CSV_DIR");
  if (!dir) return;
  std::filesystem::create_directories(*dir);
  path_ = *dir + "/" + name + ".csv";
  out_.open(path_);
  enabled_ = out_.is_open();
}

void CsvSink::write_row(const std::vector<std::string>& cells) {
  if (!enabled_) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string& cell = cells[i];
    const bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
    if (needs_quote) {
      out_ << '"';
      for (char c : cell) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << cell;
    }
    if (i + 1 < cells.size()) out_ << ',';
  }
  out_ << '\n';
}

}  // namespace pss
