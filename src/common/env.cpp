#include "pss/common/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace pss::env {

std::optional<std::string> get(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return std::string(raw);
}

std::int64_t get_int(const std::string& name, std::int64_t fallback) {
  auto raw = get(name);
  if (!raw) return fallback;
  try {
    std::size_t pos = 0;
    std::int64_t value = std::stoll(*raw, &pos);
    if (pos != raw->size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("environment variable " + name +
                             " is not an integer: '" + *raw + "'");
  }
}

double get_double(const std::string& name, double fallback) {
  auto raw = get(name);
  if (!raw) return fallback;
  try {
    std::size_t pos = 0;
    double value = std::stod(*raw, &pos);
    if (pos != raw->size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("environment variable " + name +
                             " is not a number: '" + *raw + "'");
  }
}

bool get_flag(const std::string& name) {
  auto raw = get(name);
  if (!raw) return false;
  std::string v = *raw;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return !(v == "0" || v == "false" || v == "off" || v == "no");
}

bool full_scale() { return get_flag("PSS_FULL"); }

std::int64_t scaled(const std::string& name, std::int64_t quick, std::int64_t full) {
  const std::int64_t fallback = full_scale() ? full : quick;
  return get_int(name, fallback);
}

}  // namespace pss::env
