// Lightweight precondition / invariant checking.
//
// PSS_CHECK is always on (cheap comparisons only on hot paths); it throws
// std::logic_error so that violations surface in tests and examples rather
// than corrupting an experiment silently. PSS_DCHECK compiles out in
// release builds and is used inside per-exchange hot loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pss::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "PSS_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace pss::detail

#define PSS_CHECK(expr)                                                      \
  do {                                                                       \
    if (!(expr)) ::pss::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define PSS_CHECK_MSG(expr, msg)                                              \
  do {                                                                        \
    if (!(expr)) ::pss::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define PSS_DCHECK(expr) ((void)0)
#else
#define PSS_DCHECK(expr) PSS_CHECK(expr)
#endif
