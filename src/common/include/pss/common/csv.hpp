// Optional CSV sink for bench series.
//
// When PSS_CSV_DIR is set, every bench additionally writes its series as
// CSV files into that directory so the paper figures can be re-plotted with
// any external tool. When unset, CsvSink is a no-op.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pss {

/// Writes rows of cells to <dir>/<name>.csv when enabled, else discards.
class CsvSink {
 public:
  /// Creates a sink for logical series `name`; reads PSS_CSV_DIR itself.
  explicit CsvSink(const std::string& name);

  /// True when a file is actually being written.
  bool enabled() const { return enabled_; }

  /// Writes one CSV row (cells are escaped minimally: quoted when they
  /// contain a comma or quote).
  void write_row(const std::vector<std::string>& cells);

  /// Path of the file being written ("" when disabled).
  const std::string& path() const { return path_; }

 private:
  bool enabled_ = false;
  std::string path_;
  std::ofstream out_;
};

}  // namespace pss
