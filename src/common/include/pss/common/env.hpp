// Environment-variable driven experiment configuration.
//
// Every bench binary reads its scale parameters through these helpers so a
// single invocation convention works across the whole harness:
//   PSS_N=10000 PSS_CYCLES=300 PSS_RUNS=100 PSS_SEED=42 ./bench/table1_partitioning
// PSS_FULL=1 switches all benches to the paper-scale defaults.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace pss::env {

/// Raw lookup; empty optional when unset or empty.
std::optional<std::string> get(const std::string& name);

/// Integer lookup with default; throws std::runtime_error on non-numeric.
std::int64_t get_int(const std::string& name, std::int64_t fallback);

/// Double lookup with default; throws std::runtime_error on non-numeric.
double get_double(const std::string& name, double fallback);

/// Boolean lookup: unset/0/false/off -> false, anything else -> true.
bool get_flag(const std::string& name);

/// True when PSS_FULL is set: benches run at full paper scale.
bool full_scale();

/// Picks `full` when PSS_FULL is set, else the explicit env override,
/// else `quick`. This is the one knob used by every bench.
std::int64_t scaled(const std::string& name, std::int64_t quick, std::int64_t full);

}  // namespace pss::env
