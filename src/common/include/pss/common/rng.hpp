// Deterministic random number generation.
//
// Every source of randomness in the library flows through Rng so that an
// experiment is a pure function of (seed, parameters). The generator is
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is the
// standard way to expand a 64-bit seed into a full 256-bit state without
// correlation artifacts. Rng satisfies UniformRandomBitGenerator, so it can
// also be plugged into <random> distributions and std::shuffle.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/check.hpp"

namespace pss {

/// SplitMix64 step: used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with convenience sampling helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value. Inline: the per-exchange hot loops draw
  /// millions of values and the xoshiro step is a handful of ALU ops.
  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) {
    PSS_DCHECK(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) [[unlikely]] {
      const std::uint64_t t = -bound % bound;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Fisher–Yates shuffle of a whole vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draws k distinct indices from [0, n) (k <= n), in random order.
  /// Uses a partial Fisher–Yates over an index vector (O(n) memory) when k
  /// is large relative to n, and rejection sampling when k << n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Allocation-free variant of sample_indices for hot loops: writes the k
  /// indices into `out` and uses `scratch` for the Fisher–Yates index table,
  /// reusing both vectors' capacity across calls. Draws the exact same
  /// random sequence as sample_indices (which delegates here), so the two
  /// are interchangeable without perturbing seeded experiments. Inline for
  /// the per-exchange view-selection path.
  void sample_indices_into(std::size_t n, std::size_t k,
                           std::vector<std::size_t>& out,
                           std::vector<std::size_t>& scratch) {
    PSS_CHECK_MSG(k <= n, "cannot sample more indices than the population size");
    out.clear();
    out.reserve(k);
    if (k == 0) return;
    if (k * 3 >= n) {
      scratch.resize(n);
      for (std::size_t i = 0; i < n; ++i) scratch[i] = i;
      // Partial Fisher–Yates: the first k slots end up uniformly sampled.
      for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + static_cast<std::size_t>(below(n - i));
        std::swap(scratch[i], scratch[j]);
      }
      out.assign(scratch.begin(),
                 scratch.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      // Rejection sampling; k << n, so the linear duplicate scan over at
      // most k accepted values is cheap and needs no hash-set allocation.
      // Accepts and rejects exactly the candidates the historical
      // std::unordered_set-based implementation did, keeping the draw
      // sequence seed-stable.
      while (out.size() < k) {
        std::size_t candidate = static_cast<std::size_t>(below(n));
        bool duplicate = false;
        for (std::size_t v : out) {
          if (v == candidate) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) out.push_back(candidate);
      }
    }
  }

  /// Derives an independent child generator; child sequences are decorrelated
  /// from the parent and from each other by SplitMix64 remixing.
  Rng split();

  /// Counter-based stream derivation: a fresh generator for draw index
  /// `counter` of logical stream `stream` under `seed`. Pure function of its
  /// arguments — no shared state is read or advanced — so concurrent callers
  /// can derive generators for different (stream, counter) pairs without
  /// synchronization, and the values a stream produces depend only on how
  /// often *it* was used, never on global interleaving. This is the RNG
  /// story of the parallel cycle engine's Relaxed mode (each node draws from
  /// stream = node id, counter = its own participation count); the
  /// Deterministic mode keeps the sequential per-node `split()` streams,
  /// which its conflict schedule serializes exactly.
  static Rng stream_at(std::uint64_t seed, std::uint64_t stream,
                       std::uint64_t counter);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace pss
