// Deterministic random number generation.
//
// Every source of randomness in the library flows through Rng so that an
// experiment is a pure function of (seed, parameters). The generator is
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, which is the
// standard way to expand a 64-bit seed into a full 256-bit state without
// correlation artifacts. Rng satisfies UniformRandomBitGenerator, so it can
// also be plugged into <random> distributions and std::shuffle.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/check.hpp"

namespace pss {

/// SplitMix64 step: used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with convenience sampling helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Fisher–Yates shuffle of a whole vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draws k distinct indices from [0, n) (k <= n), in random order.
  /// Uses a partial Fisher–Yates over an index vector (O(n) memory) when k
  /// is large relative to n, and rejection sampling when k << n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent child generator; child sequences are decorrelated
  /// from the parent and from each other by SplitMix64 remixing.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace pss
