// Plain-text aligned table printer used by the bench harness to emit
// paper-style tables and figure series on stdout.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace pss {

/// Collects rows of string cells and prints them with aligned columns.
/// The first added row is treated as the header and underlined.
class TextTable {
 public:
  /// Starts a row; subsequent cell() calls append to it.
  TextTable& row();

  /// Appends a cell to the current row.
  TextTable& cell(const std::string& value);

  /// Convenience: formats a double with `precision` decimals.
  TextTable& cell(double value, int precision = 3);

  /// Convenience: integral cell.
  TextTable& cell(std::int64_t value);

  /// Number of data rows (excluding the header).
  std::size_t data_rows() const;

  /// Renders the table (header underline, two-space column gap).
  void print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision into a string.
std::string format_double(double value, int precision = 3);

}  // namespace pss
