// Core scalar types shared by every pss module.
//
// The paper's system model (Section 3) is a set of nodes, each with an
// address used to send messages. In the simulator an address is a dense
// 32-bit integer id assigned by the network registry; this keeps node
// descriptors trivially copyable and views cache-friendly.
#pragma once

#include <cstdint>
#include <limits>

namespace pss {

/// Address of a node, as handed out by the network registry.
/// Dense in [0, N) for a simulated network of N nodes.
using NodeId = std::uint32_t;

/// Hop count ("age" in cycles) carried by a node descriptor.
using HopCount = std::uint32_t;

/// Simulation cycle index.
using Cycle = std::uint32_t;

/// Sentinel for "no node" (e.g. getPeer on a singleton group).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

}  // namespace pss
