#include "pss/common/rng.hpp"

namespace pss {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  PSS_DCHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> out;
  std::vector<std::size_t> scratch;
  sample_indices_into(n, k, out, scratch);
  return out;
}

Rng Rng::split() {
  std::uint64_t child_seed = (*this)();
  return Rng(child_seed);
}

Rng Rng::stream_at(std::uint64_t seed, std::uint64_t stream,
                   std::uint64_t counter) {
  // Absorb each input through a full SplitMix64 round before folding in the
  // next, so tuples differing in any single component (including by small
  // deltas, the common case for counters) land in decorrelated states.
  std::uint64_t state = seed;
  state = splitmix64(state) ^ stream;
  state = splitmix64(state) ^ counter;
  return Rng(splitmix64(state));
}

}  // namespace pss
