#include "pss/common/rng.hpp"

#include <unordered_set>

namespace pss {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  PSS_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  PSS_DCHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  PSS_CHECK_MSG(k <= n, "cannot sample more indices than the population size");
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    // Partial Fisher–Yates: the first k slots end up uniformly sampled.
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + static_cast<std::size_t>(below(n - i));
      std::swap(idx[i], idx[j]);
    }
    out.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));
  } else {
    std::unordered_set<std::size_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
      std::size_t candidate = static_cast<std::size_t>(below(n));
      if (seen.insert(candidate).second) out.push_back(candidate);
    }
  }
  return out;
}

Rng Rng::split() {
  std::uint64_t child_seed = (*this)();
  return Rng(child_seed);
}

}  // namespace pss
