#include "pss/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "pss/common/check.hpp"

namespace pss {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(const std::string& value) {
  PSS_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  rows_.back().push_back(value);
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

TextTable& TextTable::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

std::size_t TextTable::data_rows() const {
  return rows_.empty() ? 0 : rows_.size() - 1;
}

void TextTable::print(std::ostream& os) const {
  if (rows_.empty()) return;
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      if (i + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(rows_.front());
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (std::size_t r = 1; r < rows_.size(); ++r) print_row(rows_[r]);
}

}  // namespace pss
