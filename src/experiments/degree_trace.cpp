#include "pss/experiments/degree_trace.hpp"

#include "pss/common/check.hpp"
#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/obs/degree_autocorrelation.hpp"
#include "pss/obs/graph_census.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/stats/descriptive.hpp"

namespace pss::experiments {

double DegreeTraceResult::mean_of_node_means() const {
  stats::Accumulator acc;
  for (const auto& node_series : series) acc.add(stats::mean(node_series));
  return acc.mean();
}

double DegreeTraceResult::stddev_of_node_means() const {
  stats::Accumulator acc;
  for (const auto& node_series : series) acc.add(stats::mean(node_series));
  return acc.stddev_sample();
}

DegreeTraceResult run_degree_trace(ProtocolSpec spec, const ScenarioParams& params,
                                   std::size_t traced, Cycle trace_cycles) {
  PSS_CHECK_MSG(traced > 0 && trace_cycles > 0, "trace dimensions must be positive");
  ScenarioParams converge = params;
  converge.sample_interval = params.cycles > 0 ? params.cycles : 1;
  auto result = run_random_scenario(spec, converge);
  sim::Network network = std::move(result.network);

  Rng rng(params.seed ^ 0x7E57AB1E5EEDULL);
  const auto live = network.live_nodes();
  PSS_CHECK_MSG(traced <= live.size(), "cannot trace more nodes than exist");
  auto picks = rng.sample_indices(live.size(), traced);
  std::vector<NodeId> traced_nodes;
  traced_nodes.reserve(traced);
  for (std::size_t p : picks) traced_nodes.push_back(live[p]);

  DegreeTraceResult trace;
  trace.series.assign(traced, {});
  for (auto& s : trace.series) s.reserve(trace_cycles);

  sim::CycleEngine engine(network);

  if (params.exact_metrics) {
    // Reference path: one snapshot graph per traced cycle. Retained for
    // small N; produces the same integers as the streaming path below
    // (pinned by tests/obs_test.cpp).
    for (Cycle t = 0; t < trace_cycles; ++t) {
      engine.run_cycle();
      const auto g = graph::UndirectedGraph::from_network(network);
      for (std::size_t i = 0; i < traced_nodes.size(); ++i) {
        const auto v = g.vertex_of(traced_nodes[i]);
        PSS_CHECK_MSG(v != graph::UndirectedGraph::kNoVertex,
                      "traced node disappeared from the overlay");
        trace.series[i].push_back(static_cast<double>(g.degree(v)));
      }
      if (t + 1 == trace_cycles) trace.final_avg_degree = graph::average_degree(g);
    }
    return trace;
  }

  // Streaming path: union degrees straight off the arena census — no
  // edge-list or snapshot-graph materialization per traced cycle.
  obs::GraphCensus census;
  obs::DegreeAutocorrelation tracker(traced_nodes, trace_cycles);
  for (Cycle t = 0; t < trace_cycles; ++t) {
    engine.run_cycle();
    census.rebuild(network);
    for (const NodeId node : traced_nodes) {
      PSS_CHECK_MSG(network.is_live(node),
                    "traced node disappeared from the overlay");
    }
    tracker.record(census);
    if (t + 1 == trace_cycles) {
      trace.final_avg_degree =
          census.live_count() == 0
              ? 0
              : 2.0 * static_cast<double>(census.undirected_edge_count()) /
                    static_cast<double>(census.live_count());
    }
  }
  for (std::size_t i = 0; i < traced_nodes.size(); ++i) {
    const auto s = tracker.series(i);
    trace.series[i].assign(s.begin(), s.end());
  }
  return trace;
}

}  // namespace pss::experiments
