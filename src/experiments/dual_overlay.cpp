#include "pss/experiments/dual_overlay.hpp"

#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"

namespace pss::experiments {

namespace {

ProtocolSpec fast_spec() {
  return {PeerSelection::kRand, ViewSelection::kHead, ViewPropagation::kPushPull};
}

ProtocolSpec slow_spec() {
  return {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPushPull};
}

}  // namespace

DualOverlay::DualOverlay(std::size_t n, ProtocolOptions options,
                         std::uint64_t seed)
    : fast_(sim::bootstrap::make_random(fast_spec(), options, n, seed)),
      slow_(sim::bootstrap::make_random(slow_spec(), options, n, seed ^ 0xD0A1ULL)),
      fast_engine_(fast_),
      slow_engine_(slow_) {}

void DualOverlay::run_cycle() {
  fast_engine_.run_cycle();
  slow_engine_.run_cycle();
}

void DualOverlay::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) run_cycle();
}

void DualOverlay::kill(NodeId id) {
  fast_.kill(id);
  slow_.kill(id);
}

void DualOverlay::set_partition_group(NodeId id, std::uint32_t group) {
  fast_.set_partition_group(id, group);
  slow_.set_partition_group(id, group);
}

void DualOverlay::clear_partitions() {
  fast_.clear_partitions();
  slow_.clear_partitions();
}

View DualOverlay::combined_view(NodeId id) const {
  View combined =
      View::merge(fast_.node(id).view(), slow_.node(id).view());
  combined.remove(id);
  return combined;
}

std::uint64_t DualOverlay::count_cross_partition_links() const {
  std::uint64_t cross = 0;
  for (NodeId id = 0; id < fast_.size(); ++id) {
    if (!fast_.is_live(id)) continue;
    const View combined = combined_view(id);
    for (const auto& d : combined.entries()) {
      if (fast_.is_live(d.address) &&
          fast_.partition_group(d.address) != fast_.partition_group(id)) {
        ++cross;
      }
    }
  }
  return cross;
}

std::uint64_t DualOverlay::count_dead_links() const {
  std::uint64_t dead = 0;
  for (NodeId id = 0; id < fast_.size(); ++id) {
    if (!fast_.is_live(id)) continue;
    const View combined = combined_view(id);
    for (const auto& d : combined.entries()) {
      if (!fast_.is_live(d.address)) ++dead;
    }
  }
  return dead;
}

bool DualOverlay::combined_connected() const {
  const auto live = fast_.live_nodes();
  const std::size_t n = live.size();
  if (n == 0) return true;
  std::vector<std::uint32_t> vertex_of(fast_.size(),
                                       graph::UndirectedGraph::kNoVertex);
  for (std::uint32_t v = 0; v < n; ++v) vertex_of[live[v]] = v;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t v = 0; v < n; ++v) {
    const View combined = combined_view(live[v]);
    for (const auto& d : combined.entries()) {
      if (d.address < vertex_of.size() &&
          vertex_of[d.address] != graph::UndirectedGraph::kNoVertex) {
        edges.emplace_back(v, vertex_of[d.address]);
      }
    }
  }
  graph::UndirectedGraph g(n, std::move(edges));
  return graph::connected_components(g).connected();
}

}  // namespace pss::experiments
