#include "pss/experiments/failure.hpp"

#include <algorithm>

#include "pss/common/check.hpp"
#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace pss::experiments {

std::vector<RemovalPoint> run_static_robustness(const sim::Network& converged,
                                                const std::vector<double>& fractions,
                                                std::size_t trials,
                                                std::uint64_t seed) {
  PSS_CHECK_MSG(trials > 0, "at least one trial required");
  Rng rng(seed);
  const auto live = converged.live_nodes();
  const std::size_t n = live.size();
  PSS_CHECK_MSG(n >= 2, "need a populated overlay");

  // Snapshot the views once; every trial filters this same topology.
  std::vector<View> views;
  views.reserve(n);
  std::vector<std::uint32_t> vertex_of(converged.size(),
                                       graph::UndirectedGraph::kNoVertex);
  for (std::uint32_t v = 0; v < n; ++v) vertex_of[live[v]] = v;

  // Re-index the views into the compact [0, n) vertex space.
  for (NodeId id : live) {
    std::vector<NodeDescriptor> entries;
    for (const auto& d : converged.node(id).view().entries()) {
      if (d.address < vertex_of.size() &&
          vertex_of[d.address] != graph::UndirectedGraph::kNoVertex) {
        entries.push_back({vertex_of[d.address], d.hop_count});
      }
    }
    views.emplace_back(std::move(entries));
  }

  std::vector<RemovalPoint> out;
  out.reserve(fractions.size());
  for (double fraction : fractions) {
    PSS_CHECK_MSG(fraction >= 0 && fraction < 1, "fraction must be in [0,1)");
    const auto remove_count = static_cast<std::size_t>(
        static_cast<double>(n) * fraction + 0.5);
    RemovalPoint point;
    point.removed_fraction = fraction;
    point.trials = trials;
    double outside_sum = 0;
    std::size_t partitioned = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      std::vector<std::uint8_t> alive(n, 1);
      for (std::size_t idx : rng.sample_indices(n, remove_count)) alive[idx] = 0;
      // Survivor graph: edges between surviving endpoints only.
      std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
      std::vector<std::uint32_t> compact(n, graph::UndirectedGraph::kNoVertex);
      std::uint32_t survivors = 0;
      for (std::uint32_t v = 0; v < n; ++v) {
        if (alive[v]) compact[v] = survivors++;
      }
      for (std::uint32_t v = 0; v < n; ++v) {
        if (!alive[v]) continue;
        for (const auto& d : views[v].entries()) {
          if (alive[d.address]) edges.emplace_back(compact[v], compact[d.address]);
        }
      }
      graph::UndirectedGraph g(survivors, std::move(edges));
      const auto comp = graph::connected_components(g);
      outside_sum += static_cast<double>(comp.outside_largest());
      if (comp.count > 1) ++partitioned;
    }
    point.avg_outside_largest = outside_sum / static_cast<double>(trials);
    point.partitioned_fraction =
        static_cast<double>(partitioned) / static_cast<double>(trials);
    out.push_back(point);
  }
  return out;
}

std::size_t SelfHealingResult::cycles_to_reach(std::uint64_t target) const {
  for (std::size_t i = 0; i < dead_links.size(); ++i) {
    if (dead_links[i] <= target) return i + 1;
  }
  return kNever;
}

SelfHealingResult run_self_healing(ProtocolSpec spec, const ScenarioParams& params,
                                   Cycle extra_cycles, double kill_fraction) {
  PSS_CHECK_MSG(kill_fraction > 0 && kill_fraction < 1,
                "kill fraction must be in (0,1)");
  // Converge from the random bootstrap without interior metric sampling.
  ScenarioParams converge = params;
  converge.sample_interval = params.cycles > 0 ? params.cycles : 1;
  auto result = run_random_scenario(spec, converge);
  sim::Network network = std::move(result.network);

  Rng rng(params.seed ^ 0x5EEDFA11DEADBEEFULL);
  const auto kill_count = static_cast<std::size_t>(
      static_cast<double>(network.live_count()) * kill_fraction + 0.5);
  network.kill_random(kill_count, rng);

  SelfHealingResult healing;
  healing.failure_cycle = params.cycles;
  healing.dead_links_at_failure = network.count_dead_links();
  sim::CycleEngine engine(network);
  healing.dead_links.reserve(extra_cycles);
  for (Cycle i = 0; i < extra_cycles; ++i) {
    engine.run_cycle();
    healing.dead_links.push_back(network.count_dead_links());
  }
  return healing;
}

}  // namespace pss::experiments
