// Degree time-series tracing (paper Table 2 and Figure 5).
//
// After convergence, the undirected degree of a set of fixed random nodes
// is recorded for K consecutive cycles. Table 2 reports, per protocol:
//   D_K — mean degree over all nodes in the last traced cycle,
//   d̄   — mean over traced nodes of their per-node time-averaged degree,
//   √σ  — standard deviation (sample, n-1) of those per-node time averages.
// Figure 5 shows the autocorrelation of a single traced node's series.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/experiments/scenario.hpp"
#include "pss/protocol/spec.hpp"

namespace pss::experiments {

struct DegreeTraceResult {
  /// series[i][t] = degree of traced node i after traced cycle t (t < K).
  std::vector<std::vector<double>> series;
  /// Mean degree over ALL live nodes in the last traced cycle (D_K).
  double final_avg_degree = 0;

  /// d̄: mean of per-node time averages.
  double mean_of_node_means() const;
  /// √σ: sample standard deviation of per-node time averages.
  double stddev_of_node_means() const;
};

/// Runs the random-init scenario for params.cycles warm-up cycles, picks
/// `traced` random live nodes, then records their degrees for K further
/// cycles. Degrees come from the streaming obs::GraphCensus (no snapshot
/// graph per cycle); params.exact_metrics selects the legacy
/// UndirectedGraph path, which produces identical numbers (pinned by
/// tests/obs_test.cpp) but only scales to small N.
DegreeTraceResult run_degree_trace(ProtocolSpec spec, const ScenarioParams& params,
                                   std::size_t traced, Cycle trace_cycles);

}  // namespace pss::experiments
