// DualOverlay: the Section-10 combination running at network scale.
//
// Two complete overlays over the same node population — a fast-healing one
// (head view selection) and a long-memory one (rand view selection) — with
// shared liveness and partition state. Applications sample from the union
// of a node's two views. See dual_view_node.hpp for the single-node API
// variant; this class is the simulation driver used by tests and the
// ablation_partition bench.
#pragma once

#include <cstdint>

#include "pss/membership/view.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/network.hpp"

namespace pss::experiments {

class DualOverlay {
 public:
  /// Builds both overlays over n nodes with random bootstrap.
  DualOverlay(std::size_t n, ProtocolOptions options, std::uint64_t seed);

  std::size_t size() const { return fast_.size(); }

  /// Advances both membership protocols by one cycle.
  void run_cycle();
  void run(Cycle cycles);

  /// Kills the node in both overlays.
  void kill(NodeId id);

  /// Mirrors Network partition control on both overlays.
  void set_partition_group(NodeId id, std::uint32_t group);
  void clear_partitions();

  /// Union of the node's two views (self excluded, lowest hop wins).
  View combined_view(NodeId id) const;

  /// Cross-partition links counted over the COMBINED views.
  std::uint64_t count_cross_partition_links() const;

  /// Dead links counted over the combined views.
  std::uint64_t count_dead_links() const;

  /// True when the undirected graph over combined views is connected.
  bool combined_connected() const;

  sim::Network& fast_network() { return fast_; }
  sim::Network& slow_network() { return slow_; }

 private:
  sim::Network fast_;
  sim::Network slow_;
  sim::CycleEngine fast_engine_;
  sim::CycleEngine slow_engine_;
};

}  // namespace pss::experiments
