// Catastrophic-failure experiments (paper Section 7).
//
// Static robustness (Figure 6): from a converged overlay, remove a random
// fraction of nodes and measure how many survivors fall outside the largest
// connected cluster.
//
// Dynamic self-healing (Figure 7): kill 50% of the nodes at cycle 300 and
// keep running the protocol on the damaged overlay, counting dead links
// (descriptors of failed nodes) every cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/experiments/scenario.hpp"
#include "pss/protocol/spec.hpp"
#include "pss/sim/network.hpp"

namespace pss::experiments {

/// One sweep point of the Figure 6 experiment.
struct RemovalPoint {
  double removed_fraction = 0;
  double avg_outside_largest = 0;  ///< mean over trials (paper's y axis)
  double partitioned_fraction = 0; ///< trials in which survivors split
  std::size_t trials = 0;
};

/// Removes `fraction` of the live nodes of `converged` uniformly at random
/// (`trials` independent removals per fraction; the converged overlay is
/// reused read-only) and analyses the connectivity of the survivors.
std::vector<RemovalPoint> run_static_robustness(const sim::Network& converged,
                                                const std::vector<double>& fractions,
                                                std::size_t trials,
                                                std::uint64_t seed);

/// Figure 7 dynamics. Runs `spec` from the random-init scenario for
/// params.cycles cycles, kills `kill_fraction` of the nodes, then continues
/// for `extra_cycles`, recording the total dead-link count after each cycle.
struct SelfHealingResult {
  Cycle failure_cycle = 0;
  std::uint64_t dead_links_at_failure = 0;
  /// dead_links[i] = overall dead links after cycle failure_cycle + 1 + i.
  std::vector<std::uint64_t> dead_links;
  /// Cycles needed to reach <= target dead links; npos when never reached.
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
  std::size_t cycles_to_reach(std::uint64_t target) const;
};
SelfHealingResult run_self_healing(ProtocolSpec spec, const ScenarioParams& params,
                                   Cycle extra_cycles, double kill_fraction);

}  // namespace pss::experiments
