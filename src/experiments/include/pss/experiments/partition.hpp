// Temporary network partition experiment (paper Section 8 discussion).
//
// "The only scenario when head view selection is not desirable is temporary
//  network partitioning. In that case, with head view selection all
//  partitions will forget about each other very quickly and so quick
//  self-repair becomes a disadvantage."
//
// The experiment: converge an overlay, split the network into two groups
// for `partition_cycles` cycles (messages across the split are lost, all
// nodes keep running), then heal the split and observe whether the two
// sides can re-merge — which requires that some cross-side descriptors
// survived the separation in somebody's view.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/experiments/scenario.hpp"
#include "pss/protocol/spec.hpp"

namespace pss::experiments {

struct PartitionResult {
  /// Cross-side view entries before the split (the initial "memory").
  std::uint64_t cross_links_at_split = 0;
  /// cross_links_during[i] = cross-side entries after split cycle i+1.
  std::vector<std::uint64_t> cross_links_during;
  /// Cross-side entries right after the network heals (before any rejoin
  /// gossip) — zero means the sides have completely forgotten each other
  /// and can never re-merge.
  std::uint64_t cross_links_at_heal = 0;
  /// Connected components of the overlay `post_cycles` after healing
  /// (1 = the overlay re-merged).
  std::size_t components_after_rejoin = 0;
  std::size_t largest_after_rejoin = 0;

  bool remerged() const { return components_after_rejoin == 1; }
};

/// Converges `spec` from the random bootstrap (params.cycles cycles),
/// splits a random `split_fraction` of the nodes into group 1 for
/// `partition_cycles` cycles, heals, runs `post_cycles` more cycles and
/// reports the outcome.
PartitionResult run_partition_experiment(ProtocolSpec spec,
                                         const ScenarioParams& params,
                                         double split_fraction,
                                         Cycle partition_cycles,
                                         Cycle post_cycles);

}  // namespace pss::experiments
