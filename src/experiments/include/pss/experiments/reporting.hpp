// Shared output helpers for the bench harness: every bench prints a
// parameter banner, paper-style aligned tables, and (optionally) records
// its series through a metrics sink (see pss/obs/metric_sink.hpp).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "pss/common/table.hpp"
#include "pss/experiments/scenario.hpp"
#include "pss/obs/metric_sink.hpp"

namespace pss::experiments {

/// Prints the standard banner: experiment id, paper reference, parameters,
/// and estimator settings.
void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& paper_ref, const ScenarioParams& params,
                  const std::string& extra = "");

/// Prints a metric series as an aligned table and mirrors it to `sink`
/// (one obs::schemas::kSeries row per sample; pass nullptr to skip). The
/// sink must already be begun with the kSeries schema — several protocols'
/// series usually share one stream, distinguished by the protocol column.
void print_series(std::ostream& os, const std::string& protocol,
                  const std::vector<MetricsSample>& series,
                  obs::MetricSink* sink);

/// Properties of the uniform random-view baseline topology, measured on an
/// actual random c-out graph with the same estimator settings (the
/// horizontal lines of Figures 2-3).
struct BaselineMetrics {
  double avg_degree = 0;
  double clustering = 0;
  double path_length = 0;
};
BaselineMetrics measure_random_baseline(const ScenarioParams& params);

}  // namespace pss::experiments
