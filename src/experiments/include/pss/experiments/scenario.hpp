// Scenario drivers for the paper's three bootstrap conditions (Section 5)
// and the shared metric-recording machinery.
//
// Every driver runs the cycle engine over a network and records a
// MetricsSample at a configurable cycle interval. The estimator parameters
// (BFS source sample, clustering vertex sample) are part of ScenarioParams
// so each bench states them explicitly.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/graph/metrics.hpp"
#include "pss/protocol/spec.hpp"
#include "pss/sim/network.hpp"

namespace pss::experiments {

struct ScenarioParams {
  std::size_t n = 10'000;           ///< target network size (paper: 10^4)
  std::size_t view_size = 30;       ///< c (paper: 30)
  Cycle cycles = 300;               ///< cycles to run (paper: 300)
  std::uint64_t seed = 42;          ///< master seed
  Cycle sample_interval = 5;        ///< record metrics every k cycles
  std::size_t path_sources = 100;   ///< BFS sources for path-length estimate
  std::size_t clustering_sample = 1000;  ///< vertices for clustering estimate
  bool exact_metrics = false;       ///< force exact estimators (tests)
  std::size_t growth_per_cycle = 100;    ///< growing scenario joins per cycle
  bool remove_dead_on_failure = false;   ///< ablation A1 toggle

  ProtocolOptions protocol_options() const {
    return {view_size, remove_dead_on_failure};
  }
};

/// One measurement of the overlay, taken at a cycle boundary.
struct MetricsSample {
  Cycle cycle = 0;
  std::size_t live_nodes = 0;
  double avg_degree = 0;
  double clustering = 0;
  double path_length = 0;
  double reachable_fraction = 1;
  std::size_t components = 0;
  std::size_t largest_component = 0;
  std::uint64_t dead_links = 0;
};

/// Measures the live part of the overlay with the params' estimators.
/// `metric_rng` drives sampling only (never the protocol itself).
MetricsSample measure(const sim::Network& network, Cycle cycle,
                      const ScenarioParams& params, Rng& metric_rng);

/// A scenario run: the recorded series plus the final network state (moved
/// out so failure experiments can continue from the converged overlay).
struct ScenarioResult {
  std::vector<MetricsSample> series;
  sim::Network network;
  const MetricsSample& final_sample() const { return series.back(); }
};

/// Hook invoked before every cycle (used by the growing scenario to inject
/// newcomers); receives the network and the cycle index about to run.
using PreCycleHook = std::function<void(sim::Network&, Cycle)>;

/// Generic driver: runs `params.cycles` cycles over an initialized network,
/// recording metrics at cycle 0 (initial state), every sample_interval, and
/// at the final cycle.
ScenarioResult run_scenario(sim::Network network, const ScenarioParams& params,
                            const PreCycleHook& pre_cycle = {});

/// Section 5.3: views bootstrapped with uniform random samples.
ScenarioResult run_random_scenario(ProtocolSpec spec, const ScenarioParams& params);

/// Section 5.2: ring lattice bootstrap.
ScenarioResult run_lattice_scenario(ProtocolSpec spec, const ScenarioParams& params);

/// Section 5.1: overlay grows from a single node by growth_per_cycle joins
/// per cycle until n is reached (cycle ~n/growth); every newcomer knows only
/// the initial node.
ScenarioResult run_growing_scenario(ProtocolSpec spec, const ScenarioParams& params);

/// Table 1 aggregation: repeats the growing scenario `runs` times (seeds
/// seed, seed+1, ...) and reports partitioning statistics at the final cycle.
struct PartitioningStats {
  ProtocolSpec spec;
  std::size_t runs = 0;
  std::size_t partitioned_runs = 0;
  /// Average cluster count / largest-cluster size over the partitioned runs
  /// (the paper's Table 1 columns); 0 when no run partitioned.
  double avg_clusters = 0;
  double avg_largest = 0;
  double partitioned_fraction() const {
    return runs == 0 ? 0 : static_cast<double>(partitioned_runs) / static_cast<double>(runs);
  }
};
PartitioningStats run_growing_partitioning(ProtocolSpec spec,
                                           const ScenarioParams& params,
                                           std::size_t runs);

}  // namespace pss::experiments
