#include "pss/experiments/partition.hpp"

#include "pss/common/check.hpp"
#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace pss::experiments {

PartitionResult run_partition_experiment(ProtocolSpec spec,
                                         const ScenarioParams& params,
                                         double split_fraction,
                                         Cycle partition_cycles,
                                         Cycle post_cycles) {
  PSS_CHECK_MSG(split_fraction > 0 && split_fraction < 1,
                "split fraction must be in (0,1)");
  // Converge without interior metric sampling.
  ScenarioParams converge = params;
  converge.sample_interval = params.cycles > 0 ? params.cycles : 1;
  auto scenario = run_random_scenario(spec, converge);
  sim::Network network = std::move(scenario.network);
  sim::CycleEngine engine(network);

  // Split a random subset into group 1.
  Rng rng(params.seed ^ 0x9A97171090ULL);
  const auto live = network.live_nodes();
  const auto split_count = static_cast<std::size_t>(
      static_cast<double>(live.size()) * split_fraction + 0.5);
  for (std::size_t idx : rng.sample_indices(live.size(), split_count)) {
    network.set_partition_group(live[idx], 1);
  }

  PartitionResult result;
  result.cross_links_at_split = network.count_cross_partition_links();
  result.cross_links_during.reserve(partition_cycles);
  for (Cycle i = 0; i < partition_cycles; ++i) {
    engine.run_cycle();
    result.cross_links_during.push_back(network.count_cross_partition_links());
  }
  result.cross_links_at_heal = network.count_cross_partition_links();

  network.clear_partitions();
  engine.run(post_cycles);
  const auto g = graph::UndirectedGraph::from_network(network);
  const auto comp = graph::connected_components(g);
  result.components_after_rejoin = comp.count;
  result.largest_after_rejoin = comp.largest;
  return result;
}

}  // namespace pss::experiments
