#include "pss/experiments/reporting.hpp"

#include "pss/common/table.hpp"
#include "pss/graph/metrics.hpp"
#include "pss/graph/random_graph.hpp"
#include "pss/obs/schemas.hpp"

namespace pss::experiments {

void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& paper_ref, const ScenarioParams& params,
                  const std::string& extra) {
  os << "=== " << experiment << " ===\n";
  os << "reproduces: " << paper_ref << "\n";
  os << "parameters: N=" << params.n << " c=" << params.view_size
     << " cycles=" << params.cycles << " seed=" << params.seed;
  if (!params.exact_metrics) {
    os << " | estimators: path-BFS-sources=" << params.path_sources
       << " clustering-sample=" << params.clustering_sample;
  } else {
    os << " | estimators: exact";
  }
  if (!extra.empty()) os << " | " << extra;
  os << "\n";
  os << "(set PSS_FULL=1 for paper-scale defaults; PSS_N / PSS_CYCLES / "
        "PSS_RUNS / PSS_SEED override individually)\n\n";
}

void print_series(std::ostream& os, const std::string& protocol,
                  const std::vector<MetricsSample>& series,
                  obs::MetricSink* sink) {
  os << "protocol " << protocol << "\n";
  TextTable table;
  table.row()
      .cell("cycle")
      .cell("live")
      .cell("avg_degree")
      .cell("clustering")
      .cell("path_len")
      .cell("components")
      .cell("largest")
      .cell("dead_links");
  for (const auto& s : series) {
    table.row()
        .cell(static_cast<std::int64_t>(s.cycle))
        .cell(static_cast<std::int64_t>(s.live_nodes))
        .cell(s.avg_degree, 2)
        .cell(s.clustering, 4)
        .cell(s.path_length, 3)
        .cell(static_cast<std::int64_t>(s.components))
        .cell(static_cast<std::int64_t>(s.largest_component))
        .cell(static_cast<std::int64_t>(s.dead_links));
    if (sink != nullptr) {
      sink->row({std::string_view(protocol), s.cycle, s.live_nodes,
                 s.avg_degree, s.clustering, s.path_length,
                 s.reachable_fraction, s.components, s.largest_component,
                 s.dead_links});
    }
  }
  table.print(os);
  os << "\n";
}

BaselineMetrics measure_random_baseline(const ScenarioParams& params) {
  Rng rng(params.seed ^ 0xBA5E11FE5EEDULL);
  const auto g = graph::random_view_graph(params.n, params.view_size, rng);
  BaselineMetrics b;
  b.avg_degree = graph::average_degree(g);
  if (params.exact_metrics) {
    b.clustering = graph::clustering_coefficient(g);
    b.path_length = graph::average_path_length(g).average;
  } else {
    b.clustering =
        graph::clustering_coefficient_sampled(g, params.clustering_sample, rng);
    b.path_length =
        graph::average_path_length_sampled(g, params.path_sources, rng).average;
  }
  return b;
}

}  // namespace pss::experiments
