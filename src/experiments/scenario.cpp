#include "pss/experiments/scenario.hpp"

#include "pss/common/check.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace pss::experiments {

MetricsSample measure(const sim::Network& network, Cycle cycle,
                      const ScenarioParams& params, Rng& metric_rng) {
  MetricsSample s;
  s.cycle = cycle;
  s.live_nodes = network.live_count();
  s.dead_links = network.count_dead_links();
  const auto g = graph::UndirectedGraph::from_network(network);
  if (g.vertex_count() == 0) return s;
  s.avg_degree = graph::average_degree(g);
  if (params.exact_metrics) {
    s.clustering = graph::clustering_coefficient(g);
    const auto path = graph::average_path_length(g);
    s.path_length = path.average;
    s.reachable_fraction = path.reachable_fraction;
  } else {
    s.clustering =
        graph::clustering_coefficient_sampled(g, params.clustering_sample, metric_rng);
    const auto path =
        graph::average_path_length_sampled(g, params.path_sources, metric_rng);
    s.path_length = path.average;
    s.reachable_fraction = path.reachable_fraction;
  }
  const auto comp = graph::connected_components(g);
  s.components = comp.count;
  s.largest_component = comp.largest;
  return s;
}

ScenarioResult run_scenario(sim::Network network, const ScenarioParams& params,
                            const PreCycleHook& pre_cycle) {
  PSS_CHECK_MSG(params.sample_interval > 0, "sample interval must be positive");
  // Metric sampling gets its own stream so estimator noise never perturbs
  // the protocol trajectory.
  Rng metric_rng(params.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  ScenarioResult result{.series = {}, .network = std::move(network)};
  sim::CycleEngine engine(result.network);
  result.series.push_back(measure(result.network, 0, params, metric_rng));
  for (Cycle cycle = 1; cycle <= params.cycles; ++cycle) {
    if (pre_cycle) pre_cycle(result.network, cycle);
    engine.run_cycle();
    if (cycle % params.sample_interval == 0 || cycle == params.cycles) {
      result.series.push_back(measure(result.network, cycle, params, metric_rng));
    }
  }
  return result;
}

ScenarioResult run_random_scenario(ProtocolSpec spec, const ScenarioParams& params) {
  auto network = sim::bootstrap::make_random(spec, params.protocol_options(),
                                             params.n, params.seed);
  return run_scenario(std::move(network), params);
}

ScenarioResult run_lattice_scenario(ProtocolSpec spec, const ScenarioParams& params) {
  auto network = sim::bootstrap::make_lattice(spec, params.protocol_options(),
                                              params.n, params.seed);
  return run_scenario(std::move(network), params);
}

ScenarioResult run_growing_scenario(ProtocolSpec spec, const ScenarioParams& params) {
  sim::Network network(spec, params.protocol_options(), params.seed);
  const NodeId origin = network.add_node();
  const std::size_t target = params.n;
  auto grow = [origin, target, growth = params.growth_per_cycle](
                  sim::Network& net, Cycle) {
    std::size_t room = target > net.size() ? target - net.size() : 0;
    const std::size_t batch = std::min(growth, room);
    for (std::size_t i = 0; i < batch; ++i) {
      const NodeId id = net.add_node();
      // A newcomer knows only the oldest (initial) node — the paper's most
      // pessimistic bootstrap.
      net.node(id).init_view(View{{origin, 0}});
    }
  };
  return run_scenario(std::move(network), params, grow);
}

PartitioningStats run_growing_partitioning(ProtocolSpec spec,
                                           const ScenarioParams& params,
                                           std::size_t runs) {
  PSS_CHECK_MSG(runs > 0, "at least one run required");
  PartitioningStats stats;
  stats.spec = spec;
  stats.runs = runs;
  double cluster_sum = 0;
  double largest_sum = 0;
  for (std::size_t r = 0; r < runs; ++r) {
    ScenarioParams p = params;
    p.seed = params.seed + r;
    // Partitioning statistics only need the final topology: skip interior
    // metric sampling for speed.
    p.sample_interval = params.cycles > 0 ? params.cycles : 1;
    auto result = run_growing_scenario(spec, p);
    const auto g = graph::UndirectedGraph::from_network(result.network);
    const auto comp = graph::connected_components(g);
    if (comp.count > 1) {
      ++stats.partitioned_runs;
      cluster_sum += static_cast<double>(comp.count);
      largest_sum += static_cast<double>(comp.largest);
    }
  }
  if (stats.partitioned_runs > 0) {
    stats.avg_clusters = cluster_sum / static_cast<double>(stats.partitioned_runs);
    stats.avg_largest = largest_sum / static_cast<double>(stats.partitioned_runs);
  }
  return stats;
}

}  // namespace pss::experiments
