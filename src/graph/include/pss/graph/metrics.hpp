// Graph-theoretic observables used throughout the evaluation (Section 4.2):
// degree distribution, clustering coefficient, average path length, and
// connectivity (components / largest cluster / partitioning).
//
// Exact variants are O(n·d²) (clustering) and O(n·(n+m)) (path length);
// sampled variants take an explicit sample size and an Rng so that every
// bench states its estimator precisely. Tests validate the estimators
// against exact values on graphs with closed-form properties.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/graph/undirected_graph.hpp"

namespace pss::graph {

/// Mean vertex degree (2m/n); 0 for the empty graph.
double average_degree(const UndirectedGraph& g);

/// counts[d] = number of vertices with degree d (size = max degree + 1).
std::vector<std::size_t> degree_histogram(const UndirectedGraph& g);

/// Summary of the degree distribution.
struct DegreeSummary {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0;
  double variance = 0;  ///< population variance
};
DegreeSummary degree_summary(const UndirectedGraph& g);

/// Local clustering coefficient of vertex v: edges among neighbours divided
/// by deg(v)·(deg(v)-1)/2; defined as 0 when deg(v) < 2.
double local_clustering(const UndirectedGraph& g, std::uint32_t v);

/// Exact graph clustering coefficient: mean of local coefficients.
double clustering_coefficient(const UndirectedGraph& g);

/// Estimate over `sample_size` uniformly sampled vertices (exact when
/// sample_size >= n).
double clustering_coefficient_sampled(const UndirectedGraph& g,
                                      std::size_t sample_size, Rng& rng);

/// BFS distances from `source`; unreachable vertices get kUnreachable.
inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;
std::vector<std::uint32_t> bfs_distances(const UndirectedGraph& g,
                                         std::uint32_t source);

/// Result of a path-length measurement.
struct PathLengthResult {
  double average = 0;          ///< mean distance over reachable ordered pairs
  double reachable_fraction = 1;  ///< reachable ordered pairs / all pairs
  std::uint32_t diameter = 0;  ///< max finite distance seen
};

/// Exact: BFS from every vertex.
PathLengthResult average_path_length(const UndirectedGraph& g);

/// Estimate: BFS from `sources` uniformly sampled vertices (exact when
/// sources >= n). Averages distances from the sampled sources to all other
/// vertices, an unbiased estimator of the all-pairs mean.
PathLengthResult average_path_length_sampled(const UndirectedGraph& g,
                                             std::size_t sources, Rng& rng);

/// Connected components.
struct ComponentInfo {
  std::size_t count = 0;
  std::size_t largest = 0;                ///< size of the largest component
  std::vector<std::size_t> sizes;         ///< all component sizes, descending
  std::vector<std::uint32_t> label;       ///< vertex -> component id
  /// Vertices outside the largest component (the paper's Figure 6 metric).
  std::size_t outside_largest() const;
  bool connected() const { return count <= 1; }
};
ComponentInfo connected_components(const UndirectedGraph& g);

}  // namespace pss::graph
