// Uniform random-view baseline (the horizontal lines in Figures 2-3).
//
// The paper compares every overlay against the graph in which each node's
// view is an independent uniform random sample of c other nodes. This is
// NOT an Erdős–Rényi G(n,p) graph: it is the undirected closure of a random
// c-out digraph, whose degree is c plus a Binomial(n-1-c', ~c/n) in-degree
// contribution, giving mean degree slightly below 2c.
#pragma once

#include <cstdint>

#include "pss/common/rng.hpp"
#include "pss/graph/undirected_graph.hpp"

namespace pss::graph {

/// Undirected closure of a uniform random c-out digraph on n vertices.
UndirectedGraph random_view_graph(std::size_t n, std::size_t c, Rng& rng);

/// Expected mean degree of random_view_graph: 2c − c²/(n−1) (a directed
/// edge collapses with its reverse with probability c/(n−1)).
double expected_random_view_degree(std::size_t n, std::size_t c);

/// Expected clustering coefficient ≈ mean degree / n (edge density between
/// any two neighbours is ~d̄/n for this near-random graph).
double expected_random_view_clustering(std::size_t n, std::size_t c);

/// Analytic approximation of the average path length of a random graph
/// with n vertices and mean degree d̄: ln(n)/ln(d̄) (valid for d̄ >> 1).
double expected_random_path_length(std::size_t n, std::size_t c);

}  // namespace pss::graph
