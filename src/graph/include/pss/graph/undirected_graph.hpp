// Undirected communication graph (paper Section 4).
//
// The directed overlay has an edge (a, b) when a's view holds a descriptor
// of b; the paper analyses the undirected version (information flow is
// two-way once a connection is made). This class is an immutable snapshot
// in CSR-like form: vertices re-indexed to [0, n), sorted adjacency lists,
// no self-loops, no parallel edges.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/membership/view.hpp"

namespace pss::sim {
class Network;
}

namespace pss::graph {

class UndirectedGraph {
 public:
  /// Builds from raw (possibly duplicated, possibly both-direction) edge
  /// pairs over vertices [0, n). Self-loops are dropped.
  UndirectedGraph(std::size_t n, std::vector<std::pair<std::uint32_t, std::uint32_t>> edges);

  /// Snapshot of the live part of a simulated overlay: vertices are live
  /// nodes (re-indexed in ascending address order), an edge per live->live
  /// view entry; dead links are ignored.
  static UndirectedGraph from_network(const sim::Network& network);

  /// Builds from one view per vertex (vertex i's view); descriptor
  /// addresses must be < views.size(). For tests and baselines.
  static UndirectedGraph from_views(const std::vector<View>& views);

  std::size_t vertex_count() const { return offsets_.size() - 1; }
  std::size_t edge_count() const { return neighbors_.size() / 2; }

  /// Sorted neighbour list of vertex v.
  std::span<const std::uint32_t> neighbors(std::uint32_t v) const;

  std::size_t degree(std::uint32_t v) const;

  /// True when {u, v} is an edge (binary search on the shorter list).
  bool has_edge(std::uint32_t u, std::uint32_t v) const;

  /// Degrees of all vertices.
  std::vector<std::size_t> degrees() const;

  /// Original network address of re-indexed vertex v (identity when the
  /// graph was not built via from_network).
  NodeId address_of(std::uint32_t v) const;

  /// Re-indexed vertex of a network address, or kInvalidNode-like npos.
  static constexpr std::uint32_t kNoVertex = 0xFFFFFFFFu;
  std::uint32_t vertex_of(NodeId address) const;

 private:
  UndirectedGraph() = default;
  void build_csr(std::size_t n,
                 const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

  std::vector<std::size_t> offsets_;        // n+1 CSR offsets
  std::vector<std::uint32_t> neighbors_;    // 2m sorted-per-vertex entries
  std::vector<NodeId> address_of_;          // vertex -> original address
  std::vector<std::uint32_t> vertex_of_;    // address -> vertex (dense map)
};

}  // namespace pss::graph
