#include "pss/graph/metrics.hpp"

#include <algorithm>
#include <deque>

#include "pss/common/check.hpp"

namespace pss::graph {

double average_degree(const UndirectedGraph& g) {
  if (g.vertex_count() == 0) return 0;
  return 2.0 * static_cast<double>(g.edge_count()) /
         static_cast<double>(g.vertex_count());
}

std::vector<std::size_t> degree_histogram(const UndirectedGraph& g) {
  std::size_t max_degree = 0;
  for (std::uint32_t v = 0; v < g.vertex_count(); ++v)
    max_degree = std::max(max_degree, g.degree(v));
  std::vector<std::size_t> counts(max_degree + 1, 0);
  for (std::uint32_t v = 0; v < g.vertex_count(); ++v) ++counts[g.degree(v)];
  return counts;
}

DegreeSummary degree_summary(const UndirectedGraph& g) {
  DegreeSummary s;
  const std::size_t n = g.vertex_count();
  if (n == 0) return s;
  s.min = g.degree(0);
  s.max = g.degree(0);
  double sum = 0, sum_sq = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::size_t d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    sum += static_cast<double>(d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);
  }
  s.mean = sum / static_cast<double>(n);
  s.variance = sum_sq / static_cast<double>(n) - s.mean * s.mean;
  if (s.variance < 0) s.variance = 0;  // numeric noise
  return s;
}

double local_clustering(const UndirectedGraph& g, std::uint32_t v) {
  const auto nb = g.neighbors(v);
  const std::size_t d = nb.size();
  if (d < 2) return 0;
  std::size_t links = 0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      if (g.has_edge(nb[i], nb[j])) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double clustering_coefficient(const UndirectedGraph& g) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return 0;
  double sum = 0;
  for (std::uint32_t v = 0; v < n; ++v) sum += local_clustering(g, v);
  return sum / static_cast<double>(n);
}

double clustering_coefficient_sampled(const UndirectedGraph& g,
                                      std::size_t sample_size, Rng& rng) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return 0;
  if (sample_size >= n) return clustering_coefficient(g);
  PSS_CHECK_MSG(sample_size > 0, "sample size must be positive");
  auto picks = rng.sample_indices(n, sample_size);
  double sum = 0;
  for (std::size_t v : picks)
    sum += local_clustering(g, static_cast<std::uint32_t>(v));
  return sum / static_cast<double>(sample_size);
}

std::vector<std::uint32_t> bfs_distances(const UndirectedGraph& g,
                                         std::uint32_t source) {
  PSS_CHECK_MSG(source < g.vertex_count(), "BFS source out of range");
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreachable);
  std::deque<std::uint32_t> frontier;
  dist[source] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop_front();
    const std::uint32_t du = dist[u];
    for (std::uint32_t w : g.neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = du + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

namespace {

PathLengthResult path_length_from_sources(const UndirectedGraph& g,
                                          const std::vector<std::size_t>& sources) {
  PathLengthResult r;
  const std::size_t n = g.vertex_count();
  if (n < 2 || sources.empty()) return r;
  double total = 0;
  std::uint64_t reachable_pairs = 0;
  std::uint32_t diameter = 0;
  for (std::size_t s : sources) {
    const auto dist = bfs_distances(g, static_cast<std::uint32_t>(s));
    for (std::size_t v = 0; v < n; ++v) {
      if (v == s || dist[v] == kUnreachable) continue;
      total += static_cast<double>(dist[v]);
      ++reachable_pairs;
      diameter = std::max(diameter, dist[v]);
    }
  }
  const std::uint64_t all_pairs =
      static_cast<std::uint64_t>(sources.size()) * (n - 1);
  r.average = reachable_pairs > 0 ? total / static_cast<double>(reachable_pairs) : 0;
  r.reachable_fraction =
      all_pairs > 0
          ? static_cast<double>(reachable_pairs) / static_cast<double>(all_pairs)
          : 1;
  r.diameter = diameter;
  return r;
}

}  // namespace

PathLengthResult average_path_length(const UndirectedGraph& g) {
  std::vector<std::size_t> sources(g.vertex_count());
  for (std::size_t i = 0; i < sources.size(); ++i) sources[i] = i;
  return path_length_from_sources(g, sources);
}

PathLengthResult average_path_length_sampled(const UndirectedGraph& g,
                                             std::size_t sources, Rng& rng) {
  const std::size_t n = g.vertex_count();
  if (sources >= n) return average_path_length(g);
  PSS_CHECK_MSG(sources > 0, "source sample must be positive");
  return path_length_from_sources(g, rng.sample_indices(n, sources));
}

std::size_t ComponentInfo::outside_largest() const {
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;
  return total - largest;
}

ComponentInfo connected_components(const UndirectedGraph& g) {
  ComponentInfo info;
  const std::size_t n = g.vertex_count();
  info.label.assign(n, UndirectedGraph::kNoVertex);
  std::vector<std::uint32_t> stack;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (info.label[v] != UndirectedGraph::kNoVertex) continue;
    const auto id = static_cast<std::uint32_t>(info.sizes.size());
    std::size_t size = 0;
    stack.push_back(v);
    info.label[v] = id;
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      ++size;
      for (std::uint32_t w : g.neighbors(u)) {
        if (info.label[w] == UndirectedGraph::kNoVertex) {
          info.label[w] = id;
          stack.push_back(w);
        }
      }
    }
    info.sizes.push_back(size);
  }
  info.count = info.sizes.size();
  std::sort(info.sizes.rbegin(), info.sizes.rend());
  info.largest = info.sizes.empty() ? 0 : info.sizes.front();
  return info;
}

}  // namespace pss::graph
