#include "pss/graph/random_graph.hpp"

#include <cmath>

#include "pss/common/check.hpp"

namespace pss::graph {

UndirectedGraph random_view_graph(std::size_t n, std::size_t c, Rng& rng) {
  PSS_CHECK_MSG(n >= 2, "graph needs at least two vertices");
  const std::size_t out = std::min(c, n - 1);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n * out);
  for (std::uint32_t v = 0; v < n; ++v) {
    auto picks = rng.sample_indices(n - 1, out);
    for (std::size_t p : picks) {
      const auto w = static_cast<std::uint32_t>(p < v ? p : p + 1);
      edges.emplace_back(v, w);
    }
  }
  return UndirectedGraph(n, std::move(edges));
}

double expected_random_view_degree(std::size_t n, std::size_t c) {
  const double cc = static_cast<double>(std::min(c, n - 1));
  const double denom = static_cast<double>(n - 1);
  return 2.0 * cc - cc * cc / denom;
}

double expected_random_view_clustering(std::size_t n, std::size_t c) {
  return expected_random_view_degree(n, c) / static_cast<double>(n);
}

double expected_random_path_length(std::size_t n, std::size_t c) {
  const double d = expected_random_view_degree(n, c);
  PSS_CHECK_MSG(d > 1.0, "path-length approximation needs mean degree > 1");
  return std::log(static_cast<double>(n)) / std::log(d);
}

}  // namespace pss::graph
