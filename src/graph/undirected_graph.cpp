#include "pss/graph/undirected_graph.hpp"

#include <algorithm>

#include "pss/common/check.hpp"
#include "pss/sim/network.hpp"

namespace pss::graph {

UndirectedGraph::UndirectedGraph(
    std::size_t n, std::vector<std::pair<std::uint32_t, std::uint32_t>> edges) {
  address_of_.resize(n);
  vertex_of_.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    address_of_[v] = v;
    vertex_of_[v] = v;
  }
  build_csr(n, edges);
}

void UndirectedGraph::build_csr(
    std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  // Degree-count pass (both endpoints, self-loops dropped): the neighbor
  // array is reserved exactly from the counts, so nothing here materializes
  // the historical doubled pair vector (2·E × 8 B) or pays its global sort.
  offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    PSS_CHECK_MSG(u < n && v < n, "edge endpoint out of range");
    if (u == v) continue;
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] += offsets_[i - 1];
  neighbors_.resize(offsets_[n]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    neighbors_[cursor[u]++] = v;
    neighbors_[cursor[v]++] = u;
  }
  // Canonicalize per vertex — sort + dedup each list, compacting in place
  // (the write position never overtakes the read position, and each old
  // offset is saved before it is overwritten with the compacted one).
  std::size_t write = 0;
  std::size_t read_begin = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t read_end = offsets_[v + 1];
    const auto first = neighbors_.begin() + static_cast<std::ptrdiff_t>(read_begin);
    const auto last = neighbors_.begin() + static_cast<std::ptrdiff_t>(read_end);
    std::sort(first, last);
    const auto unique_end = std::unique(first, last);
    const std::size_t len =
        static_cast<std::size_t>(unique_end - first);
    if (write != read_begin) {
      std::move(first, first + static_cast<std::ptrdiff_t>(len),
                neighbors_.begin() + static_cast<std::ptrdiff_t>(write));
    }
    write += len;
    read_begin = read_end;
    offsets_[v + 1] = write;
  }
  neighbors_.resize(write);
}

UndirectedGraph UndirectedGraph::from_network(const sim::Network& network) {
  const auto live = network.live_nodes();
  const std::size_t n = live.size();
  UndirectedGraph g;
  g.address_of_ = live;
  g.vertex_of_.assign(network.size(), kNoVertex);
  for (std::uint32_t v = 0; v < n; ++v) g.vertex_of_[live[v]] = v;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n * network.options().view_size);
  for (std::uint32_t v = 0; v < n; ++v) {
    // Straight from the arena: no per-node View materialization.
    for (const auto& d : network.view_span(live[v])) {
      const std::uint32_t w =
          d.address < g.vertex_of_.size() ? g.vertex_of_[d.address] : kNoVertex;
      if (w != kNoVertex) edges.emplace_back(v, w);
    }
  }
  g.build_csr(n, edges);
  return g;
}

UndirectedGraph UndirectedGraph::from_views(const std::vector<View>& views) {
  const std::size_t n = views.size();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t v = 0; v < n; ++v) {
    for (const auto& d : views[v].entries()) {
      PSS_CHECK_MSG(d.address < n, "view references address outside graph");
      edges.emplace_back(v, d.address);
    }
  }
  return UndirectedGraph(n, std::move(edges));
}

std::span<const std::uint32_t> UndirectedGraph::neighbors(std::uint32_t v) const {
  PSS_DCHECK(v + 1 < offsets_.size());
  return {neighbors_.data() + offsets_[v], neighbors_.data() + offsets_[v + 1]};
}

std::size_t UndirectedGraph::degree(std::uint32_t v) const {
  PSS_DCHECK(v + 1 < offsets_.size());
  return offsets_[v + 1] - offsets_[v];
}

bool UndirectedGraph::has_edge(std::uint32_t u, std::uint32_t v) const {
  if (degree(u) > degree(v)) std::swap(u, v);
  auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<std::size_t> UndirectedGraph::degrees() const {
  std::vector<std::size_t> out(vertex_count());
  for (std::uint32_t v = 0; v < out.size(); ++v) out[v] = degree(v);
  return out;
}

NodeId UndirectedGraph::address_of(std::uint32_t v) const {
  PSS_CHECK_MSG(v < address_of_.size(), "vertex out of range");
  return address_of_[v];
}

std::uint32_t UndirectedGraph::vertex_of(NodeId address) const {
  if (address >= vertex_of_.size()) return kNoVertex;
  return vertex_of_[address];
}

}  // namespace pss::graph
