#include "pss/membership/flat_view_store.hpp"

namespace pss {

void FlatViewStore::assign(NodeId slot, std::span<const NodeDescriptor> entries) {
  PSS_CHECK_MSG(slot < sizes_.size(), "flat store slot out of range");
  PSS_CHECK_MSG(entries.size() <= capacity_,
                "view exceeds the flat slot capacity (protocol view size c)");
#ifndef NDEBUG
  for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
    PSS_CHECK_MSG(ByHopThenAddress{}(entries[i], entries[i + 1]),
                  "assign: entries not normalized (sorted, duplicate-free)");
  }
#endif
  NodeDescriptor* base =
      slots_.data() + static_cast<std::size_t>(slot) * capacity_;
  for (std::size_t i = 0; i < entries.size(); ++i) base[i] = entries[i];
  sizes_[slot] = static_cast<std::uint32_t>(entries.size());
  touch(slot);
}

bool FlatViewStore::erase_address(NodeId slot, NodeId address) {
  PSS_CHECK_MSG(slot < sizes_.size(), "flat store slot out of range");
  NodeDescriptor* base =
      slots_.data() + static_cast<std::size_t>(slot) * capacity_;
  const std::uint32_t n = sizes_[slot];
  for (std::uint32_t i = 0; i < n; ++i) {
    if (base[i].address == address) {
      for (std::uint32_t j = i + 1; j < n; ++j) base[j - 1] = base[j];
      sizes_[slot] = n - 1;
      touch(slot);
      return true;
    }
  }
  return false;
}

}  // namespace pss
