// Recycling pool of fixed-stride descriptor slabs: the flat message payload
// type.
//
// A gossip message carries at most view_size + 1 descriptors (a full view
// plus the sender's own). The legacy event engine shipped each one as a
// heap-allocated View inside the event record — one allocation and one
// unbounded copy per message, millions of times per run. A slab is instead
// a fixed-size window into one contiguous array: acquiring recycles a freed
// slot when one exists and only appends (amortized growth) while the
// in-flight population is still climbing, so the steady state allocates
// nothing and message payloads stay as cache-dense as the views themselves.
//
// Slabs are addressed by index, not pointer: acquire() may grow the backing
// array and move it, so callers must re-derive data() after any acquire and
// never hold a slab pointer across one. Ownership is a strict
// acquire/release protocol — whoever dequeues the message (delivery, drop
// at a dead/unreachable target) releases the slab; the pool does not track
// double frees (the event engine's queue holds each slab id exactly once).
//
// Content contract: slab entries obey the same I1/I2 invariants as views
// (sorted by (hop, address), one entry per address) because they are only
// ever written by the flat_exchange buffer builders; that is what lets the
// merge kernels consume a slab span directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pss/common/check.hpp"
#include "pss/membership/node_descriptor.hpp"

namespace pss {

class DescriptorSlabPool {
 public:
  using SlabId = std::uint32_t;
  static constexpr SlabId kNoSlab = ~SlabId{0};

  /// `stride` is the fixed entry capacity of every slab (the engine passes
  /// view_size + 1, the worst-case Figure-1 buffer).
  explicit DescriptorSlabPool(std::size_t stride) : stride_(stride) {
    PSS_CHECK_MSG(stride_ > 0, "slab stride must be positive");
  }

  std::size_t stride() const { return stride_; }

  /// Slabs ever created (the pool's high-water mark of in-flight messages).
  std::size_t slab_count() const { return sizes_.size(); }

  /// Slabs currently acquired and not yet released.
  std::size_t in_use() const { return sizes_.size() - free_.size(); }

  /// Pre-grows the pool to `n` slabs (bench warm-up aid).
  void reserve(std::size_t n) {
    entries_.reserve(n * stride_);
    sizes_.reserve(n);
    free_.reserve(n);
  }

  /// Hands out an empty slab, recycling the most recently released one
  /// (LIFO keeps the hot slab in cache). May move the backing array.
  SlabId acquire() {
    if (!free_.empty()) {
      const SlabId id = free_.back();
      free_.pop_back();
      return id;
    }
    const SlabId id = static_cast<SlabId>(sizes_.size());
    entries_.resize(entries_.size() + stride_);
    sizes_.push_back(0);
    return id;
  }

  /// Returns a slab to the free list. The id must be acquired and must not
  /// be used afterwards.
  void release(SlabId id) {
    PSS_DCHECK(id < sizes_.size());
    sizes_[id] = 0;
    free_.push_back(id);
  }

  NodeDescriptor* data(SlabId id) {
    PSS_DCHECK(id < sizes_.size());
    return entries_.data() + static_cast<std::size_t>(id) * stride_;
  }

  const NodeDescriptor* data(SlabId id) const {
    PSS_DCHECK(id < sizes_.size());
    return entries_.data() + static_cast<std::size_t>(id) * stride_;
  }

  std::uint32_t size(SlabId id) const {
    PSS_DCHECK(id < sizes_.size());
    return sizes_[id];
  }

  void set_size(SlabId id, std::uint32_t n) {
    PSS_DCHECK(id < sizes_.size() && n <= stride_);
    sizes_[id] = n;
  }

  /// The slab's entries as a read-only span.
  std::span<const NodeDescriptor> span(SlabId id) const {
    return {data(id), sizes_[id]};
  }

  /// Hints the prefetcher at a slab about to be consumed (the event
  /// engine's lookahead: a message payload was written thousands of events
  /// ago and is cold by delivery time).
  void prefetch(SlabId id) const {
#if defined(__GNUC__) || defined(__clang__)
    const char* base = reinterpret_cast<const char*>(
        entries_.data() + static_cast<std::size_t>(id) * stride_);
    const std::size_t bytes = stride_ * sizeof(NodeDescriptor);
    for (std::size_t off = 0; off < bytes; off += 64) {
      __builtin_prefetch(base + off, 0, 1);
    }
    __builtin_prefetch(sizes_.data() + id, 0, 1);
#else
    (void)id;
#endif
  }

  /// Bytes reserved by the pool (payload + size + free-list arrays).
  std::size_t storage_bytes() const {
    return entries_.capacity() * sizeof(NodeDescriptor) +
           sizes_.capacity() * sizeof(std::uint32_t) +
           free_.capacity() * sizeof(SlabId);
  }

 private:
  std::size_t stride_;
  std::vector<NodeDescriptor> entries_;  ///< slab_count * stride, contiguous
  std::vector<std::uint32_t> sizes_;     ///< live entry count per slab
  std::vector<SlabId> free_;             ///< released ids, LIFO
};

}  // namespace pss
