// Allocation-free mirrors of the View algorithms, for the flat hot path.
//
// Every routine here reproduces the corresponding View member bit-for-bit —
// same ordering (ByHopThenAddress), same dedup rule (lowest hop count per
// address), and, crucially, the same Rng call sequence — so that a
// simulation driven through flat buffers is indistinguishable from one
// driven through View objects at the same seed. The equivalence is pinned
// by randomized traces in tests/flat_view_store_test.cpp; when changing an
// algorithm here, change View in lockstep or those tests fail.
//
// All functions operate on caller-provided vectors whose capacity is reused
// across calls (see Scratch), so a steady-state exchange performs no heap
// allocation. Buffers may exceed the protocol's c — like View, the merge
// buffer is unbounded and only selection enforces c.
//
// Everything is defined inline: these are the per-exchange kernels of the
// simulation (tens of millions of calls per run), and cross-TU call
// overhead plus the lost inlining cost ~10% of wall-clock at 10^6 nodes.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pss/common/check.hpp"
#include "pss/common/rng.hpp"
#include "pss/membership/node_descriptor.hpp"
#include "pss/membership/simd.hpp"

namespace pss::flat {

using DescSpan = std::span<const NodeDescriptor>;

/// Small open-addressing set of addresses with generation-stamped slots, so
/// clearing between merges is one counter bump instead of a memset. Each
/// slot packs (generation << 32 | address) into one word — a probe is a
/// single load, an insert a single store. Sized for merge buffers
/// (<= 2c + 2 entries at c = 30); merge_into falls back to the sort-based
/// path when a buffer could overrun it.
class AddressSet {
 public:
  static constexpr std::size_t kSlots = 256;
  /// Entries a single merge may insert while staying under ~50% load.
  static constexpr std::size_t kMaxEntries = 128;

  void reset() {
    if (++generation_ == 0) {
      table_.fill(0);
      generation_ = 1;
    }
  }

  /// Returns true when `addr` was not in the set (and inserts it).
  bool insert(NodeId addr) {
    const std::uint64_t tag = (static_cast<std::uint64_t>(generation_) << 32);
    const std::uint64_t entry = tag | addr;
    std::size_t i = (addr * 2654435761u) & (kSlots - 1);
    while ((table_[i] & kGenMask) == tag) {
      if (table_[i] == entry) return false;
      i = (i + 1) & (kSlots - 1);
    }
    table_[i] = entry;
    return true;
  }

 private:
  static constexpr std::uint64_t kGenMask = 0xFFFFFFFF00000000ULL;

  std::array<std::uint64_t, kSlots> table_{};
  std::uint32_t generation_ = 0;
};

/// Reusable working memory for one exchange pipeline. Owned by whoever
/// drives exchanges (the cycle engine owns one; adapter methods make a
/// short-lived local one). Never aliased across the pipeline: `merged`
/// backs absorb, `buffer`/`reply` carry the in-flight messages, the rest
/// back view selection.
struct Scratch {
  std::vector<NodeDescriptor> merged;  ///< absorb's union buffer
  std::vector<NodeDescriptor> buffer;  ///< active thread's outgoing buffer
  std::vector<NodeDescriptor> reply;   ///< passive thread's pull reply
  std::vector<NodeDescriptor> sel;     ///< selection: assembled result
  std::vector<std::size_t> picks;      ///< sample_indices output
  std::vector<std::size_t> fy;         ///< sample_indices Fisher–Yates table
  AddressSet seen;                     ///< merge dedup table
  /// Raw landing zone for the merge loop: plain stores with no vector
  /// size/capacity bookkeeping, bulk-assigned to `merged` afterwards.
  std::array<NodeDescriptor, AddressSet::kMaxEntries> merge_arr;
  // SIMD union-merge staging (see pss/membership/simd.hpp): both inputs are
  // copied here so the 4-wide loads read sentinel padding, never the bytes
  // past a view slot or message slab; union_arr takes the merged stream
  // (<= kMaxEntries real entries) plus the kernel's 4-entry sentinel spill.
  std::array<NodeDescriptor, AddressSet::kMaxEntries + 8> pad_a;
  std::array<NodeDescriptor, AddressSet::kMaxEntries + 8> pad_b;
  std::array<NodeDescriptor, AddressSet::kMaxEntries + 8> union_arr;
};

namespace detail {

/// (hop_count << 32) | address: u1 < u2 is exactly ByHopThenAddress.
inline std::uint64_t sort_key(const NodeDescriptor& d) {
  return (static_cast<std::uint64_t>(d.hop_count) << 32) | d.address;
}

#ifndef NDEBUG
inline bool is_normalized(DescSpan v) {
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    if (!ByHopThenAddress{}(v[i], v[i + 1])) return false;
  }
  return true;
}
#endif

/// Insertion sort for the tiny pick lists (<= c elements): beats introsort's
/// dispatch overhead at this size and is branch-friendly on nearly-sorted
/// input.
inline void sort_small(std::vector<std::size_t>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    const std::size_t x = v[i];
    std::size_t j = i;
    while (j > 0 && v[j - 1] > x) {
      v[j] = v[j - 1];
      --j;
    }
    v[j] = x;
  }
}

}  // namespace detail

/// View::normalize: sort by (address, hop) to bring each address's freshest
/// copy first, drop the rest, restore (hop, address) order. General-input
/// path; merge_into avoids it when both inputs are already normalized.
inline void normalize(std::vector<NodeDescriptor>& buf) {
  std::sort(buf.begin(), buf.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) {
              if (a.address != b.address) return a.address < b.address;
              return a.hop_count < b.hop_count;
            });
  buf.erase(std::unique(buf.begin(), buf.end(),
                        [](const NodeDescriptor& a, const NodeDescriptor& b) {
                          return a.address == b.address;
                        }),
            buf.end());
  std::sort(buf.begin(), buf.end(), ByHopThenAddress{});
}

/// View::merge(increase_hop_count(a, age_a), b): `out` becomes the
/// normalized union, with the `a` side aged by `age_a` hops on the fly.
/// `out` must not alias `a` or `b`. Requires `a` and `b` normalized
/// (I1/I2) — true for every view slot and message buffer — which admits a
/// linear two-pointer merge with hash dedup instead of View::merge's two
/// sorts; both paths produce the identical canonical array (lowest hop per
/// address, ordered by ByHopThenAddress).
///
/// `age_a` exists because every Figure-1 handler ages the incoming buffer
/// immediately before merging it: folding the uniform +age into the merge's
/// key comparison (aging preserves the (hop, address) order) saves a full
/// read-modify-write pass over the message on the hot path.
inline void merge_into(DescSpan a, DescSpan b, std::vector<NodeDescriptor>& out,
                       Scratch& scratch, HopCount age_a = 0) {
  const std::uint64_t age_key = static_cast<std::uint64_t>(age_a) << 32;
  if (a.size() + b.size() > AddressSet::kMaxEntries) {
    // Oversized inputs (possible only through the adapter API with
    // arbitrarily large Views) take the sort-based path.
    out.clear();
    out.reserve(a.size() + b.size());
    for (const NodeDescriptor& d : a) {
      out.push_back({d.address, d.hop_count + age_a});
    }
    out.insert(out.end(), b.begin(), b.end());
    normalize(out);
    return;
  }
  PSS_DCHECK(detail::is_normalized(a) && detail::is_normalized(b));
  if (simd::use_union_merge(a.size(), b.size())) {
    // Vector path: 4-wide bitonic union merge (aging the `a` side during
    // its staging copy), then the same dedup rule as the scalar stream
    // below. Equal keys are identical descriptors and dedup keeps the first
    // occurrence per address — the lowest key — in both paths, so the
    // output is byte-identical (pinned by tests/simd_kernels_test.cpp).
    simd::aged_copy(scratch.pad_a.data(), a.data(), a.size(), age_a);
    simd::pad_after(scratch.pad_a.data(), a.size());
    simd::aged_copy(scratch.pad_b.data(), b.data(), b.size(), 0);
    simd::pad_after(scratch.pad_b.data(), b.size());
    simd::merge_union(scratch.pad_a.data(), a.size(), scratch.pad_b.data(),
                      b.size(), scratch.union_arr.data());
    scratch.seen.reset();
    NodeDescriptor* const base = scratch.merge_arr.data();
    NodeDescriptor* cursor = base;
    const std::size_t total = a.size() + b.size();
    for (std::size_t t = 0; t < total; ++t) {
      const NodeDescriptor d = scratch.union_arr[t];
      *cursor = d;
      cursor += scratch.seen.insert(d.address);
    }
    out.assign(base, cursor);
    return;
  }
  // Two-pointer merge over the already-sorted inputs. In (hop, address)
  // order the first occurrence of an address is its lowest-hop copy, so
  // dropping every later occurrence reproduces View::merge exactly. Equal
  // (hop, address) pairs are identical descriptors, so tie order between
  // the inputs cannot matter. Comparing packed (hop << 32 | address) keys
  // is ByHopThenAddress as one branch-free integer compare.
  scratch.seen.reset();
  NodeDescriptor* const base = scratch.merge_arr.data();
  NodeDescriptor* cursor = base;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::size_t take_a =
        static_cast<std::size_t>(detail::sort_key(a[i]) + age_key <
                                 detail::sort_key(b[j]));
    const NodeDescriptor d = take_a
                                 ? NodeDescriptor{a[i].address,
                                                  a[i].hop_count + age_a}
                                 : b[j];
    i += take_a;
    j += 1 - take_a;
    *cursor = d;
    cursor += scratch.seen.insert(d.address);
  }
  for (; i < a.size(); ++i) {
    *cursor = {a[i].address, a[i].hop_count + age_a};
    cursor += scratch.seen.insert(a[i].address);
  }
  for (; j < b.size(); ++j) {
    *cursor = b[j];
    cursor += scratch.seen.insert(b[j].address);
  }
  out.assign(base, cursor);
}

/// View::merge(view, {{self, 0}}) specialisation for buffer building:
/// inserts {self, 0} at its sorted position. Precondition: `self` is not in
/// `buf` (a node never stores its own descriptor).
inline void insert_self(std::vector<NodeDescriptor>& buf, NodeId self) {
  const NodeDescriptor d{self, 0};
  PSS_DCHECK(std::none_of(buf.begin(), buf.end(),
                          [self](const NodeDescriptor& e) {
                            return e.address == self;
                          }));
  auto pos = std::upper_bound(buf.begin(), buf.end(), d, ByHopThenAddress{});
  buf.insert(pos, d);
}

/// View::erase: removes the entry for `address`; returns true when removed.
inline bool remove_address(std::vector<NodeDescriptor>& buf, NodeId address) {
  auto it = std::find_if(buf.begin(), buf.end(),
                         [address](const NodeDescriptor& d) {
                           return d.address == address;
                         });
  if (it == buf.end()) return false;
  buf.erase(it);
  return true;
}

// --- View selection (in place on buf; mirrors View::select_*) -------------

/// select_head: deterministic truncation to the first min(c, size) entries.
inline void select_head(std::vector<NodeDescriptor>& buf, std::size_t c) {
  if (buf.size() > c) buf.resize(c);
}

namespace detail {

// Mirror of View's select_boundary_sampled: keep every entry strictly
// inside the kept range, sample the boundary hop-class uniformly to fill up
// to c. Same rng consumption: one sample_indices draw, none when k == n.
// Avoids View's final re-sort: the interior block is a subsequence of the
// sorted buffer and the sampled boundary entries all share one hop count,
// so gathering the picks in ascending index order (the class is
// address-ascending) and concatenating the two blocks lands directly on the
// canonical (hop, address) order.
inline void select_boundary_sampled(std::vector<NodeDescriptor>& buf,
                                    std::size_t c, Rng& rng, Scratch& s,
                                    bool from_head) {
  const std::size_t n = buf.size();
  const std::size_t k = std::min(c, n);
  if (k == n) return;  // nothing truncated; View draws no rng here either
  if (k == 0) {
    buf.clear();
    return;
  }
  const std::size_t boundary_pos = from_head ? k - 1 : n - k;
  const HopCount boundary_hop = buf[boundary_pos].hop_count;
  // The buffer is hop-sorted, so the boundary hop-class is the contiguous
  // run [lo, hi) around boundary_pos, the strict interior is the prefix
  // [0, lo) for head selection and the suffix [hi, n) for tail — no
  // element-wise classification pass needed.
  std::size_t lo = boundary_pos;
  while (lo > 0 && buf[lo - 1].hop_count == boundary_hop) --lo;
  std::size_t hi = boundary_pos + 1;
  while (hi < n && buf[hi].hop_count == boundary_hop) ++hi;
  const std::size_t inside = from_head ? lo : n - hi;
  const std::size_t need = k - inside;
  rng.sample_indices_into(hi - lo, need, s.picks, s.fy);
  sort_small(s.picks);
  s.sel.clear();
  s.sel.reserve(k);
  if (from_head) {
    // Interior (fresher than the boundary) first, boundary picks after.
    s.sel.insert(s.sel.end(), buf.begin(),
                 buf.begin() + static_cast<std::ptrdiff_t>(lo));
    for (std::size_t p : s.picks) s.sel.push_back(buf[lo + p]);
  } else {
    // Boundary picks are the freshest survivors of a tail selection.
    for (std::size_t p : s.picks) s.sel.push_back(buf[lo + p]);
    s.sel.insert(s.sel.end(), buf.begin() + static_cast<std::ptrdiff_t>(hi),
                 buf.end());
  }
  buf.swap(s.sel);
}

}  // namespace detail

/// select_head_unbiased: keeps entries strictly fresher than the boundary
/// hop count, fills the rest by a uniform draw from the boundary class.
/// Consumes rng exactly as View::select_head_unbiased (one sample_indices
/// call, skipped when nothing is truncated).
inline void select_head_unbiased(std::vector<NodeDescriptor>& buf,
                                 std::size_t c, Rng& rng, Scratch& scratch) {
  detail::select_boundary_sampled(buf, c, rng, scratch, /*from_head=*/true);
}

/// select_tail_unbiased: mirror of select_head_unbiased from the old end.
inline void select_tail_unbiased(std::vector<NodeDescriptor>& buf,
                                 std::size_t c, Rng& rng, Scratch& scratch) {
  detail::select_boundary_sampled(buf, c, rng, scratch, /*from_head=*/false);
}

/// select_rand: uniform sample of min(c, size) entries without replacement.
inline void select_rand(std::vector<NodeDescriptor>& buf, std::size_t c,
                        Rng& rng, Scratch& scratch) {
  const std::size_t k = std::min(c, buf.size());
  rng.sample_indices_into(buf.size(), k, scratch.picks, scratch.fy);
  // The picks span hop classes, but sorting them as indices into the
  // already-sorted buffer makes the gather land in canonical order — the
  // element re-sort View::select_rand pays is unnecessary here.
  detail::sort_small(scratch.picks);
  scratch.sel.clear();
  scratch.sel.reserve(k);
  for (std::size_t i : scratch.picks) scratch.sel.push_back(buf[i]);
  buf.swap(scratch.sel);
}

/// Fused merge + drop-self + select_head_unbiased: produces in `out`
/// exactly
///   merge_into(a, b, out, scratch, age_a); remove_address(out, self);
///   select_head_unbiased(out, c, rng, scratch);
/// with identical results and identical Rng consumption, in one streaming
/// pass. Head selection keeps the freshest c entries, so the merge can stop
/// at the selection boundary instead of materializing the full union: the
/// stream runs until c survivors are emitted, extends through the boundary
/// hop-class, and then only probes far enough to learn whether anything was
/// truncated (which decides whether the reference draws Rng at all). On the
/// event engine's hot path this cuts the per-absorb work nearly in half —
/// it is the kernel behind both engines' (.,head,.) exchanges.
/// Preconditions as merge_into: `a`, `b` normalized, `out` aliases neither.
/// Core of merge_select_head: streams into scratch.merge_arr and returns
/// the selected length (<= c). Requires a.size() + b.size() and c within
/// AddressSet::kMaxEntries — callers dispatch to the vector-based fallback
/// otherwise. The result is left in scratch.merge_arr so the caller can
/// hand it straight to FlatViewStore::assign without an intermediate copy.
/// Selection tail shared by the scalar and SIMD merge front-ends:
/// `next_raw` yields the (hop, address)-ordered union stream (duplicates
/// included); this routine applies the self-skip + dedup + boundary-sampled
/// head selection with the reference Rng consumption. Templated so the
/// scalar two-pointer stream inlines as before and the SIMD path reads its
/// pre-merged union linearly — both land in scratch.merge_arr.
template <typename NextRaw>
inline std::size_t select_head_streaming(NextRaw&& next_raw, NodeId self,
                                         std::size_t c, Rng& rng,
                                         Scratch& scratch) {
  scratch.seen.reset();
  auto next_survivor = [&](NodeDescriptor& d) -> bool {
    while (next_raw(d)) {
      if (d.address == self) continue;
      if (!scratch.seen.insert(d.address)) continue;
      return true;
    }
    return false;
  };

  NodeDescriptor* const base = scratch.merge_arr.data();
  NodeDescriptor* cursor = base;
  NodeDescriptor* const limit = base + c;
  NodeDescriptor d;
  while (cursor != limit && next_survivor(d)) *cursor++ = d;
  if (cursor != limit) {
    // Fewer than c survivors: nothing truncated, no Rng consumed (the
    // reference's k == n early-out).
    return static_cast<std::size_t>(cursor - base);
  }
  // Extend through the boundary hop-class; the first survivor beyond it
  // proves truncation. Exhausting the inputs inside the class leaves the
  // emitted count to decide.
  const HopCount boundary_hop = cursor[-1].hop_count;
  bool truncated = false;
  while (next_survivor(d)) {
    if (d.hop_count != boundary_hop) {
      truncated = true;
      break;
    }
    *cursor++ = d;
  }
  const std::size_t total = static_cast<std::size_t>(cursor - base);
  if (total == c && !truncated) {
    // Exactly c survivors overall: again the reference's k == n case.
    return c;
  }
  // Same arithmetic as select_boundary_sampled(from_head): interior [0, lo)
  // is kept outright, the boundary class [lo, total) is sampled to fill.
  std::size_t lo = c - 1;
  while (lo > 0 && base[lo - 1].hop_count == boundary_hop) --lo;
  const std::size_t need = c - lo;
  rng.sample_indices_into(total - lo, need, scratch.picks, scratch.fy);
  detail::sort_small(scratch.picks);
  // Ascending in-place gather: picks[t] >= t, so every read is at or ahead
  // of its write.
  for (std::size_t t = 0; t < need; ++t) {
    base[lo + t] = base[lo + scratch.picks[t]];
  }
  return c;
}

inline std::size_t merge_select_head_arr(DescSpan a, DescSpan b, NodeId self,
                                         std::size_t c, Rng& rng,
                                         Scratch& scratch, HopCount age_a) {
  PSS_DCHECK(detail::is_normalized(a) && detail::is_normalized(b));
  PSS_DCHECK(a.size() + b.size() <= AddressSet::kMaxEntries &&
             c <= AddressSet::kMaxEntries);
  PSS_DCHECK(c > 0);  // the boundary probe reads the c-th entry
  if (simd::use_union_merge(a.size(), b.size())) {
    // Vector front-end: materialize the sorted union (duplicates included)
    // with the 4-wide bitonic merge, then run the shared selection tail
    // over it linearly. The tail sees the same survivor stream as the
    // scalar front-end (equal keys are identical records), so results and
    // Rng draws are byte-identical; the early-stop economy the scalar
    // stream enjoys is traded for the vector merge's throughput.
    simd::aged_copy(scratch.pad_a.data(), a.data(), a.size(), age_a);
    simd::pad_after(scratch.pad_a.data(), a.size());
    simd::aged_copy(scratch.pad_b.data(), b.data(), b.size(), 0);
    simd::pad_after(scratch.pad_b.data(), b.size());
    simd::merge_union(scratch.pad_a.data(), a.size(), scratch.pad_b.data(),
                      b.size(), scratch.union_arr.data());
    const NodeDescriptor* const u = scratch.union_arr.data();
    const std::size_t total = a.size() + b.size();
    std::size_t t = 0;
    return select_head_streaming(
        [&](NodeDescriptor& d) -> bool {
          if (t >= total) return false;
          d = u[t++];
          return true;
        },
        self, c, rng, scratch);
  }
  // Scalar front-end: streams the (hop, address)-ordered union with the
  // same take rule and dedup as merge_into (including its on-the-fly aging
  // of the `a` side). The packed sort keys roll forward with the two
  // cursors so each iteration recomputes only the side it consumed.
  const std::uint64_t age_key = static_cast<std::uint64_t>(age_a) << 32;
  std::size_t i = 0;
  std::size_t j = 0;
  std::uint64_t ka = i < a.size() ? detail::sort_key(a[i]) + age_key : 0;
  std::uint64_t kb = j < b.size() ? detail::sort_key(b[j]) : 0;
  return select_head_streaming(
      [&](NodeDescriptor& d) -> bool {
        if (i < a.size() && j < b.size()) {
          if (ka < kb) {
            d = {a[i].address, a[i].hop_count + age_a};
            if (++i < a.size()) ka = detail::sort_key(a[i]) + age_key;
          } else {
            d = b[j];
            if (++j < b.size()) kb = detail::sort_key(b[j]);
          }
        } else if (i < a.size()) {
          d = {a[i].address, a[i].hop_count + age_a};
          ++i;
        } else if (j < b.size()) {
          d = b[j++];
        } else {
          return false;
        }
        return true;
      },
      self, c, rng, scratch);
}

inline void merge_select_head(DescSpan a, DescSpan b, NodeId self,
                              std::size_t c, Rng& rng,
                              std::vector<NodeDescriptor>& out,
                              Scratch& scratch, HopCount age_a = 0) {
  if (a.size() + b.size() > AddressSet::kMaxEntries ||
      c > AddressSet::kMaxEntries) {
    // Oversized inputs (adapter API with arbitrarily large Views) take the
    // unfused path.
    merge_into(a, b, out, scratch, age_a);
    remove_address(out, self);
    select_head_unbiased(out, c, rng, scratch);
    return;
  }
  const std::size_t n =
      merge_select_head_arr(a, b, self, c, rng, scratch, age_a);
  out.assign(scratch.merge_arr.data(), scratch.merge_arr.data() + n);
}

// --- Peer selection (on a normalized span; mirrors View::peer_*) ----------

/// peer_rand: uniform random address. Precondition: !v.empty().
inline NodeId peer_rand(DescSpan v, Rng& rng) {
  PSS_CHECK_MSG(!v.empty(), "peer_rand() on empty view");
  return v[static_cast<std::size_t>(rng.below(v.size()))].address;
}

/// peer_head: deterministic first element. Precondition: !v.empty().
inline NodeId peer_head(DescSpan v) {
  PSS_CHECK_MSG(!v.empty(), "peer_head() on empty view");
  return v.front().address;
}

/// peer_tail_unbiased: uniform choice within the oldest hop-class.
/// Precondition: !v.empty().
inline NodeId peer_tail_unbiased(DescSpan v, Rng& rng) {
  PSS_CHECK_MSG(!v.empty(), "peer_tail_unbiased() on empty view");
  const HopCount worst = v.back().hop_count;
  std::size_t first = v.size() - 1;
  while (first > 0 && v[first - 1].hop_count == worst) --first;
  const std::size_t tied = v.size() - first;
  return v[first + static_cast<std::size_t>(rng.below(tied))].address;
}

}  // namespace pss::flat
