// Flat, cache-friendly storage for every node's partial view.
//
// The legacy representation (one heap-allocated std::vector<NodeDescriptor>
// per GossipNode) caps practical simulation size: at 10^6 nodes it means a
// million small allocations, pointer-chasing on every exchange, and no
// locality between the views the cycle permutation visits back to back.
// FlatViewStore replaces it with one contiguous (NodeId, age) array indexed
// by `slot * view_capacity`, plus side arrays for per-slot sizes and change
// stamps. All simulation state lives in three flat vectors; growing the
// network is an O(capacity) append and the whole store is one cache-walkable
// block.
//
// Invariants per slot (the same I1/I2 the View class maintains):
//   I1  entries are sorted by (hop_count, address) — ByHopThenAddress;
//   I2  at most one entry per address;
//   I3  size <= view_capacity. Unlike View (which tolerates oversized merge
//       buffers because the *node* enforces c), flat slots enforce I3 at the
//       storage boundary: assign() rejects oversized views. Merge buffers
//       never live in the store — they live in flat::Scratch.
//
// Versioning: every mutation bumps a per-slot counter (starting at 1 when
// the slot is created). The GossipNode adapter uses the stamp to cache a
// materialized View for the legacy `const View&` accessor without
// re-copying on every call; nothing on the exchange hot path reads the
// stamps. The counters are per-slot — not one global counter — so that
// threads of the parallel cycle engine mutating disjoint slots never share
// a memory location: every FlatViewStore mutator touches only the slot it
// is given, which is the storage half of the engine's race-freedom
// argument (see pss/sim/parallel_cycle_engine.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pss/common/check.hpp"
#include "pss/common/types.hpp"
#include "pss/membership/node_descriptor.hpp"
#include "pss/membership/simd.hpp"

namespace pss {

class FlatViewStore {
 public:
  /// `view_capacity` is the fixed per-slot stride — the protocol's c.
  explicit FlatViewStore(std::size_t view_capacity) : capacity_(view_capacity) {
    PSS_CHECK_MSG(capacity_ > 0, "view capacity must be positive");
  }

  std::size_t view_capacity() const { return capacity_; }
  std::size_t node_count() const { return sizes_.size(); }

  /// Pre-allocates storage for `n` slots (one contiguous growth instead of
  /// doubling through ~20 reallocations at 10^6 nodes).
  void reserve_nodes(std::size_t n) {
    slots_.reserve(n * capacity_);
    sizes_.reserve(n);
    versions_.reserve(n);
  }

  /// Appends an empty slot; returns its index (dense, creation order).
  NodeId add_node() {
    const NodeId slot = static_cast<NodeId>(sizes_.size());
    slots_.resize(slots_.size() + capacity_);
    sizes_.push_back(0);
    versions_.push_back(1);
    return slot;
  }

  /// Sorted, duplicate-free entries of a slot (freshest first).
  std::span<const NodeDescriptor> view_of(NodeId slot) const {
    PSS_DCHECK(slot < sizes_.size());
    return {slots_.data() + static_cast<std::size_t>(slot) * capacity_,
            sizes_[slot]};
  }

  std::size_t view_size(NodeId slot) const {
    PSS_DCHECK(slot < sizes_.size());
    return sizes_[slot];
  }

  /// Change stamp of a slot; strictly increases across mutations of that
  /// slot (mutating one slot never stamps another).
  std::uint64_t version(NodeId slot) const {
    PSS_DCHECK(slot < versions_.size());
    return versions_[slot];
  }

  void clear(NodeId slot) {
    PSS_DCHECK(slot < sizes_.size());
    sizes_[slot] = 0;
    touch(slot);
  }

  /// Replaces a slot's entries. `entries` must already satisfy I1/I2 (the
  /// flat ops and View both produce normalized data); I3 is enforced here.
  void assign(NodeId slot, std::span<const NodeDescriptor> entries);

  /// increaseHopCount for one slot: ages every entry by one hop. Order by
  /// (hop, address) is preserved under a uniform +1. The loop is a lane-wise
  /// add of (1 << 32) on the packed descriptor keys (simd.hpp), two or four
  /// entries per instruction on x86.
  void age(NodeId slot) {
    PSS_DCHECK(slot < sizes_.size());
    simd::age_in_place(
        slots_.data() + static_cast<std::size_t>(slot) * capacity_,
        sizes_[slot]);
    touch(slot);
  }

  /// age() fused with the active-buffer export: ages the slot in place
  /// while streaming the aged entries to `out` (which must hold
  /// view_size(slot) entries). One pass over the slot where the event
  /// engine's wakeup used to pay two — aging, then a re-read to build the
  /// outgoing request. Returns the entry count written.
  std::uint32_t age_and_copy(NodeId slot, NodeDescriptor* out) {
    PSS_DCHECK(slot < sizes_.size());
    const std::uint32_t n = sizes_[slot];
    simd::age_write_both(
        slots_.data() + static_cast<std::size_t>(slot) * capacity_, out, n);
    touch(slot);
    return n;
  }

  /// Removes the entry for `address` if present; returns true when removed.
  bool erase_address(NodeId slot, NodeId address);

  /// Hints the prefetcher at every cache line of a slot about to be
  /// exchanged (the cycle engine calls this a few permutation steps ahead
  /// for initiators, and as soon as the peer is drawn for the passive side).
  void prefetch(NodeId slot) const {
#if defined(__GNUC__) || defined(__clang__)
    const char* base = reinterpret_cast<const char*>(
        slots_.data() + static_cast<std::size_t>(slot) * capacity_);
    const std::size_t bytes = capacity_ * sizeof(NodeDescriptor);
    for (std::size_t off = 0; off < bytes; off += 64) {
      __builtin_prefetch(base + off, 1, 1);
    }
#else
    (void)slot;
#endif
  }

  /// Bytes of flat storage currently reserved (slots + sizes + stamps).
  std::size_t storage_bytes() const {
    return slots_.capacity() * sizeof(NodeDescriptor) +
           sizes_.capacity() * sizeof(std::uint32_t) +
           versions_.capacity() * sizeof(std::uint64_t);
  }

 private:
  void touch(NodeId slot) { ++versions_[slot]; }

  std::size_t capacity_;
  std::vector<NodeDescriptor> slots_;   ///< node_count * capacity, SoA block
  std::vector<std::uint32_t> sizes_;    ///< live prefix length per slot
  std::vector<std::uint64_t> versions_; ///< change stamp per slot
};

}  // namespace pss
