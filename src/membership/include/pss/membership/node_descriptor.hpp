// Node descriptor: the unit of membership information exchanged by the
// gossip skeleton (paper Section 3, "System model").
//
// A descriptor pairs a node address with a hop count. The hop count starts
// at 0 when a node injects its own descriptor into an exchange buffer and
// is incremented by every receiver (increaseHopCount), so it measures the
// age of the information in gossip hops: low hop count = fresh.
#pragma once

#include <compare>
#include <cstdint>

#include "pss/common/types.hpp"

namespace pss {

struct NodeDescriptor {
  NodeId address = kInvalidNode;
  HopCount hop_count = 0;

  friend bool operator==(const NodeDescriptor&, const NodeDescriptor&) = default;
};

/// Ordering used everywhere a view is sorted: increasing hop count
/// (freshest first), ties broken by address for determinism. The paper
/// leaves tie order unspecified; a deterministic tie-break makes every
/// experiment reproducible without affecting any measured property (within
/// a hop-count class all descriptors are equally old).
struct ByHopThenAddress {
  bool operator()(const NodeDescriptor& a, const NodeDescriptor& b) const {
    if (a.hop_count != b.hop_count) return a.hop_count < b.hop_count;
    return a.address < b.address;
  }
};

}  // namespace pss
