// Runtime-dispatched SIMD kernels for the packed-key descriptor hot paths.
//
// A NodeDescriptor is 8 little-endian bytes whose u64 image IS its sort key:
// (hop_count << 32) | address (see flat_ops.hpp detail::sort_key). Every
// per-exchange kernel — aging, buffer building, the sorted merge behind
// merge_select_head / handle_request / handle_reply — is therefore u64 lane
// arithmetic on contiguous arrays, which this header vectorizes:
//   - aging is a lane-wise add of (age << 32): the addend's low 32 bits are
//     zero, so carries can never reach the address field and the u64 add is
//     bit-exact against the scalar hop_count + age (mod 2^32) — PADDQ does
//     it two wide (SSE2), VPADDQ four wide (AVX2);
//   - the self-insertion point of write_active_buffer is a branch-free
//     count of keys < (0 << 32 | self) over a sorted run (VPCMPGTQ with the
//     usual sign-bias trick for unsigned order, then movemask popcounts);
//   - the two-pointer merge of two sorted descriptor runs becomes a 4-wide
//     in-register bitonic merge network producing the sorted union *with*
//     duplicates; the Rng-consuming dedup/selection pass stays scalar and
//     byte-identical (see flat_ops.hpp select_head_streaming).
//
// Dispatch contract: kernels are selected once per process from CPUID
// (SSE2 is the x86-64 baseline; AVX2 when the CPU reports it), overridable
// down — never up — via the PSS_FORCE_SCALAR environment variable or
// set_level_for_testing(). The scalar path is not vestigial: it is the
// reference oracle tests/simd_kernels_test.cpp replays every vector kernel
// against byte-for-byte, and a CI job pins it (PSS_FORCE_SCALAR=1) so the
// fallback never rots. Non-x86 builds compile to the scalar tier only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "pss/membership/node_descriptor.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PSS_SIMD_X86 1
#include <immintrin.h>
#else
#define PSS_SIMD_X86 0
#endif

namespace pss::simd {

/// Ascending capability tiers; dispatch picks the highest the CPU supports.
enum class Level : int { kScalar = 0, kSSE2 = 1, kAVX2 = 2 };

namespace detail {
// Zero-initialized (kScalar) until the dynamic initializer in simd.cpp runs
// detection, so kernels called from static constructors are safe, just slow.
extern Level g_level;
}  // namespace detail

/// Highest tier the running CPU supports (PSS_FORCE_SCALAR caps it).
Level detected_level();

/// Tier the kernels currently dispatch to.
inline Level active_level() { return detail::g_level; }

/// Test hook: force a tier at or below detected_level() (requests above it
/// are clamped — a kernel is never dispatched past what the CPU can run).
void set_level_for_testing(Level level);

namespace detail {

inline std::uint64_t load_key(const NodeDescriptor* d) {
  std::uint64_t k;
  std::memcpy(&k, d, sizeof(k));
  return k;
}

inline void store_key(NodeDescriptor* d, std::uint64_t k) {
  // NodeDescriptor is trivially copyable; the void* cast mutes GCC's
  // class-memaccess complaint about its defaulted member initializers.
  std::memcpy(static_cast<void*>(d), &k, sizeof(k));
}

#if PSS_SIMD_X86

// --- AVX2 helpers (compiled with the avx2 target attribute so the file
// itself builds at the SSE2 baseline; calls are gated by active_level()) ---

__attribute__((target("avx2"))) inline __m256i bias4(__m256i x) {
  // XOR with the sign bit maps unsigned order onto signed VPCMPGTQ order.
  return _mm256_xor_si256(
      x, _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL)));
}

__attribute__((target("avx2"))) inline void minmax4(__m256i& lo, __m256i& hi) {
  const __m256i gt = _mm256_cmpgt_epi64(bias4(lo), bias4(hi));
  const __m256i mn = _mm256_blendv_epi8(lo, hi, gt);
  hi = _mm256_blendv_epi8(hi, lo, gt);
  lo = mn;
}

/// Cleans a 4-lane bitonic sequence into ascending order (two halver
/// stages: distance 2, then distance 1).
__attribute__((target("avx2"))) inline __m256i bitonic_clean4(__m256i v) {
  __m256i sw = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(1, 0, 3, 2));
  __m256i gt = _mm256_cmpgt_epi64(bias4(v), bias4(sw));
  __m256i mn = _mm256_blendv_epi8(v, sw, gt);
  __m256i mx = _mm256_blendv_epi8(sw, v, gt);
  v = _mm256_blend_epi32(mn, mx, 0xF0);  // lanes 0,1 take min; 2,3 take max
  sw = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(2, 3, 0, 1));
  gt = _mm256_cmpgt_epi64(bias4(v), bias4(sw));
  mn = _mm256_blendv_epi8(v, sw, gt);
  mx = _mm256_blendv_epi8(sw, v, gt);
  return _mm256_blend_epi32(mn, mx, 0xCC);  // lanes 1,3 take max
}

/// Bitonic merge of two ascending 4-lane vectors: on return `a` holds the
/// 4 smallest of the 8 inputs (ascending) and `b` the 4 largest
/// (ascending). The standard network: reverse one input, halve, clean.
__attribute__((target("avx2"))) inline void bitonic_merge8(__m256i& a,
                                                           __m256i& b) {
  b = _mm256_permute4x64_epi64(b, _MM_SHUFFLE(0, 1, 2, 3));
  minmax4(a, b);
  a = bitonic_clean4(a);
  b = bitonic_clean4(b);
}

__attribute__((target("avx2"))) inline void aged_copy_avx2(
    NodeDescriptor* dst, const NodeDescriptor* src, std::size_t n,
    std::uint64_t age_key) {
  const __m256i add = _mm256_set1_epi64x(static_cast<long long>(age_key));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(v, add));
  }
  for (; i < n; ++i) store_key(dst + i, load_key(src + i) + age_key);
}

__attribute__((target("avx2"))) inline void age_write_both_avx2(
    NodeDescriptor* view, NodeDescriptor* out, std::size_t n) {
  const __m256i add = _mm256_set1_epi64x(static_cast<long long>(1ULL << 32));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i aged = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(view + i)), add);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(view + i), aged);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), aged);
  }
  for (; i < n; ++i) {
    const std::uint64_t k = load_key(view + i) + (1ULL << 32);
    store_key(view + i, k);
    store_key(out + i, k);
  }
}

__attribute__((target("avx2"))) inline std::size_t count_less_avx2(
    const NodeDescriptor* v, std::size_t n, std::uint64_t key) {
  const __m256i vk = bias4(_mm256_set1_epi64x(static_cast<long long>(key)));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i gt = _mm256_cmpgt_epi64(
        vk,
        bias4(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i))));
    count += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(gt)))));
  }
  for (; i < n; ++i) count += static_cast<std::size_t>(load_key(v + i) < key);
  return count;
}

/// Merges two ascending, sentinel-padded runs into `out`: the first
/// `na + nb` entries of `out` are the ascending union with duplicates
/// preserved. Both inputs must be padded with kSentinelKey entries up to a
/// multiple of 4 plus one spare group (see pad_after); `out` must have room
/// for na + nb rounded up to a multiple of 4, plus 4 (sentinel spill).
__attribute__((target("avx2"))) inline void merge_union_avx2(
    const NodeDescriptor* a, std::size_t na, const NodeDescriptor* b,
    std::size_t nb, NodeDescriptor* out) {
  const std::size_t total = na + nb;
  const std::size_t cap_a = ((na + 3) & ~std::size_t{3}) + 4;
  const std::size_t cap_b = ((nb + 3) & ~std::size_t{3}) + 4;
  __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  std::size_t ai = 4, bi = 4, oi = 0;
  for (;;) {
    bitonic_merge8(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + oi), va);
    oi += 4;
    if (oi >= total) break;
    // Refill the low register from whichever stream's head is smaller;
    // exhausted streams present sentinel keys, steering refills away. The
    // capacity guards make the pathological all-sentinel tail safe.
    const bool take_a =
        bi >= cap_b || (ai < cap_a && load_key(a + ai) <= load_key(b + bi));
    if (take_a) {
      va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + ai));
      ai += 4;
    } else {
      va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + bi));
      bi += 4;
    }
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + oi), vb);
}

// --- SSE2 baseline tier ---------------------------------------------------

inline void aged_copy_sse2(NodeDescriptor* dst, const NodeDescriptor* src,
                           std::size_t n, std::uint64_t age_key) {
  const __m128i add = _mm_set1_epi64x(static_cast<long long>(age_key));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_add_epi64(v, add));
  }
  for (; i < n; ++i) store_key(dst + i, load_key(src + i) + age_key);
}

inline void age_write_both_sse2(NodeDescriptor* view, NodeDescriptor* out,
                                std::size_t n) {
  const __m128i add = _mm_set1_epi64x(static_cast<long long>(1ULL << 32));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i aged = _mm_add_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(view + i)), add);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(view + i), aged);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), aged);
  }
  for (; i < n; ++i) {
    const std::uint64_t k = load_key(view + i) + (1ULL << 32);
    store_key(view + i, k);
    store_key(out + i, k);
  }
}

#endif  // PSS_SIMD_X86

}  // namespace detail

/// Sentinel padding value: its u64 key is UINT64_MAX, strictly above every
/// real descriptor key (a view never stores address kInvalidNode), so padded
/// tails sort after all real entries and fall out of the union naturally.
inline constexpr NodeDescriptor kSentinel{0xFFFFFFFFu, 0xFFFFFFFFu};

/// dst[i] = src[i] aged by `age` hops (key + (age << 32)); exact-length
/// reads and writes, so sources may sit flush against an allocation end.
inline void aged_copy(NodeDescriptor* dst, const NodeDescriptor* src,
                      std::size_t n, HopCount age) {
  const std::uint64_t age_key = static_cast<std::uint64_t>(age) << 32;
#if PSS_SIMD_X86
  const Level level = active_level();
  if (level == Level::kAVX2) {
    detail::aged_copy_avx2(dst, src, n, age_key);
    return;
  }
  if (level == Level::kSSE2) {
    detail::aged_copy_sse2(dst, src, n, age_key);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    detail::store_key(dst + i, detail::load_key(src + i) + age_key);
  }
}

/// Ages `view[0..n)` by one hop in place while streaming the aged entries
/// to `out` — the fused wakeup kernel: one pass over the active slot where
/// FlatViewStore::age + write_active_buffer used to take two.
inline void age_write_both(NodeDescriptor* view, NodeDescriptor* out,
                           std::size_t n) {
#if PSS_SIMD_X86
  const Level level = active_level();
  if (level == Level::kAVX2) {
    detail::age_write_both_avx2(view, out, n);
    return;
  }
  if (level == Level::kSSE2) {
    detail::age_write_both_sse2(view, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = detail::load_key(view + i) + (1ULL << 32);
    detail::store_key(view + i, k);
    detail::store_key(out + i, k);
  }
}

/// Ages a run by one hop in place (FlatViewStore::age's loop body).
inline void age_in_place(NodeDescriptor* view, std::size_t n) {
  age_write_both(view, view, n);  // dst == src: the store-twice is elided
}

/// Number of entries of the ascending run `v[0..n)` whose key is < `key` —
/// the insertion index of write_active_buffer's {self, 0} descriptor.
/// Branch-free full scan under AVX2 (n <= c + 1, so a scan beats binary
/// search's mispredicts); scalar lower-bound otherwise.
inline std::size_t count_less(const NodeDescriptor* v, std::size_t n,
                              std::uint64_t key) {
#if PSS_SIMD_X86
  if (active_level() == Level::kAVX2) {
    return detail::count_less_avx2(v, n, key);
  }
#endif
  std::size_t count = 0;
  while (count < n && detail::load_key(v + count) < key) ++count;
  return count;
}

/// True when the AVX2 union-merge kernel is available and worth dispatching
/// for run lengths (na, nb): both runs non-empty (empty sides reduce to an
/// aged copy) and enough total work to amortize the padding stores.
inline bool use_union_merge(std::size_t na, std::size_t nb) {
#if PSS_SIMD_X86
  return active_level() == Level::kAVX2 && na != 0 && nb != 0 &&
         na + nb >= 8;
#else
  (void)na;
  (void)nb;
  return false;
#endif
}

/// Pads `v[n..)` with sentinels up to a multiple of 4 plus one spare group,
/// as merge_union's refill guard requires. Returns entries written.
inline std::size_t pad_after(NodeDescriptor* v, std::size_t n) {
  const std::size_t padded = ((n + 3) & ~std::size_t{3}) + 4;
  for (std::size_t i = n; i < padded; ++i) v[i] = kSentinel;
  return padded - n;
}

/// Sorted union with duplicates of two sentinel-padded ascending runs (see
/// merge_union_avx2 for the contract). Caller must have checked
/// use_union_merge(); the scalar fallback exists so a forced-scalar process
/// that somehow reaches here still computes the right answer.
inline void merge_union(const NodeDescriptor* a, std::size_t na,
                        const NodeDescriptor* b, std::size_t nb,
                        NodeDescriptor* out) {
#if PSS_SIMD_X86
  if (active_level() == Level::kAVX2) {
    detail::merge_union_avx2(a, na, b, nb, out);
    return;
  }
#endif
  std::size_t i = 0, j = 0, o = 0;
  while (i < na && j < nb) {
    const bool take_a = detail::load_key(a + i) <= detail::load_key(b + j);
    out[o++] = take_a ? a[i++] : b[j++];
  }
  while (i < na) out[o++] = a[i++];
  while (j < nb) out[o++] = b[j++];
}

}  // namespace pss::simd
