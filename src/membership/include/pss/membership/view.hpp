// Partial view: a bounded, duplicate-free list of node descriptors ordered
// by increasing hop count (paper Section 3).
//
// The view supports exactly the operations the generic skeleton needs:
//   - merge(a, b): union keeping the lowest hop count per address, ordered;
//   - increase_hop_count(): bump every entry by one;
//   - select_head/tail/rand(c): the three view-selection policies;
//   - first/last element access for head/tail peer selection.
//
// Invariants (checked by `validate()` and relied upon throughout):
//   I1  entries are sorted by (hop_count, address);
//   I2  at most one entry per address;
//   I3  size() <= capacity bound supplied by the caller at selection time
//       (the View itself stores any number of entries so that merge buffers
//       larger than c can be represented — the *node* enforces c through
//       select_*).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/membership/node_descriptor.hpp"

namespace pss {

class View {
 public:
  View() = default;

  /// Builds a view from arbitrary descriptors; sorts and deduplicates
  /// (keeping the lowest hop count per address).
  explicit View(std::vector<NodeDescriptor> entries);
  View(std::initializer_list<NodeDescriptor> entries);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sorted, duplicate-free entries (freshest first).
  const std::vector<NodeDescriptor>& entries() const { return entries_; }

  /// Entry at position i (0 = freshest). Precondition: i < size().
  const NodeDescriptor& at(std::size_t i) const;

  /// First (lowest hop count) descriptor. Precondition: !empty().
  const NodeDescriptor& head() const;

  /// Last (highest hop count) descriptor. Precondition: !empty().
  const NodeDescriptor& tail() const;

  /// True when some entry has this address.
  bool contains(NodeId address) const;

  /// Hop count of the entry for `address`; kInvalidNode entries never match.
  /// Precondition: contains(address).
  HopCount hop_count_of(NodeId address) const;

  /// Inserts a descriptor; if the address is present keeps the lower hop
  /// count. Returns true when the view changed.
  bool insert(NodeDescriptor descriptor);

  /// Removes the entry for `address` if present; returns true when removed.
  bool erase(NodeId address);

  /// increaseHopCount(view) from the skeleton: ages every entry by one hop.
  void increase_hop_count();

  /// merge(view1, view2): union ordered by hop count, lowest hop count wins
  /// on duplicate addresses (paper Section 3).
  static View merge(const View& a, const View& b);

  /// Removes any entry for `self` — a node never stores its own descriptor
  /// in its final view.
  void remove(NodeId self) { erase(self); }

  // --- View selection policies (selectView placeholder) -------------------

  /// head policy: the first min(c, size) elements (freshest information).
  /// Ties at the selection boundary resolve by address (deterministic).
  View select_head(std::size_t c) const;

  /// tail policy: the last min(c, size) elements (oldest information).
  /// Ties at the selection boundary resolve by address (deterministic).
  View select_tail(std::size_t c) const;

  /// head policy with unbiased ties: entries strictly fresher than the
  /// boundary hop count are all kept; the remaining slots are filled by a
  /// uniform random draw from the boundary hop-class. The paper orders
  /// views by hop count only, leaving tie order arbitrary; resolving ties
  /// by address would systematically favour low addresses (hop-count ties
  /// are pervasive because descriptors age in lock-step), so the protocol
  /// engine uses this variant.
  View select_head_unbiased(std::size_t c, Rng& rng) const;

  /// tail policy with unbiased ties (mirror of select_head_unbiased).
  View select_tail_unbiased(std::size_t c, Rng& rng) const;

  /// rand policy: uniform sample of min(c, size) elements without
  /// replacement.
  View select_rand(std::size_t c, Rng& rng) const;

  // --- Peer selection helpers (selectPeer placeholder) --------------------

  /// rand policy: uniform random address from the view. Precondition: !empty().
  NodeId peer_rand(Rng& rng) const;

  /// head policy: address with the lowest hop count. Precondition: !empty().
  /// Deterministic tie-break by address; protocol code uses the unbiased
  /// variant below.
  NodeId peer_head() const { return head().address; }

  /// tail policy: address with the highest hop count. Precondition: !empty().
  /// Deterministic tie-break by address; protocol code uses the unbiased
  /// variant below.
  NodeId peer_tail() const { return tail().address; }

  /// head policy with unbiased ties: uniform choice among all entries tied
  /// at the lowest hop count. Hop-count ties are pervasive (descriptors age
  /// in lock-step), and a deterministic tie-break would make every node
  /// with the same tied class contact the same peer — a herding artifact
  /// the paper's protocols do not have. Precondition: !empty().
  NodeId peer_head_unbiased(Rng& rng) const;

  /// tail policy with unbiased ties (mirror of peer_head_unbiased).
  NodeId peer_tail_unbiased(Rng& rng) const;

  /// Throws std::logic_error when an invariant (I1, I2) is violated.
  void validate() const;

  friend bool operator==(const View&, const View&) = default;

 private:
  void normalize();

  std::vector<NodeDescriptor> entries_;
};

}  // namespace pss
