#include "pss/membership/simd.hpp"

#include <cstdlib>

namespace pss::simd {

namespace {

Level detect() {
#if PSS_SIMD_X86
  const char* force = std::getenv("PSS_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && force[0] != '0') {
    return Level::kScalar;
  }
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
  return Level::kSSE2;  // baseline of the x86-64 ABI, no probe needed
#else
  return Level::kScalar;
#endif
}

}  // namespace

namespace detail {
// Dynamic initializer; zero-init (kScalar) covers pre-main callers.
Level g_level = detect();
}  // namespace detail

Level detected_level() {
  static const Level level = detect();
  return level;
}

void set_level_for_testing(Level level) {
  detail::g_level = level <= detected_level() ? level : detected_level();
}

}  // namespace pss::simd
