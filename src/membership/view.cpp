#include "pss/membership/view.hpp"

#include <algorithm>

#include "pss/common/check.hpp"

namespace pss {

View::View(std::vector<NodeDescriptor> entries) : entries_(std::move(entries)) {
  normalize();
}

View::View(std::initializer_list<NodeDescriptor> entries)
    : entries_(entries) {
  normalize();
}

void View::normalize() {
  // Deduplicate by address keeping the lowest hop count: sort by
  // (address, hop) so each address's freshest copy comes first, drop
  // adjacent duplicates, then restore the canonical (hop, address) order.
  // Two O(k log k) sorts on <= ~2c+2 elements; this is the exchange hot
  // path, so no hash set and no extra allocation.
  std::sort(entries_.begin(), entries_.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) {
              if (a.address != b.address) return a.address < b.address;
              return a.hop_count < b.hop_count;
            });
  entries_.erase(std::unique(entries_.begin(), entries_.end(),
                             [](const NodeDescriptor& a, const NodeDescriptor& b) {
                               return a.address == b.address;
                             }),
                 entries_.end());
  std::sort(entries_.begin(), entries_.end(), ByHopThenAddress{});
}

const NodeDescriptor& View::at(std::size_t i) const {
  PSS_CHECK_MSG(i < entries_.size(), "view index out of range");
  return entries_[i];
}

const NodeDescriptor& View::head() const {
  PSS_CHECK_MSG(!entries_.empty(), "head() on empty view");
  return entries_.front();
}

const NodeDescriptor& View::tail() const {
  PSS_CHECK_MSG(!entries_.empty(), "tail() on empty view");
  return entries_.back();
}

bool View::contains(NodeId address) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [address](const NodeDescriptor& d) { return d.address == address; });
}

HopCount View::hop_count_of(NodeId address) const {
  for (const auto& d : entries_) {
    if (d.address == address) return d.hop_count;
  }
  PSS_CHECK_MSG(false, "hop_count_of: address not in view");
  return 0;  // unreachable
}

bool View::insert(NodeDescriptor descriptor) {
  for (auto& d : entries_) {
    if (d.address == descriptor.address) {
      if (descriptor.hop_count < d.hop_count) {
        d.hop_count = descriptor.hop_count;
        std::sort(entries_.begin(), entries_.end(), ByHopThenAddress{});
        return true;
      }
      return false;
    }
  }
  auto pos = std::upper_bound(entries_.begin(), entries_.end(), descriptor,
                              ByHopThenAddress{});
  entries_.insert(pos, descriptor);
  return true;
}

bool View::erase(NodeId address) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [address](const NodeDescriptor& d) { return d.address == address; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

void View::increase_hop_count() {
  for (auto& d : entries_) ++d.hop_count;
  // Order by (hop, address) is preserved under a uniform +1.
}

View View::merge(const View& a, const View& b) {
  std::vector<NodeDescriptor> all;
  all.reserve(a.size() + b.size());
  all.insert(all.end(), a.entries_.begin(), a.entries_.end());
  all.insert(all.end(), b.entries_.begin(), b.entries_.end());
  return View(std::move(all));
}

View View::select_head(std::size_t c) const {
  const std::size_t k = std::min(c, entries_.size());
  View out;
  out.entries_.assign(entries_.begin(), entries_.begin() + static_cast<std::ptrdiff_t>(k));
  return out;
}

View View::select_tail(std::size_t c) const {
  const std::size_t k = std::min(c, entries_.size());
  View out;
  out.entries_.assign(entries_.end() - static_cast<std::ptrdiff_t>(k), entries_.end());
  return out;
}

namespace {

// Shared helper: keep every entry whose hop count is strictly inside the
// kept range, then sample the boundary hop-class uniformly to fill up to c.
View select_boundary_sampled(const std::vector<NodeDescriptor>& sorted,
                             std::size_t c, Rng& rng, bool from_head) {
  const std::size_t n = sorted.size();
  const std::size_t k = std::min(c, n);
  if (k == 0) return View{};
  if (k == n) return View(sorted);
  // Position of the boundary element in the sorted order.
  const std::size_t boundary_pos = from_head ? k - 1 : n - k;
  const HopCount boundary_hop = sorted[boundary_pos].hop_count;
  std::vector<NodeDescriptor> kept;
  std::vector<NodeDescriptor> boundary_class;
  kept.reserve(k);
  for (const auto& d : sorted) {
    const bool strictly_inside =
        from_head ? d.hop_count < boundary_hop : d.hop_count > boundary_hop;
    if (strictly_inside) {
      kept.push_back(d);
    } else if (d.hop_count == boundary_hop) {
      boundary_class.push_back(d);
    }
  }
  const std::size_t need = k - kept.size();
  auto picks = rng.sample_indices(boundary_class.size(), need);
  for (std::size_t p : picks) kept.push_back(boundary_class[p]);
  return View(std::move(kept));
}

}  // namespace

View View::select_head_unbiased(std::size_t c, Rng& rng) const {
  return select_boundary_sampled(entries_, c, rng, /*from_head=*/true);
}

View View::select_tail_unbiased(std::size_t c, Rng& rng) const {
  return select_boundary_sampled(entries_, c, rng, /*from_head=*/false);
}

View View::select_rand(std::size_t c, Rng& rng) const {
  const std::size_t k = std::min(c, entries_.size());
  auto picks = rng.sample_indices(entries_.size(), k);
  std::vector<NodeDescriptor> chosen;
  chosen.reserve(k);
  for (std::size_t i : picks) chosen.push_back(entries_[i]);
  View out;
  out.entries_ = std::move(chosen);
  std::sort(out.entries_.begin(), out.entries_.end(), ByHopThenAddress{});
  return out;
}

NodeId View::peer_rand(Rng& rng) const {
  PSS_CHECK_MSG(!entries_.empty(), "peer_rand() on empty view");
  return entries_[static_cast<std::size_t>(rng.below(entries_.size()))].address;
}

NodeId View::peer_head_unbiased(Rng& rng) const {
  PSS_CHECK_MSG(!entries_.empty(), "peer_head_unbiased() on empty view");
  const HopCount best = entries_.front().hop_count;
  std::size_t tied = 1;
  while (tied < entries_.size() && entries_[tied].hop_count == best) ++tied;
  return entries_[static_cast<std::size_t>(rng.below(tied))].address;
}

NodeId View::peer_tail_unbiased(Rng& rng) const {
  PSS_CHECK_MSG(!entries_.empty(), "peer_tail_unbiased() on empty view");
  const HopCount worst = entries_.back().hop_count;
  std::size_t first = entries_.size() - 1;
  while (first > 0 && entries_[first - 1].hop_count == worst) --first;
  const std::size_t tied = entries_.size() - first;
  return entries_[first + static_cast<std::size_t>(rng.below(tied))].address;
}

void View::validate() const {
  for (std::size_t i = 0; i + 1 < entries_.size(); ++i) {
    PSS_CHECK_MSG(ByHopThenAddress{}(entries_[i], entries_[i + 1]),
                  "view entries out of order or duplicated");
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      PSS_CHECK_MSG(entries_[i].address != entries_[j].address,
                    "duplicate address in view");
    }
  }
}

}  // namespace pss
