#include "pss/obs/degree_autocorrelation.hpp"

#include "pss/common/check.hpp"
#include "pss/stats/autocorrelation.hpp"

namespace pss::obs {

DegreeAutocorrelation::DegreeAutocorrelation(std::span<const NodeId> panel,
                                             std::size_t capacity_cycles)
    : panel_(panel.begin(), panel.end()), capacity_(capacity_cycles) {
  PSS_CHECK_MSG(!panel_.empty(), "panel must not be empty");
  PSS_CHECK_MSG(capacity_ > 0, "trace capacity must be positive");
  degrees_.assign(panel_.size() * capacity_, 0);
}

void DegreeAutocorrelation::record(const GraphCensus& census) {
  if (recorded_ >= capacity_) return;
  for (std::size_t i = 0; i < panel_.size(); ++i) {
    degrees_[i * capacity_ + recorded_] =
        static_cast<double>(census.undirected_degree(panel_[i]));
  }
  ++recorded_;
}

std::span<const double> DegreeAutocorrelation::series(std::size_t i) const {
  PSS_CHECK_MSG(i < panel_.size(), "panel index out of range");
  return {degrees_.data() + i * capacity_, recorded_};
}

std::vector<double> DegreeAutocorrelation::autocorrelation(
    std::size_t i, std::size_t max_lag) const {
  return stats::autocorrelation(series(i), max_lag);
}

}  // namespace pss::obs
