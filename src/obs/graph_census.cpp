#include "pss/obs/graph_census.hpp"

#include <algorithm>

#include "pss/common/check.hpp"

namespace pss::obs {

namespace {

/// Mirrors graph::degree_summary's accumulation exactly — same casts, same
/// live-ascending (= exact-graph vertex-ascending) order — so the returned
/// doubles are bit-equal, not merely close.
template <typename DegreeFn>
DegreeStats summarize_degrees(std::span<const NodeId> live, DegreeFn degree) {
  DegreeStats s;
  const std::size_t n = live.size();
  if (n == 0) return s;
  s.min = degree(live[0]);
  s.max = degree(live[0]);
  double sum = 0, sum_sq = 0;
  for (const NodeId id : live) {
    const std::size_t d = degree(id);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    sum += static_cast<double>(d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);
  }
  s.mean = sum / static_cast<double>(n);
  s.variance = sum_sq / static_cast<double>(n) - s.mean * s.mean;
  if (s.variance < 0) s.variance = 0;  // numeric noise
  return s;
}

/// Lane `lane`'s contiguous chunk [first, last) of `total` items: sizes
/// differ by at most one, earlier lanes take the remainder — a pure
/// function of (total, lanes, lane), so the decomposition is identical on
/// every run at a given lane count, and the concatenation over lanes is
/// always the full ascending range.
struct Chunk {
  std::size_t first, last;
};
Chunk lane_chunk(std::size_t total, unsigned lanes, unsigned lane) {
  const std::size_t per = total / lanes;
  const std::size_t rem = total % lanes;
  const std::size_t first =
      lane * per + std::min<std::size_t>(lane, rem);
  return {first, first + per + (lane < rem ? 1 : 0)};
}

}  // namespace

void GraphCensus::rebuild(const sim::Network& network) {
  net_ = &network;
  const std::size_t n = network.size();
  const std::size_t c = network.options().view_size;

  // Live list (ascending): index i is vertex i of the exact snapshot graph.
  live_list_.reserve(n);
  live_list_.clear();
  for (NodeId id = 0; id < n; ++id) {
    if (network.is_live(id)) live_list_.push_back(id);
  }

  const unsigned lanes = lane_count(live_list_.size());
  if (lanes > 1) lanes_.resize(lanes);

  // Pass 1 — one walk over the packed descriptors: live out-degrees and
  // in-degree counts (the "count" half of the CSR build). The edge filter
  // is exactly UndirectedGraph::from_network's: both endpoints live, no
  // self-loops, out-of-range addresses dropped. The entries the filter
  // discards are themselves paper observables, so they are tallied as they
  // stream past instead of re-walked: dead links (Figure 7's self-healing
  // metric — dead or out-of-range targets, self-loops excluded) and
  // cross-partition links (Section 8 — live targets in another group).
  // Both tallies match Network::count_dead_links /
  // count_cross_partition_links bit for bit (pinned by tests/obs_test.cpp);
  // the separate O(N·c) walks those helpers make are no longer needed when
  // a census was just rebuilt.
  //
  // Parallel shape: each lane walks its chunk of the live list. out_deg_[v]
  // has one writer (the lane owning v); in-degree counts go to a per-lane
  // array merged below; the three tallies are exact integer partials summed
  // in lane order — every reduction is order-insensitive integer math, so
  // the pass is bit-equal to the sequential walk by construction.
  out_deg_.assign(n, 0);
  in_off_.assign(n + 1, 0);
  directed_edges_ = 0;
  dead_links_ = 0;
  cross_links_ = 0;
  const bool partitioned = network.partitioned();
  if (lanes == 1) {
    for (const NodeId v : live_list_) {
      const std::uint32_t gv = partitioned ? network.partition_group(v) : 0;
      std::uint32_t out = 0;
      for (const NodeDescriptor& d : network.view_span(v)) {
        const NodeId w = d.address;
        if (w >= n || !network.is_live(w)) {
          ++dead_links_;
          continue;
        }
        if (w == v) continue;
        if (partitioned && network.partition_group(w) != gv) ++cross_links_;
        ++out;
        ++in_off_[w + 1];
      }
      out_deg_[v] = out;
      directed_edges_ += out;
    }
  } else {
    struct Tally {
      std::uint64_t directed = 0, dead = 0, cross = 0;
    };
    std::vector<Tally> tallies(lanes);
    pool_->run([&](unsigned lane) {
      LaneScratch& sc = lanes_[lane];
      sc.in_cnt.assign(n, 0);
      const Chunk ch = lane_chunk(live_list_.size(), lanes, lane);
      Tally t;
      for (std::size_t i = ch.first; i < ch.last; ++i) {
        const NodeId v = live_list_[i];
        const std::uint32_t gv = partitioned ? network.partition_group(v) : 0;
        std::uint32_t out = 0;
        for (const NodeDescriptor& d : network.view_span(v)) {
          const NodeId w = d.address;
          if (w >= n || !network.is_live(w)) {
            ++t.dead;
            continue;
          }
          if (w == v) continue;
          if (partitioned && network.partition_group(w) != gv) ++t.cross;
          ++out;
          ++sc.in_cnt[w];
        }
        out_deg_[v] = out;
        t.directed += out;
      }
      tallies[lane] = t;
    });
    for (const Tally& t : tallies) {
      directed_edges_ += t.directed;
      dead_links_ += t.dead;
      cross_links_ += t.cross;
    }
    for (std::size_t w = 0; w < n; ++w) {
      std::uint32_t total = 0;
      for (unsigned lane = 0; lane < lanes; ++lane) {
        total += lanes_[lane].in_cnt[w];
      }
      in_off_[w + 1] = total;
    }
  }
  for (std::size_t i = 1; i <= n; ++i) in_off_[i] += in_off_[i - 1];

  // Pass 2 — fill. Sources are visited in ascending address order, so
  // every in-list comes out sorted without a sort. In parallel, lane l's
  // slice of target w's in-list starts after the slices of lanes < l
  // (cursor bases derived from the pass-1 per-lane counts): lanes hold
  // ascending chunks of the source list, so the concatenation is the same
  // sorted in-list the sequential fill produces, and every in_nbr_ cell
  // has exactly one writer.
  if (in_nbr_.capacity() < directed_edges_) {
    // First-rebuild warm-up: reserve the hard ceiling (every live view full
    // of live targets) so steady state never grows this buffer again.
    in_nbr_.reserve(std::max<std::size_t>(directed_edges_, n * c));
  }
  in_nbr_.resize(directed_edges_);
  if (lanes == 1) {
    cursor_.assign(in_off_.begin(), in_off_.end() - 1);
    for (const NodeId v : live_list_) {
      for (const NodeDescriptor& d : network.view_span(v)) {
        const NodeId w = d.address;
        if (w == v || w >= n || !network.is_live(w)) continue;
        in_nbr_[cursor_[w]++] = v;
      }
    }
  } else {
    for (unsigned lane = 0; lane < lanes; ++lane) {
      lanes_[lane].cursor.resize(n);
    }
    for (std::size_t w = 0; w < n; ++w) {
      std::size_t base = in_off_[w];
      for (unsigned lane = 0; lane < lanes; ++lane) {
        lanes_[lane].cursor[w] = base;
        base += lanes_[lane].in_cnt[w];
      }
    }
    pool_->run([&](unsigned lane) {
      LaneScratch& sc = lanes_[lane];
      const Chunk ch = lane_chunk(live_list_.size(), lanes, lane);
      for (std::size_t i = ch.first; i < ch.last; ++i) {
        const NodeId v = live_list_[i];
        for (const NodeDescriptor& d : network.view_span(v)) {
          const NodeId w = d.address;
          if (w == v || w >= n || !network.is_live(w)) continue;
          in_nbr_[sc.cursor[w]++] = v;
        }
      }
    });
  }

  // Pass 3 — undirected-union degrees: out + in − mutual, where mutual
  // counts targets w of v that also point at v (one binary search per
  // descriptor into v's own sorted in-list). Reads are shared (the CSR is
  // frozen now), und_deg_[v] has one writer, and the per-lane sum/max
  // partials merge exactly in lane order.
  und_deg_.assign(n, 0);
  std::size_t max_deg = 0;
  std::uint64_t und_sum = 0;
  if (lanes == 1) {
    for (const NodeId v : live_list_) {
      const std::span<const NodeId> sources = in_list(v);
      std::uint32_t mutual = 0;
      for (const NodeDescriptor& d : network.view_span(v)) {
        const NodeId w = d.address;
        if (w == v || w >= n || !network.is_live(w)) continue;
        if (std::binary_search(sources.begin(), sources.end(), w)) ++mutual;
      }
      const std::uint32_t und = out_deg_[v] + in_degree(v) - mutual;
      und_deg_[v] = und;
      und_sum += und;
      max_deg = std::max<std::size_t>(max_deg, und);
    }
  } else {
    struct DegTally {
      std::uint64_t sum = 0;
      std::size_t max = 0;
    };
    std::vector<DegTally> tallies(lanes);
    pool_->run([&](unsigned lane) {
      const Chunk ch = lane_chunk(live_list_.size(), lanes, lane);
      DegTally t;
      for (std::size_t i = ch.first; i < ch.last; ++i) {
        const NodeId v = live_list_[i];
        const std::span<const NodeId> sources = in_list(v);
        std::uint32_t mutual = 0;
        for (const NodeDescriptor& d : network.view_span(v)) {
          const NodeId w = d.address;
          if (w == v || w >= n || !network.is_live(w)) continue;
          if (std::binary_search(sources.begin(), sources.end(), w)) ++mutual;
        }
        const std::uint32_t und = out_deg_[v] + in_degree(v) - mutual;
        und_deg_[v] = und;
        t.sum += und;
        t.max = std::max<std::size_t>(t.max, und);
      }
      tallies[lane] = t;
    });
    for (const DegTally& t : tallies) {
      und_sum += t.sum;
      max_deg = std::max(max_deg, t.max);
    }
  }
  undirected_edges_ = und_sum / 2;

  const std::size_t hist_size = max_deg + 1;
  if (hist_.capacity() < hist_size) {
    // Reserve 2x ahead of need (floor 512): after the warm-up snapshot,
    // another allocation requires the max union degree to outgrow double
    // its warm-up value — a protocol regime change, not the steady-state
    // drift a converged overlay exhibits.
    hist_.reserve(std::max<std::size_t>(512, 2 * hist_size));
  }
  hist_.assign(hist_size, 0);
  for (const NodeId v : live_list_) ++hist_[und_deg_[v]];

  und_stats_ = summarize_degrees(
      live_list_, [this](NodeId id) { return std::size_t{und_deg_[id]}; });
  in_stats_ = summarize_degrees(
      live_list_, [this](NodeId id) { return std::size_t{in_degree(id)}; });
  out_stats_ = summarize_degrees(
      live_list_, [this](NodeId id) { return std::size_t{out_deg_[id]}; });

  // Pass 4 — connected components by union-find over view slots. Stays
  // serial: path-halving mutates shared parent chains, and the pass is
  // O(N·c·α) of pointer chasing against pass 3's O(N·c·log) searches.
  parent_.resize(n);
  comp_size_.resize(n);
  for (const NodeId v : live_list_) {
    parent_[v] = v;
    comp_size_[v] = 1;
  }
  for (const NodeId v : live_list_) {
    for (const NodeDescriptor& d : network.view_span(v)) {
      const NodeId w = d.address;
      if (w == v || w >= n || !network.is_live(w)) continue;
      unite(v, w);
    }
  }
  comp_sizes_.reserve(n);
  comp_sizes_.clear();
  for (const NodeId v : live_list_) {
    if (find_root(v) == v) comp_sizes_.push_back(comp_size_[v]);
  }
  std::sort(comp_sizes_.rbegin(), comp_sizes_.rend());
  components_.count = comp_sizes_.size();
  components_.largest = comp_sizes_.empty() ? 0 : comp_sizes_.front();
  components_.outside_largest = live_list_.size() - components_.largest;

  // Clustering scratch: before dedup a node's out+in entry count is
  // und + mutual <= 2 * und, so 2 * max_deg is a hard per-snapshot
  // ceiling; as with the histogram, reserve 2x ahead of need so ordinary
  // max-degree drift never re-allocates.
  if (nbr_union_.capacity() < 2 * max_deg) {
    nbr_union_.reserve(std::max<std::size_t>(512, 4 * max_deg));
  }

  // BFS state: sized once; epochs make per-call reset O(1).
  if (stamp_.size() < n) {
    stamp_.assign(n, 0);
    epoch_ = 0;
  }
  dist_.resize(n);
  queue_.reserve(n);
}

std::uint32_t GraphCensus::find_root(std::uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

void GraphCensus::unite(std::uint32_t a, std::uint32_t b) {
  std::uint32_t ra = find_root(a);
  std::uint32_t rb = find_root(b);
  if (ra == rb) return;
  if (comp_size_[ra] < comp_size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  comp_size_[ra] += comp_size_[rb];
}

bool GraphCensus::has_directed_edge(NodeId from, NodeId to) const {
  const std::span<const NodeId> sources = in_list(to);
  return std::binary_search(sources.begin(), sources.end(), from);
}

bool GraphCensus::has_undirected_edge(NodeId a, NodeId b) const {
  return has_directed_edge(a, b) || has_directed_edge(b, a);
}

double GraphCensus::local_clustering(NodeId id,
                                     std::vector<NodeId>& scratch) const {
  const sim::Network& network = *net_;
  const std::size_t n = network.size();
  scratch.clear();
  for (const NodeDescriptor& d : network.view_span(id)) {
    const NodeId w = d.address;
    if (w == id || w >= n || !network.is_live(w)) continue;
    scratch.push_back(w);
  }
  const std::span<const NodeId> sources = in_list(id);
  scratch.insert(scratch.end(), sources.begin(), sources.end());
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
  const std::size_t d = scratch.size();
  PSS_DCHECK(d == und_deg_[id]);
  if (d < 2) return 0;
  std::size_t links = 0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      if (has_undirected_edge(scratch[i], scratch[j])) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double GraphCensus::clustering_sampled(std::size_t sample, Rng& rng) {
  PSS_CHECK_MSG(net_ != nullptr, "rebuild() before sampling");
  const std::size_t n = live_list_.size();
  if (n == 0) return 0;
  std::size_t count;
  if (sample >= n) {
    // Exact: every live node, ascending — the exact module's vertex order
    // (consumes no randomness, like the exact graph estimator).
    count = n;
    picks_.resize(n);
    for (std::size_t i = 0; i < n; ++i) picks_[i] = i;
  } else {
    PSS_CHECK_MSG(sample > 0, "sample size must be positive");
    // Same draw sequence as rng.sample_indices (which delegates here), so a
    // cloned Rng reproduces graph::clustering_coefficient_sampled
    // bit-exactly.
    rng.sample_indices_into(n, sample, picks_, pick_scratch_);
    count = sample;
  }
  const unsigned lanes = lane_count(count);
  double sum = 0;
  if (lanes == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      sum += local_clustering(live_list_[picks_[i]], nbr_union_);
    }
  } else {
    // Each pick's coefficient is a pure function of the frozen census, so
    // lanes compute them independently; the serial pick-order reduction
    // reproduces the sequential double accumulation exactly.
    lanes_.resize(lanes);
    pick_clust_.resize(count);
    pool_->run([&](unsigned lane) {
      const Chunk ch = lane_chunk(count, lanes, lane);
      std::vector<NodeId>& scratch = lanes_[lane].nbr_union;
      for (std::size_t i = ch.first; i < ch.last; ++i) {
        pick_clust_[i] = local_clustering(live_list_[picks_[i]], scratch);
      }
    });
    for (std::size_t i = 0; i < count; ++i) sum += pick_clust_[i];
  }
  return sum / static_cast<double>(count);
}

void GraphCensus::bfs_from(NodeId source, std::vector<std::uint32_t>& dist,
                           std::vector<std::uint32_t>& stamp,
                           std::vector<NodeId>& queue,
                           std::uint32_t& epoch) const {
  const sim::Network& network = *net_;
  const std::size_t n = network.size();
  if (++epoch == 0) {  // u32 wrap: reset stamps once every 4G calls
    std::fill(stamp.begin(), stamp.end(), 0);
    epoch = 1;
  }
  queue.clear();
  queue.push_back(source);
  dist[source] = 0;
  stamp[source] = epoch;
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    const std::uint32_t du = dist[u];
    // Undirected neighbourhood = out-targets ∪ in-sources; duplicates are
    // harmless (the stamp check rejects revisits).
    for (const NodeDescriptor& d : network.view_span(u)) {
      const NodeId w = d.address;
      if (w == u || w >= n || !network.is_live(w)) continue;
      if (stamp[w] != epoch) {
        stamp[w] = epoch;
        dist[w] = du + 1;
        queue.push_back(w);
      }
    }
    for (const NodeId w : in_list(u)) {
      if (stamp[w] != epoch) {
        stamp[w] = epoch;
        dist[w] = du + 1;
        queue.push_back(w);
      }
    }
  }
}

void GraphCensus::bfs(NodeId source) {
  bfs_from(source, dist_, stamp_, queue_, epoch_);
}

PathLengthEstimate GraphCensus::path_length_sampled(std::size_t sources,
                                                    Rng& rng) {
  PSS_CHECK_MSG(net_ != nullptr, "rebuild() before sampling");
  const std::size_t n = live_list_.size();
  PathLengthEstimate r;
  const bool exhaustive = sources >= n;
  if (!exhaustive) {
    PSS_CHECK_MSG(sources > 0, "source sample must be positive");
  }
  if (n < 2 || sources == 0) return r;
  if (!exhaustive) {
    rng.sample_indices_into(n, sources, picks_, pick_scratch_);
  } else {
    // Every live node, ascending — mirrors graph::average_path_length
    // (which consumes no randomness).
    picks_.resize(n);
    for (std::size_t i = 0; i < n; ++i) picks_[i] = i;
  }
  double total = 0;
  std::uint64_t reachable_pairs = 0;
  std::uint32_t diameter = 0;
  const unsigned lanes = lane_count(picks_.size());
  if (lanes == 1) {
    for (const std::size_t s : picks_) {
      bfs(live_list_[s]);
      // Accumulate in exact-graph vertex order (live ascending) so the
      // floating-point sum is bit-equal to path_length_from_sources.
      for (std::size_t v = 0; v < n; ++v) {
        if (v == s) continue;
        const NodeId id = live_list_[v];
        if (stamp_[id] != epoch_) continue;
        total += static_cast<double>(dist_[id]);
        ++reachable_pairs;
        diameter = std::max(diameter, dist_[id]);
      }
    }
  } else {
    // Each source's BFS runs on its own lane-local epoch-stamped state,
    // producing an exact integer (distance-sum, reachable-count, max)
    // triple per pick. The serial pick-order reduction then matches the
    // sequential double accumulation bit for bit: every sequential partial
    // sum is an exact integer (distances are u32 and the grand total stays
    // far below 2^53), so no addition in either order ever rounds.
    lanes_.resize(lanes);
    const std::size_t count = picks_.size();
    pick_total_.resize(count);
    pick_reach_.resize(count);
    pick_diam_.resize(count);
    const std::size_t net_n = net_->size();
    pool_->run([&](unsigned lane) {
      LaneScratch& sc = lanes_[lane];
      if (sc.stamp.size() < net_n) {
        sc.stamp.assign(net_n, 0);
        sc.epoch = 0;
      }
      sc.dist.resize(net_n);
      const Chunk ch = lane_chunk(count, lanes, lane);
      for (std::size_t i = ch.first; i < ch.last; ++i) {
        const std::size_t s = picks_[i];
        bfs_from(live_list_[s], sc.dist, sc.stamp, sc.queue, sc.epoch);
        std::uint64_t sum = 0, reach = 0;
        std::uint32_t diam = 0;
        for (std::size_t v = 0; v < n; ++v) {
          if (v == s) continue;
          const NodeId id = live_list_[v];
          if (sc.stamp[id] != sc.epoch) continue;
          sum += sc.dist[id];
          ++reach;
          diam = std::max(diam, sc.dist[id]);
        }
        pick_total_[i] = sum;
        pick_reach_[i] = reach;
        pick_diam_[i] = diam;
      }
    });
    std::uint64_t total_int = 0;
    for (std::size_t i = 0; i < count; ++i) {
      total_int += pick_total_[i];
      reachable_pairs += pick_reach_[i];
      diameter = std::max(diameter, pick_diam_[i]);
    }
    total = static_cast<double>(total_int);
  }
  const std::uint64_t all_pairs =
      static_cast<std::uint64_t>(picks_.size()) * (n - 1);
  r.average = reachable_pairs > 0
                  ? total / static_cast<double>(reachable_pairs)
                  : 0;
  r.reachable_fraction =
      all_pairs > 0
          ? static_cast<double>(reachable_pairs) / static_cast<double>(all_pairs)
          : 1;
  r.diameter = diameter;
  return r;
}

std::size_t GraphCensus::storage_bytes() const {
  std::size_t lane_bytes = 0;
  for (const LaneScratch& sc : lanes_) {
    lane_bytes += sc.in_cnt.capacity() * sizeof(std::uint32_t) +
                  sc.cursor.capacity() * sizeof(std::size_t) +
                  sc.dist.capacity() * sizeof(std::uint32_t) +
                  sc.stamp.capacity() * sizeof(std::uint32_t) +
                  sc.queue.capacity() * sizeof(NodeId) +
                  sc.nbr_union.capacity() * sizeof(NodeId);
  }
  return live_list_.capacity() * sizeof(NodeId) +
         out_deg_.capacity() * sizeof(std::uint32_t) +
         und_deg_.capacity() * sizeof(std::uint32_t) +
         in_off_.capacity() * sizeof(std::size_t) +
         in_nbr_.capacity() * sizeof(NodeId) +
         cursor_.capacity() * sizeof(std::size_t) +
         hist_.capacity() * sizeof(std::uint64_t) +
         parent_.capacity() * sizeof(std::uint32_t) +
         comp_size_.capacity() * sizeof(std::uint32_t) +
         comp_sizes_.capacity() * sizeof(std::size_t) +
         dist_.capacity() * sizeof(std::uint32_t) +
         stamp_.capacity() * sizeof(std::uint32_t) +
         queue_.capacity() * sizeof(NodeId) +
         picks_.capacity() * sizeof(std::size_t) +
         pick_scratch_.capacity() * sizeof(std::size_t) +
         nbr_union_.capacity() * sizeof(NodeId) +
         pick_clust_.capacity() * sizeof(double) +
         pick_total_.capacity() * sizeof(std::uint64_t) +
         pick_reach_.capacity() * sizeof(std::uint64_t) +
         pick_diam_.capacity() * sizeof(std::uint32_t) + lane_bytes;
}

}  // namespace pss::obs
