// Fixed-panel degree tracker for Figure-5-style autocorrelation traces.
//
// The paper's Figure 5 records the undirected degree of a fixed random node
// for K consecutive cycles and plots the sample autocorrelation r_k of that
// series. This tracker holds a fixed panel of node ids chosen up front and
// appends each panel node's union degree from a GraphCensus snapshot — so a
// 10⁶-node run can trace a handful of nodes per cycle without ever building
// the snapshot graph the legacy degree-trace path required.
//
// Storage is a single flat (panel × capacity) buffer preallocated at
// construction: record() is allocation-free, which keeps the tracker usable
// inside the zero-steady-state-allocation observability path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/obs/graph_census.hpp"

namespace pss::obs {

class DegreeAutocorrelation {
 public:
  /// Tracks `panel` (copied) for at most `capacity_cycles` recordings.
  DegreeAutocorrelation(std::span<const NodeId> panel,
                        std::size_t capacity_cycles);

  std::size_t panel_size() const { return panel_.size(); }
  std::size_t recorded_cycles() const { return recorded_; }
  NodeId panel_node(std::size_t i) const { return panel_[i]; }

  /// Appends every panel node's current undirected-union degree. The census
  /// must have been rebuilt against a network that still contains the panel
  /// nodes. No-op free of allocations; ignores recordings past capacity.
  void record(const GraphCensus& census);

  /// Degree series of panel node i (one double per recorded cycle).
  std::span<const double> series(std::size_t i) const;

  /// Sample autocorrelation r_k (k = 0..max_lag) of panel node i's series,
  /// as stats::autocorrelation computes it (paper Figure 5).
  std::vector<double> autocorrelation(std::size_t i, std::size_t max_lag) const;

 private:
  std::vector<NodeId> panel_;
  std::size_t capacity_ = 0;
  std::size_t recorded_ = 0;
  std::vector<double> degrees_;  ///< panel-major: [i * capacity_ + t]
};

}  // namespace pss::obs
