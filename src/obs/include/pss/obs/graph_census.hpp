// Arena-native graph observables: the paper's Section 4.2 measurements
// computed straight from the flat view storage, with no edge-list or
// UndirectedGraph materialization.
//
// The exact pipeline (graph::UndirectedGraph::from_network + graph::metrics)
// builds an explicit edge vector of N·c pairs, canonicalizes both
// orientations and sorts them — ~3×10⁷ pairs per snapshot at 10⁶ nodes,
// which confines the science to networks two orders of magnitude smaller
// than the engines can run. GraphCensus replaces that per-snapshot graph
// object with a reusable measurement pass over the packed descriptor array:
//
//   rebuild(network) —
//     pass 1  walks every live slot's descriptors once, counting live
//             out-degree (self and dead links skipped, exactly the edges
//             from_network keeps) and per-target in-degree;
//     pass 2  fills an implicit in-edge CSR into persistent buffers (the
//             count/fill idiom); iterating sources in ascending address
//             order makes every in-list arrive sorted for free;
//     pass 3  undirected-union degree per node as
//                out + in − |out ∩ in|
//             (the mutual-edge correction, one binary search per
//             descriptor into the node's own sorted in-list), streamed
//             into the degree histogram and the three degree summaries;
//     pass 4  connected components by union-find over view slots (path
//             halving + union by size).
//
//   Sampled estimators (clustering, path length) then run on demand over
//   the implicit adjacency — a node's undirected neighbourhood is its view
//   span unioned with its in-list — using epoch-stamped BFS state, so no
//   per-call clearing of N-sized arrays.
//
// Parallel execution: set_thread_pool attaches a sim::ThreadPool and the
// per-node passes (1–3) plus the sampled estimators fan their node/source
// loops across lanes, bit-identical to the sequential walk at any lane
// count. The decomposition is deterministic by construction: lanes own
// contiguous chunks of the ascending live list (or pick list), every
// shared array cell has exactly one writer (out/und degrees by source
// node; the in-CSR through per-lane cursor bases derived from per-lane
// counts, which also keeps each in-list sorted), and cross-lane reductions
// are either exact integers merged in lane order or per-pick values
// reduced serially in pick order — so no floating-point reassociation and
// no write order can differ from the sequential pass. Union-find (pass 4)
// and the histogram/summary folds stay serial: they are O(N) against the
// O(N·c) passes and the summary's double accumulation order is part of the
// bit-equality contract with graph::degree_summary.
//
// Equivalence contract (pinned by tests/obs_test.cpp):
//   - degree histogram, component count/largest/size multiset: bit-equal
//     to graph::metrics on the exact snapshot graph;
//   - degree_stats(): bit-equal to graph::degree_summary (same accumulation
//     order: live addresses ascending are exactly the exact graph's
//     re-indexed vertices ascending);
//   - clustering_sampled / path_length_sampled: given the same Rng state,
//     bit-equal to the graph::metrics sampled estimators (same draw
//     sequence, same accumulation order), hence trivially inside any error
//     bound the exact module satisfies.
//
// Allocation discipline: every buffer is a persistent member sized on the
// first rebuild (the warm-up); subsequent rebuilds of a same-sized network
// allocate nothing — the in-CSR is reserved at its hard ceiling of
// n·view_capacity entries, and the degree-indexed buffers carry 2x
// headroom over the warm-up snapshot's max degree, so re-allocating one
// takes a doubling of the max degree (a protocol regime change, not
// steady-state drift). bench/scale_metrics verifies the
// zero-steady-state-allocation claim with a whole-process operator-new
// counter.
//
// Lifetime: rebuild() stores a pointer to the network; the census (and any
// estimator call) is valid until the network is mutated or destroyed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/thread_pool.hpp"

namespace pss::obs {

/// Degree distribution moments; field-for-field the exact module's
/// graph::DegreeSummary (duplicated so pss_obs does not depend on
/// pss_graph — the whole point is to never build its graph).
struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0;
  double variance = 0;  ///< population variance
};

/// Connectivity summary from the union-find pass.
struct ComponentStats {
  std::size_t count = 0;    ///< number of connected components
  std::size_t largest = 0;  ///< size of the largest component
  /// Live nodes outside the largest component (paper Figure 6 metric).
  std::size_t outside_largest = 0;
};

/// Result of a sampled path-length measurement (mirrors
/// graph::PathLengthResult).
struct PathLengthEstimate {
  double average = 0;             ///< mean distance over reachable ordered pairs
  double reachable_fraction = 1;  ///< reachable ordered pairs / sampled pairs
  std::uint32_t diameter = 0;     ///< max finite distance seen from the sources
};

class GraphCensus {
 public:
  GraphCensus() = default;

  /// Recomputes every streamed observable for the network's current state.
  /// O(N + E) with E = live->live view entries; allocation-free after the
  /// first call on a same-sized network.
  void rebuild(const sim::Network& network);

  /// Attaches a fork-join pool for rebuild() and the sampled estimators;
  /// nullptr detaches. Results are bit-identical with or without a pool at
  /// any lane count (see the header comment) — parallelism buys wall-clock
  /// only. The pool must outlive the census (or the next call here) and is
  /// driven only from the thread calling rebuild()/estimator methods.
  void set_thread_pool(sim::ThreadPool* pool) { pool_ = pool; }

  // --- Streamed observables (valid after rebuild) --------------------------

  std::size_t live_count() const { return live_list_.size(); }

  /// Live addresses ascending — index i here is vertex i of the exact
  /// snapshot graph, which is what makes the bit-equality contract hold.
  std::span<const NodeId> live_list() const { return live_list_; }

  /// Directed live->live non-self view entries.
  std::uint64_t directed_edge_count() const { return directed_edges_; }

  /// Live nodes' view entries pointing at dead (or never-allocated)
  /// addresses — bit-equal to Network::count_dead_links() on the same
  /// state, streamed out of pass 1 instead of a second O(N·c) walk (the
  /// paper's Figure 7 "overall dead links" metric).
  std::uint64_t dead_link_count() const { return dead_links_; }

  /// Live nodes' view entries pointing at live nodes of a different
  /// partition group — bit-equal to Network::count_cross_partition_links()
  /// (the Section 8 split-memory metric). Zero while unpartitioned.
  std::uint64_t cross_partition_link_count() const { return cross_links_; }

  /// Edges of the undirected union overlay (mutual pairs collapse to one).
  std::uint64_t undirected_edge_count() const { return undirected_edges_; }

  /// Per-node degrees (0 for dead nodes).
  std::uint32_t out_degree(NodeId id) const { return out_deg_[id]; }
  std::uint32_t in_degree(NodeId id) const {
    return static_cast<std::uint32_t>(in_off_[id + 1] - in_off_[id]);
  }
  std::uint32_t undirected_degree(NodeId id) const { return und_deg_[id]; }

  /// counts[d] = live nodes with undirected-union degree d; size is
  /// max degree + 1 — bit-equal to graph::degree_histogram on the exact
  /// snapshot graph.
  std::span<const std::uint64_t> degree_histogram() const { return hist_; }

  /// Union-degree summary — bit-equal to graph::degree_summary.
  const DegreeStats& degree_stats() const { return und_stats_; }
  const DegreeStats& in_degree_stats() const { return in_stats_; }
  const DegreeStats& out_degree_stats() const { return out_stats_; }

  const ComponentStats& components() const { return components_; }

  /// Component sizes, descending — same multiset as
  /// graph::connected_components().sizes on the exact snapshot graph.
  std::span<const std::size_t> component_sizes() const { return comp_sizes_; }

  // --- Sampled estimators (run on demand over the implicit adjacency) ------

  /// Clustering coefficient over `sample` uniformly drawn live nodes
  /// (exact mean of local coefficients when sample >= live_count). Given
  /// the same Rng state, bit-equal to
  /// graph::clustering_coefficient_sampled on the exact snapshot graph.
  double clustering_sampled(std::size_t sample, Rng& rng);

  /// Path length via BFS from `sources` uniformly drawn live nodes (every
  /// node when sources >= live_count). Given the same Rng state, bit-equal
  /// to graph::average_path_length_sampled on the exact snapshot graph.
  PathLengthEstimate path_length_sampled(std::size_t sources, Rng& rng);

  /// Bytes resident in the census's persistent buffers.
  std::size_t storage_bytes() const;

 private:
  /// Per-lane working state for the parallel passes; sized lazily to the
  /// attached pool's lane count and reused across rebuilds and estimator
  /// calls (same persistence discipline as the serial buffers).
  struct LaneScratch {
    std::vector<std::uint32_t> in_cnt;   ///< pass-1 per-lane in-degree counts
    std::vector<std::size_t> cursor;     ///< pass-2 per-lane CSR cursors
    std::vector<std::uint32_t> dist;     ///< per-lane BFS state
    std::vector<std::uint32_t> stamp;
    std::vector<NodeId> queue;
    std::uint32_t epoch = 0;
    std::vector<NodeId> nbr_union;       ///< per-lane clustering scratch
  };

  std::uint32_t find_root(std::uint32_t x);
  void unite(std::uint32_t a, std::uint32_t b);
  bool has_directed_edge(NodeId from, NodeId to) const;
  bool has_undirected_edge(NodeId a, NodeId b) const;
  double local_clustering(NodeId id, std::vector<NodeId>& scratch) const;
  void bfs(NodeId source);
  void bfs_from(NodeId source, std::vector<std::uint32_t>& dist,
                std::vector<std::uint32_t>& stamp, std::vector<NodeId>& queue,
                std::uint32_t& epoch) const;
  /// Lanes to fan `items` across: the pool's count, or 1 when no pool is
  /// attached (or there is nothing to split).
  unsigned lane_count(std::size_t items) const {
    if (pool_ == nullptr || items < 2) return 1;
    return pool_->concurrency();
  }

  std::span<const NodeId> in_list(NodeId id) const {
    return {in_nbr_.data() + in_off_[id], in_nbr_.data() + in_off_[id + 1]};
  }

  const sim::Network* net_ = nullptr;
  std::uint64_t directed_edges_ = 0;
  std::uint64_t undirected_edges_ = 0;
  std::uint64_t dead_links_ = 0;
  std::uint64_t cross_links_ = 0;
  DegreeStats und_stats_, in_stats_, out_stats_;
  ComponentStats components_;

  std::vector<NodeId> live_list_;        ///< live addresses, ascending
  std::vector<std::uint32_t> out_deg_;   ///< live out-degree per address
  std::vector<std::uint32_t> und_deg_;   ///< union degree per address
  std::vector<std::size_t> in_off_;      ///< in-CSR offsets (size N+1)
  std::vector<NodeId> in_nbr_;           ///< in-CSR entries, sorted per list
  std::vector<std::size_t> cursor_;      ///< CSR fill cursors, reused
  std::vector<std::uint64_t> hist_;      ///< union-degree histogram
  std::vector<std::uint32_t> parent_;    ///< union-find parent per address
  std::vector<std::uint32_t> comp_size_; ///< union-find size at roots
  std::vector<std::size_t> comp_sizes_;  ///< component sizes, descending

  // BFS state: epoch-stamped so per-call reset is O(1), not O(N).
  std::vector<std::uint32_t> dist_;
  std::vector<std::uint32_t> stamp_;
  std::vector<NodeId> queue_;
  std::uint32_t epoch_ = 0;

  // Sampling scratch (reuses capacity across estimator calls).
  std::vector<std::size_t> picks_;
  std::vector<std::size_t> pick_scratch_;
  std::vector<NodeId> nbr_union_;  ///< one node's undirected neighbourhood

  // Parallel execution (inactive until set_thread_pool).
  sim::ThreadPool* pool_ = nullptr;
  std::vector<LaneScratch> lanes_;
  // Per-pick estimator results, reduced serially in pick order so the
  // parallel paths reproduce the sequential accumulation bit for bit.
  std::vector<double> pick_clust_;
  std::vector<std::uint64_t> pick_total_;
  std::vector<std::uint64_t> pick_reach_;
  std::vector<std::uint32_t> pick_diam_;
};

}  // namespace pss::obs
