// Minimal structural JSON writer shared by the metrics-export backends.
//
// One writer produces every piece of JSON the repo emits — the JSON-lines
// sink's header and rows, the binary ring header, and the RunRecorder's
// BENCH_*.json documents — so escaping and number formatting are defined
// in exactly one place:
//   - strings: standard JSON escaping (control characters as \u00XX);
//   - integers: decimal via std::to_chars;
//   - doubles: shortest round-trip representation via std::to_chars —
//     a reader parsing the text recovers the bit-identical double, which
//     is what makes recorded observables diffable;
//   - non-finite doubles: emitted as null (JSON has no NaN/Inf).
//
// The writer appends to a caller-owned std::string and keeps a small
// fixed-depth container stack for comma/indent bookkeeping; it never
// allocates beyond that buffer, so steady-state row formatting inherits
// the sink allocation contract from the buffer's capacity.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "pss/obs/metric_sink.hpp"

namespace pss::obs {

/// Appends `s` JSON-escaped (no surrounding quotes) to `out`.
void append_json_escaped(std::string& out, std::string_view s);

/// Appends a number in its canonical text form (see header comment).
void append_u64(std::string& out, std::uint64_t v);
void append_i64(std::string& out, std::int64_t v);
void append_f64(std::string& out, double v);

class JsonWriter {
 public:
  /// `pretty` selects 2-space-indented multiline output (BENCH documents)
  /// vs single-line compact output (JSONL headers and rows).
  explicit JsonWriter(std::string& out, bool pretty)
      : out_(&out), pretty_(pretty) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key; must be directly inside an object.
  void key(std::string_view k);

  /// Emits one value (element or key's value) with canonical formatting.
  void value(const MetricValue& v);
  void value_string(std::string_view s);

  /// key() + value() in one call.
  void field(std::string_view k, const MetricValue& v) {
    key(k);
    value(v);
  }

  /// True once the top-level container has been closed.
  bool complete() const { return depth_ == 0 && wrote_any_; }

 private:
  void before_item();  ///< comma/newline/indent before an element
  void indent();

  static constexpr std::size_t kMaxDepth = 16;
  struct Frame {
    bool is_object = false;
    bool has_items = false;
    bool pending_key = false;
  };
  std::string* out_;
  bool pretty_;
  bool wrote_any_ = false;
  std::size_t depth_ = 0;
  Frame stack_[kMaxDepth];
};

}  // namespace pss::obs
