// The metrics-export surface of the obs module: typed, self-describing
// metric streams with pluggable backends.
//
// The paper's whole evaluation is recorded observables; this header makes
// recording a first-class middleware mechanism instead of per-driver
// plumbing. A MetricSink consumes one stream of fixed-schema rows:
//
//   sink.begin(schema, meta);        // once: emits the self-describing header
//   sink.row({v0, v1, ...});         // any number of rows, schema-typed
//   sink.finish();                   // close the stream (destructor calls it)
//
// The header makes every emitted file interpretable WITHOUT the code that
// wrote it: schema name, schema version, the column names and types, and
// the run metadata (seed, n, c, protocol, engine, git describe). Schema
// versioning rule: any change to a schema's field list — name, order,
// type, meaning — bumps its version; readers (scripts/check_bench.py,
// scripts/render_report.py) refuse files whose version they do not know.
//
// Allocation contract (the GraphCensus discipline): begin() may allocate —
// it sizes the row formatting buffer from the schema — but row() must not
// allocate in steady state. A row whose formatted length exceeds every
// previous row's may grow the buffer once (amortized geometric growth);
// after that warm-up, firings are allocation-free. bench/scale_metrics
// pins this with a whole-process operator-new counter.
//
// What a sink does with rows is backend policy (pss/obs/sinks.hpp: CSV,
// JSON-lines, binary ring buffer, fan-out); what the schema means is the
// producer's policy (pss/obs/schemas.hpp holds the canonical ones). The
// mechanism here is deliberately dumb: no locking (single-writer, like
// every engine seam in this repo), no buffering policy beyond the row
// buffer, no clock — a row records what the producer passes, nothing more.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>

#include "pss/common/check.hpp"

namespace pss::obs {

/// Column value types. u64/i64/f64/bool8 cells occupy exactly 8 bytes in
/// the binary ring encoding; str cells are hashed there (see sinks.hpp).
enum class FieldType : std::uint8_t {
  kU64 = 0,
  kI64 = 1,
  kF64 = 2,
  kBool = 3,
  kStr = 4,
};

/// Short stable type tag used in headers ("u64", "i64", "f64", "bool",
/// "str").
const char* field_type_name(FieldType type);

struct FieldSpec {
  const char* name;  ///< [a-z0-9_]+, stable across versions of a schema
  FieldType type;
};

/// A versioned row layout. Instances are static constexpr arrays plus this
/// view struct; schemas are identity, not configuration.
struct MetricSchema {
  const char* name;       ///< dotted, e.g. "pss.obs.snapshot"
  std::uint32_t version;  ///< bumped on ANY field-list change
  const FieldSpec* fields;
  std::size_t field_count;
};

/// Run identity stamped into every header. Pointers/string_views must
/// outlive the sink's begin() call only (the header is emitted eagerly).
struct RunMetadata {
  std::string_view bench;         ///< producing driver/tool name
  std::string_view engine;        ///< "cycle", "event", "parallel_cycle",
                                  ///< "parallel_event", "service", "mixed"
  std::string_view protocol;      ///< spec name, "-" when per-row/mixed
  std::int32_t protocol_id = -1;  ///< wire id ps*9+vs*3+vp, -1 when mixed
  std::uint64_t n = 0;            ///< network size, 0 when per-row
  std::uint64_t view_size = 0;    ///< c
  std::uint64_t cycles = 0;       ///< configured horizon, 0 when n/a
  std::uint64_t seed = 0;         ///< master seed
  std::string_view git;           ///< `git describe` of the producing build
};

/// The `git describe --always --dirty` string baked into the obs library
/// at configure time ("unknown" outside a git checkout).
std::string_view build_git_describe();

/// One typed cell. Implicitly constructible from the natural C++ types so
/// call sites read as data: sink.row({cycle, live, mean, ok, name}).
struct MetricValue {
  FieldType type;
  union {
    std::uint64_t u;
    std::int64_t i;
    double f;
    bool b;
  };
  std::string_view s;  ///< engaged when type == kStr

  MetricValue(bool v) : type(FieldType::kBool), b(v) {}            // NOLINT
  MetricValue(double v) : type(FieldType::kF64), f(v) {}           // NOLINT
  MetricValue(std::string_view v) : type(FieldType::kStr), u(0), s(v) {}  // NOLINT
  MetricValue(const char* v)                                       // NOLINT
      : type(FieldType::kStr), u(0), s(v) {}
  MetricValue(const std::string& v)                                // NOLINT
      : type(FieldType::kStr), u(0), s(v) {}
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  MetricValue(T v) {  // NOLINT: implicit by design, see struct comment
    if constexpr (std::is_signed_v<T>) {
      type = FieldType::kI64;
      i = static_cast<std::int64_t>(v);
    } else {
      type = FieldType::kU64;
      u = static_cast<std::uint64_t>(v);
    }
  }
};

class MetricSink {
 public:
  virtual ~MetricSink() = default;

  /// Emits the self-describing header. Must be called exactly once,
  /// before any row; the schema pointer must outlive the sink.
  virtual void begin(const MetricSchema& schema, const RunMetadata& meta) = 0;

  /// Appends one row; `values` must match the schema's field count and
  /// types exactly (checked — a schema mismatch is a bug, not data).
  virtual void row(std::span<const MetricValue> values) = 0;

  /// Initializer-list convenience over the span overload.
  void row(std::initializer_list<MetricValue> values) {
    row(std::span<const MetricValue>(values.begin(), values.size()));
  }

  /// Flushes and closes the stream; idempotent, called by destructors.
  virtual void finish() = 0;

 protected:
  /// Shared row validation for backends.
  static void check_row(const MetricSchema& schema,
                        std::span<const MetricValue> values) {
    PSS_CHECK_MSG(values.size() == schema.field_count,
                  "row arity does not match the schema");
    for (std::size_t c = 0; c < values.size(); ++c) {
      PSS_CHECK_MSG(values[c].type == schema.fields[c].type,
                    "row cell type does not match the schema");
    }
  }
};

}  // namespace pss::obs
