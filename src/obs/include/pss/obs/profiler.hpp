// Always-on runtime profiler over the tracing seam: per-phase log2-bucket
// duration histograms in fixed arrays — no allocation after construction,
// relaxed atomic counters so the parallel engines' worker lanes can feed
// it concurrently (the GraphCensus / RingBufferSink discipline applied to
// time instead of topology).
//
// Bucketing: bucket 0 counts exactly-0 ns durations; bucket b >= 1 counts
// durations in [2^(b-1), 2^b - 1] ns — i.e. b = bit_width(duration). 65
// buckets cover the full u64 range. Percentiles are read from the
// cumulative bucket counts and reported as the matched bucket's upper
// edge (a <= 2x overestimate by construction, which is the honest
// direction for a latency report).
//
// Export: export_rows() emits one pss.obs.profile row per non-empty
// bucket through any MetricSink; render_prometheus() appends the same
// histograms (plus counts and sums) in Prometheus text exposition format
// for the daemon's pull endpoint (pss/obs/pull_endpoint.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "pss/obs/metric_sink.hpp"
#include "pss/sim/trace_probe.hpp"

namespace pss::obs {

class Profiler final : public sim::TraceProbe {
 public:
  static constexpr std::size_t kBuckets = 65;

  Profiler() = default;

  // -- TraceProbe -----------------------------------------------------------
  bool armed() const override {
    return armed_.load(std::memory_order_relaxed);
  }
  void record(const sim::TraceSpan& span) override;

  void set_armed(bool armed) {
    armed_.store(armed, std::memory_order_relaxed);
  }

  // -- Bucket algebra (static; pinned by tests/trace_test.cpp) --------------
  /// Bucket index for a duration: 0 for 0 ns, else bit_width(duration).
  static std::size_t bucket_of(std::uint64_t duration_ns);
  /// Inclusive lower edge of a bucket (0 for bucket 0, else 2^(b-1)).
  static std::uint64_t bucket_lo(std::size_t bucket);
  /// Inclusive upper edge of a bucket (0 for bucket 0; u64 max for 64).
  static std::uint64_t bucket_hi(std::size_t bucket);

  // -- Quiescent readers ----------------------------------------------------
  std::uint64_t count(sim::TracePhase phase) const;
  std::uint64_t sum_ns(sim::TracePhase phase) const;
  std::uint64_t bucket_count(sim::TracePhase phase, std::size_t bucket) const;

  /// The q-quantile (q in [0, 1]) of a phase's recorded durations, as the
  /// upper edge of the first bucket whose cumulative count reaches
  /// ceil(q * total). Returns 0 when the phase recorded nothing.
  std::uint64_t percentile_ns(sim::TracePhase phase, double q) const;

  /// Emits begin(pss.obs.profile) + one row per non-empty bucket +
  /// finish() on `sink`.
  void export_rows(MetricSink& sink, const RunMetadata& meta) const;

  /// Appends the histograms in Prometheus text exposition format
  /// (cumulative `le` buckets, `_count`, `_sum`) to `out`.
  void render_prometheus(std::string& out) const;

 private:
  std::atomic<std::uint64_t>
      buckets_[sim::kTracePhaseCount][kBuckets] = {};
  std::atomic<std::uint64_t> counts_[sim::kTracePhaseCount] = {};
  std::atomic<std::uint64_t> sums_[sim::kTracePhaseCount] = {};
  std::atomic<bool> armed_{true};
};

}  // namespace pss::obs
