// Minimal Prometheus-style text-exposition pull endpoint — the ROADMAP's
// "pull endpoint on the daemon's ring buffer" item.
//
// One blocking TCP listener on localhost, served from a single background
// thread: any connection (the request bytes are read and ignored — every
// path serves the same document) gets an HTTP/1.0 200 with
// `text/plain; version=0.0.4` and the latest snapshot the producer
// installed via set_text(). The daemon re-renders counters + profiler
// histograms + trace-ring stats once per tick; a Prometheus scrape (or
// `curl`) pulls whatever snapshot is current.
//
// Deliberately NOT a web server: no keep-alive, no routing, no TLS, no
// request parsing beyond a bounded drain. The accept loop polls with a
// short timeout so stop() (and the destructor) join promptly; set_text()
// swaps the document under a mutex, so the serving thread never reads a
// torn snapshot (the threaded test in tests/trace_test.cpp runs under
// TSan in CI).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace pss::obs {

class PullEndpoint {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// serving thread. ok() reports bind/listen failure — the endpoint then
  /// serves nothing but stays safe to destroy (observability degrades,
  /// never the process; the file-sink discipline).
  explicit PullEndpoint(std::uint16_t port);
  ~PullEndpoint();

  PullEndpoint(const PullEndpoint&) = delete;
  PullEndpoint& operator=(const PullEndpoint&) = delete;

  bool ok() const { return ok_; }
  /// The bound port (resolves port 0 to the kernel's choice).
  std::uint16_t port() const { return port_; }

  /// Installs the document served to subsequent connections.
  void set_text(std::string text);

  /// Stops the serving thread and closes the listener; idempotent.
  void stop();

  /// Connections answered so far.
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool ok_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> served_{0};
  std::mutex mutex_;
  std::string text_;
  std::thread thread_;
};

}  // namespace pss::obs
