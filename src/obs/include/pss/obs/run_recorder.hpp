// RunRecorder: the one way a bench driver writes its BENCH_*.json result
// document.
//
// Every scale_* driver used to hand-roll its JSON with ofstream string
// concatenation — seven slightly different envelopes, seven escaping
// bugs waiting to happen, and nothing a validator could hold on to.
// RunRecorder replaces that with a streamed document built on JsonWriter
// that always carries the same self-describing envelope:
//
//   {
//     "schema": {"name": "pss.bench.<bench>", "version": V},
//     "meta":   { engine, protocol, protocol_id, n, c, cycles, seed, git },
//     ... driver sections via json(): "params", "runs", "differential" ...
//     "gates":    {"<gate>": true|false, ...},   // appended by write()
//     "gates_ok": true|false
//   }
//
// scripts/check_bench.py validates committed documents against this
// envelope: known schema name + version, required keys, every gate true,
// digest fields structurally consistent. Gates recorded through gate()
// are therefore the driver's CI contract — record every pass/fail signal
// through it, not through bespoke booleans in driver sections.
//
// Digests are recorded as 16-hex-digit strings (to_hex16) so a reader
// never round-trips them through doubles.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pss/obs/json_writer.hpp"
#include "pss/obs/metric_sink.hpp"

namespace pss::obs {

/// "%016x" rendering of a 64-bit digest — the one digest text form.
std::string to_hex16(std::uint64_t v);

class RunRecorder {
 public:
  /// Opens the document and writes the schema + meta envelope. `bench`
  /// becomes schema name "pss.bench.<bench>"; meta.git defaults to the
  /// build's git describe when empty.
  RunRecorder(std::string_view bench, std::uint32_t version,
              const RunMetadata& meta);

  /// The document writer, positioned inside the root object. Drivers add
  /// their sections with it: json().key("params"); json().begin_object();…
  JsonWriter& json() { return writer_; }

  /// Records a named CI gate and passes the verdict through, so call
  /// sites read: ok = rec.gate("digest", a == b) && ok;
  bool gate(std::string_view name, bool ok);

  /// True while every recorded gate has passed.
  bool gates_ok() const;

  /// Appends the gates section, closes the document and writes it to
  /// `path`. Call once, after all driver sections. Returns false on I/O
  /// failure (the document must be structurally complete — checked).
  bool write(const std::string& path);

  /// The finished document text (valid after write()).
  const std::string& text() const { return out_; }

 private:
  std::string out_;
  JsonWriter writer_;
  std::vector<std::pair<std::string, bool>> gates_;
  bool written_ = false;
};

}  // namespace pss::obs
