// Canonical metric schemas for the library-level producers.
//
// Schemas defined here are the ones emitted by reusable code paths — the
// StreamingObserver's per-snapshot stream, the experiments layer's
// MetricsSample series, and the ServiceNode's per-tick driver counters.
// Bench drivers that record driver-specific tables (figure CSVs, scale
// sweeps) define their own static schemas next to the emitting loop; a
// schema lives with its single producer, and this header exists only for
// schemas with more than one.
//
// Versioning rule (see metric_sink.hpp): ANY change to a field list —
// name, order, type, meaning — bumps the schema's version, and the readers
// (scripts/check_bench.py, scripts/render_report.py) refuse versions they
// do not know. Appending a field is still a bump: a version identifies an
// exact column layout, which is what lets the binary ring format get away
// with storing no per-row structure at all.
#pragma once

#include "pss/obs/metric_sink.hpp"

namespace pss::obs::schemas {

// ---- pss.obs.snapshot: one StreamingObserver firing -------------------------

inline constexpr FieldSpec kSnapshotFields[] = {
    {"cycle", FieldType::kU64},
    {"live", FieldType::kU64},
    {"undirected_edges", FieldType::kU64},
    {"dead_links", FieldType::kU64},
    {"cross_partition_links", FieldType::kU64},
    {"degree_min", FieldType::kU64},
    {"degree_max", FieldType::kU64},
    {"degree_mean", FieldType::kF64},
    {"degree_variance", FieldType::kF64},
    {"in_degree_variance", FieldType::kF64},
    {"out_degree_variance", FieldType::kF64},
    {"components", FieldType::kU64},
    {"largest_component", FieldType::kU64},
    {"outside_largest", FieldType::kU64},
    {"clustering", FieldType::kF64},
    {"path_length", FieldType::kF64},
    {"reachable_fraction", FieldType::kF64},
};

inline constexpr MetricSchema kSnapshot{
    "pss.obs.snapshot", 1, kSnapshotFields, std::size(kSnapshotFields)};

// ---- pss.experiments.series: one MetricsSample of a scenario series ---------

inline constexpr FieldSpec kSeriesFields[] = {
    {"protocol", FieldType::kStr},
    {"cycle", FieldType::kU64},
    {"live_nodes", FieldType::kU64},
    {"avg_degree", FieldType::kF64},
    {"clustering", FieldType::kF64},
    {"path_length", FieldType::kF64},
    {"reachable_fraction", FieldType::kF64},
    {"components", FieldType::kU64},
    {"largest_component", FieldType::kU64},
    {"dead_links", FieldType::kU64},
};

inline constexpr MetricSchema kSeries{
    "pss.experiments.series", 1, kSeriesFields, std::size(kSeriesFields)};

// ---- pss.transport.service_tick: one ServiceNode on_tick firing -------------

inline constexpr FieldSpec kServiceTickFields[] = {
    {"tick", FieldType::kU64},
    {"now", FieldType::kF64},
    {"view_size", FieldType::kU64},
    {"wakeups", FieldType::kU64},
    {"requests_sent", FieldType::kU64},
    {"replies_delivered", FieldType::kU64},
    {"replies_stale", FieldType::kU64},
    {"frames_rejected", FieldType::kU64},
    {"protocol_mismatches", FieldType::kU64},
    {"misaddressed", FieldType::kU64},
};

inline constexpr MetricSchema kServiceTick{"pss.transport.service_tick", 1,
                                           kServiceTickFields,
                                           std::size(kServiceTickFields)};

// ---- pss.obs.trace: one TraceRecorder flight-recorder event -----------------
//
// Embedded in PSSTRACE1 dumps as the self-describing header; the field
// order here IS the packed 32-byte event's field order, with the binary
// widths fixed by the format version (8/8/4/4/4/2/1 bytes + 1 pad — see
// pss/obs/trace.hpp). scripts/trace_tool.py is the reference reader.

inline constexpr FieldSpec kTraceFields[] = {
    {"wall_ns", FieldType::kU64},
    {"exchange_id", FieldType::kU64},
    {"node", FieldType::kU64},
    {"peer", FieldType::kU64},
    {"duration_ns", FieldType::kU64},
    {"tick", FieldType::kU64},
    {"kind", FieldType::kU64},
};

inline constexpr MetricSchema kTrace{"pss.obs.trace", 1, kTraceFields,
                                     std::size(kTraceFields)};

// ---- pss.obs.profile: one non-empty Profiler histogram bucket ---------------
//
// One row per (phase, log2 bucket) with a non-zero count; bucket 0 holds
// exactly 0 ns, bucket b >= 1 holds durations in [2^(b-1), 2^b - 1] ns
// (lo_ns/hi_ns spell the edges out so readers never re-derive them).

inline constexpr FieldSpec kProfileFields[] = {
    {"phase_id", FieldType::kU64},
    {"phase", FieldType::kStr},
    {"bucket", FieldType::kU64},
    {"lo_ns", FieldType::kU64},
    {"hi_ns", FieldType::kU64},
    {"count", FieldType::kU64},
};

inline constexpr MetricSchema kProfile{"pss.obs.profile", 1, kProfileFields,
                                       std::size(kProfileFields)};

}  // namespace pss::obs::schemas
