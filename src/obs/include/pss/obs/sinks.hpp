// The pluggable MetricSink backends: CSV, JSON-lines, a fixed-size binary
// ring buffer, and a fan-out combinator.
//
// Every backend emits the same self-describing header (schema name +
// version, column names/types, run metadata) so a recorded file is
// interpretable without the code that wrote it:
//
//   CSV     — `#`-prefixed header lines, then the column-name row, then
//             one data row per line. Grep/pandas/gnuplot friendly.
//   JSONL   — line 1 is one compact JSON header object; every further
//             line is one row object keyed by field name. This is the
//             format scripts/render_report.py renders figures from, and
//             the live format: rows are flushed as written, so a running
//             10^6-node experiment (or the UDP daemon) can be tailed.
//   Ring    — a fixed-capacity in-memory ring of packed 8-byte cells for
//             processes that must stay observable without unbounded disk
//             growth (the daemon). Overflow overwrites the OLDEST rows
//             and counts them as dropped; drain() empties oldest-first;
//             dump() writes a self-contained binary file that embeds the
//             JSONL header (see the layout in the class comment).
//   FanOut  — forwards one stream to several sinks (live JSONL + ring).
//
// Allocation contract: begin() sizes each backend's row buffer; row()
// reuses it (growing only when a row exceeds every previous row — see
// metric_sink.hpp). File sinks report I/O health through ok(): writes
// never throw; a failed stream records the failure and goes quiet, so a
// full disk degrades observability, never the experiment.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "pss/obs/metric_sink.hpp"

namespace pss::obs {

/// Schema-headered CSV file sink.
class CsvMetricSink final : public MetricSink {
 public:
  explicit CsvMetricSink(std::string path);
  ~CsvMetricSink() override;

  void begin(const MetricSchema& schema, const RunMetadata& meta) override;
  void row(std::span<const MetricValue> values) override;
  using MetricSink::row;
  void finish() override;

  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

 private:
  void flush_buf();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::string buf_;
  const MetricSchema* schema_ = nullptr;
  bool ok_ = false;
};

/// Schema-headered JSON-lines file sink; rows are flushed as written so
/// the file is live-tailable while the producer runs.
class JsonlMetricSink final : public MetricSink {
 public:
  /// `flush_each_row` trades tail-latency for throughput; the default
  /// favors liveness (the whole point of the format).
  explicit JsonlMetricSink(std::string path, bool flush_each_row = true);
  ~JsonlMetricSink() override;

  void begin(const MetricSchema& schema, const RunMetadata& meta) override;
  void row(std::span<const MetricValue> values) override;
  using MetricSink::row;
  void finish() override;

  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }

 private:
  void flush_buf();

  std::string path_;
  bool flush_each_row_;
  std::FILE* file_ = nullptr;
  std::string buf_;
  const MetricSchema* schema_ = nullptr;
  bool ok_ = false;
};

/// Builds the one-line JSONL header object (no trailing newline). Shared
/// by JsonlMetricSink and RingBufferSink so the two formats describe
/// themselves identically.
std::string make_jsonl_header(const MetricSchema& schema,
                              const RunMetadata& meta);

/// Fixed-capacity binary ring of packed rows.
///
/// Cell encoding (8 bytes each, little-endian): u64 raw; i64/f64 by bit
/// pattern; bool 0/1; str cells store the FNV-1a hash of the string (the
/// ring is fixed-stride — string identity survives, content does not;
/// schemas meant for ring capture should avoid str fields).
///
/// dump() file layout (all integers little-endian):
///   offset  0: magic "PSSRING1" (8 bytes)
///   offset  8: u32 format version (1)
///   offset 12: u32 header_len — length of the embedded JSONL header line
///   offset 16: u32 field_count
///   offset 20: u32 record_stride_bytes (= field_count * 8)
///   offset 24: u64 capacity_records
///   offset 32: u64 total_appended
///   offset 40: u64 record_count (records present in this dump)
///   offset 48: header_len bytes — the JSONL header object (schema + meta)
///   then record_count * record_stride_bytes of packed cells, oldest first.
class RingBufferSink final : public MetricSink {
 public:
  explicit RingBufferSink(std::size_t capacity_records);

  void begin(const MetricSchema& schema, const RunMetadata& meta) override;
  void row(std::span<const MetricValue> values) override;
  using MetricSink::row;
  void finish() override {}

  std::size_t capacity() const { return capacity_; }
  /// Records currently held (<= capacity).
  std::size_t size() const { return count_; }
  /// Rows ever appended; total_appended() - size() rows were overwritten.
  std::uint64_t total_appended() const { return total_appended_; }
  std::uint64_t dropped() const { return total_appended_ - count_; }

  /// Invokes `fn` for every held row, oldest first, each as the packed
  /// cell span; then empties the ring (dropped() keeps counting from the
  /// same total). The spans are only valid inside the callback.
  void drain(const std::function<void(std::span<const std::uint64_t>)>& fn);

  /// Writes the self-contained binary dump (layout above) without
  /// consuming the ring. Returns false on I/O failure.
  bool dump(const std::string& path) const;

  /// FNV-1a 64-bit fold used for str cells (exposed for readers/tests).
  static std::uint64_t hash_str(std::string_view s);

 private:
  std::size_t slot_offset(std::size_t logical) const {
    return ((start_ + logical) % capacity_) * stride_;
  }

  std::size_t capacity_;
  std::size_t stride_ = 0;  ///< cells per record
  std::vector<std::uint64_t> cells_;
  std::size_t start_ = 0;  ///< ring index of the oldest record
  std::size_t count_ = 0;
  std::uint64_t total_appended_ = 0;
  std::string header_;
  const MetricSchema* schema_ = nullptr;
};

/// Forwards begin/row/finish to every attached sink. Attach before
/// begin(); the fan-out does not own its children. Rows are validated
/// against the schema here even with zero children, so a producer's
/// schema mismatch is caught in runs that record nothing (quick CI).
class FanOutSink final : public MetricSink {
 public:
  FanOutSink() = default;
  void add(MetricSink& sink) { sinks_.push_back(&sink); }

  void begin(const MetricSchema& schema, const RunMetadata& meta) override {
    schema_ = &schema;
    for (MetricSink* s : sinks_) s->begin(schema, meta);
  }
  void row(std::span<const MetricValue> values) override {
    PSS_CHECK_MSG(schema_ != nullptr, "row() before begin()");
    check_row(*schema_, values);
    for (MetricSink* s : sinks_) s->row(values);
  }
  using MetricSink::row;
  void finish() override {
    for (MetricSink* s : sinks_) s->finish();
  }
  std::size_t count() const { return sinks_.size(); }

 private:
  std::vector<MetricSink*> sinks_;
  const MetricSchema* schema_ = nullptr;
};

}  // namespace pss::obs
