// The obs module's engine-facing entry point: a SnapshotProbe that streams
// the paper's Figure-2/4/6-style observables from the arena on every firing.
//
// Attach one to any engine (CycleEngine, ParallelCycleEngine, EventEngine)
// via attach_probe(observer, cadence) and every cadence-th cycle/tick is
// recorded as a SnapshotRecord: live count, in/out/union degree summaries,
// component structure, and — when enabled — sampled clustering and path
// length. The observer owns its own Rng for the sampled estimators, so
// attaching it never perturbs the simulation's random streams (the probe
// contract in pss/sim/probe.hpp; pinned by a digest test).
//
// All heavy state lives in the reused GraphCensus; the record vector is
// reserved up front, so steady-state firings allocate nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/check.hpp"
#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/obs/graph_census.hpp"
#include "pss/obs/metric_sink.hpp"
#include "pss/sim/probe.hpp"

namespace pss::obs {

struct ObserverConfig {
  /// Live nodes sampled for the clustering estimate; 0 disables it.
  std::size_t clustering_sample = 1000;
  /// BFS sources for the path-length estimate; 0 disables it.
  std::size_t path_sources = 8;
  /// Seed of the observer's private estimator Rng.
  std::uint64_t seed = 0x0B5E55EDULL;
  /// Records reserved up front (grows geometrically if exceeded).
  std::size_t reserve_records = 512;
};

/// One recorded snapshot (a streamed MetricsSample).
struct SnapshotRecord {
  Cycle cycle = 0;
  std::size_t live = 0;
  std::uint64_t undirected_edges = 0;
  std::uint64_t dead_links = 0;            ///< Figure 7 metric
  std::uint64_t cross_partition_links = 0; ///< Section 8 metric
  DegreeStats degree;      ///< undirected-union degrees
  DegreeStats in_degree;
  DegreeStats out_degree;
  ComponentStats components;
  double clustering = 0;   ///< 0 when disabled
  PathLengthEstimate path; ///< default when disabled
};

class StreamingObserver final : public sim::SnapshotProbe {
 public:
  explicit StreamingObserver(ObserverConfig config = {});

  /// Streams every subsequent snapshot to `sink` as one
  /// schemas::kSnapshot row. Call before the run: the observer calls
  /// sink.begin(kSnapshot, meta) here and row() per firing; the caller
  /// keeps ownership (and calls finish(), usually via the destructor).
  /// The sink is write-only observation — attaching one cannot change a
  /// run's state digest (pinned by tests/metric_sink_test.cpp).
  void attach_sink(MetricSink& sink, const RunMetadata& meta);

  void on_snapshot(const sim::Network& network, Cycle cycle) override;

  const std::vector<SnapshotRecord>& records() const { return records_; }
  const SnapshotRecord& latest() const {
    PSS_CHECK_MSG(!records_.empty(), "no snapshot recorded yet");
    return records_.back();
  }

  /// The underlying census, exposed so drivers can read per-node degrees or
  /// the histogram of the most recent snapshot without recomputing it.
  const GraphCensus& census() const { return census_; }
  GraphCensus& census() { return census_; }

 private:
  ObserverConfig config_;
  Rng rng_;
  GraphCensus census_;
  std::vector<SnapshotRecord> records_;
  MetricSink* sink_ = nullptr;
};

}  // namespace pss::obs
