// Flight recorder for exchange-phase trace spans — the TraceProbe policy
// half of the tracing seam (pss/sim/trace_probe.hpp holds the mechanism).
//
// TraceRecorder keeps the last `capacity` spans as packed 32-byte binary
// TraceEvents in a fixed ring (the RingBufferSink discipline: overflow
// overwrites the OLDEST events and counts them as dropped; steady state
// allocates nothing). dump() writes a self-contained PSSTRACE1 file that
// embeds the versioned pss.obs.trace schema header, so a dump is
// interpretable without the code that wrote it — scripts/trace_tool.py is
// the reference reader and stitches dumps from several UDP daemon
// processes into causal request->reply chains by (exchange_id, endpoints).
//
// PSSTRACE1 dump layout (all integers little-endian):
//   offset  0: magic "PSSTRACE1" (9 bytes)
//   offset  9: u8 0 (pad)
//   offset 10: u16 event_stride_bytes (= 32)
//   offset 12: u32 header_len — length of the embedded JSONL header line
//   offset 16: u64 capacity_events
//   offset 24: u64 total_recorded
//   offset 32: u64 event_count (events present in this dump)
//   offset 40: header_len bytes — the JSONL header object (schema + meta)
//   then event_count * 32 bytes of packed TraceEvents, oldest first.
//
// Packed TraceEvent layout (32 bytes, little-endian, format-versioned by
// the embedded schema version — any change bumps pss.obs.trace):
//   offset  0: u64 wall_ns      span start, trace_clock_ns()
//   offset  8: u64 exchange_id
//   offset 16: u32 node
//   offset 20: u32 peer         0xffffffff when there is no peer
//   offset 24: u32 duration_ns  end - start, saturated at u32 max
//   offset 28: u16 tick         low 16 bits of the engine tick (advisory)
//   offset 30: u8  kind         TracePhase wire value
//   offset 31: u8  reserved (0)
//
// Thread safety: record() appends under a leaf spinlock (the parallel
// engines call it from worker lanes); armed() is a relaxed load. The
// accessors and dump() are for quiescent use (between runs / after the
// engines stopped), matching how every other obs surface is read.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "pss/obs/metric_sink.hpp"
#include "pss/sim/trace_probe.hpp"

namespace pss::obs {

/// In-memory form of one packed trace event (see the layout above).
struct TraceEvent {
  std::uint64_t wall_ns = 0;
  std::uint64_t exchange_id = 0;
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  std::uint32_t duration_ns = 0;
  std::uint16_t tick = 0;
  std::uint8_t kind = 0;
  std::uint8_t reserved = 0;
};
static_assert(sizeof(TraceEvent) == 32, "packed trace event must stay 32 B");

/// Bytes of one encoded event in a PSSTRACE1 dump.
inline constexpr std::size_t kTraceEventStride = 32;

class TraceRecorder final : public sim::TraceProbe {
 public:
  /// The ring is sized once; `capacity_events` > 0. Construction is the
  /// only allocation the recorder ever performs.
  explicit TraceRecorder(std::size_t capacity_events);

  // -- TraceProbe -----------------------------------------------------------
  bool armed() const override {
    return armed_.load(std::memory_order_relaxed);
  }
  void record(const sim::TraceSpan& span) override;

  /// Arms/disarms recording. Disarmed, the engines skip clocks and
  /// record() entirely (see the seam contract) — the recorder stays
  /// attached at zero cost.
  void set_armed(bool armed) {
    armed_.store(armed, std::memory_order_relaxed);
  }

  // -- Quiescent accessors --------------------------------------------------
  std::size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  std::size_t size() const { return count_; }
  /// Events ever recorded; total_recorded() - size() were overwritten.
  std::uint64_t total_recorded() const { return total_recorded_; }
  std::uint64_t dropped() const { return total_recorded_ - count_; }

  /// The i-th held event, oldest first (0 <= i < size()).
  const TraceEvent& event(std::size_t i) const;

  /// Empties the ring; dropped() keeps counting from the same total.
  void clear();

  /// Writes the self-contained PSSTRACE1 dump (layout above) without
  /// consuming the ring. Returns false on I/O failure.
  bool dump(const std::string& path, const RunMetadata& meta) const;

  /// Encodes one event into its 32-byte little-endian wire form,
  /// appending to `out` (exposed for the golden-dump tests).
  static void encode_event(const TraceEvent& e, std::vector<std::byte>& out);

 private:
  std::size_t slot(std::size_t logical) const {
    return (start_ + logical) % capacity_;
  }

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t start_ = 0;  ///< ring index of the oldest event
  std::size_t count_ = 0;
  std::uint64_t total_recorded_ = 0;
  std::atomic<bool> armed_{true};
  mutable std::atomic<std::uint8_t> lock_{0};  ///< leaf spinlock for record()
};

/// Fans one span stream out to several probes (the engines hold a single
/// TraceProbe*; a traced run usually wants recorder + profiler). Armed
/// when any child is armed; children see every span while the tee is
/// armed and must re-check their own gate if they care.
class TraceTee final : public sim::TraceProbe {
 public:
  void add(sim::TraceProbe& probe) { probes_.push_back(&probe); }

  bool armed() const override {
    for (const sim::TraceProbe* p : probes_) {
      if (p->armed()) return true;
    }
    return false;
  }
  void record(const sim::TraceSpan& span) override {
    for (sim::TraceProbe* p : probes_) {
      if (p->armed()) p->record(span);
    }
  }

 private:
  std::vector<sim::TraceProbe*> probes_;
};

}  // namespace pss::obs
