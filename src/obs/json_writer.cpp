#include "pss/obs/json_writer.hpp"

#include <charconv>
#include <cmath>

namespace pss::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(ch) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(ch) & 0xF];
        } else {
          out += ch;
        }
    }
  }
}

namespace {

template <typename T>
void append_number(std::string& out, T v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

}  // namespace

void append_u64(std::string& out, std::uint64_t v) { append_number(out, v); }
void append_i64(std::string& out, std::int64_t v) { append_number(out, v); }

void append_f64(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no NaN/Inf; null keeps the document valid
    return;
  }
  // Shortest round-trip form; always parseable back to the same bits.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void JsonWriter::indent() {
  out_->push_back('\n');
  out_->append(2 * depth_, ' ');
}

void JsonWriter::before_item() {
  if (depth_ == 0) return;  // top-level value
  Frame& top = stack_[depth_ - 1];
  if (top.pending_key) {
    // The comma/indent was handled when the key was emitted.
    top.pending_key = false;
    return;
  }
  if (top.has_items) out_->push_back(',');
  if (pretty_) indent();
  top.has_items = true;
}

void JsonWriter::begin_object() {
  before_item();
  PSS_CHECK_MSG(depth_ < kMaxDepth, "JsonWriter nesting too deep");
  out_->push_back('{');
  stack_[depth_++] = {true, false, false};
  wrote_any_ = true;
}

void JsonWriter::end_object() {
  PSS_CHECK_MSG(depth_ > 0 && stack_[depth_ - 1].is_object,
                "end_object outside an object");
  const bool had_items = stack_[depth_ - 1].has_items;
  --depth_;
  if (pretty_ && had_items) indent();
  out_->push_back('}');
}

void JsonWriter::begin_array() {
  before_item();
  PSS_CHECK_MSG(depth_ < kMaxDepth, "JsonWriter nesting too deep");
  out_->push_back('[');
  stack_[depth_++] = {false, false, false};
  wrote_any_ = true;
}

void JsonWriter::end_array() {
  PSS_CHECK_MSG(depth_ > 0 && !stack_[depth_ - 1].is_object,
                "end_array outside an array");
  const bool had_items = stack_[depth_ - 1].has_items;
  --depth_;
  if (pretty_ && had_items) indent();
  out_->push_back(']');
}

void JsonWriter::key(std::string_view k) {
  PSS_CHECK_MSG(depth_ > 0 && stack_[depth_ - 1].is_object,
                "key outside an object");
  Frame& top = stack_[depth_ - 1];
  PSS_CHECK_MSG(!top.pending_key, "two keys in a row");
  if (top.has_items) out_->push_back(',');
  if (pretty_) indent();
  top.has_items = true;
  top.pending_key = true;
  out_->push_back('"');
  append_json_escaped(*out_, k);
  out_->append("\": ", pretty_ ? 3 : 2);
}

void JsonWriter::value_string(std::string_view s) {
  before_item();
  out_->push_back('"');
  append_json_escaped(*out_, s);
  out_->push_back('"');
  wrote_any_ = true;
}

void JsonWriter::value(const MetricValue& v) {
  switch (v.type) {
    case FieldType::kStr:
      value_string(v.s);
      return;
    case FieldType::kU64:
      before_item();
      append_u64(*out_, v.u);
      break;
    case FieldType::kI64:
      before_item();
      append_i64(*out_, v.i);
      break;
    case FieldType::kF64:
      before_item();
      append_f64(*out_, v.f);
      break;
    case FieldType::kBool:
      before_item();
      out_->append(v.b ? "true" : "false");
      break;
  }
  wrote_any_ = true;
}

}  // namespace pss::obs
