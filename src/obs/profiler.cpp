#include "pss/obs/profiler.hpp"

#include <bit>
#include <cmath>

#include "pss/common/check.hpp"
#include "pss/obs/schemas.hpp"

namespace pss::obs {

namespace {

constexpr std::size_t kPhases = sim::kTracePhaseCount;

sim::TracePhase phase_at(std::size_t p) {
  return static_cast<sim::TracePhase>(p);
}

}  // namespace

std::size_t Profiler::bucket_of(std::uint64_t duration_ns) {
  return static_cast<std::size_t>(std::bit_width(duration_ns));
}

std::uint64_t Profiler::bucket_lo(std::size_t bucket) {
  PSS_CHECK_MSG(bucket < kBuckets, "profiler bucket out of range");
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

std::uint64_t Profiler::bucket_hi(std::size_t bucket) {
  PSS_CHECK_MSG(bucket < kBuckets, "profiler bucket out of range");
  if (bucket == 0) return 0;
  if (bucket == 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

void Profiler::record(const sim::TraceSpan& span) {
  // Engines and the tee already gate on armed(); re-check so a directly
  // driven disarmed profiler stays inert too.
  if (!armed_.load(std::memory_order_relaxed)) return;
  const std::uint64_t d =
      span.end_ns >= span.start_ns ? span.end_ns - span.start_ns : 0;
  const auto p = static_cast<std::size_t>(span.phase);
  buckets_[p][bucket_of(d)].fetch_add(1, std::memory_order_relaxed);
  counts_[p].fetch_add(1, std::memory_order_relaxed);
  sums_[p].fetch_add(d, std::memory_order_relaxed);
}

std::uint64_t Profiler::count(sim::TracePhase phase) const {
  return counts_[static_cast<std::size_t>(phase)].load(
      std::memory_order_relaxed);
}

std::uint64_t Profiler::sum_ns(sim::TracePhase phase) const {
  return sums_[static_cast<std::size_t>(phase)].load(
      std::memory_order_relaxed);
}

std::uint64_t Profiler::bucket_count(sim::TracePhase phase,
                                     std::size_t bucket) const {
  PSS_CHECK_MSG(bucket < kBuckets, "profiler bucket out of range");
  return buckets_[static_cast<std::size_t>(phase)][bucket].load(
      std::memory_order_relaxed);
}

std::uint64_t Profiler::percentile_ns(sim::TracePhase phase, double q) const {
  PSS_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::uint64_t total = count(phase);
  if (total == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += bucket_count(phase, b);
    if (cumulative >= target) return bucket_hi(b);
  }
  return bucket_hi(kBuckets - 1);
}

void Profiler::export_rows(MetricSink& sink, const RunMetadata& meta) const {
  sink.begin(schemas::kProfile, meta);
  for (std::size_t p = 0; p < kPhases; ++p) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t c = bucket_count(phase_at(p), b);
      if (c == 0) continue;
      sink.row({static_cast<std::uint64_t>(p),
                sim::trace_phase_name(phase_at(p)),
                static_cast<std::uint64_t>(b), bucket_lo(b), bucket_hi(b),
                c});
    }
  }
  sink.finish();
}

void Profiler::render_prometheus(std::string& out) const {
  out += "# TYPE pss_phase_duration_ns histogram\n";
  for (std::size_t p = 0; p < kPhases; ++p) {
    const char* name = sim::trace_phase_name(phase_at(p));
    const std::uint64_t total = count(phase_at(p));
    if (total == 0) continue;
    // Cumulative `le` buckets up to the highest non-empty one, then +Inf.
    std::size_t last = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (bucket_count(phase_at(p), b) > 0) last = b;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= last; ++b) {
      cumulative += bucket_count(phase_at(p), b);
      out += "pss_phase_duration_ns_bucket{phase=\"";
      out += name;
      out += "\",le=\"";
      out += std::to_string(bucket_hi(b));
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += "pss_phase_duration_ns_bucket{phase=\"";
    out += name;
    out += "\",le=\"+Inf\"} ";
    out += std::to_string(total);
    out += '\n';
    out += "pss_phase_duration_ns_sum{phase=\"";
    out += name;
    out += "\"} ";
    out += std::to_string(sum_ns(phase_at(p)));
    out += '\n';
    out += "pss_phase_duration_ns_count{phase=\"";
    out += name;
    out += "\"} ";
    out += std::to_string(total);
    out += '\n';
  }
}

}  // namespace pss::obs
