#include "pss/obs/pull_endpoint.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace pss::obs {

namespace {
// Accept-poll granularity: the upper bound on stop() latency.
constexpr int kPollMs = 100;
}  // namespace

PullEndpoint::PullEndpoint(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  port_ = ntohs(bound.sin_port);
  ok_ = true;
  thread_ = std::thread([this] { serve_loop(); });
}

PullEndpoint::~PullEndpoint() { stop(); }

void PullEndpoint::set_text(std::string text) {
  const std::lock_guard<std::mutex> lock(mutex_);
  text_ = std::move(text);
}

void PullEndpoint::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void PullEndpoint::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // Bounded drain of whatever request line arrived; content ignored —
    // every path serves the current document.
    char sink[512];
    (void)::recv(client, sink, sizeof(sink), MSG_DONTWAIT);
    std::string body;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      body = text_;
    }
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(client, response.data() + sent, response.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    ::close(client);
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace pss::obs
