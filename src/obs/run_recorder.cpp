#include "pss/obs/run_recorder.hpp"

#include <cstdio>

namespace pss::obs {

std::string to_hex16(std::uint64_t v) {
  char buf[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = hex[v & 0xF];
    v >>= 4;
  }
  buf[16] = '\0';
  return std::string(buf, 16);
}

RunRecorder::RunRecorder(std::string_view bench, std::uint32_t version,
                         const RunMetadata& meta)
    : writer_(out_, /*pretty=*/true) {
  writer_.begin_object();
  writer_.key("schema");
  writer_.begin_object();
  std::string name = "pss.bench.";
  name += bench;
  writer_.field("name", std::string_view(name));
  writer_.field("version", std::uint64_t{version});
  writer_.end_object();
  writer_.key("meta");
  writer_.begin_object();
  writer_.field("bench", meta.bench.empty() ? std::string_view(bench)
                                            : meta.bench);
  writer_.field("engine", meta.engine);
  writer_.field("protocol", meta.protocol);
  writer_.field("protocol_id", meta.protocol_id);
  writer_.field("n", meta.n);
  writer_.field("c", meta.view_size);
  writer_.field("cycles", meta.cycles);
  writer_.field("seed", meta.seed);
  writer_.field("git", meta.git.empty() ? build_git_describe() : meta.git);
  writer_.end_object();
}

bool RunRecorder::gate(std::string_view name, bool ok) {
  gates_.emplace_back(std::string(name), ok);
  return ok;
}

bool RunRecorder::gates_ok() const {
  for (const auto& [name, ok] : gates_) {
    if (!ok) return false;
  }
  return true;
}

bool RunRecorder::write(const std::string& path) {
  PSS_CHECK_MSG(!written_, "RunRecorder::write called twice");
  written_ = true;
  writer_.key("gates");
  writer_.begin_object();
  for (const auto& [name, ok] : gates_) {
    writer_.field(std::string_view(name), ok);
  }
  writer_.end_object();
  writer_.field("gates_ok", gates_ok());
  writer_.end_object();
  PSS_CHECK_MSG(writer_.complete(), "BENCH document left open");
  out_ += '\n';
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote =
      std::fwrite(out_.data(), 1, out_.size(), file) == out_.size();
  return std::fclose(file) == 0 && wrote;
}

}  // namespace pss::obs
