#include "pss/obs/sinks.hpp"

#include <bit>

#include "pss/obs/json_writer.hpp"

namespace pss::obs {

const char* field_type_name(FieldType type) {
  switch (type) {
    case FieldType::kU64:
      return "u64";
    case FieldType::kI64:
      return "i64";
    case FieldType::kF64:
      return "f64";
    case FieldType::kBool:
      return "bool";
    case FieldType::kStr:
      return "str";
  }
  return "?";
}

std::string_view build_git_describe() {
#ifdef PSS_GIT_DESCRIBE
  return PSS_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

namespace {

/// Appends the meta block in the `key=value` form shared by the CSV
/// header; values are whitespace-free by construction (protocol names
/// contain commas/parens, never spaces).
void append_meta_kv(std::string& out, const RunMetadata& meta) {
  out += "bench=";
  out += meta.bench;
  out += " engine=";
  out += meta.engine;
  out += " protocol=";
  out += meta.protocol;
  out += " protocol_id=";
  append_i64(out, meta.protocol_id);
  out += " n=";
  append_u64(out, meta.n);
  out += " c=";
  append_u64(out, meta.view_size);
  out += " cycles=";
  append_u64(out, meta.cycles);
  out += " seed=";
  append_u64(out, meta.seed);
  out += " git=";
  out += meta.git.empty() ? build_git_describe() : meta.git;
}

/// Worst-case formatted bytes for one row: numeric cells are bounded; str
/// cells get a generous starting estimate (the buffer still grows for
/// pathological strings — amortized, per the sink contract).
std::size_t row_buffer_hint(const MetricSchema& schema) {
  std::size_t bytes = 16;
  for (std::size_t i = 0; i < schema.field_count; ++i) {
    bytes += std::char_traits<char>::length(schema.fields[i].name) + 8;
    bytes += schema.fields[i].type == FieldType::kStr ? 64 : 24;
  }
  return bytes;
}

void append_csv_cell(std::string& out, const MetricValue& v) {
  switch (v.type) {
    case FieldType::kU64:
      append_u64(out, v.u);
      return;
    case FieldType::kI64:
      append_i64(out, v.i);
      return;
    case FieldType::kF64:
      append_f64(out, v.f);
      return;
    case FieldType::kBool:
      out += v.b ? '1' : '0';
      return;
    case FieldType::kStr: {
      const bool quote = v.s.find_first_of(",\"\n") != std::string_view::npos;
      if (!quote) {
        out += v.s;
        return;
      }
      out += '"';
      for (char ch : v.s) {
        if (ch == '"') out += '"';
        out += ch;
      }
      out += '"';
      return;
    }
  }
}

}  // namespace

std::string make_jsonl_header(const MetricSchema& schema,
                              const RunMetadata& meta) {
  std::string out;
  JsonWriter w(out, /*pretty=*/false);
  w.begin_object();
  w.field("pss_metrics", std::uint64_t{1});
  w.key("schema");
  w.begin_object();
  w.field("name", schema.name);
  w.field("version", std::uint64_t{schema.version});
  w.end_object();
  w.key("fields");
  w.begin_array();
  for (std::size_t i = 0; i < schema.field_count; ++i) {
    w.begin_object();
    w.field("name", schema.fields[i].name);
    w.field("type", field_type_name(schema.fields[i].type));
    w.end_object();
  }
  w.end_array();
  w.key("meta");
  w.begin_object();
  w.field("bench", meta.bench);
  w.field("engine", meta.engine);
  w.field("protocol", meta.protocol);
  w.field("protocol_id", meta.protocol_id);
  w.field("n", meta.n);
  w.field("c", meta.view_size);
  w.field("cycles", meta.cycles);
  w.field("seed", meta.seed);
  w.field("git", meta.git.empty() ? build_git_describe() : meta.git);
  w.end_object();
  w.end_object();
  return out;
}

// ---- CsvMetricSink ---------------------------------------------------------

CsvMetricSink::CsvMetricSink(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "wb");
  ok_ = file_ != nullptr;
}

CsvMetricSink::~CsvMetricSink() { finish(); }

void CsvMetricSink::flush_buf() {
  if (file_ != nullptr && !buf_.empty()) {
    if (std::fwrite(buf_.data(), 1, buf_.size(), file_) != buf_.size()) {
      ok_ = false;
    }
  }
  buf_.clear();
}

void CsvMetricSink::begin(const MetricSchema& schema, const RunMetadata& meta) {
  PSS_CHECK_MSG(schema_ == nullptr, "begin() called twice");
  schema_ = &schema;
  buf_.reserve(row_buffer_hint(schema) + 256);
  buf_ += "# pss-metrics-csv 1\n# schema: ";
  buf_ += schema.name;
  buf_ += ' ';
  append_u64(buf_, schema.version);
  buf_ += "\n# fields: ";
  for (std::size_t i = 0; i < schema.field_count; ++i) {
    if (i > 0) buf_ += ',';
    buf_ += schema.fields[i].name;
    buf_ += ':';
    buf_ += field_type_name(schema.fields[i].type);
  }
  buf_ += "\n# meta: ";
  append_meta_kv(buf_, meta);
  buf_ += '\n';
  for (std::size_t i = 0; i < schema.field_count; ++i) {
    if (i > 0) buf_ += ',';
    buf_ += schema.fields[i].name;
  }
  buf_ += '\n';
  flush_buf();
}

void CsvMetricSink::row(std::span<const MetricValue> values) {
  PSS_CHECK_MSG(schema_ != nullptr, "row() before begin()");
  check_row(*schema_, values);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) buf_ += ',';
    append_csv_cell(buf_, values[i]);
  }
  buf_ += '\n';
  flush_buf();
}

void CsvMetricSink::finish() {
  if (file_ != nullptr) {
    flush_buf();
    if (std::fclose(file_) != 0) ok_ = false;
    file_ = nullptr;
  }
}

// ---- JsonlMetricSink -------------------------------------------------------

JsonlMetricSink::JsonlMetricSink(std::string path, bool flush_each_row)
    : path_(std::move(path)), flush_each_row_(flush_each_row) {
  file_ = std::fopen(path_.c_str(), "wb");
  ok_ = file_ != nullptr;
}

JsonlMetricSink::~JsonlMetricSink() { finish(); }

void JsonlMetricSink::flush_buf() {
  if (file_ != nullptr && !buf_.empty()) {
    if (std::fwrite(buf_.data(), 1, buf_.size(), file_) != buf_.size()) {
      ok_ = false;
    }
    if (flush_each_row_ && std::fflush(file_) != 0) ok_ = false;
  }
  buf_.clear();
}

void JsonlMetricSink::begin(const MetricSchema& schema,
                            const RunMetadata& meta) {
  PSS_CHECK_MSG(schema_ == nullptr, "begin() called twice");
  schema_ = &schema;
  buf_ = make_jsonl_header(schema, meta);
  buf_ += '\n';
  buf_.reserve(buf_.size() + row_buffer_hint(schema));
  flush_buf();
}

void JsonlMetricSink::row(std::span<const MetricValue> values) {
  PSS_CHECK_MSG(schema_ != nullptr, "row() before begin()");
  check_row(*schema_, values);
  buf_ += '{';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) buf_ += ',';
    buf_ += '"';
    buf_ += schema_->fields[i].name;  // field names never need escaping
    buf_ += "\":";
    const MetricValue& v = values[i];
    switch (v.type) {
      case FieldType::kU64:
        append_u64(buf_, v.u);
        break;
      case FieldType::kI64:
        append_i64(buf_, v.i);
        break;
      case FieldType::kF64:
        append_f64(buf_, v.f);
        break;
      case FieldType::kBool:
        buf_ += v.b ? "true" : "false";
        break;
      case FieldType::kStr:
        buf_ += '"';
        append_json_escaped(buf_, v.s);
        buf_ += '"';
        break;
    }
  }
  buf_ += "}\n";
  flush_buf();
}

void JsonlMetricSink::finish() {
  if (file_ != nullptr) {
    flush_buf();
    if (std::fclose(file_) != 0) ok_ = false;
    file_ = nullptr;
  }
}

// ---- RingBufferSink --------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity_records)
    : capacity_(capacity_records) {
  PSS_CHECK_MSG(capacity_ > 0, "ring capacity must be positive");
}

std::uint64_t RingBufferSink::hash_str(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

void RingBufferSink::begin(const MetricSchema& schema,
                           const RunMetadata& meta) {
  PSS_CHECK_MSG(schema_ == nullptr, "begin() called twice");
  schema_ = &schema;
  stride_ = schema.field_count;
  cells_.assign(capacity_ * stride_, 0);
  header_ = make_jsonl_header(schema, meta);
}

void RingBufferSink::row(std::span<const MetricValue> values) {
  PSS_CHECK_MSG(schema_ != nullptr, "row() before begin()");
  check_row(*schema_, values);
  std::size_t offset;
  if (count_ < capacity_) {
    offset = slot_offset(count_);
    ++count_;
  } else {
    offset = start_ * stride_;  // overwrite the oldest record
    start_ = (start_ + 1) % capacity_;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const MetricValue& v = values[i];
    std::uint64_t cell = 0;
    switch (v.type) {
      case FieldType::kU64:
        cell = v.u;
        break;
      case FieldType::kI64:
        cell = std::bit_cast<std::uint64_t>(v.i);
        break;
      case FieldType::kF64:
        cell = std::bit_cast<std::uint64_t>(v.f);
        break;
      case FieldType::kBool:
        cell = v.b ? 1 : 0;
        break;
      case FieldType::kStr:
        cell = hash_str(v.s);
        break;
    }
    cells_[offset + i] = cell;
  }
  ++total_appended_;
}

void RingBufferSink::drain(
    const std::function<void(std::span<const std::uint64_t>)>& fn) {
  for (std::size_t r = 0; r < count_; ++r) {
    fn(std::span<const std::uint64_t>(cells_.data() + slot_offset(r), stride_));
  }
  start_ = 0;
  count_ = 0;
}

namespace {

void append_le32(std::string& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    out += static_cast<char>((v >> (8 * b)) & 0xFF);
  }
}

void append_le64(std::string& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out += static_cast<char>((v >> (8 * b)) & 0xFF);
  }
}

}  // namespace

bool RingBufferSink::dump(const std::string& path) const {
  PSS_CHECK_MSG(schema_ != nullptr, "dump() before begin()");
  std::string out;
  out.reserve(48 + header_.size() + count_ * stride_ * 8);
  out += "PSSRING1";
  append_le32(out, 1);
  append_le32(out, static_cast<std::uint32_t>(header_.size()));
  append_le32(out, static_cast<std::uint32_t>(stride_));
  append_le32(out, static_cast<std::uint32_t>(stride_ * 8));
  append_le64(out, capacity_);
  append_le64(out, total_appended_);
  append_le64(out, count_);
  out += header_;
  for (std::size_t r = 0; r < count_; ++r) {
    const std::size_t offset = slot_offset(r);
    for (std::size_t i = 0; i < stride_; ++i) {
      append_le64(out, cells_[offset + i]);
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote = std::fwrite(out.data(), 1, out.size(), file) == out.size();
  return std::fclose(file) == 0 && wrote;
}

}  // namespace pss::obs
