#include "pss/obs/streaming_observer.hpp"

#include "pss/obs/schemas.hpp"

namespace pss::obs {

StreamingObserver::StreamingObserver(ObserverConfig config)
    : config_(config), rng_(config.seed) {
  records_.reserve(config_.reserve_records);
}

void StreamingObserver::attach_sink(MetricSink& sink, const RunMetadata& meta) {
  sink_ = &sink;
  sink_->begin(schemas::kSnapshot, meta);
}

void StreamingObserver::on_snapshot(const sim::Network& network, Cycle cycle) {
  census_.rebuild(network);
  SnapshotRecord rec;
  rec.cycle = cycle;
  rec.live = census_.live_count();
  rec.undirected_edges = census_.undirected_edge_count();
  rec.dead_links = census_.dead_link_count();
  rec.cross_partition_links = census_.cross_partition_link_count();
  rec.degree = census_.degree_stats();
  rec.in_degree = census_.in_degree_stats();
  rec.out_degree = census_.out_degree_stats();
  rec.components = census_.components();
  if (config_.clustering_sample > 0) {
    rec.clustering = census_.clustering_sampled(config_.clustering_sample, rng_);
  }
  if (config_.path_sources > 0) {
    rec.path = census_.path_length_sampled(config_.path_sources, rng_);
  }
  records_.push_back(rec);
  if (sink_ != nullptr) {
    sink_->row({rec.cycle, rec.live, rec.undirected_edges, rec.dead_links,
                rec.cross_partition_links, rec.degree.min, rec.degree.max,
                rec.degree.mean, rec.degree.variance, rec.in_degree.variance,
                rec.out_degree.variance, rec.components.count,
                rec.components.largest, rec.components.outside_largest,
                rec.clustering, rec.path.average, rec.path.reachable_fraction});
  }
}

}  // namespace pss::obs
