#include "pss/obs/trace.hpp"

#include <cstdio>
#include <thread>

#include "pss/common/check.hpp"
#include "pss/obs/schemas.hpp"
#include "pss/obs/sinks.hpp"

namespace pss::obs {

namespace {

constexpr char kMagic[9] = {'P', 'S', 'S', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr unsigned kSpinsBeforeYield = 1024;

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

/// Saturating ns duration for the packed u32 field.
std::uint32_t clamp_duration(std::uint64_t start_ns, std::uint64_t end_ns) {
  const std::uint64_t d = end_ns >= start_ns ? end_ns - start_ns : 0;
  return d > 0xffffffffULL ? 0xffffffffU : static_cast<std::uint32_t>(d);
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity_events)
    : capacity_(capacity_events) {
  PSS_CHECK_MSG(capacity_ > 0, "TraceRecorder capacity must be positive");
  ring_.resize(capacity_);
}

void TraceRecorder::record(const sim::TraceSpan& span) {
  // The engines skip record() entirely when disarmed; this re-check keeps
  // the gate honest for directly-driven probes too.
  if (!armed_.load(std::memory_order_relaxed)) return;
  TraceEvent e;
  e.wall_ns = span.start_ns;
  e.exchange_id = span.exchange_id;
  e.node = span.node;
  e.peer = span.peer;
  e.duration_ns = clamp_duration(span.start_ns, span.end_ns);
  e.tick = static_cast<std::uint16_t>(span.tick & 0xffff);
  e.kind = static_cast<std::uint8_t>(span.phase);
  // Leaf spinlock: worker lanes append concurrently; the critical section
  // is one 32-byte store plus ring arithmetic.
  unsigned spins = 0;
  while (lock_.exchange(1, std::memory_order_acquire) != 0) {
    if (++spins >= kSpinsBeforeYield) {
      spins = 0;
      std::this_thread::yield();
    }
  }
  if (count_ == capacity_) {
    ring_[start_] = e;
    start_ = (start_ + 1) % capacity_;
  } else {
    ring_[slot(count_)] = e;
    ++count_;
  }
  ++total_recorded_;
  lock_.store(0, std::memory_order_release);
}

const TraceEvent& TraceRecorder::event(std::size_t i) const {
  PSS_CHECK_MSG(i < count_, "trace event index out of range");
  return ring_[slot(i)];
}

void TraceRecorder::clear() {
  start_ = 0;
  count_ = 0;
}

void TraceRecorder::encode_event(const TraceEvent& e,
                                 std::vector<std::byte>& out) {
  put_u64(out, e.wall_ns);
  put_u64(out, e.exchange_id);
  put_u32(out, e.node);
  put_u32(out, e.peer);
  put_u32(out, e.duration_ns);
  put_u16(out, e.tick);
  out.push_back(static_cast<std::byte>(e.kind));
  out.push_back(std::byte{0});
}

bool TraceRecorder::dump(const std::string& path,
                         const RunMetadata& meta) const {
  const std::string header = make_jsonl_header(schemas::kTrace, meta);
  std::vector<std::byte> bytes;
  bytes.reserve(40 + header.size() + count_ * kTraceEventStride);
  for (char c : kMagic) bytes.push_back(static_cast<std::byte>(c));
  bytes.push_back(std::byte{0});
  put_u16(bytes, static_cast<std::uint16_t>(kTraceEventStride));
  put_u32(bytes, static_cast<std::uint32_t>(header.size()));
  put_u64(bytes, static_cast<std::uint64_t>(capacity_));
  put_u64(bytes, total_recorded_);
  put_u64(bytes, static_cast<std::uint64_t>(count_));
  for (char c : header) bytes.push_back(static_cast<std::byte>(c));
  for (std::size_t i = 0; i < count_; ++i) encode_event(ring_[slot(i)], bytes);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace pss::obs
