#include "pss/protocol/dual_view_node.hpp"

namespace pss {

namespace {

ProtocolSpec fast_spec() {
  // Newscast-style: quick self-healing, balanced degrees.
  return {PeerSelection::kRand, ViewSelection::kHead, ViewPropagation::kPushPull};
}

ProtocolSpec slow_spec() {
  // Long memory: old descriptors linger, surviving temporary partitions.
  return {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPushPull};
}

}  // namespace

DualViewNode::DualViewNode(NodeId self, ProtocolOptions options, Rng rng)
    : fast_(self, fast_spec(), options, rng.split()),
      slow_(self, slow_spec(), options, rng.split()),
      sample_rng_(rng.split()) {}

void DualViewNode::init_view(const View& bootstrap) {
  fast_.init_view(bootstrap);
  slow_.init_view(bootstrap);
}

View DualViewNode::combined_view() const {
  View combined = View::merge(fast_.view(), slow_.view());
  combined.remove(self());
  return combined;
}

NodeId DualViewNode::get_peer() {
  const View combined = combined_view();
  if (combined.empty()) return kInvalidNode;
  return combined.peer_rand(sample_rng_);
}

}  // namespace pss
