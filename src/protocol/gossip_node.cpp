#include "pss/protocol/gossip_node.hpp"

#include <utility>
#include <vector>

#include "pss/common/check.hpp"
#include "pss/protocol/flat_exchange.hpp"

namespace pss {

GossipNode::GossipNode(NodeId self, ProtocolSpec spec, ProtocolOptions options,
                       Rng rng)
    : self_(self), slot_(0), spec_(spec), options_(options) {
  PSS_CHECK_MSG(options_.view_size > 0, "view size c must be positive");
  owned_ = std::make_unique<flat::NodeArena>(options_.view_size);
  owned_->add_node(rng);
  arena_ = owned_.get();
}

GossipNode::GossipNode(NodeId self, ProtocolSpec spec, ProtocolOptions options,
                       flat::NodeArena* arena, NodeId slot)
    : self_(self), slot_(slot), spec_(spec), options_(options), arena_(arena) {
  PSS_CHECK_MSG(options_.view_size > 0, "view size c must be positive");
  PSS_CHECK_MSG(arena_ != nullptr && slot_ < arena_->node_count(),
                "adapter slot out of arena range");
}

GossipNode::GossipNode(const GossipNode& other)
    : self_(other.self_),
      slot_(0),
      spec_(other.spec_),
      options_(other.options_),
      owned_(std::make_unique<flat::NodeArena>(
          other.arena_->views.view_capacity())) {
  // A copy is always an independent standalone node — the legacy value
  // semantics — even when the source is a window into a network arena:
  // its view, rng stream and counters are snapshotted into a private
  // single-slot arena, so mutating the copy never touches the network.
  owned_->add_node(other.arena_->rngs[other.slot_]);
  owned_->stats[0] = other.arena_->stats[other.slot_];
  owned_->views.assign(0, other.arena_->views.view_of(other.slot_));
  arena_ = owned_.get();
}

GossipNode& GossipNode::operator=(const GossipNode& other) {
  if (this == &other) return *this;
  GossipNode copy(other);
  *this = std::move(copy);
  return *this;
}

const View& GossipNode::view() const {
  const std::uint64_t version = arena_->views.version(slot_);
  if (cache_version_ != version) {
    auto span = arena_->views.view_of(slot_);
    cache_ = View(std::vector<NodeDescriptor>(span.begin(), span.end()));
    cache_version_ = version;
  }
  return cache_;
}

void GossipNode::init_view(const View& bootstrap) {
  std::vector<NodeDescriptor> buf(bootstrap.entries());
  flat::remove_address(buf, self_);
  flat::select_head(buf, options_.view_size);
  arena_->views.assign(slot_, buf);
}

void GossipNode::set_view(View v) {
  v.remove(self_);
  arena_->views.assign(slot_, v.entries());
}

std::optional<NodeId> GossipNode::select_peer() {
  return flat::select_peer(view_span(), spec_.peer_selection, rng());
}

View GossipNode::make_active_buffer() const {
  std::vector<NodeDescriptor> out;
  flat::make_active_buffer(view_span(), self_, spec_.push(), out);
  return View(std::move(out));
}

std::optional<View> GossipNode::handle_message(const View& incoming) {
  ++mutable_stats().received;
  std::optional<View> reply;
  if (spec_.pull()) {
    // Reply is built from the pre-merge view, exactly as in Figure 1(b).
    std::vector<NodeDescriptor> out;
    flat::make_active_buffer(view_span(), self_, /*push=*/true, out);
    reply = View(std::move(out));
    ++mutable_stats().replies_sent;
  }
  flat::Scratch scratch;
  // Aging the incoming buffer happens inside the merge (age_incoming = 1),
  // sparing the aged copy this method used to materialize.
  flat::absorb(arena_->views, slot_, self_, spec_, options_,
               incoming.entries(), rng(), scratch, /*age_incoming=*/1);
  return reply;
}

void GossipNode::handle_reply(const View& reply) {
  PSS_DCHECK(spec_.pull());
  flat::Scratch scratch;
  flat::absorb(arena_->views, slot_, self_, spec_, options_, reply.entries(),
               rng(), scratch, /*age_incoming=*/1);
}

void GossipNode::on_contact_failure(NodeId peer) {
  flat::contact_failure(*arena_, slot_, peer, options_);
}

}  // namespace pss
