#include "pss/protocol/gossip_node.hpp"

#include "pss/common/check.hpp"

namespace pss {

GossipNode::GossipNode(NodeId self, ProtocolSpec spec, ProtocolOptions options,
                       Rng rng)
    : self_(self), spec_(spec), options_(options), rng_(rng) {
  PSS_CHECK_MSG(options_.view_size > 0, "view size c must be positive");
}

void GossipNode::init_view(const View& bootstrap) {
  View v = bootstrap;
  v.remove(self_);
  view_ = v.select_head(options_.view_size);
}

void GossipNode::set_view(View v) {
  v.remove(self_);
  view_ = std::move(v);
}

std::optional<NodeId> GossipNode::select_peer() {
  if (view_.empty()) return std::nullopt;
  switch (spec_.peer_selection) {
    case PeerSelection::kRand: return view_.peer_rand(rng_);
    case PeerSelection::kHead:
      // Deliberately deterministic (first element of the ordered view):
      // concentrating contact on the perceived-freshest node is exactly the
      // herding behaviour that makes the paper exclude (head,*,*) for
      // "severe clustering" (Section 4.3). See DESIGN.md on tie semantics.
      return view_.peer_head();
    case PeerSelection::kTail:
      // Unbiased within the oldest hop class: the evaluated (tail,*,*)
      // protocols are stable in the paper, and only tie-unbiased selection
      // reproduces that (a deterministic tie-break herds the whole network
      // onto one victim node and partitions the growing overlay).
      return view_.peer_tail_unbiased(rng_);
  }
  return std::nullopt;
}

View GossipNode::make_active_buffer() const {
  if (!spec_.push()) return View{};  // empty view triggers the pull reply
  return View::merge(view_, View{{self_, 0}});
}

void GossipNode::absorb(const View& aged_incoming) {
  View buffer = View::merge(aged_incoming, view_);
  buffer.remove(self_);
  switch (spec_.view_selection) {
    case ViewSelection::kRand:
      view_ = buffer.select_rand(options_.view_size, rng_);
      break;
    case ViewSelection::kHead:
      view_ = buffer.select_head_unbiased(options_.view_size, rng_);
      break;
    case ViewSelection::kTail:
      view_ = buffer.select_tail_unbiased(options_.view_size, rng_);
      break;
  }
}

std::optional<View> GossipNode::handle_message(const View& incoming) {
  ++stats_.received;
  View aged = incoming;
  aged.increase_hop_count();
  std::optional<View> reply;
  if (spec_.pull()) {
    // Reply is built from the pre-merge view, exactly as in Figure 1(b).
    reply = View::merge(view_, View{{self_, 0}});
    ++stats_.replies_sent;
  }
  absorb(aged);
  return reply;
}

void GossipNode::handle_reply(const View& reply) {
  PSS_DCHECK(spec_.pull());
  View aged = reply;
  aged.increase_hop_count();
  absorb(aged);
}

void GossipNode::on_contact_failure(NodeId peer) {
  ++stats_.contact_failures;
  if (options_.remove_dead_on_failure) view_.erase(peer);
}

}  // namespace pss
