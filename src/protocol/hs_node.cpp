#include "pss/protocol/hs_node.hpp"

#include <algorithm>

#include "pss/common/check.hpp"

namespace pss {

HSParams HSParams::blind(std::size_t c) { return {c, 0, 0, false, true}; }

HSParams HSParams::healer_profile(std::size_t c) {
  return {c, c / 2, 0, false, true};
}

HSParams HSParams::swapper_profile(std::size_t c) {
  return {c, 0, c / 2, false, true};
}

HSGossipNode::HSGossipNode(NodeId self, HSParams params, Rng rng)
    : self_(self), params_(params), rng_(rng) {
  PSS_CHECK_MSG(params_.view_size >= 2, "view size must be at least 2");
  PSS_CHECK_MSG(params_.healer <= params_.view_size / 2,
                "H must not exceed c/2");
  PSS_CHECK_MSG(params_.swapper + params_.healer <= params_.view_size / 2,
                "H + S must not exceed c/2");
}

bool HSGossipNode::knows(NodeId address) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [address](const NodeDescriptor& d) {
                       return d.address == address;
                     });
}

void HSGossipNode::init_view(std::vector<NodeDescriptor> bootstrap) {
  entries_ = std::move(bootstrap);
  std::erase_if(entries_, [this](const NodeDescriptor& d) {
    return d.address == self_;
  });
  remove_duplicates();
  if (entries_.size() > params_.view_size) entries_.resize(params_.view_size);
}

std::optional<NodeId> HSGossipNode::select_peer() {
  if (entries_.empty()) return std::nullopt;
  if (!params_.tail_peer_selection) {
    return entries_[rng_.below(entries_.size())].address;
  }
  // Oldest entry; ties broken uniformly for the same herding-avoidance
  // reason as View::peer_tail_unbiased.
  HopCount oldest = 0;
  for (const auto& d : entries_) oldest = std::max(oldest, d.hop_count);
  std::size_t tied = 0;
  for (const auto& d : entries_) tied += (d.hop_count == oldest) ? 1 : 0;
  std::size_t pick = rng_.below(tied);
  for (const auto& d : entries_) {
    if (d.hop_count == oldest && pick-- == 0) return d.address;
  }
  return std::nullopt;  // unreachable
}

std::vector<NodeDescriptor> HSGossipNode::make_buffer() {
  // view.permute(); move the H oldest to the end; the head of the view is
  // then what gets sent (and what S swaps away afterwards).
  rng_.shuffle(entries_);
  const std::size_t h = std::min(params_.healer, entries_.size());
  if (h > 0) {
    // Age threshold of the h-th oldest entry (ties counted exactly).
    std::vector<HopCount> ages;
    ages.reserve(entries_.size());
    for (const auto& d : entries_) ages.push_back(d.hop_count);
    std::nth_element(ages.begin(), ages.end() - static_cast<std::ptrdiff_t>(h),
                     ages.end());
    const HopCount threshold = ages[ages.size() - h];
    std::size_t strictly_older = 0;
    for (const auto& d : entries_) strictly_older += d.hop_count > threshold;
    std::size_t at_threshold_to_move = h - strictly_older;
    // Stable split: survivors keep their shuffled order up front, the h
    // oldest go to the back.
    std::vector<NodeDescriptor> front, back;
    front.reserve(entries_.size() - h);
    back.reserve(h);
    for (const auto& d : entries_) {
      const bool move_old =
          d.hop_count > threshold ||
          (d.hop_count == threshold && at_threshold_to_move > 0 &&
           (at_threshold_to_move--, true));
      (move_old ? back : front).push_back(d);
    }
    entries_ = std::move(front);
    entries_.insert(entries_.end(), back.begin(), back.end());
  }
  std::vector<NodeDescriptor> buffer;
  buffer.reserve(params_.buffer_size());
  buffer.push_back({self_, 0});
  const std::size_t take =
      std::min(params_.buffer_size() > 0 ? params_.buffer_size() - 1 : 0,
               entries_.size());
  for (std::size_t i = 0; i < take; ++i) buffer.push_back(entries_[i]);
  return buffer;
}

void HSGossipNode::remove_duplicates() {
  // Keep the first occurrence with the LOWEST age per address, preserving
  // list order of the survivors.
  std::vector<NodeDescriptor> unique;
  unique.reserve(entries_.size());
  for (const auto& d : entries_) {
    auto it = std::find_if(unique.begin(), unique.end(),
                           [&d](const NodeDescriptor& u) {
                             return u.address == d.address;
                           });
    if (it == unique.end()) {
      unique.push_back(d);
    } else if (d.hop_count < it->hop_count) {
      it->hop_count = d.hop_count;
    }
  }
  entries_ = std::move(unique);
}

void HSGossipNode::remove_oldest(std::size_t count) {
  for (std::size_t i = 0; i < count && !entries_.empty(); ++i) {
    auto it = std::max_element(entries_.begin(), entries_.end(),
                               [](const NodeDescriptor& a, const NodeDescriptor& b) {
                                 return a.hop_count < b.hop_count;
                               });
    entries_.erase(it);
  }
}

void HSGossipNode::integrate(const std::vector<NodeDescriptor>& received) {
  // appendfresh: received entries go to the END of the list.
  for (const auto& d : received) {
    if (d.address != self_) entries_.push_back(d);
  }
  remove_duplicates();
  const std::size_t c = params_.view_size;
  // removeOldItems(min(H, size - c)).
  if (entries_.size() > c) {
    remove_oldest(std::min(params_.healer, entries_.size() - c));
  }
  // removeHead(min(S, size - c)): drop the items we just sent (they sit at
  // the head after make_buffer's reordering) — the swap semantics.
  if (entries_.size() > c) {
    const std::size_t s = std::min(params_.swapper, entries_.size() - c);
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(s));
  }
  // removeAtRandom until size == c.
  while (entries_.size() > c) {
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(rng_.below(entries_.size())));
  }
}

void HSGossipNode::increase_age() {
  for (auto& d : entries_) ++d.hop_count;
}

void HSGossipNode::validate() const {
  PSS_CHECK_MSG(entries_.size() <= params_.view_size, "view exceeds c");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    PSS_CHECK_MSG(entries_[i].address != self_, "view contains self");
    for (std::size_t j = i + 1; j < entries_.size(); ++j) {
      PSS_CHECK_MSG(entries_[i].address != entries_[j].address,
                    "duplicate address in HS view");
    }
  }
}

}  // namespace pss
