// Dual-view node — the combination the paper's conclusion proposes
// (Section 10):
//
//   "In many cases, combining different settings will be necessary. Such a
//    combination can, for instance, be achieved by introducing a second
//    view for gossiping membership information and running more protocols
//    concurrently."
//
// DualViewNode runs two GossipNode instances on the same address:
//   - a FAST view (head view selection) giving exponential self-healing,
//     balanced degrees and quick turnover;
//   - a SLOW view (rand view selection) retaining long-memory descriptors
//     that survive temporary partitions.
// getPeer() draws from the union; the Section-8 partition scenario is where
// the combination earns its keep (fast healing AND re-merge capability),
// which ablation_partition demonstrates.
#pragma once

#include <optional>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/protocol/gossip_node.hpp"

namespace pss {

class DualViewNode {
 public:
  /// Both sub-protocols use pushpull with rand peer selection; `options`
  /// applies to each view separately (total state is 2c descriptors).
  DualViewNode(NodeId self, ProtocolOptions options, Rng rng);

  NodeId self() const { return fast_.self(); }

  GossipNode& fast() { return fast_; }
  GossipNode& slow() { return slow_; }
  const GossipNode& fast() const { return fast_; }
  const GossipNode& slow() const { return slow_; }

  /// Seeds both views from the same bootstrap descriptors.
  void init_view(const View& bootstrap);

  /// Union of the two views (lowest hop count on duplicates, self excluded).
  View combined_view() const;

  /// Sample from the combined view; kInvalidNode when both views are empty.
  NodeId get_peer();

 private:
  GossipNode fast_;
  GossipNode slow_;
  Rng sample_rng_;
};

}  // namespace pss
