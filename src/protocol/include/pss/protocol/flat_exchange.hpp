// Figure-1 exchange mechanics over flat storage.
//
// These free functions are the single implementation of the gossip skeleton
// shared by both execution surfaces:
//   - CycleEngine calls them directly on the network's NodeArena with a
//     persistent Scratch — the batched, allocation-free hot path;
//   - GossipNode's handler methods call the same functions on its own slot,
//     preserving the legacy message-level API for the event engine, the
//     service layer and the tests.
// Because both paths run this code, the adapter and the engine cannot
// diverge; equivalence with the original View-based node logic is pinned by
// the randomized traces in tests/flat_view_store_test.cpp. Defined inline
// for the same reason as flat_ops.hpp: these run tens of millions of times
// per scale run.
//
// Policy vs mechanism: everything here is mechanism. The H/S design-space
// knobs (peer selection, view selection, propagation, view size) arrive as
// ProtocolSpec/ProtocolOptions values and are only ever dispatched on —
// adding a policy means touching spec.hpp and the two switches below,
// nothing else (see docs/ARCHITECTURE.md).
#pragma once

#include <optional>

#include "pss/membership/flat_ops.hpp"
#include "pss/protocol/node_arena.hpp"
#include "pss/protocol/spec.hpp"

namespace pss::flat {

/// selectPeer() on a normalized view span. Returns nullopt when the view is
/// empty. Dispatches to the same per-policy routines (deterministic head,
/// tie-unbiased tail) as GossipNode always has; see gossip_node.hpp for why
/// head stays deterministic.
inline std::optional<NodeId> select_peer(DescSpan view, PeerSelection policy,
                                         Rng& rng) {
  if (view.empty()) return std::nullopt;
  switch (policy) {
    case PeerSelection::kRand:
      return peer_rand(view, rng);
    case PeerSelection::kHead:
      // Deliberately deterministic; see the rationale in gossip_node.hpp
      // (herding is exactly why the paper excludes (head,*,*)).
      return peer_head(view);
    case PeerSelection::kTail:
      return peer_tail_unbiased(view, rng);
  }
  return std::nullopt;
}

/// Buffer the active thread sends: merge(view, {self, 0}) when pushing, the
/// empty buffer otherwise. `out` is overwritten.
inline void make_active_buffer(DescSpan view, NodeId self, bool push,
                               std::vector<NodeDescriptor>& out) {
  out.clear();
  if (!push) return;  // empty buffer triggers the pull reply
  out.assign(view.begin(), view.end());
  insert_self(out, self);
}

/// merge + drop-self + selectView on one slot: the shared tail of both
/// Figure-1 handlers. `aged_incoming` must already be aged by the caller
/// and must not alias scratch.merged/sel.
inline void absorb(FlatViewStore& store, NodeId slot, NodeId self,
                   const ProtocolSpec& spec, const ProtocolOptions& options,
                   DescSpan aged_incoming, Rng& rng, Scratch& scratch) {
  merge_into(aged_incoming, store.view_of(slot), scratch.merged, scratch);
  remove_address(scratch.merged, self);
  switch (spec.view_selection) {
    case ViewSelection::kRand:
      select_rand(scratch.merged, options.view_size, rng, scratch);
      break;
    case ViewSelection::kHead:
      select_head_unbiased(scratch.merged, options.view_size, rng, scratch);
      break;
    case ViewSelection::kTail:
      select_tail_unbiased(scratch.merged, options.view_size, rng, scratch);
      break;
  }
  store.assign(slot, scratch.merged);
}

/// Engine hook for a contact that hit a dead or unreachable peer: counts
/// the failure and applies the remove_dead_on_failure extension.
inline void contact_failure(NodeArena& arena, NodeId node, NodeId peer,
                            const ProtocolOptions& options) {
  ++arena.stats[node].contact_failures;
  if (options.remove_dead_on_failure) arena.views.erase_address(node, peer);
}

/// One complete atomic exchange between two live, reachable nodes — the
/// cycle engine's fast path. Mirrors exactly the legacy sequence
///   buffer = active.make_active_buffer();
///   reply  = passive.handle_message(buffer);
///   if (pull) active.handle_reply(*reply);
/// including the order of stats updates and Rng consumption. The caller has
/// already aged the active view, selected `passive` and checked liveness.
inline void run_exchange(NodeArena& arena, NodeId active, NodeId passive,
                         const ProtocolSpec& spec,
                         const ProtocolOptions& options, Scratch& scratch) {
  FlatViewStore& store = arena.views;
  make_active_buffer(store.view_of(active), active, spec.push(),
                     scratch.buffer);
  // Passive thread (handle_message): age the incoming buffer, build the
  // pull reply from the pre-merge view, then merge and select.
  ++arena.stats[passive].received;
  age_in_place(scratch.buffer);
  const bool pull = spec.pull();
  if (pull) {
    make_active_buffer(store.view_of(passive), passive, /*push=*/true,
                       scratch.reply);
    ++arena.stats[passive].replies_sent;
  }
  absorb(store, passive, passive, spec, options, scratch.buffer,
         arena.rngs[passive], scratch);
  // Active thread tail (handle_reply): age the reply, merge and select.
  if (pull) {
    age_in_place(scratch.reply);
    absorb(store, active, active, spec, options, scratch.reply,
           arena.rngs[active], scratch);
  }
}

}  // namespace pss::flat
