// Figure-1 exchange mechanics over flat storage.
//
// These free functions are the single implementation of the gossip skeleton
// shared by every execution surface:
//   - CycleEngine calls them directly on the network's NodeArena with a
//     persistent Scratch — the batched, allocation-free atomic-exchange path;
//   - EventEngine drives the request/reply split kernels below over message
//     slabs (pss/membership/descriptor_slab_pool.hpp) — the same Figure-1
//     halves, decoupled in time by the asynchronous message layer;
//   - GossipNode's handler methods call the same functions on its own slot,
//     preserving the legacy message-level API for the service layer, the
//     reference LegacyEventEngine and the tests.
// Because every path runs this code, the adapter and the engines cannot
// diverge; equivalence with the original View-based node logic is pinned by
// the randomized traces in tests/flat_view_store_test.cpp (and the engine
// replay in tests/event_engine_flat_test.cpp). Defined inline
// for the same reason as flat_ops.hpp: these run tens of millions of times
// per scale run.
//
// Policy vs mechanism: everything here is mechanism. The H/S design-space
// knobs (peer selection, view selection, propagation, view size) arrive as
// ProtocolSpec/ProtocolOptions values and are only ever dispatched on —
// adding a policy means touching spec.hpp and the two switches below,
// nothing else (see docs/ARCHITECTURE.md).
#pragma once

#include <optional>

#include "pss/membership/flat_ops.hpp"
#include "pss/protocol/node_arena.hpp"
#include "pss/protocol/spec.hpp"

namespace pss::flat {

/// selectPeer() on a normalized view span. Returns nullopt when the view is
/// empty. Dispatches to the same per-policy routines (deterministic head,
/// tie-unbiased tail) as GossipNode always has; see gossip_node.hpp for why
/// head stays deterministic.
inline std::optional<NodeId> select_peer(DescSpan view, PeerSelection policy,
                                         Rng& rng) {
  if (view.empty()) return std::nullopt;
  switch (policy) {
    case PeerSelection::kRand:
      return peer_rand(view, rng);
    case PeerSelection::kHead:
      // Deliberately deterministic; see the rationale in gossip_node.hpp
      // (herding is exactly why the paper excludes (head,*,*)).
      return peer_head(view);
    case PeerSelection::kTail:
      return peer_tail_unbiased(view, rng);
  }
  return std::nullopt;
}

/// Buffer the active thread sends: merge(view, {self, 0}) when pushing, the
/// empty buffer otherwise. `out` is overwritten.
inline void make_active_buffer(DescSpan view, NodeId self, bool push,
                               std::vector<NodeDescriptor>& out) {
  out.clear();
  if (!push) return;  // empty buffer triggers the pull reply
  out.assign(view.begin(), view.end());
  insert_self(out, self);
}

/// age + merge + drop-self + selectView on one slot: the shared tail of
/// both Figure-1 handlers. `incoming` is aged by `age_incoming` hops on the
/// fly inside the merge (pass 0 for a buffer the caller already aged — the
/// adapter's View-level API does) and must not alias scratch.merged/sel.
inline void absorb(FlatViewStore& store, NodeId slot, NodeId self,
                   const ProtocolSpec& spec, const ProtocolOptions& options,
                   DescSpan incoming, Rng& rng, Scratch& scratch,
                   HopCount age_incoming = 0) {
  switch (spec.view_selection) {
    case ViewSelection::kRand:
      merge_into(incoming, store.view_of(slot), scratch.merged, scratch,
                 age_incoming);
      remove_address(scratch.merged, self);
      select_rand(scratch.merged, options.view_size, rng, scratch);
      break;
    case ViewSelection::kHead:
      // Head selection takes the fused streaming kernel: identical result
      // and Rng draws, but the merge stops at the selection boundary
      // instead of materializing the full union (see flat_ops.hpp), and the
      // result goes from the stream's landing zone straight into the slot.
      if (incoming.size() + store.view_size(slot) <= AddressSet::kMaxEntries &&
          options.view_size <= AddressSet::kMaxEntries) {
        const std::size_t n = merge_select_head_arr(
            incoming, store.view_of(slot), self, options.view_size, rng,
            scratch, age_incoming);
        store.assign(slot, {scratch.merge_arr.data(), n});
        return;
      }
      merge_select_head(incoming, store.view_of(slot), self,
                        options.view_size, rng, scratch.merged, scratch,
                        age_incoming);
      break;
    case ViewSelection::kTail:
      // Tail keeps the oldest entries, which only the full union knows.
      merge_into(incoming, store.view_of(slot), scratch.merged, scratch,
                 age_incoming);
      remove_address(scratch.merged, self);
      select_tail_unbiased(scratch.merged, options.view_size, rng, scratch);
      break;
  }
  store.assign(slot, scratch.merged);
}

/// Engine hook for a contact that hit a dead or unreachable peer: counts
/// the failure and applies the remove_dead_on_failure extension.
inline void contact_failure(NodeArena& arena, NodeId node, NodeId peer,
                            const ProtocolOptions& options) {
  ++arena.stats[node].contact_failures;
  if (options.remove_dead_on_failure) arena.views.erase_address(node, peer);
}

// --- Request/reply split kernels (the event engine's hot path) ------------
// run_exchange() below is the two Figure-1 halves fused into one atomic
// step. Under asynchrony the halves run at different simulated times with a
// message buffer in flight between them, so they are also exposed
// separately, operating on raw fixed-stride buffers (message-pool slabs)
// instead of Scratch vectors. Semantics, stats updates and Rng consumption
// mirror GossipNode::handle_message / handle_reply exactly — pinned by the
// engine trace-equivalence suite in tests/event_engine_flat_test.cpp.

/// Slab variant of make_active_buffer: writes the active thread's buffer
/// (view + {self, 0} at its sorted position when pushing, nothing
/// otherwise) into `out`, which must hold view.size() + 1 entries. Returns
/// the entry count. Precondition, as insert_self: `self` is not in `view`.
inline std::uint32_t write_active_buffer(DescSpan view, NodeId self, bool push,
                                         NodeDescriptor* out) {
  if (!push) return 0;  // empty buffer triggers the pull reply
  const NodeDescriptor me{self, 0};
  // The insertion point is the count of keys below (0 << 32 | self) — a
  // branch-free SIMD scan (simd.hpp) instead of the element-wise compare
  // loop; the two bulk copies around it vectorize as plain memmoves.
  const std::size_t split =
      simd::count_less(view.data(), view.size(), detail::sort_key(me));
  std::copy_n(view.data(), split, out);
  out[split] = me;
  std::copy_n(view.data() + split, view.size() - split, out + split + 1);
  return static_cast<std::uint32_t>(view.size() + 1);
}

/// Wakeup-path fusion of FlatViewStore::age + write_active_buffer: ages the
/// slot in place while streaming the aged entries into `out`, with
/// {self, 0} leading. After a uniform +1 every aged key is >= (1 << 32) and
/// the self descriptor's key is `self` < 2^32, so its sorted position is
/// always index 0 — the insertion scan disappears along with the second
/// pass over the slot. Bit-identical to age-then-write (the flat-vs-legacy
/// replay suite pins it through the event engine).
inline std::uint32_t age_write_active_buffer(FlatViewStore& store, NodeId slot,
                                             NodeId self, bool push,
                                             NodeDescriptor* out) {
  if (!push) {
    store.age(slot);
    return 0;  // empty buffer triggers the pull reply
  }
  out[0] = NodeDescriptor{self, 0};
  return store.age_and_copy(slot, out + 1) + 1;
}

/// Passive half of Figure 1 over message buffers: writes the pull reply
/// (pre-merge view plus self) into `reply_out` when one is wanted, then
/// merges the request — aged one hop inside the merge — into the passive
/// slot. Returns the reply entry count (0 when none was written).
/// `reply_out == nullptr` skips building a reply the caller already knows
/// will be lost; counters still mirror GossipNode::handle_message (received
/// always, replies_sent whenever the protocol pulls), and neither the reply
/// build nor the skip consumes Rng, so the node's stream is unaffected.
inline std::uint32_t handle_request(NodeArena& arena, NodeId passive,
                                    const NodeDescriptor* request,
                                    std::uint32_t request_size,
                                    NodeDescriptor* reply_out,
                                    const ProtocolSpec& spec,
                                    const ProtocolOptions& options,
                                    Scratch& scratch) {
  ++arena.stats[passive].received;
  std::uint32_t reply_size = 0;
  if (spec.pull()) {
    if (reply_out != nullptr) {
      reply_size = write_active_buffer(arena.views.view_of(passive), passive,
                                       /*push=*/true, reply_out);
    }
    ++arena.stats[passive].replies_sent;
  }
  absorb(arena.views, passive, passive, spec, options,
         DescSpan{request, request_size}, arena.rngs[passive], scratch,
         /*age_incoming=*/1);
  return reply_size;
}

/// Active tail of Figure 1 over a message buffer: merges the pull reply —
/// aged one hop inside the merge — into the active slot.
inline void handle_reply(NodeArena& arena, NodeId active,
                         const NodeDescriptor* reply, std::uint32_t reply_size,
                         const ProtocolSpec& spec,
                         const ProtocolOptions& options, Scratch& scratch) {
  absorb(arena.views, active, active, spec, options,
         DescSpan{reply, reply_size}, arena.rngs[active], scratch,
         /*age_incoming=*/1);
}

/// One complete atomic exchange between two live, reachable nodes — the
/// cycle engine's fast path. Mirrors exactly the legacy sequence
///   buffer = active.make_active_buffer();
///   reply  = passive.handle_message(buffer);
///   if (pull) active.handle_reply(*reply);
/// including the order of stats updates and Rng consumption. The caller has
/// already aged the active view, selected `passive` and checked liveness.
/// The two sides' random draws come from `active_rng`/`passive_rng`, which
/// are the arena's per-node streams on the sequential and deterministic
/// parallel paths (see run_exchange below) and counter-derived throwaway
/// generators in the parallel engine's Relaxed mode.
inline void run_exchange_with(NodeArena& arena, NodeId active, NodeId passive,
                              const ProtocolSpec& spec,
                              const ProtocolOptions& options, Scratch& scratch,
                              Rng& active_rng, Rng& passive_rng) {
  FlatViewStore& store = arena.views;
  make_active_buffer(store.view_of(active), active, spec.push(),
                     scratch.buffer);
  // Passive thread (handle_message): build the pull reply from the
  // pre-merge view, then merge (aging the incoming buffer in-merge) and
  // select.
  ++arena.stats[passive].received;
  const bool pull = spec.pull();
  if (pull) {
    make_active_buffer(store.view_of(passive), passive, /*push=*/true,
                       scratch.reply);
    ++arena.stats[passive].replies_sent;
  }
  absorb(store, passive, passive, spec, options, scratch.buffer, passive_rng,
         scratch, /*age_incoming=*/1);
  // Active thread tail (handle_reply): merge the aged reply and select.
  if (pull) {
    absorb(store, active, active, spec, options, scratch.reply, active_rng,
           scratch, /*age_incoming=*/1);
  }
}

/// run_exchange_with on the arena's own per-node Rng streams.
inline void run_exchange(NodeArena& arena, NodeId active, NodeId passive,
                         const ProtocolSpec& spec,
                         const ProtocolOptions& options, Scratch& scratch) {
  run_exchange_with(arena, active, passive, spec, options, scratch,
                    arena.rngs[active], arena.rngs[passive]);
}

}  // namespace pss::flat
