// The generic gossip skeleton (paper Figure 1), factored as a pair of
// message handlers so the same node logic runs unchanged under the
// cycle-driven engine (atomic exchanges, as in the paper's simulator) and
// the asynchronous event-driven engine (explicit messages with latency).
//
// Mapping from the paper's pseudo-code:
//   active thread                         GossipNode
//   -------------                         ----------
//   p <- selectPeer()                     select_peer(rng)
//   if push: send merge(view,{me,0})      make_active_buffer()
//   else:    send {}                      make_active_buffer() (empty)
//   if pull: receive viewp; age; merge;   handle_reply(viewp)
//            view <- selectView(buffer)
//
//   passive thread
//   --------------
//   receive (p, viewp); age viewp;        handle_message(viewp) ->
//   if pull: reply merge(view,{me,0})       optional reply buffer
//   view <- selectView(merge(viewp,view))
//
// Deviations from the raw pseudo-code (both documented in DESIGN.md):
//  1. A node's own descriptor is removed from the merged buffer before view
//     selection, so the final view never contains the node itself. Without
//     this, descriptors of the node itself bouncing back would occupy view
//     slots and (under head selection) could evict all genuine neighbours.
//  2. age_view() increments every stored hop count once per cycle (called
//     by the engines when the active thread fires). The Figure-1 pseudo-code
//     ages descriptors only while they travel, under which a locally stored
//     hop-0 descriptor would remain "freshest" forever and head view
//     selection would stagnate (a lattice bootstrap would never converge and
//     dead links would never age out — contradicting the paper's own
//     Figures 3 and 7). Per-cycle aging is exactly the timestamp semantics
//     of the authors' Newscast implementation [Jelasity, Kowalczyk, van
//     Steen, 2003] and of the journal version of this paper (TOCS 2007,
//     "view.increaseAge()"), so hop count = age in cycles + hops travelled.
//
// Storage: since the flat-core refactor, a GossipNode is an adapter over
// one slot of a flat::NodeArena rather than the owner of a heap-allocated
// View. Attached to sim::Network's arena it is a thin window whose state
// lives in the network's structs-of-arrays; constructed standalone (tests,
// DualViewNode) it owns a private single-slot arena. The protocol mechanics
// are the shared flat_exchange/flat_ops routines either way, so this class
// is pure API surface — the paper's semantics, including per-policy Rng
// consumption, are identical through both the adapter and the batched
// engine (pinned by tests/flat_view_store_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/membership/view.hpp"
#include "pss/protocol/node_arena.hpp"
#include "pss/protocol/spec.hpp"

namespace pss {

/// One protocol participant: a partial view plus the Figure-1 handlers.
class GossipNode {
 public:
  /// Standalone node owning its backing storage. `rng` drives this node's
  /// random choices (peer/view selection); derive it from the experiment
  /// master seed for reproducibility.
  GossipNode(NodeId self, ProtocolSpec spec, ProtocolOptions options, Rng rng);

  /// Adapter over slot `slot` of `arena`, which must outlive the node and
  /// already contain the slot (sim::Network appends the slot, then the
  /// adapter). The arena's spec/options uniformity is the caller's
  /// invariant.
  GossipNode(NodeId self, ProtocolSpec spec, ProtocolOptions options,
             flat::NodeArena* arena, NodeId slot);

  /// Copies are always independent standalone nodes (legacy value
  /// semantics): even when the source is attached to a network arena, the
  /// copy snapshots its view/rng/stats into a private single-slot arena.
  GossipNode(const GossipNode& other);
  GossipNode& operator=(const GossipNode& other);
  GossipNode(GossipNode&&) noexcept = default;
  GossipNode& operator=(GossipNode&&) noexcept = default;

  NodeId self() const { return self_; }
  const ProtocolSpec& spec() const { return spec_; }
  const ProtocolOptions& options() const { return options_; }
  const NodeStats& stats() const { return arena_->stats[slot_]; }

  /// The node's current view, materialized from the flat slot and cached
  /// until the slot changes. Inspection-path only — the engines never call
  /// this.
  const View& view() const;

  /// Zero-copy access to the flat slot (sorted, duplicate-free entries).
  std::span<const NodeDescriptor> view_span() const {
    return arena_->views.view_of(slot_);
  }

  /// init() of the peer sampling API: seeds the view with bootstrap
  /// descriptors (hop count 0), dropping any descriptor of the node itself
  /// and truncating to c.
  void init_view(const View& bootstrap);

  /// Ages every stored descriptor by one hop. Engines call this exactly
  /// once per cycle, when this node's active thread fires (see deviation 2
  /// in the header comment).
  void age_view() { arena_->views.age(slot_); }

  /// selectPeer(): applies the peer-selection policy to the current view.
  /// Returns nullopt when the view is empty (nothing to gossip with).
  std::optional<NodeId> select_peer();

  /// Buffer the active thread sends: merge(view, {myDescriptor}) when the
  /// protocol pushes, the empty view otherwise (pull-only trigger).
  View make_active_buffer() const;

  /// Passive thread: ages the incoming buffer, builds the pull reply from
  /// the pre-merge view if the protocol pulls, then merges and selects.
  /// Returns the reply buffer to send back, or nullopt for push-only.
  std::optional<View> handle_message(const View& incoming);

  /// Active thread tail: ages the pull reply, merges and selects.
  void handle_reply(const View& reply);

  /// Called by the engine when the contacted peer was dead. With the
  /// remove_dead_on_failure extension the dead descriptor is evicted;
  /// paper-faithful default is to do nothing.
  void on_contact_failure(NodeId peer);

  /// Engine bookkeeping hook: counts an initiated exchange.
  void note_initiated() { ++arena_->stats[slot_].initiated; }

  /// Direct view replacement for bootstrap drivers and tests. The flat
  /// slot enforces size <= c (invariant I3), which every in-repo caller
  /// already satisfied.
  void set_view(View v);

 private:
  Rng& rng() { return arena_->rngs[slot_]; }
  NodeStats& mutable_stats() { return arena_->stats[slot_]; }

  NodeId self_;
  NodeId slot_;
  ProtocolSpec spec_;
  ProtocolOptions options_;
  std::unique_ptr<flat::NodeArena> owned_;  ///< standalone mode backing
  flat::NodeArena* arena_;                  ///< owned_.get() or the network's

  /// Sentinel: "cache never built" (store versions start at 1).
  static constexpr std::uint64_t kNeverCached = ~std::uint64_t{0};
  mutable View cache_;
  mutable std::uint64_t cache_version_ = kNeverCached;
};

}  // namespace pss
