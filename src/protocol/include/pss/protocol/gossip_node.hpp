// The generic gossip skeleton (paper Figure 1), factored as a pair of
// message handlers so the same node logic runs unchanged under the
// cycle-driven engine (atomic exchanges, as in the paper's simulator) and
// the asynchronous event-driven engine (explicit messages with latency).
//
// Mapping from the paper's pseudo-code:
//   active thread                         GossipNode
//   -------------                         ----------
//   p <- selectPeer()                     select_peer(rng)
//   if push: send merge(view,{me,0})      make_active_buffer()
//   else:    send {}                      make_active_buffer() (empty)
//   if pull: receive viewp; age; merge;   handle_reply(viewp)
//            view <- selectView(buffer)
//
//   passive thread
//   --------------
//   receive (p, viewp); age viewp;        handle_message(viewp) ->
//   if pull: reply merge(view,{me,0})       optional reply buffer
//   view <- selectView(merge(viewp,view))
//
// Deviations from the raw pseudo-code (both documented in DESIGN.md):
//  1. A node's own descriptor is removed from the merged buffer before view
//     selection, so the final view never contains the node itself. Without
//     this, descriptors of the node itself bouncing back would occupy view
//     slots and (under head selection) could evict all genuine neighbours.
//  2. age_view() increments every stored hop count once per cycle (called
//     by the engines when the active thread fires). The Figure-1 pseudo-code
//     ages descriptors only while they travel, under which a locally stored
//     hop-0 descriptor would remain "freshest" forever and head view
//     selection would stagnate (a lattice bootstrap would never converge and
//     dead links would never age out — contradicting the paper's own
//     Figures 3 and 7). Per-cycle aging is exactly the timestamp semantics
//     of the authors' Newscast implementation [Jelasity, Kowalczyk, van
//     Steen, 2003] and of the journal version of this paper (TOCS 2007,
//     "view.increaseAge()"), so hop count = age in cycles + hops travelled.
#pragma once

#include <cstdint>
#include <optional>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/membership/view.hpp"
#include "pss/protocol/spec.hpp"

namespace pss {

/// Per-node exchange counters, useful for cost accounting in benches.
struct NodeStats {
  std::uint64_t initiated = 0;        ///< active-thread wake-ups with a peer
  std::uint64_t received = 0;         ///< passive-thread messages handled
  std::uint64_t replies_sent = 0;     ///< pull replies produced
  std::uint64_t contact_failures = 0; ///< exchanges that hit a dead peer
};

/// One protocol participant: a partial view plus the Figure-1 handlers.
class GossipNode {
 public:
  /// `rng` drives this node's random choices (peer/view selection); derive
  /// it from the experiment master seed for reproducibility.
  GossipNode(NodeId self, ProtocolSpec spec, ProtocolOptions options, Rng rng);

  NodeId self() const { return self_; }
  const ProtocolSpec& spec() const { return spec_; }
  const ProtocolOptions& options() const { return options_; }
  const View& view() const { return view_; }
  const NodeStats& stats() const { return stats_; }

  /// init() of the peer sampling API: seeds the view with bootstrap
  /// descriptors (hop count 0), dropping any descriptor of the node itself
  /// and truncating to c.
  void init_view(const View& bootstrap);

  /// Ages every stored descriptor by one hop. Engines call this exactly
  /// once per cycle, when this node's active thread fires (see deviation 2
  /// in the header comment).
  void age_view() { view_.increase_hop_count(); }

  /// selectPeer(): applies the peer-selection policy to the current view.
  /// Returns nullopt when the view is empty (nothing to gossip with).
  std::optional<NodeId> select_peer();

  /// Buffer the active thread sends: merge(view, {myDescriptor}) when the
  /// protocol pushes, the empty view otherwise (pull-only trigger).
  View make_active_buffer() const;

  /// Passive thread: ages the incoming buffer, builds the pull reply from
  /// the pre-merge view if the protocol pulls, then merges and selects.
  /// Returns the reply buffer to send back, or nullopt for push-only.
  std::optional<View> handle_message(const View& incoming);

  /// Active thread tail: ages the pull reply, merges and selects.
  void handle_reply(const View& reply);

  /// Called by the engine when the contacted peer was dead. With the
  /// remove_dead_on_failure extension the dead descriptor is evicted;
  /// paper-faithful default is to do nothing.
  void on_contact_failure(NodeId peer);

  /// Engine bookkeeping hook: counts an initiated exchange.
  void note_initiated() { ++stats_.initiated; }

  /// Direct view replacement for bootstrap drivers and tests.
  void set_view(View v);

 private:
  /// merge + drop-self + selectView, shared by both handlers.
  void absorb(const View& aged_incoming);

  NodeId self_;
  ProtocolSpec spec_;
  ProtocolOptions options_;
  Rng rng_;
  View view_;
  NodeStats stats_;
};

}  // namespace pss
