// Generalized (H, S) gossip node — the design space the authors developed
// as the direct follow-up of this paper (Jelasity, Voulgaris, Guerraoui,
// Kermarrec, van Steen: "Gossip-based Peer Sampling", ACM TOCS 2007). The
// Middleware'04 paper's conclusion calls for combining design choices; the
// journal version recasts the whole space with two integer parameters:
//
//   H ("healer")  — after an exchange, remove up to H of the OLDEST items:
//                   aggressive self-healing;
//   S ("swapper") — remove up to S of the items just SENT to the peer:
//                   the exchange becomes a swap, minimizing degree skew.
//
// Skeleton (TOCS Fig. 1, adapted to this codebase's conventions):
//   active thread:
//     p <- selectPeer()                      (rand | tail = oldest)
//     if push: buffer <- ((self,0)) ++ first c/2-1 items of
//              permute(view with H oldest moved to the end)
//     send buffer to p;  if pull: receive buffer_p, select(buffer_p)
//     view.increaseAge()
//   passive thread mirrors it.
//   select(buffer): append buffer, dedup (keep lowest age), remove
//     min(H, size-c) oldest, remove min(S, size-c) of the items sent,
//     then random items until size == c.
//
// Known instances: blind = (H=0, S=0); healer = (H=c/2, S=0);
// swapper = (H=0, S=c/2); Cyclon's shuffle corresponds to tail peer
// selection with swapper behaviour.
//
// Unlike GossipNode, the HS view is an ORDERED LIST (order carries
// protocol meaning: the head holds the items just exchanged), so this
// class keeps its own entry vector rather than reusing pss::View.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/membership/node_descriptor.hpp"

namespace pss {

struct HSParams {
  std::size_t view_size = 30;  ///< c
  std::size_t healer = 0;      ///< H, in [0, c/2]
  std::size_t swapper = 0;     ///< S, in [0, c/2 - H]
  bool tail_peer_selection = false;  ///< false = rand, true = oldest
  bool pushpull = true;              ///< false = push-only

  /// Items sent per exchange: self + (c/2 - 1) others.
  std::size_t buffer_size() const { return view_size / 2; }

  static HSParams blind(std::size_t c = 30);
  static HSParams healer_profile(std::size_t c = 30);
  static HSParams swapper_profile(std::size_t c = 30);
};

class HSGossipNode {
 public:
  HSGossipNode(NodeId self, HSParams params, Rng rng);

  NodeId self() const { return self_; }
  const HSParams& params() const { return params_; }

  /// Entries in protocol order (NOT sorted; head = most recently placed).
  const std::vector<NodeDescriptor>& entries() const { return entries_; }

  std::size_t view_size() const { return entries_.size(); }
  bool knows(NodeId address) const;

  /// Seeds the view (drops self, truncates to c, age as given).
  void init_view(std::vector<NodeDescriptor> bootstrap);

  /// selectPeer(): rand or oldest entry; nullopt when the view is empty.
  std::optional<NodeId> select_peer();

  /// Builds the exchange buffer AND reorders the view so that the sent
  /// items sit at the head (the state select() expects for swapping).
  /// Contains (self, 0) first, then up to c/2 - 1 view items.
  std::vector<NodeDescriptor> make_buffer();

  /// select(c,H,S,buffer): integrates a received buffer.
  void integrate(const std::vector<NodeDescriptor>& received);

  /// increaseAge(): called once per cycle by the owner.
  void increase_age();

  /// Invariants: size <= c, no duplicates, never contains self.
  void validate() const;

 private:
  void remove_duplicates();
  void remove_oldest(std::size_t count);

  NodeId self_;
  HSParams params_;
  Rng rng_;
  std::vector<NodeDescriptor> entries_;
};

}  // namespace pss
