// Structs-of-arrays arena for gossip node state.
//
// A simulated node is three pieces of state: a partial view, an Rng stream
// and exchange counters. The legacy layout bundled them into one GossipNode
// object per node; NodeArena splits them into parallel arrays (a
// FlatViewStore plus two flat vectors) so the cycle engine walks contiguous
// memory and the whole network's state is a handful of allocations.
//
// Slot i of every array belongs to the same node; the arena assumes a
// homogeneous network (one ProtocolSpec/ProtocolOptions for all slots,
// owned by the caller — sim::Network — exactly as before). GossipNode
// remains the API for one node: attached to an arena slot it is a thin
// window; constructed standalone it owns a private single-slot arena.
// Either way the mechanics live here and in flat_exchange / flat_ops, so
// the engine fast path and the adapter path cannot drift apart.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/membership/flat_view_store.hpp"

namespace pss {

/// Per-node exchange counters, useful for cost accounting in benches.
struct NodeStats {
  std::uint64_t initiated = 0;        ///< active-thread wake-ups with a peer
  std::uint64_t received = 0;         ///< passive-thread messages handled
  std::uint64_t replies_sent = 0;     ///< pull replies produced
  std::uint64_t contact_failures = 0; ///< exchanges that hit a dead peer
};

namespace flat {

struct NodeArena {
  FlatViewStore views;
  std::vector<Rng> rngs;
  std::vector<NodeStats> stats;

  explicit NodeArena(std::size_t view_capacity) : views(view_capacity) {}

  std::size_t node_count() const { return stats.size(); }

  void reserve(std::size_t n) {
    views.reserve_nodes(n);
    rngs.reserve(n);
    stats.reserve(n);
  }

  /// Appends a node with an empty view; returns its slot index.
  NodeId add_node(Rng rng) {
    rngs.push_back(rng);
    stats.emplace_back();
    return views.add_node();
  }

  /// Prefetches everything an exchange touches for one node: its view
  /// slot, rng stream and counters. At 10^6 nodes these are three random
  /// accesses into multi-hundred-MB arrays, so hiding their latency a few
  /// permutation steps ahead is worth ~25% of cycle wall-clock.
  void prefetch_node(NodeId id) const {
    views.prefetch(id);
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(rngs.data() + id, 1, 1);
    __builtin_prefetch(stats.data() + id, 1, 1);
#endif
  }
};

}  // namespace flat
}  // namespace pss
