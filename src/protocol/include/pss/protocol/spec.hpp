// Protocol design space (paper Section 3).
//
// A gossip-based peer sampling protocol is identified by a 3-tuple
// (peer selection, view selection, view propagation):
//   peer selection    — which neighbour to exchange with: rand / head / tail
//   view selection    — how to truncate the merged buffer:  rand / head / tail
//   view propagation  — symmetry of the exchange:           push / pull / pushpull
// yielding 27 instances. Known protocols map onto tuples:
//   Lpbcast  = (rand, rand, push)
//   Newscast = (rand, head, pushpull)
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pss {

enum class PeerSelection { kRand, kHead, kTail };
enum class ViewSelection { kRand, kHead, kTail };
enum class ViewPropagation { kPush, kPull, kPushPull };

std::string_view to_string(PeerSelection p);
std::string_view to_string(ViewSelection v);
std::string_view to_string(ViewPropagation v);

/// One point in the 3-dimensional protocol design space.
struct ProtocolSpec {
  PeerSelection peer_selection = PeerSelection::kRand;
  ViewSelection view_selection = ViewSelection::kHead;
  ViewPropagation view_propagation = ViewPropagation::kPushPull;

  /// True when the active thread sends its view (push or pushpull).
  bool push() const { return view_propagation != ViewPropagation::kPull; }

  /// True when the active thread requests the peer's view (pull or pushpull).
  bool pull() const { return view_propagation != ViewPropagation::kPush; }

  /// Paper-style name, e.g. "(rand,head,pushpull)".
  std::string name() const;

  /// Parses "(rand,head,pushpull)" or "rand,head,pushpull" (case-insensitive).
  /// Returns nullopt on malformed input.
  static std::optional<ProtocolSpec> parse(std::string_view text);

  /// Newscast: (rand, head, pushpull).
  static ProtocolSpec newscast();

  /// The peer-sampling component of Lpbcast: (rand, rand, push).
  static ProtocolSpec lpbcast();

  /// All 27 combinations, in (ps, vs, vp) lexicographic order.
  static std::vector<ProtocolSpec> all();

  /// The 8 instances the paper evaluates after excluding the degenerate
  /// dimensions (Section 4.3): peer selection in {rand, tail}, view
  /// selection in {rand, head}, propagation in {push, pushpull}.
  static std::vector<ProtocolSpec> evaluated();

  /// The degenerate variants excluded in Section 4.3: (head,*,*) clusters
  /// severely, (*,tail,*) cannot absorb joining nodes, (*,*,pull) converges
  /// to a star topology.
  static std::vector<ProtocolSpec> excluded();

  friend bool operator==(const ProtocolSpec&, const ProtocolSpec&) = default;
};

/// Options orthogonal to the paper's 3-tuple.
struct ProtocolOptions {
  /// Maximal view size c (paper evaluation: 30).
  std::size_t view_size = 30;

  /// Extension (ablation A1): drop a descriptor from the view when a
  /// contact attempt to it fails. The paper's simulator does NOT do this —
  /// dead links decay only through view selection — so the default is off.
  bool remove_dead_on_failure = false;
};

}  // namespace pss
