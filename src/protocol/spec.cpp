#include "pss/protocol/spec.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace pss {

std::string_view to_string(PeerSelection p) {
  switch (p) {
    case PeerSelection::kRand: return "rand";
    case PeerSelection::kHead: return "head";
    case PeerSelection::kTail: return "tail";
  }
  return "?";
}

std::string_view to_string(ViewSelection v) {
  switch (v) {
    case ViewSelection::kRand: return "rand";
    case ViewSelection::kHead: return "head";
    case ViewSelection::kTail: return "tail";
  }
  return "?";
}

std::string_view to_string(ViewPropagation v) {
  switch (v) {
    case ViewPropagation::kPush: return "push";
    case ViewPropagation::kPull: return "pull";
    case ViewPropagation::kPushPull: return "pushpull";
  }
  return "?";
}

std::string ProtocolSpec::name() const {
  std::string out = "(";
  out += to_string(peer_selection);
  out += ",";
  out += to_string(view_selection);
  out += ",";
  out += to_string(view_propagation);
  out += ")";
  return out;
}

namespace {

std::string lower_strip(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '(' || c == ')' || std::isspace(static_cast<unsigned char>(c))) continue;
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::optional<PeerSelection> parse_ps(std::string_view t) {
  if (t == "rand") return PeerSelection::kRand;
  if (t == "head") return PeerSelection::kHead;
  if (t == "tail") return PeerSelection::kTail;
  return std::nullopt;
}

std::optional<ViewSelection> parse_vs(std::string_view t) {
  if (t == "rand") return ViewSelection::kRand;
  if (t == "head") return ViewSelection::kHead;
  if (t == "tail") return ViewSelection::kTail;
  return std::nullopt;
}

std::optional<ViewPropagation> parse_vp(std::string_view t) {
  if (t == "push") return ViewPropagation::kPush;
  if (t == "pull") return ViewPropagation::kPull;
  if (t == "pushpull") return ViewPropagation::kPushPull;
  return std::nullopt;
}

}  // namespace

std::optional<ProtocolSpec> ProtocolSpec::parse(std::string_view text) {
  const std::string clean = lower_strip(text);
  if (clean == "newscast") return newscast();
  if (clean == "lpbcast") return lpbcast();
  std::array<std::string, 3> parts;
  std::size_t part = 0;
  for (char c : clean) {
    if (c == ',') {
      if (++part >= parts.size()) return std::nullopt;
    } else {
      parts[part].push_back(c);
    }
  }
  if (part != 2) return std::nullopt;
  auto ps = parse_ps(parts[0]);
  auto vs = parse_vs(parts[1]);
  auto vp = parse_vp(parts[2]);
  if (!ps || !vs || !vp) return std::nullopt;
  return ProtocolSpec{*ps, *vs, *vp};
}

ProtocolSpec ProtocolSpec::newscast() {
  return {PeerSelection::kRand, ViewSelection::kHead, ViewPropagation::kPushPull};
}

ProtocolSpec ProtocolSpec::lpbcast() {
  return {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPush};
}

std::vector<ProtocolSpec> ProtocolSpec::all() {
  std::vector<ProtocolSpec> out;
  out.reserve(27);
  for (auto ps : {PeerSelection::kRand, PeerSelection::kHead, PeerSelection::kTail})
    for (auto vs : {ViewSelection::kRand, ViewSelection::kHead, ViewSelection::kTail})
      for (auto vp : {ViewPropagation::kPush, ViewPropagation::kPull,
                      ViewPropagation::kPushPull})
        out.push_back({ps, vs, vp});
  return out;
}

std::vector<ProtocolSpec> ProtocolSpec::evaluated() {
  // Paper Figures 3-7 / Tables 1-2 order: rand view selection variants and
  // head view selection variants, push before pushpull, rand peer selection
  // before tail.
  return {
      {PeerSelection::kRand, ViewSelection::kHead, ViewPropagation::kPush},
      {PeerSelection::kTail, ViewSelection::kHead, ViewPropagation::kPush},
      {PeerSelection::kRand, ViewSelection::kHead, ViewPropagation::kPushPull},
      {PeerSelection::kTail, ViewSelection::kHead, ViewPropagation::kPushPull},
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPush},
      {PeerSelection::kTail, ViewSelection::kRand, ViewPropagation::kPush},
      {PeerSelection::kRand, ViewSelection::kRand, ViewPropagation::kPushPull},
      {PeerSelection::kTail, ViewSelection::kRand, ViewPropagation::kPushPull},
  };
}

std::vector<ProtocolSpec> ProtocolSpec::excluded() {
  std::vector<ProtocolSpec> out;
  for (const auto& spec : all()) {
    const bool head_ps = spec.peer_selection == PeerSelection::kHead;
    const bool tail_vs = spec.view_selection == ViewSelection::kTail;
    const bool pull = spec.view_propagation == ViewPropagation::kPull;
    if (head_ps || tail_vs || pull) out.push_back(spec);
  }
  return out;
}

}  // namespace pss
