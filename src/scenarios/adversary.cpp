#include "pss/scenarios/adversary.hpp"

#include <algorithm>

#include "pss/common/check.hpp"

namespace pss::scenarios {

AdversaryModel::AdversaryModel(AdversaryConfig config) : config_(config) {
  if (config_.kind == AdversaryKind::kForgery) {
    // The receiver's address may itself fall inside the fabricated range,
    // so the range needs one address of slack beyond forged_per_message for
    // the distinct-draw loop to always terminate.
    PSS_CHECK_MSG(config_.fabricated_range > config_.forged_per_message,
                  "fabricated_range too small for forged_per_message");
  }
  forge_seq_.assign(config_.byzantine_count, 0);
}

void AdversaryModel::forge_buffer(NodeId sender, NodeId receiver,
                                  std::vector<NodeDescriptor>& buffer) {
  PSS_DCHECK(is_byzantine(sender));
  const std::uint32_t call = forge_seq_[sender]++;
  buffer.clear();
  if (config_.kind == AdversaryKind::kHubPoison) {
    // The whole attack is one descriptor: maximally fresh self-promotion.
    buffer.push_back({sender, 0});
    return;
  }
  // Descriptor forgery. The receiver's own address rides along at hop 0 —
  // absorb's self-drop must discard it (the property test target) — plus
  // forged_per_message distinct fabricated addresses, all at hop 0 so they
  // out-compete honest entries under head selection. Content comes from a
  // pure (seed, sender, call) stream: independent of thread interleaving.
  buffer.push_back({receiver, 0});
  Rng rng = Rng::stream_at(config_.seed, sender, call);
  const std::size_t want = config_.forged_per_message + 1;
  while (buffer.size() < want) {
    const NodeId addr =
        config_.fabricated_base +
        static_cast<NodeId>(rng.below(config_.fabricated_range));
    bool duplicate = false;
    for (const NodeDescriptor& d : buffer) {
      if (d.address == addr) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) buffer.push_back({addr, 0});
  }
  // All entries share hop 0, so normalization (the tamper contract's
  // I1/I2) is a single address sort; distinctness was enforced above.
  std::sort(buffer.begin(), buffer.end(), ByHopThenAddress{});
}

std::uint64_t AdversaryModel::forged_messages() const {
  std::uint64_t total = 0;
  for (const std::uint32_t n : forge_seq_) total += n;
  return total;
}

}  // namespace pss::scenarios
