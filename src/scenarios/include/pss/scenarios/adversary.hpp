// Byzantine node policies for the engines' ExchangeTamper seam.
//
// The paper assumes correct (if failure-prone) nodes; any deployed peer
// sampling service also faces nodes that lie. AdversaryModel supplies the
// two classic attacks against gossip membership, as *policy* behind the
// mechanism-only ExchangeTamper interface in pss/sim/cycle_step.hpp:
//
//   kHubPoison — a poisoner answers every exchange with exactly one
//     descriptor: itself at hop count 0, and it never ages its own view.
//     Honest nodes keep absorbing a maximally fresh self-advertisement, so
//     the poisoner's in-degree grows without bound (hub formation) — the
//     attack that defeats proximity-free random sampling by making the
//     "uniform" sample concentrate on the attacker.
//
//   kForgery — a forger ships its honest buffer's worth of entries, but
//     every one fabricated: the receiver's own address (which absorb must
//     drop — a property test pins that) plus `forged_per_message` addresses
//     drawn from a configurable dead range, all at hop 0. Honest views fill
//     with dead links, stressing exactly the self-healing machinery of
//     paper Figure 7.
//
// Byzantine membership is the id prefix [0, byzantine_count): a pure
// function of the config, so classification is a lock-free compare (the
// thread-safety requirement of the tamper contract). Forgery content is
// derived from counter-based streams — Rng::stream_at(seed, sender,
// per-sender call index) — so what a byzantine node sends depends only on
// its own call sequence, never on thread interleaving: a hooked
// Deterministic parallel run stays bit-identical to the hooked sequential
// engine at any thread count (pinned by tests/scenarios_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/membership/node_descriptor.hpp"
#include "pss/sim/cycle_step.hpp"

namespace pss::scenarios {

/// Which lie a byzantine node tells; see the header comment.
enum class AdversaryKind : std::uint8_t {
  kHubPoison,  ///< always push {self, hop 0}; never age own view
  kForgery,    ///< push receiver's own address + fabricated dead addresses
};

struct AdversaryConfig {
  AdversaryKind kind = AdversaryKind::kHubPoison;
  /// Ids [0, byzantine_count) are byzantine; everyone else is honest.
  std::size_t byzantine_count = 0;
  /// kForgery: fabricated descriptors per forged buffer. The tamper
  /// contract caps a buffer at view_size + 1 entries, and one slot is the
  /// receiver's own address, so this must be <= view_size.
  std::size_t forged_per_message = 8;
  /// kForgery: fabricated addresses are drawn uniformly from
  /// [fabricated_base, fabricated_base + fabricated_range). Point this
  /// outside the allocatable id range (ScenarioSpec uses 4n) so forged
  /// entries are guaranteed dead links.
  NodeId fabricated_base = 0;
  std::uint64_t fabricated_range = 1;
  /// Seed of the counter-based forge streams (kForgery only).
  std::uint64_t seed = 0;
};

class AdversaryModel : public sim::ExchangeTamper {
 public:
  explicit AdversaryModel(AdversaryConfig config);

  bool is_byzantine(NodeId node) const override {
    return node < config_.byzantine_count;
  }

  bool suppress_aging(NodeId node) const override {
    return config_.kind == AdversaryKind::kHubPoison && is_byzantine(node);
  }

  void forge_buffer(NodeId sender, NodeId receiver,
                    std::vector<NodeDescriptor>& buffer) override;

  const AdversaryConfig& config() const { return config_; }

  /// Buffers forged so far, summed over all byzantine senders. Only
  /// meaningful while no engine is running (per-sender counters are
  /// written from worker lanes mid-cycle).
  std::uint64_t forged_messages() const;

 private:
  AdversaryConfig config_;
  /// Per-sender forge call counters — the `counter` of each sender's
  /// Rng::stream_at stream. Distinct array elements per sender and the
  /// engines' serialization of any one sender's steps make the increments
  /// race-free without atomics.
  std::vector<std::uint32_t> forge_seq_;
};

}  // namespace pss::scenarios
