// State digests: the currency of every differential contract in the repo.
//
// A digest is an FNV-1a fold over a run's complete observable state; two
// runs are declared equivalent exactly when their digests match. This
// header is the single definition — bench/scale_parallel.cpp's
// deterministic-vs-sequential gate, bench/scale_scenarios' differential
// phase and the tests/scenarios_test.cpp suite all hash through it, so
// "equivalent" means the same thing everywhere.
//
// Two digests are provided:
//   state_digest  — the full simulation state: per node, its liveness,
//     view (size-framed so descriptors cannot migrate across node
//     boundaries while hashing the same value sequence), NodeStats
//     counters and Rng stream position (probed via a copy — Rng is a value
//     type, so the node's stream is not perturbed). Equal digests imply
//     equal views, equal per-node stats AND equal per-node Rng
//     consumption: a desynchronized stream flips the digest even when the
//     views happen to agree.
//   census_digest — the measurement layer's verdict on a rebuilt
//     GraphCensus: degree histogram, degree summaries (bit-cast doubles:
//     bit-equality, not closeness), components, dead and cross-partition
//     link tallies. Used where two runs should agree about *observables*
//     computed through an independent code path.
#pragma once

#include <bit>
#include <cstdint>

#include "pss/obs/graph_census.hpp"
#include "pss/sim/network.hpp"

namespace pss::scenarios {

/// FNV-1a accumulator; fold 64-bit words with mix().
class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    h_ ^= v;
    h_ *= 1099511628211ULL;
  }
  void mix_double(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ULL;
};

/// Full-state digest; see the header comment. O(N·c), cheap at 10^6 nodes.
inline std::uint64_t state_digest(const sim::Network& net) {
  Fnv1a h;
  const flat::NodeArena& arena = net.arena();
  for (NodeId id = 0; id < net.size(); ++id) {
    const auto view = net.view_span(id);
    h.mix((static_cast<std::uint64_t>(view.size()) << 1) |
          (net.is_live(id) ? 1 : 0));
    for (const auto& d : view) {
      h.mix((static_cast<std::uint64_t>(d.hop_count) << 32) | d.address);
    }
    const NodeStats& s = arena.stats[id];
    h.mix(s.initiated);
    h.mix(s.received);
    h.mix(s.replies_sent);
    h.mix(s.contact_failures);
    Rng probe = arena.rngs[id];
    h.mix(probe());
  }
  return h.value();
}

/// Observable-layer digest over a rebuilt census; see the header comment.
inline std::uint64_t census_digest(const obs::GraphCensus& census) {
  Fnv1a h;
  h.mix(census.live_count());
  h.mix(census.directed_edge_count());
  h.mix(census.undirected_edge_count());
  h.mix(census.dead_link_count());
  h.mix(census.cross_partition_link_count());
  for (const std::uint64_t count : census.degree_histogram()) h.mix(count);
  for (const obs::DegreeStats* s :
       {&census.degree_stats(), &census.in_degree_stats(),
        &census.out_degree_stats()}) {
    h.mix(s->min);
    h.mix(s->max);
    h.mix_double(s->mean);
    h.mix_double(s->variance);
  }
  const obs::ComponentStats& c = census.components();
  h.mix(c.count);
  h.mix(c.largest);
  h.mix(c.outside_largest);
  return h.value();
}

}  // namespace pss::scenarios
