// Named, size-independent stress scenarios.
//
// A ScenarioSpec describes one adversarial or trace-driven run with every
// knob expressed as a *fraction of the population* (byzantine share, churn
// rates, flash-crowd size), so the same spec scales from the 10^4-node CI
// smoke to the 10^6-node bench sweep unchanged. adversary_for()/churn_for()
// materialize the fractions into concrete AdversaryConfig/TraceChurnConfig
// for a given n.
//
// The registry is the shared vocabulary of the scenario subsystem: the
// bench/scale_scenarios driver iterates it, the golden-trace tests pin a
// digest per entry, and docs/SCENARIOS.md documents each row. Adding a
// scenario here automatically enrolls it in all three.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "pss/scenarios/adversary.hpp"
#include "pss/scenarios/trace_churn.hpp"

namespace pss::scenarios {

struct ScenarioSpec {
  std::string name;
  std::string summary;

  // --- Adversary (byzantine_fraction 0 = honest run) ----------------------
  AdversaryKind adversary_kind = AdversaryKind::kHubPoison;
  double byzantine_fraction = 0;
  std::size_t forged_per_message = 0;  ///< kForgery payload size

  // --- Churn (all zero = static membership) -------------------------------
  double join_fraction = 0;   ///< joins per cycle, fraction of n
  double leave_fraction = 0;  ///< leaves per cycle, fraction of n
  std::size_t contacts_per_join = 1;
  DiurnalCurve diurnal;
  double flash_fraction = 0;  ///< one-shot join burst, fraction of n
  Cycle flash_cycle = 0;      ///< cycle of the burst
  SessionConfig sessions;     ///< Pareto lifetimes (seed filled per run)

  bool has_adversary() const { return byzantine_fraction > 0; }
  bool has_churn() const {
    return join_fraction > 0 || leave_fraction > 0 || flash_fraction > 0 ||
           sessions.pareto_alpha > 0;
  }

  /// Concrete adversary for an n-node population running view size c:
  /// byzantine_count = max(1, n * fraction), forgery payload capped at c
  /// (tamper buffer contract), fabricated addresses in [4n, 5n) — outside
  /// any id this run can allocate, so forged entries stay dead links.
  AdversaryConfig adversary_for(std::size_t n, std::size_t view_size,
                                std::uint64_t seed) const;

  /// Concrete churn trace for an n-node population; `seed` keys the Pareto
  /// lifetime streams.
  TraceChurnConfig churn_for(std::size_t n, std::uint64_t seed) const;
};

/// The built-in scenarios, stable order (golden digests index into this):
/// baseline, uniform-churn, flash-crowd, diurnal, pareto-sessions,
/// hub-poison, forgery.
std::span<const ScenarioSpec> scenario_registry();

/// Registry lookup by name; nullptr when absent.
const ScenarioSpec* find_scenario(std::string_view name);

}  // namespace pss::scenarios
