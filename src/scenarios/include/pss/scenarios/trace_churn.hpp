// Trace-driven churn: ChurnModel generalized to realistic membership
// dynamics.
//
// ChurnModel (pss/sim/churn.hpp) applies constant per-cycle join/leave
// rates — the right model for steady-state experiments, but measured P2P
// traces show three structures it cannot express:
//
//   flash crowds — a large one-shot join burst (e.g. 10^5 newcomers inside
//     a single cycle) when an application goes live;
//   diurnal cycles — join/leave rates swinging sinusoidally with the time
//     of day;
//   heavy-tailed sessions — node lifetimes following a Pareto law, so most
//     sessions are short while a few nodes stay for orders of magnitude
//     longer (the empirical finding of Saroiu et al.'s Gnutella/Napster
//     measurements).
//
// TraceChurn layers all three over the same flat join/kill machinery.
// Determinism mirrors the rest of the simulator:
//   - rate draws and bootstrap contacts come from the one Rng handed in;
//   - each node's session length is a pure function of (session seed, node
//     id) via a counter-based stream — a node's lifetime is decided the
//     moment it is born and never depends on interleaving;
//   - scheduled deaths pop from a min-heap keyed (death cycle, id), a total
//     order, so the kill sequence is reproducible.
//
// Differential contract (pinned by tests/scenarios_test.cpp): a TraceChurn
// whose config enables none of the three extensions (is_uniform()) applies
// bit-identically to a ChurnModel built from the same (base config, Rng) —
// same kills, same joins, same Rng consumption — because it literally
// delegates to an embedded ChurnModel in that mode.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/membership/node_descriptor.hpp"
#include "pss/sim/churn.hpp"
#include "pss/sim/network.hpp"

namespace pss::scenarios {

/// One-shot join burst: `joins` extra nodes injected at apply() call
/// number `at_cycle` (0-based).
struct FlashCrowd {
  Cycle at_cycle = 0;
  std::size_t joins = 0;
};

/// Sinusoidal rate modulation: at cycle t both join and leave rates are
/// multiplied by 1 + amplitude * sin(2*pi * (t mod period) / period),
/// clamped at 0. period 0 disables modulation.
struct DiurnalCurve {
  Cycle period = 0;
  double amplitude = 0;
};

/// Pareto session lengths: a node born at cycle t dies at
/// t + xm * (1 - u)^(-1/alpha) cycles, u its per-id uniform draw.
/// alpha in (1, 2] gives the heavy tail measured in deployed systems
/// (finite mean xm * alpha / (alpha - 1), infinite variance at alpha <= 2).
/// alpha 0 disables session-driven deaths.
struct SessionConfig {
  double pareto_alpha = 0;
  double pareto_xm = 1;
  std::uint64_t seed = 0;
};

struct TraceChurnConfig {
  sim::ChurnConfig base;  ///< constant rates + bootstrap contact count
  DiurnalCurve diurnal;
  std::vector<FlashCrowd> flash_crowds;
  SessionConfig sessions;

  /// True when no extension is active — the mode that delegates to
  /// ChurnModel bit-identically.
  bool is_uniform() const {
    return diurnal.period == 0 && flash_crowds.empty() &&
           sessions.pareto_alpha == 0;
  }
};

class TraceChurn {
 public:
  TraceChurn(TraceChurnConfig config, Rng rng);

  /// Applies one cycle of churn: session deaths due now, then rate-driven
  /// kills, then joins (modulated base rate plus any flash crowd scheduled
  /// for this cycle). Like ChurnModel, never kills below
  /// `contacts_per_join + 1` live nodes — session deaths that would cross
  /// the floor are deferred to the next cycle, not dropped.
  void apply(sim::Network& network);

  const sim::ChurnStats& stats() const {
    return config_.is_uniform() ? base_.stats() : stats_;
  }

  /// apply() calls so far — the trace clock.
  Cycle cycle() const { return cycle_; }

  /// Session deaths currently scheduled (test observability).
  std::size_t pending_deaths() const { return deaths_.size(); }

  /// The Pareto session length of node `id`, in cycles: inverse-CDF
  /// transform of a (seed, id)-keyed uniform draw. Pure function — tests
  /// predict any node's death cycle from the config alone.
  static Cycle pareto_lifetime(const SessionConfig& sessions, NodeId id);

  /// The diurnal rate multiplier at cycle t (1.0 when period is 0).
  static double diurnal_factor(const DiurnalCurve& curve, Cycle t);

 private:
  void seed_initial_lifetimes(const sim::Network& network);
  void apply_session_deaths(sim::Network& network, std::size_t floor);
  void join_one(sim::Network& network);

  TraceChurnConfig config_;
  sim::ChurnModel base_;  ///< uniform-mode delegate (bit-identity anchor)
  Rng rng_;               ///< trace-mode draws (kills, bootstrap contacts)
  sim::ChurnStats stats_;
  Cycle cycle_ = 0;
  bool lifetimes_seeded_ = false;

  /// Min-heap of (death cycle, id): pop order is the deterministic kill
  /// order (pairs are unique — one death per id).
  using Death = std::pair<Cycle, NodeId>;
  std::priority_queue<Death, std::vector<Death>, std::greater<Death>> deaths_;

  // Reused join buffers, mirroring ChurnModel's.
  std::vector<std::size_t> picks_;
  std::vector<std::size_t> fy_;
  std::vector<NodeDescriptor> entries_;
};

}  // namespace pss::scenarios
