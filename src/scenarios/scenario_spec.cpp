#include "pss/scenarios/scenario_spec.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pss::scenarios {

namespace {

std::size_t fraction_of(std::size_t n, double fraction) {
  return static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * fraction));
}

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> specs;

  {
    ScenarioSpec s;
    s.name = "baseline";
    s.summary = "honest static run; the differential anchor";
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "uniform-churn";
    s.summary = "constant 1%/cycle turnover (ChurnModel-equivalent mode)";
    s.join_fraction = 0.01;
    s.leave_fraction = 0.01;
    s.contacts_per_join = 3;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "flash-crowd";
    s.summary = "population doubles in one cycle (n joins at cycle 10)";
    s.flash_fraction = 1.0;
    s.flash_cycle = 10;
    s.contacts_per_join = 3;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "diurnal";
    s.summary = "1%/cycle turnover swinging +/-80% on a 24-cycle day";
    s.join_fraction = 0.01;
    s.leave_fraction = 0.01;
    s.contacts_per_join = 3;
    s.diurnal = {24, 0.8};
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "pareto-sessions";
    s.summary = "heavy-tailed lifetimes (alpha 1.5, xm 12) + 3%/cycle joins";
    s.join_fraction = 0.03;
    s.contacts_per_join = 3;
    // Mean session = xm * alpha / (alpha - 1) = 36 cycles, so ~2.8% of the
    // population dies per cycle at equilibrium; 3% joins roughly replace it.
    s.sessions.pareto_alpha = 1.5;
    s.sessions.pareto_xm = 12;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "hub-poison";
    s.summary = "1% of nodes always push {self, hop 0} and never age";
    s.adversary_kind = AdversaryKind::kHubPoison;
    s.byzantine_fraction = 0.01;
    specs.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "forgery";
    s.summary = "1% of nodes push 8 fabricated dead addresses per message";
    s.adversary_kind = AdversaryKind::kForgery;
    s.byzantine_fraction = 0.01;
    s.forged_per_message = 8;
    specs.push_back(std::move(s));
  }
  return specs;
}

}  // namespace

AdversaryConfig ScenarioSpec::adversary_for(std::size_t n,
                                            std::size_t view_size,
                                            std::uint64_t seed) const {
  AdversaryConfig config;
  config.kind = adversary_kind;
  config.byzantine_count =
      std::max<std::size_t>(1, fraction_of(n, byzantine_fraction));
  config.forged_per_message = std::min(forged_per_message, view_size);
  // Fabricated addresses live in [4n, 5n): even a flash crowd that doubles
  // the population cannot allocate ids up there, so every forged entry is
  // a dead link by construction.
  config.fabricated_base = static_cast<NodeId>(4 * n);
  config.fabricated_range =
      std::max<std::uint64_t>(n, config.forged_per_message + 1);
  config.seed = seed;
  return config;
}

TraceChurnConfig ScenarioSpec::churn_for(std::size_t n,
                                         std::uint64_t seed) const {
  TraceChurnConfig config;
  config.base.joins_per_cycle = fraction_of(n, join_fraction);
  config.base.leaves_per_cycle = fraction_of(n, leave_fraction);
  config.base.contacts_per_join = contacts_per_join;
  config.diurnal = diurnal;
  if (flash_fraction > 0) {
    config.flash_crowds.push_back({flash_cycle, fraction_of(n, flash_fraction)});
  }
  config.sessions = sessions;
  config.sessions.seed = seed;
  return config;
}

std::span<const ScenarioSpec> scenario_registry() {
  static const std::vector<ScenarioSpec> registry = build_registry();
  return registry;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  for (const ScenarioSpec& spec : scenario_registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace pss::scenarios
