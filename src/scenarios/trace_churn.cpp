#include "pss/scenarios/trace_churn.hpp"

#include <algorithm>
#include <cmath>

#include "pss/common/check.hpp"

namespace pss::scenarios {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Rate scaled by the diurnal factor, rounded to the nearest integer (so a
/// symmetric sinusoid preserves the mean rate over a full period).
std::size_t scaled_rate(std::size_t base, double factor) {
  return static_cast<std::size_t>(
      std::llround(static_cast<double>(base) * factor));
}

}  // namespace

TraceChurn::TraceChurn(TraceChurnConfig config, Rng rng)
    : config_(std::move(config)), base_(config_.base, rng), rng_(rng) {
  PSS_CHECK_MSG(config_.sessions.pareto_alpha >= 0,
                "pareto_alpha must be non-negative");
  if (config_.sessions.pareto_alpha > 0) {
    PSS_CHECK_MSG(config_.sessions.pareto_xm > 0,
                  "pareto_xm must be positive");
  }
}

Cycle TraceChurn::pareto_lifetime(const SessionConfig& sessions, NodeId id) {
  PSS_DCHECK(sessions.pareto_alpha > 0);
  Rng stream = Rng::stream_at(sessions.seed, id, 0);
  const double u = stream.uniform();  // in [0, 1): 1 - u never hits 0
  const double life =
      sessions.pareto_xm * std::pow(1.0 - u, -1.0 / sessions.pareto_alpha);
  // The heavy tail can produce astronomically long sessions; a billion
  // cycles is immortal for any run this simulator performs and keeps the
  // death-cycle arithmetic safely inside the 32-bit Cycle.
  const double capped = std::min(life, 1.0e9);
  return std::max<Cycle>(1, static_cast<Cycle>(capped));
}

double TraceChurn::diurnal_factor(const DiurnalCurve& curve, Cycle t) {
  if (curve.period == 0) return 1.0;
  const double phase = static_cast<double>(t % curve.period) /
                       static_cast<double>(curve.period);
  const double factor = 1.0 + curve.amplitude * std::sin(kTwoPi * phase);
  return factor < 0 ? 0.0 : factor;
}

void TraceChurn::seed_initial_lifetimes(const sim::Network& network) {
  // The population present at the first apply() is the "trace start": every
  // live node gets its id-keyed lifetime, in ascending id order (the heap
  // contents are order-independent, but determinism costs nothing).
  for (NodeId id = 0; id < network.size(); ++id) {
    if (!network.is_live(id)) continue;
    deaths_.push({cycle_ + pareto_lifetime(config_.sessions, id), id});
  }
  lifetimes_seeded_ = true;
}

void TraceChurn::apply_session_deaths(sim::Network& network,
                                      std::size_t floor) {
  while (!deaths_.empty() && deaths_.top().first <= cycle_) {
    const Death due = deaths_.top();
    if (!network.is_live(due.second)) {
      // Already removed by rate-driven churn; its scheduled death lapses.
      deaths_.pop();
      continue;
    }
    if (network.live_count() <= floor) {
      // Kill floor reached: defer this death to the next cycle (later due
      // entries simply stay in the heap and re-surface then too).
      deaths_.pop();
      deaths_.push({cycle_ + 1, due.second});
      break;
    }
    deaths_.pop();
    network.kill(due.second);
    ++stats_.left;
  }
}

void TraceChurn::join_one(sim::Network& network) {
  // Byte-for-byte the ChurnModel flat join (see churn.cpp): contacts from
  // the incremental live pool, hop-0 descriptors sorted straight into the
  // newcomer's arena slot.
  const std::size_t c = network.options().view_size;
  const auto live = network.live_ids();
  const std::size_t contacts =
      std::min(config_.base.contacts_per_join, live.size());
  rng_.sample_indices_into(live.size(), contacts, picks_, fy_);
  entries_.clear();
  for (std::size_t p : picks_) entries_.push_back({live[p], 0});
  std::sort(entries_.begin(), entries_.end(), ByHopThenAddress{});
  if (entries_.size() > c) entries_.resize(c);
  const NodeId newcomer = network.add_node();
  network.arena().views.assign(newcomer, entries_);
  ++stats_.joined;
  if (config_.sessions.pareto_alpha > 0) {
    deaths_.push(
        {cycle_ + pareto_lifetime(config_.sessions, newcomer), newcomer});
  }
}

void TraceChurn::apply(sim::Network& network) {
  if (config_.is_uniform()) {
    // The differential anchor: uniform mode IS ChurnModel (same config,
    // same Rng, same code path), so the bit-identity contract is
    // structural rather than re-implemented.
    base_.apply(network);
    ++cycle_;
    return;
  }
  const std::size_t floor = config_.base.contacts_per_join + 1;
  if (config_.sessions.pareto_alpha > 0 && !lifetimes_seeded_) {
    seed_initial_lifetimes(network);
  }
  apply_session_deaths(network, floor);

  // Rate-driven kills, diurnal-modulated, honoring the same floor as
  // ChurnModel::apply.
  const double factor = diurnal_factor(config_.diurnal, cycle_);
  std::size_t kills = scaled_rate(config_.base.leaves_per_cycle, factor);
  if (network.live_count() > floor) {
    kills = std::min(kills, network.live_count() - floor);
  } else {
    kills = 0;
  }
  if (kills > 0) {
    network.kill_random(kills, rng_);
    stats_.left += kills;
  }

  // Joins: modulated base rate plus any flash crowd scheduled for now.
  std::size_t joins = scaled_rate(config_.base.joins_per_cycle, factor);
  for (const FlashCrowd& crowd : config_.flash_crowds) {
    if (crowd.at_cycle == cycle_) joins += crowd.joins;
  }
  for (std::size_t j = 0; j < joins; ++j) join_one(network);
  ++cycle_;
}

}  // namespace pss::scenarios
