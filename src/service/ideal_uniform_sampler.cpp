#include "pss/service/ideal_uniform_sampler.hpp"

namespace pss {

IdealUniformSampler::IdealUniformSampler(NodeId self, std::size_t group_size,
                                         Rng rng)
    : self_(self), group_size_(group_size), rng_(rng) {}

void IdealUniformSampler::set_group_size(std::size_t group_size) {
  group_size_ = group_size;
}

NodeId IdealUniformSampler::get_peer() {
  if (group_size_ < 2) return kInvalidNode;
  // Sample from group \ {self} by shifting indices at or above self.
  const bool self_in_group = self_ < group_size_;
  const std::size_t pool = self_in_group ? group_size_ - 1 : group_size_;
  auto pick = static_cast<NodeId>(rng_.below(pool));
  if (self_in_group && pick >= self_) ++pick;
  return pick;
}

}  // namespace pss
