// Ideal independent uniform sampler — the baseline every gossip-based
// implementation is compared against (paper Sections 2 and 4).
//
// This is the "every node knows everyone" implementation whose maintenance
// cost the paper argues is unscalable; in the simulator it is free, so it
// serves as the ground-truth sampling service for baseline comparisons in
// examples and benches.
#pragma once

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"

namespace pss {

class IdealUniformSampler {
 public:
  /// Samples uniformly from [0, group_size) \ {self}.
  IdealUniformSampler(NodeId self, std::size_t group_size, Rng rng);

  /// Adjusts the known group size (full-membership services track joins
  /// and leaves out of band).
  void set_group_size(std::size_t group_size);

  /// Uniform random member other than self; kInvalidNode for groups of
  /// size < 2.
  NodeId get_peer();

 private:
  NodeId self_;
  std::size_t group_size_;
  Rng rng_;
};

}  // namespace pss
