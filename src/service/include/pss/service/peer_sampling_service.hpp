// The peer sampling service API (paper Section 2).
//
// The service exposes exactly two methods to applications:
//   init()    — initialize the service on this node (bootstrap the view from
//               out-of-band contact addresses);
//   getPeer() — return one peer address sampled from the group.
// There is deliberately no stop(): departed nodes are forgotten by the
// gossip layer itself (their descriptors age out of views).
//
// This implementation backs the service with a GossipNode whose view is
// maintained by one of the 27 framework protocols. getPeer() samples from
// the current partial view; two strategies are provided:
//   kUniformFromView — independent uniform choice from the view (the
//                      paper's "simplest possible implementation");
//   kShuffledQueue   — drains a shuffled copy of the view before resampling,
//                      maximizing the diversity of consecutive samples (the
//                      optimization the paper mentions as possible).
#pragma once

#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/protocol/gossip_node.hpp"

namespace pss {

class PeerSamplingService {
 public:
  enum class GetPeerStrategy { kUniformFromView, kShuffledQueue };

  /// The service wraps an existing gossip node (the node's lifetime must
  /// cover the service's). `rng` drives getPeer sampling only.
  PeerSamplingService(GossipNode& node, Rng rng,
                      GetPeerStrategy strategy = GetPeerStrategy::kUniformFromView);

  /// init(): seeds the underlying view from bootstrap contacts (hop 0).
  /// Idempotent: repeated calls after the first are ignored, matching the
  /// "if this has not been done before" clause of the specification.
  void init(std::span<const NodeId> contacts);

  /// True once init() has seeded the view from bootstrap contacts.
  bool initialized() const { return initialized_; }

  /// getPeer(): one sampled peer address, or kInvalidNode when the node
  /// currently knows no other member (singleton group or empty view).
  NodeId get_peer();

  /// Convenience: k samples via repeated getPeer() calls.
  std::vector<NodeId> get_peers(std::size_t k);

  GetPeerStrategy strategy() const { return strategy_; }
  const GossipNode& node() const { return *node_; }

 private:
  NodeId pop_from_queue();

  GossipNode* node_;
  Rng rng_;
  GetPeerStrategy strategy_;
  bool initialized_ = false;
  std::vector<NodeId> queue_;  ///< shuffled-queue strategy state
};

}  // namespace pss
