// Statistical quality assessment of a peer sampling service — the paper's
// central question ("is getPeer() a uniform random sample?") made
// operational. Given a stream of samples drawn by one consumer, reports:
//   - coverage (distinct peers seen),
//   - Pearson chi-square statistic against the uniform distribution over
//     the population, with a normal-approximation p-value (Wilson-Hilferty),
//   - hit-count coefficient of variation,
//   - consecutive-repeat rate vs the uniform expectation.
// The paper's headline result in these terms: every gossip-based
// implementation FAILS the uniformity test while the IdealUniformSampler
// passes it; tests and ablation_getpeer verify both directions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pss/common/types.hpp"

namespace pss {

struct UniformityReport {
  std::size_t draws = 0;
  std::size_t population = 0;     ///< candidate peers (excludes the consumer)
  std::size_t distinct = 0;       ///< distinct peers actually returned
  double chi_square = 0;          ///< Pearson statistic, df = population - 1
  double p_value = 0;             ///< P(chi2 >= observed | uniform)
  double hit_cv = 0;              ///< stddev/mean of per-peer hit counts
  double repeat_rate = 0;         ///< fraction of consecutive equal samples
  double expected_repeat_rate = 0;  ///< 1/population under uniformity

  /// Conventional read: uniform at significance alpha when p_value >= alpha.
  bool plausibly_uniform(double alpha = 0.01) const { return p_value >= alpha; }
};

/// Assesses a sample stream against the uniform distribution over
/// `population` equally-likely peers. Samples with address >= population
/// are rejected (throws): callers must map addresses into [0, population).
UniformityReport assess_uniformity(std::span<const NodeId> samples,
                                   std::size_t population);

/// Upper-tail probability of a chi-square variate with `df` degrees of
/// freedom exceeding `x`, via the Wilson-Hilferty cube-root normal
/// approximation (accurate to ~1e-3 for df >= 3, fine for df in the
/// hundreds as used here).
double chi_square_upper_tail(double x, std::size_t df);

}  // namespace pss
