#include "pss/service/peer_sampling_service.hpp"

namespace pss {

PeerSamplingService::PeerSamplingService(GossipNode& node, Rng rng,
                                         GetPeerStrategy strategy)
    : node_(&node), rng_(rng), strategy_(strategy) {}

void PeerSamplingService::init(std::span<const NodeId> contacts) {
  if (initialized_) return;
  std::vector<NodeDescriptor> entries;
  entries.reserve(contacts.size());
  for (NodeId contact : contacts) entries.push_back({contact, 0});
  node_->init_view(View(std::move(entries)));
  initialized_ = true;
}

NodeId PeerSamplingService::pop_from_queue() {
  const View& view = node_->view();
  // Drop queued addresses that have since left the view; refill from a
  // shuffled copy of the live view when drained.
  while (true) {
    if (queue_.empty()) {
      queue_.reserve(view.size());
      for (const auto& d : view.entries()) queue_.push_back(d.address);
      rng_.shuffle(queue_);
    }
    const NodeId candidate = queue_.back();
    queue_.pop_back();
    if (view.contains(candidate)) return candidate;
    if (queue_.empty() && view.empty()) return kInvalidNode;
  }
}

NodeId PeerSamplingService::get_peer() {
  const View& view = node_->view();
  if (view.empty()) return kInvalidNode;
  switch (strategy_) {
    case GetPeerStrategy::kUniformFromView:
      return view.peer_rand(rng_);
    case GetPeerStrategy::kShuffledQueue:
      return pop_from_queue();
  }
  return kInvalidNode;
}

std::vector<NodeId> PeerSamplingService::get_peers(std::size_t k) {
  std::vector<NodeId> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId peer = get_peer();
    if (peer == kInvalidNode) break;
    out.push_back(peer);
  }
  return out;
}

}  // namespace pss
