#include "pss/service/sampling_quality.hpp"

#include <cmath>

#include "pss/common/check.hpp"

namespace pss {

double chi_square_upper_tail(double x, std::size_t df) {
  PSS_CHECK_MSG(df > 0, "degrees of freedom must be positive");
  if (x <= 0) return 1.0;
  // Wilson-Hilferty: (X/df)^(1/3) ~ Normal(1 - 2/(9 df), 2/(9 df)).
  const double n = static_cast<double>(df);
  const double t = std::cbrt(x / n);
  const double mu = 1.0 - 2.0 / (9.0 * n);
  const double sigma = std::sqrt(2.0 / (9.0 * n));
  const double z = (t - mu) / sigma;
  // Upper tail of the standard normal via erfc.
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

UniformityReport assess_uniformity(std::span<const NodeId> samples,
                                   std::size_t population) {
  PSS_CHECK_MSG(population >= 2, "population must have at least two peers");
  PSS_CHECK_MSG(!samples.empty(), "no samples to assess");
  UniformityReport report;
  report.draws = samples.size();
  report.population = population;

  std::vector<std::size_t> hits(population, 0);
  std::size_t repeats = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    PSS_CHECK_MSG(samples[i] < population,
                  "sample outside the declared population");
    ++hits[samples[i]];
    if (i > 0 && samples[i] == samples[i - 1]) ++repeats;
  }

  const double expected =
      static_cast<double>(report.draws) / static_cast<double>(population);
  double chi = 0, sum = 0, sum_sq = 0;
  for (std::size_t h : hits) {
    if (h > 0) ++report.distinct;
    const double diff = static_cast<double>(h) - expected;
    chi += diff * diff / expected;
    sum += static_cast<double>(h);
    sum_sq += static_cast<double>(h) * static_cast<double>(h);
  }
  report.chi_square = chi;
  report.p_value = chi_square_upper_tail(chi, population - 1);
  const double mean = sum / static_cast<double>(population);
  const double var = sum_sq / static_cast<double>(population) - mean * mean;
  report.hit_cv = mean > 0 ? std::sqrt(var > 0 ? var : 0) / mean : 0;
  report.repeat_rate = samples.size() > 1
                           ? static_cast<double>(repeats) /
                                 static_cast<double>(samples.size() - 1)
                           : 0;
  report.expected_repeat_rate = 1.0 / static_cast<double>(population);
  return report;
}

}  // namespace pss
