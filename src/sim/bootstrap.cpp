#include "pss/sim/bootstrap.hpp"

#include <vector>

#include "pss/common/check.hpp"
#include "pss/membership/view.hpp"

namespace pss::sim::bootstrap {

void init_random(Network& network) {
  const auto live = network.live_nodes();
  const std::size_t n = live.size();
  PSS_CHECK_MSG(n >= 2, "random bootstrap needs at least two nodes");
  const std::size_t c = network.options().view_size;
  Rng& rng = network.rng();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = live[i];
    const std::size_t want = std::min(c, n - 1);
    // Sample positions in [0, n-1) and shift those at or past `i` by one so
    // the node itself is never drawn.
    auto picks = rng.sample_indices(n - 1, want);
    std::vector<NodeDescriptor> entries;
    entries.reserve(want);
    for (std::size_t p : picks) entries.push_back({live[p < i ? p : p + 1], 0});
    network.node(id).set_view(View(std::move(entries)));
  }
}

void init_lattice(Network& network) {
  const auto live = network.live_nodes();
  const std::size_t n = live.size();
  PSS_CHECK_MSG(n >= 2, "lattice bootstrap needs at least two nodes");
  const std::size_t c = std::min(network.options().view_size, n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<NodeDescriptor> entries;
    entries.reserve(c);
    // Nearest neighbours by ring distance: +1, -1, +2, -2, ...
    for (std::size_t dist = 1; entries.size() < c; ++dist) {
      entries.push_back({live[(i + dist) % n], 0});
      if (entries.size() >= c) break;
      entries.push_back({live[(i + n - dist % n) % n], 0});
    }
    network.node(live[i]).set_view(View(std::move(entries)));
  }
}

void init_star(Network& network) {
  const auto live = network.live_nodes();
  const std::size_t n = live.size();
  PSS_CHECK_MSG(n >= 2, "star bootstrap needs at least two nodes");
  const std::size_t c = network.options().view_size;
  const NodeId hub = live.front();
  std::vector<NodeDescriptor> hub_view;
  for (std::size_t i = 1; i < n && hub_view.size() < c; ++i)
    hub_view.push_back({live[i], 0});
  network.node(hub).set_view(View(std::move(hub_view)));
  for (std::size_t i = 1; i < n; ++i)
    network.node(live[i]).set_view(View{{hub, 0}});
}

Network make_random(ProtocolSpec spec, ProtocolOptions options, std::size_t n,
                    std::uint64_t seed) {
  Network network(spec, options, seed);
  network.add_nodes(n);
  init_random(network);
  return network;
}

Network make_lattice(ProtocolSpec spec, ProtocolOptions options, std::size_t n,
                     std::uint64_t seed) {
  Network network(spec, options, seed);
  network.add_nodes(n);
  init_lattice(network);
  return network;
}

}  // namespace pss::sim::bootstrap
