#include "pss/sim/churn.hpp"

#include <algorithm>
#include <vector>

#include "pss/membership/view.hpp"

namespace pss::sim {

void ChurnModel::apply(Network& network) {
  const std::size_t floor = config_.contacts_per_join + 1;
  std::size_t kills = config_.leaves_per_cycle;
  if (network.live_count() > floor) {
    kills = std::min(kills, network.live_count() - floor);
  } else {
    kills = 0;
  }
  if (kills > 0) {
    network.kill_random(kills, rng_);
    stats_.left += kills;
  }
  for (std::size_t j = 0; j < config_.joins_per_cycle; ++j) {
    // Bootstrap contacts come straight from the incremental live-id pool —
    // O(contacts) per join — re-read each iteration because add_node below
    // extends the pool (and earlier newcomers are eligible contacts, as
    // they were when this built a fresh live list per join).
    const auto live = network.live_ids();
    const std::size_t contacts =
        std::min(config_.contacts_per_join, live.size());
    auto picks = rng_.sample_indices(live.size(), contacts);
    std::vector<NodeDescriptor> entries;
    entries.reserve(contacts);
    for (std::size_t p : picks) entries.push_back({live[p], 0});
    const NodeId newcomer = network.add_node();
    network.node(newcomer).init_view(View(std::move(entries)));
    ++stats_.joined;
  }
}

}  // namespace pss::sim
