#include "pss/sim/churn.hpp"

#include <algorithm>

#include "pss/membership/node_descriptor.hpp"

namespace pss::sim {

void ChurnModel::apply(Network& network) {
  const std::size_t floor = config_.contacts_per_join + 1;
  std::size_t kills = config_.leaves_per_cycle;
  if (network.live_count() > floor) {
    kills = std::min(kills, network.live_count() - floor);
  } else {
    kills = 0;
  }
  if (kills > 0) {
    network.kill_random(kills, rng_);
    stats_.left += kills;
  }
  const std::size_t c = network.options().view_size;
  for (std::size_t j = 0; j < config_.joins_per_cycle; ++j) {
    // Bootstrap contacts come straight from the incremental live-id pool —
    // O(contacts) per join — re-read each iteration because add_node below
    // extends the pool (and earlier newcomers are eligible contacts, as
    // they were when this built a fresh live list per join).
    const auto live = network.live_ids();
    const std::size_t contacts =
        std::min(config_.contacts_per_join, live.size());
    rng_.sample_indices_into(live.size(), contacts, picks_, fy_);
    // Flat join: the newcomer's bootstrap view goes straight into its arena
    // slot. The picks are distinct pool positions and every descriptor is
    // hop 0, so normalization (I1/I2) is a single address sort — the same
    // view the historical GossipNode::init_view(View(...)) path produced
    // (normalize, drop self — the newcomer is not in the pool it was drawn
    // from — truncate to c), with zero per-join heap allocation.
    entries_.clear();
    for (std::size_t p : picks_) entries_.push_back({live[p], 0});
    std::sort(entries_.begin(), entries_.end(), ByHopThenAddress{});
    if (entries_.size() > c) entries_.resize(c);
    const NodeId newcomer = network.add_node();
    network.arena().views.assign(newcomer, entries_);
    ++stats_.joined;
  }
}

}  // namespace pss::sim
