#include "pss/sim/cycle_engine.hpp"

namespace pss::sim {

void CycleEngine::run_cycle() {
  auto order = network_->live_nodes();
  network_->rng().shuffle(order);
  for (NodeId initiator : order) {
    // A node killed mid-cycle (only possible via external injection between
    // cycles in the current API, but cheap to guard) is skipped.
    if (!network_->is_live(initiator)) continue;
    initiate_exchange(initiator);
  }
  ++cycle_;
}

void CycleEngine::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) run_cycle();
}

void CycleEngine::initiate_exchange(NodeId initiator) {
  GossipNode& active = network_->node(initiator);
  // Once-per-cycle aging (timestamp semantics; see gossip_node.hpp).
  active.age_view();
  auto peer = active.select_peer();
  if (!peer) {
    ++stats_.empty_views;
    return;
  }
  active.note_initiated();
  if (!network_->is_live(*peer) ||
      !network_->can_communicate(initiator, *peer)) {
    // Dead peer or a network partition between the two: the exchange is
    // silently lost either way.
    active.on_contact_failure(*peer);
    ++stats_.failed_contacts;
    return;
  }
  GossipNode& passive = network_->node(*peer);
  const View buffer = active.make_active_buffer();
  auto reply = passive.handle_message(buffer);
  if (active.spec().pull()) {
    // The reply exists whenever the protocol pulls; both sides run the same
    // spec, so this is an internal invariant rather than a runtime branch.
    active.handle_reply(*reply);
  }
  ++stats_.exchanges;
}

}  // namespace pss::sim
