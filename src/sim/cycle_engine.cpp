#include "pss/sim/cycle_engine.hpp"

#include "pss/sim/cycle_step.hpp"

namespace pss::sim {

void CycleEngine::run_cycle() {
  // Same permutation as the legacy engine: ascending live ids, one
  // Fisher–Yates shuffle off the master rng — only the list buffer is
  // reused instead of reallocated.
  order_.clear();
  const std::size_t n = network_->size();
  for (NodeId id = 0; id < n; ++id) {
    if (network_->is_live(id)) order_.push_back(id);
  }
  network_->rng().shuffle(order_);
  // Warm the next few initiators' state while the current exchange runs;
  // the permutation makes every access a random one, so without this the
  // engine stalls on memory at large N.
  constexpr std::size_t kPrefetchAhead = 8;
  const flat::NodeArena& arena = network_->arena();
  for (std::size_t i = 0; i < std::min(kPrefetchAhead, order_.size()); ++i) {
    arena.prefetch_node(order_[i]);
  }
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (i + kPrefetchAhead < order_.size()) {
      arena.prefetch_node(order_[i + kPrefetchAhead]);
    }
    const NodeId initiator = order_[i];
    // A node killed mid-cycle (only possible via external injection between
    // cycles in the current API, but cheap to guard) is skipped.
    if (!network_->is_live(initiator)) continue;
    // The shared two-phase body, back to back (see cycle_step.hpp). The
    // unhooked path is the original code; the traced path brackets the two
    // phases with wall clocks and records spans (trace_probe.hpp).
    if (trace_ == nullptr) {
      const CycleStep step = select_cycle_step(*network_, initiator);
      execute_cycle_step(*network_, step, scratch_, stats_, tamper_);
    } else {
      traced_step(initiator);
    }
  }
  ++cycle_;
  fire_probes(probes_, *network_, cycle_);
}

void CycleEngine::traced_step(NodeId initiator) {
  const bool armed = trace_->armed();
  std::uint64_t t0 = armed ? trace_clock_ns() : 0;
  CycleStep step = select_cycle_step(*network_, initiator);
  step.trace_id = ++trace_exchange_;
  if (armed) {
    const std::uint64_t t1 = trace_clock_ns();
    trace_->record({TracePhase::kSelect, initiator,
                    step.kind == StepKind::kEmptyView ? kInvalidNode
                                                      : step.peer,
                    step.trace_id, cycle_ + 1, t0, t1});
    t0 = t1;
  }
  execute_cycle_step(*network_, step, scratch_, stats_, tamper_);
  if (armed && step.kind == StepKind::kExchange) {
    trace_->record({TracePhase::kMergeApply, initiator, step.peer,
                    step.trace_id, cycle_ + 1, t0, trace_clock_ns()});
  }
}

void CycleEngine::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) run_cycle();
}

}  // namespace pss::sim
