#include "pss/sim/event_engine.hpp"

#include "pss/common/check.hpp"
#include "pss/protocol/flat_exchange.hpp"

namespace pss::sim {

namespace {
// One calendar year spans two periods: the pending set at any instant is
// every node's next wake-up (all within one period) plus in-flight messages
// (within max_latency), so a two-period year keeps the whole population
// inside one lap with headroom for rearms landing a period ahead.
constexpr double kYearsPerPeriod = 2.0;
}  // namespace

EventEngine::EventEngine(Network& network, EventEngineConfig config)
    : network_(&network),
      config_(config),
      queue_(kYearsPerPeriod *
             (config.period > 0 ? config.period : 1.0)),
      pool_(network.options().view_size + 1) {
  PSS_CHECK_MSG(config_.period > 0, "period must be positive");
  PSS_CHECK_MSG(config_.min_latency >= 0 &&
                    config_.min_latency <= config_.max_latency,
                "latency bounds must satisfy 0 <= min <= max");
  PSS_CHECK_MSG(config_.drop_probability >= 0 && config_.drop_probability <= 1,
                "drop probability must be in [0,1]");
}

void EventEngine::push_event(double at, Kind kind, NodeId from, NodeId to,
                             std::uint64_t exchange_id,
                             DescriptorSlabPool::SlabId slab) {
  FlatEvent e;
  e.from = from;
  e.to = to;
  e.slab = slab;
  e.kind = static_cast<std::uint32_t>(kind);
  e.exchange_id = exchange_id;
  queue_.push(at, next_seq_++, e);
}

std::uint32_t EventEngine::maybe_forge_slab(NodeId sender, NodeId receiver,
                                            DescriptorSlabPool::SlabId slab,
                                            std::uint32_t size) {
  if (tamper_ == nullptr || !tamper_->is_byzantine(sender)) return size;
  NodeDescriptor* data = pool_.data(slab);
  forged_.assign(data, data + size);
  tamper_->forge_buffer(sender, receiver, forged_);
  // The tamper contract caps forged buffers at view_size + 1 entries —
  // exactly one slab (the same bound an honest push buffer satisfies).
  PSS_CHECK_MSG(forged_.size() <= network_->options().view_size + 1,
                "forged buffer exceeds message slab capacity");
  std::copy(forged_.begin(), forged_.end(), data);
  return static_cast<std::uint32_t>(forged_.size());
}

void EventEngine::send_request(NodeId from, NodeId to,
                               std::uint64_t exchange_id, bool age_view) {
  const bool traced = trace_ != nullptr && trace_->armed();
  const std::uint64_t t0 = traced ? trace_clock_ns() : 0;
  ++stats_.messages_sent;
  Rng& rng = network_->rng();
  if (rng.chance(config_.drop_probability)) {
    ++stats_.messages_dropped;
    // A dropped message never needs its payload built, but the slot's
    // once-per-period aging still happens (it preceded the drop draw
    // before the fusion below; aging consumes no Rng, so deferring it
    // behind the draw is invisible).
    if (age_view) network_->arena().views.age(from);
    // The active thread did send; the loss is in-flight. The span still
    // marks the request as sent so the stitcher sees the broken chain.
    if (traced) {
      trace_->record({TracePhase::kRequestSent, from, to, exchange_id, ticks_,
                      t0, trace_clock_ns()});
    }
    return;
  }
  const double latency =
      config_.min_latency +
      rng.uniform() * (config_.max_latency - config_.min_latency);
  const DescriptorSlabPool::SlabId slab = pool_.acquire();
  // Fused pass: age the active slot while streaming the aged entries (and
  // the leading {self, 0}) straight into the message slab — one touch of
  // the slot where age + write_active_buffer paid two (the double-touch
  // the ROADMAP charged this engine with). Byzantine wakeups keep the
  // unfused build on the un-aged view (their aging was suppressed).
  std::uint32_t n =
      age_view ? flat::age_write_active_buffer(network_->arena().views, from,
                                               from, network_->spec().push(),
                                               pool_.data(slab))
               : flat::write_active_buffer(network_->arena().views.view_of(from),
                                           from, network_->spec().push(),
                                           pool_.data(slab));
  n = maybe_forge_slab(from, to, slab, n);
  pool_.set_size(slab, n);
  push_event(now_ + latency, Kind::kRequest, from, to, exchange_id, slab);
  if (traced) {
    trace_->record({TracePhase::kRequestSent, from, to, exchange_id, ticks_,
                    t0, trace_clock_ns()});
  }
}

void EventEngine::expire_pending(NodeId node) {
  // The pull reply never arrived in time: treat as a failed contact.
  expire_overdue(network_->arena(), node, pending_[node], now_,
                 network_->options());
}

void EventEngine::on_wakeup(NodeId id) {
  // Re-arm the periodic timer first so a node keeps its phase forever (and
  // the rearm takes its seq before the request — the legacy event order).
  push_event(now_ + config_.period, Kind::kWakeup, kInvalidNode, id, 0,
             DescriptorSlabPool::kNoSlab);

  if (!network_->is_live(id)) return;
  ++stats_.wakeups;
  flat::NodeArena& arena = network_->arena();
  const bool traced = trace_ != nullptr && trace_->armed();
  std::uint64_t t0 = 0;
  if (traced) {
    t0 = trace_clock_ns();
    // expire_pending is about to surface this as a contact failure; mark
    // the timeout against the exchange that never completed.
    const PendingExchange& p = pending_[id];
    if (p.active && p.deadline < now_) {
      trace_->record({TracePhase::kTimeout, id, p.peer, p.exchange_id, ticks_,
                      t0, t0});
    }
  }
  expire_pending(id);

  // Peer selection runs on the un-aged view so the once-per-period aging
  // can fuse with the request-buffer build in send_request (one pass over
  // the active slot instead of two). Legal by the argument pinned in
  // cycle_step.hpp: a uniform +1 preserves the (hop, address) order, the
  // class boundaries and the class sizes, so every policy picks the same
  // address and consumes Rng identically on either side of the aging.
  const bool age_view = tamper_ == nullptr || !tamper_->suppress_aging(id);
  auto peer = flat::select_peer(arena.views.view_of(id),
                                network_->spec().peer_selection,
                                arena.rngs[id]);
  if (!peer) {
    if (age_view) arena.views.age(id);  // timestamp semantics, peer or not
    if (traced) {
      trace_->record({TracePhase::kSelect, id, kInvalidNode, 0, ticks_, t0,
                      trace_clock_ns()});
    }
    return;
  }
  ++arena.stats[id].initiated;

  const std::uint64_t exchange_id = next_exchange_++;
  if (network_->spec().pull()) {
    // Starting a new exchange supersedes any outstanding one.
    if (open_exchange(pending_[id], exchange_id, *peer,
                      now_ + config_.reply_timeout)) {
      ++stats_.replies_stale;
    }
  }
  if (traced) {
    trace_->record({TracePhase::kSelect, id, *peer, exchange_id, ticks_, t0,
                    trace_clock_ns()});
  }
  send_request(id, *peer, exchange_id, age_view);
}

void EventEngine::on_request(const FlatEvent& e) {
  if (!network_->is_live(e.to) || !network_->can_communicate(e.from, e.to)) {
    ++stats_.messages_to_dead;
    pool_.release(e.slab);
    return;
  }
  flat::NodeArena& arena = network_->arena();
  const bool pull = network_->spec().pull();
  const bool traced = trace_ != nullptr && trace_->armed();
  const std::uint64_t t0 = traced ? trace_clock_ns() : 0;

  // Reply dispatch (master-stream draws) decided up front so a reply that
  // will be dropped is never built. The legacy engine draws these after the
  // passive handler, but the master and per-node streams are independent,
  // so each stream's own sequence — all that determinism rests on — is
  // unchanged (pinned by the trace-equivalence suite).
  bool deliver_reply = false;
  double latency = 0;
  DescriptorSlabPool::SlabId reply_slab = DescriptorSlabPool::kNoSlab;
  if (pull) {
    ++stats_.messages_sent;
    Rng& rng = network_->rng();
    if (rng.chance(config_.drop_probability)) {
      ++stats_.messages_dropped;
    } else {
      latency = config_.min_latency +
                rng.uniform() * (config_.max_latency - config_.min_latency);
      deliver_reply = true;
      // Acquired before data(e.slab): acquire may move the pool's backing
      // array, which would invalidate the request pointer below.
      reply_slab = pool_.acquire();
    }
  }

  NodeDescriptor* request = pool_.data(e.slab);
  NodeDescriptor* reply_out = deliver_reply ? pool_.data(reply_slab) : nullptr;
  std::uint32_t reply_size = flat::handle_request(
      arena, e.to, request, pool_.size(e.slab), reply_out, network_->spec(),
      network_->options(), scratch_);
  pool_.release(e.slab);
  if (deliver_reply) {
    reply_size = maybe_forge_slab(e.to, e.from, reply_slab, reply_size);
    pool_.set_size(reply_slab, reply_size);
    push_event(now_ + latency, Kind::kReply, e.to, e.from, e.exchange_id,
               reply_slab);
  }
  if (traced) {
    trace_->record({TracePhase::kMergeApply, e.to, e.from, e.exchange_id,
                    ticks_, t0, trace_clock_ns()});
  }
}

void EventEngine::on_reply(const FlatEvent& e) {
  if (!network_->is_live(e.to) || !network_->can_communicate(e.from, e.to)) {
    ++stats_.messages_to_dead;
    pool_.release(e.slab);
    return;
  }
  if (!admit_reply(pending_[e.to], e.exchange_id, now_)) {
    ++stats_.replies_stale;
    pool_.release(e.slab);
    return;
  }
  const bool traced = trace_ != nullptr && trace_->armed();
  const std::uint64_t t0 = traced ? trace_clock_ns() : 0;
  flat::handle_reply(network_->arena(), e.to, pool_.data(e.slab),
                     pool_.size(e.slab), network_->spec(),
                     network_->options(), scratch_);
  pool_.release(e.slab);
  ++stats_.replies_delivered;
  if (traced) {
    trace_->record({TracePhase::kReplyReceived, e.to, e.from, e.exchange_id,
                    ticks_, t0, trace_clock_ns()});
  }
}

void EventEngine::schedule_new_nodes() {
  // Nodes created since the last call get a first wake-up with a uniform
  // random phase inside one period, matching the skeleton's independent
  // per-node timers.
  const std::size_t n = network_->size();
  if (scheduled_nodes_ >= n) return;
  pending_.resize(n);
  while (scheduled_nodes_ < n) {
    const NodeId id = static_cast<NodeId>(scheduled_nodes_++);
    const double at = now_ + network_->rng().uniform() * config_.period;
    push_event(at, Kind::kWakeup, kInvalidNode, id, 0,
               DescriptorSlabPool::kNoSlab);
  }
}

void EventEngine::advance_to(double until) {
  schedule_new_nodes();
  const flat::NodeArena& arena = network_->arena();
  while (const auto* item = queue_.pop_if_at_most(until)) {
    now_ = item->at;
    // The handler's arena touches are random reads over hundreds of MB at
    // scale; warming the *next* event's target while this one is handled
    // hides most of that latency (same trick as CycleEngine's lookahead).
    // peek_hint is a scan-free guess — good enough for a prefetch.
    if (const auto* hint = queue_.peek_hint()) {
      arena.prefetch_node(hint->value.to);
      if (hint->value.slab != DescriptorSlabPool::kNoSlab) {
        pool_.prefetch(hint->value.slab);
      }
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(pending_.data() + hint->value.to, 1, 1);
#endif
    }
    const FlatEvent e = item->value;  // handlers push, which may repoint item
    switch (static_cast<Kind>(e.kind)) {
      case Kind::kWakeup: on_wakeup(e.to); break;
      case Kind::kRequest: on_request(e); break;
      case Kind::kReply: on_reply(e); break;
    }
  }
  now_ = until;
}

void EventEngine::run_until(double until) {
  advance_to(until);
  // Explicit time targets re-anchor the cycle counter: subsequent
  // run_cycles calls count whole periods from here.
  tick_anchor_ = now_;
  ticks_ = 0;
}

void EventEngine::run_cycles(std::size_t cycles) {
  if (probes_.empty()) {
    ticks_ += cycles;
    probe_ticks_ += static_cast<Cycle>(cycles);  // keep the lifetime count
    advance_to(tick_anchor_ + static_cast<double>(ticks_) * config_.period);
    return;
  }
  // With probes attached, stop at every tick boundary so observers see the
  // overlay at cycle granularity. Each target is computed from the anchor
  // exactly as the probe-free path computes its single target, so the final
  // time — and, events being totally (at, seq)-ordered, the whole event
  // sequence — is identical with and without probes.
  for (std::size_t i = 0; i < cycles; ++i) {
    ++ticks_;
    advance_to(tick_anchor_ + static_cast<double>(ticks_) * config_.period);
    ++probe_ticks_;
    fire_probes(probes_, *network_, probe_ticks_);
  }
}

}  // namespace pss::sim
