#include "pss/sim/hs_overlay.hpp"

#include <algorithm>

#include "pss/common/check.hpp"

namespace pss::sim {

HSOverlay::HSOverlay(std::size_t n, HSParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  PSS_CHECK_MSG(n >= 2, "overlay needs at least two nodes");
  nodes_.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    nodes_.emplace_back(id, params_, rng_.split());
  }
  live_.assign(n, 1);
  live_count_ = n;
  // Uniform random bootstrap, as in the random-init scenario.
  const std::size_t want = std::min(params_.view_size, n - 1);
  for (NodeId id = 0; id < n; ++id) {
    auto picks = rng_.sample_indices(n - 1, want);
    std::vector<NodeDescriptor> entries;
    entries.reserve(want);
    for (std::size_t p : picks) {
      entries.push_back({static_cast<NodeId>(p < id ? p : p + 1), 0});
    }
    nodes_[id].init_view(std::move(entries));
  }
}

void HSOverlay::kill(NodeId id) {
  PSS_CHECK_MSG(id < nodes_.size(), "node id out of range");
  if (live_[id]) {
    live_[id] = 0;
    --live_count_;
  }
}

void HSOverlay::kill_random(std::size_t count) {
  std::vector<NodeId> live;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (live_[id]) live.push_back(id);
  }
  PSS_CHECK_MSG(count <= live.size(), "cannot kill more nodes than are live");
  for (std::size_t p : rng_.sample_indices(live.size(), count)) kill(live[p]);
}

void HSOverlay::run_cycle() {
  std::vector<NodeId> order;
  order.reserve(live_count_);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (live_[id]) order.push_back(id);
  }
  rng_.shuffle(order);
  for (NodeId initiator : order) {
    HSGossipNode& active = nodes_[initiator];
    active.increase_age();
    auto peer = active.select_peer();
    if (!peer) continue;
    if (!is_live(*peer)) continue;  // silent failure, paper semantics
    HSGossipNode& passive = nodes_[*peer];
    const auto sent = active.make_buffer();
    if (params_.pushpull) {
      const auto reply = passive.make_buffer();
      passive.integrate(sent);
      active.integrate(reply);
    } else {
      passive.integrate(sent);
    }
  }
  ++cycle_;
}

void HSOverlay::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) run_cycle();
}

std::uint64_t HSOverlay::count_dead_links() const {
  std::uint64_t dead = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!live_[id]) continue;
    for (const auto& d : nodes_[id].entries()) {
      if (!live_[d.address]) ++dead;
    }
  }
  return dead;
}

std::vector<std::size_t> HSOverlay::degrees() const {
  // Undirected: count each live-live edge once per endpoint.
  std::vector<std::vector<std::uint32_t>> adj(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!live_[id]) continue;
    for (const auto& d : nodes_[id].entries()) {
      if (!live_[d.address]) continue;
      adj[id].push_back(d.address);
      adj[d.address].push_back(id);
    }
  }
  std::vector<std::size_t> out;
  out.reserve(live_count_);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!live_[id]) continue;
    auto& nb = adj[id];
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    out.push_back(nb.size());
  }
  return out;
}

bool HSOverlay::connected() const {
  std::vector<std::vector<std::uint32_t>> adj(nodes_.size());
  NodeId start = kInvalidNode;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!live_[id]) continue;
    if (start == kInvalidNode) start = id;
    for (const auto& d : nodes_[id].entries()) {
      if (!live_[d.address]) continue;
      adj[id].push_back(d.address);
      adj[d.address].push_back(id);
    }
  }
  if (start == kInvalidNode) return true;
  std::vector<std::uint8_t> seen(nodes_.size(), 0);
  std::vector<NodeId> stack{start};
  seen[start] = 1;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    ++visited;
    for (std::uint32_t w : adj[u]) {
      if (!seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return visited == live_count_;
}

}  // namespace pss::sim
