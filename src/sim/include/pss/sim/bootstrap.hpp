// Bootstrap topologies (paper Section 5).
//
// Three initial conditions are studied:
//   - random:  every view holds c uniform random distinct peers (Section 5.3);
//   - lattice: ring lattice — each node knows its nearest ring neighbours,
//              filled to c by increasing ring distance (Section 5.2);
//   - growing: the network starts as a single node and grows by 100 nodes
//              per cycle, each newcomer knowing only the initial node
//              (Section 5.1). The growing scenario needs interleaving with
//              the engine, so it lives in experiments::GrowingScenario; this
//              header provides the static initializers.
#pragma once

#include <cstdint>

#include "pss/protocol/spec.hpp"
#include "pss/sim/network.hpp"

namespace pss::sim::bootstrap {

/// Fills every live node's view with min(c, N-1) distinct uniform random
/// other live nodes, hop count 0.
void init_random(Network& network);

/// Ring lattice: nodes are arranged in a ring by address; each view holds
/// the min(c, N-1) nearest ring neighbours (distance 1 on both sides, then
/// distance 2, ...), hop count 0.
void init_lattice(Network& network);

/// Star: every node's view holds only the hub (node 0); the hub's view holds
/// the first min(c, N-1) other nodes. Used to test degenerate topologies
/// (the (*,*,pull) star attractor) and bootstrap robustness.
void init_star(Network& network);

/// Convenience factories: build an N-node network and apply the initializer.
Network make_random(ProtocolSpec spec, ProtocolOptions options, std::size_t n,
                    std::uint64_t seed);
Network make_lattice(ProtocolSpec spec, ProtocolOptions options, std::size_t n,
                     std::uint64_t seed);

}  // namespace pss::sim::bootstrap
