// Index-based calendar queue: the event engine's scheduler structure.
//
// A binary heap makes every schedule/pop O(log n) with n random touches of
// a multi-megabyte array; at 10^5-10^6 nodes the pending-event set is about
// the network size (every node keeps one wake-up queued, plus in-flight
// messages), so the heap becomes a per-event cache-miss tax. A calendar
// queue (Brown, CACM 1988) exploits what a discrete-event gossip simulation
// actually looks like: timestamps are dense, near-future, and advance
// monotonically. Time is divided into fixed-width buckets laid out
// circularly over one "year"; scheduling hashes the timestamp to a bucket
// (O(1) amortized) and popping sweeps the current bucket window forward.
//
// Determinism: items are totally ordered by (at, seq) — the caller supplies
// a unique monotonic seq per push — and pop() yields exactly that order, so
// an engine built on this queue replays bit-identically against one built
// on std::priority_queue (pinned by tests/event_engine_flat_test.cpp).
//
// Layout and policies:
//   - items live in one recycling node pool (flat array + free list, like
//     the message slab pool); a bucket is an intrusive doubly-linked list
//     through the pool, sorted descending so the bucket minimum is the tail
//     and popping it is O(1). No per-bucket containers means no per-bucket
//     capacity growth: after the pool reaches its high-water mark the queue
//     performs no allocation at all;
//   - an item's virtual bucket is floor(at / width); the physical bucket is
//     virtual mod bucket_count. The sweep cursor walks virtual buckets, so
//     items a year ahead wait in place without being rescanned;
//   - the queue resizes (doubling / halving bucket_count, width scaled to
//     keep the year span constant) when the average occupancy leaves
//     [1/kShrinkAt, kGrowAt], re-linking every node — O(n) amortized over
//     the pushes that caused it. Steady state never resizes;
//   - when a whole lap of the calendar holds nothing in its current-year
//     window (a sparse far-future tail), pop falls back to a direct scan of
//     all bucket minima and jumps the cursor there.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pss/common/check.hpp"

namespace pss::sim {

template <typename T>
class CalendarQueue {
 public:
  struct Item {
    double at = 0;
    std::uint64_t seq = 0;  ///< unique tie-break; caller keeps it monotonic
    T value{};
  };

  /// `year_span` is the stretch of simulated time mapped across the whole
  /// bucket array; width = year_span / bucket_count. Choose it around the
  /// natural event horizon (the event engine uses two periods) so one lap
  /// of the calendar covers the bulk of the pending set.
  explicit CalendarQueue(double year_span, std::size_t min_buckets = 16)
      : year_span_(year_span), min_buckets_(ceil_pow2(min_buckets)) {
    PSS_CHECK_MSG(year_span_ > 0, "calendar year span must be positive");
    rebuild(min_buckets_);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t bucket_count() const { return head_.size(); }
  double bucket_width() const { return width_; }

  /// Schedules `value` at time `at` (>= 0). `seq` breaks timestamp ties;
  /// pushes must use strictly increasing seq for deterministic replay.
  void push(double at, std::uint64_t seq, const T& value) {
    PSS_DCHECK(at >= 0);
    const std::uint32_t nid = acquire_node();
    Node& node = pool_[nid];
    node.item.at = at;
    node.item.seq = seq;
    node.item.value = value;
    const std::uint64_t vb = virtual_bucket(at);
    link(nid, static_cast<std::size_t>(vb & mask_));
    ++size_;
    // An item behind the sweep cursor (same-timestamp scheduling) must pull
    // the cursor back or the lap scan would overlook it until a full lap.
    if (vb < cursor_) cursor_ = vb;
    if (size_ > kGrowAt * head_.size()) rebuild(head_.size() * 2);
  }

  /// Smallest (at, seq) item. Advances the sweep cursor; amortized O(1)
  /// under the dense near-future workload the engine produces. The
  /// reference stays valid until the next pop/rebuild.
  const Item& top() {
    PSS_CHECK_MSG(size_ > 0, "top() on empty calendar queue");
    // Lap scan. Invariant: no item has a virtual bucket below cursor_, and
    // timestamp ties always share a bucket, so the first bucket minimum
    // that falls inside its own current-year window is the global minimum:
    // every item in a bucket already swept past belongs to a later year and
    // therefore to a later window than the one found.
    const std::uint64_t lap_end = cursor_ + head_.size();
    for (std::uint64_t vb = cursor_; vb < lap_end; ++vb) {
      const std::uint32_t min_node = tail_[vb & mask_];
      if (min_node != kNil &&
          pool_[min_node].item.at < static_cast<double>(vb + 1) * width_) {
        cursor_ = vb;
        return pool_[min_node].item;
      }
    }
    // Sparse tail: everything pending lies more than a year ahead. Compare
    // the bucket minima directly and jump the cursor to the winner.
    const Item* best = nullptr;
    for (const std::uint32_t min_node : tail_) {
      if (min_node == kNil) continue;
      const Item& cand = pool_[min_node].item;
      if (best == nullptr || item_less(cand, *best)) best = &cand;
    }
    cursor_ = virtual_bucket(best->at);
    return *best;
  }

  /// Removes and returns the smallest (at, seq) item.
  Item pop() {
    top();  // positions cursor_ on the bucket holding the minimum
    return pop_at_cursor();
  }

  /// Single-scan conditional pop: removes and returns the minimum when its
  /// timestamp is <= `until`, nullptr otherwise (or when empty). The
  /// returned pointer stays valid until the next pop — pushes in between
  /// are fine, which is exactly the engine's handle-then-reschedule shape.
  const Item* pop_if_at_most(double until) {
    if (size_ == 0) return nullptr;
    if (top().at > until) return nullptr;
    popped_ = pop_at_cursor();
    return &popped_;
  }

  /// Scan-free guess at the next item: the minimum of the bucket the sweep
  /// cursor is parked on (usually where the next pop lands). May return
  /// nullptr or a non-minimal item — callers use it only as a prefetch
  /// hint, never for ordering.
  const Item* peek_hint() const {
    const std::uint32_t min_node = tail_[cursor_ & mask_];
    return min_node == kNil ? nullptr : &pool_[min_node].item;
  }

  /// Bytes held in the node pool, bucket tables and resize spill buffer —
  /// the queue's contribution to resident_bytes().
  std::size_t storage_bytes() const {
    return pool_.capacity() * sizeof(Node) +
           free_.capacity() * sizeof(std::uint32_t) +
           (head_.capacity() + tail_.capacity()) * sizeof(std::uint32_t) +
           spill_.capacity() * sizeof(std::uint32_t);
  }

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};
  // Resize thresholds in items per bucket: grow above kGrowAt average
  // occupancy, halve when occupancy drops below 1/kShrinkAt. The wide
  // hysteresis band keeps a fluctuating population from thrashing rebuilds.
  static constexpr std::size_t kGrowAt = 2;
  static constexpr std::size_t kShrinkAt = 4;

  struct Node {
    Item item;
    std::uint32_t prev = kNil;  ///< toward the bucket head (larger items)
    std::uint32_t next = kNil;  ///< toward the bucket tail (smaller items)
  };

  static std::size_t ceil_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  static bool item_less(const Item& a, const Item& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::uint64_t virtual_bucket(double at) const {
    const double q = at / width_;
    PSS_DCHECK(q < 9.0e18);  // stays far inside uint64 for sane time scales
    return static_cast<std::uint64_t>(q);
  }

  std::uint32_t acquire_node() {
    if (!free_.empty()) {
      const std::uint32_t nid = free_.back();
      free_.pop_back();
      return nid;
    }
    const std::uint32_t nid = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
    return nid;
  }

  /// Links node `nid` into bucket `b`, keeping the list sorted descending
  /// (minimum at tail). The walk starts at the head: pushes arrive in
  /// near-monotone timestamp order (each handler schedules at now + delta),
  /// so a new item usually outranks the current head and links in O(1).
  void link(std::uint32_t nid, std::size_t b) {
    Node& node = pool_[nid];
    std::uint32_t above = kNil;
    std::uint32_t below = head_[b];
    while (below != kNil && item_less(node.item, pool_[below].item)) {
      above = below;
      below = pool_[below].next;
    }
    node.prev = above;
    node.next = below;
    if (above == kNil) {
      head_[b] = nid;
    } else {
      pool_[above].next = nid;
    }
    if (below == kNil) {
      tail_[b] = nid;
    } else {
      pool_[below].prev = nid;
    }
  }

  /// Unlinks and returns the minimum of the bucket the cursor is parked on
  /// (which top() just established holds the global minimum).
  Item pop_at_cursor() {
    const std::size_t b = cursor_ & mask_;
    const std::uint32_t nid = tail_[b];
    Node& node = pool_[nid];
    tail_[b] = node.prev;
    if (node.prev == kNil) {
      head_[b] = kNil;
    } else {
      pool_[node.prev].next = kNil;
    }
    free_.push_back(nid);
    --size_;
    if (head_.size() > min_buckets_ && size_ * kShrinkAt < head_.size()) {
      rebuild(head_.size() / 2);
    }
    return node.item;
  }

  void rebuild(std::size_t bucket_count) {
    spill_.clear();
    spill_.reserve(size_);
    for (std::uint32_t nid : head_) {
      for (; nid != kNil; nid = pool_[nid].next) spill_.push_back(nid);
    }
    head_.assign(bucket_count, kNil);
    tail_.assign(bucket_count, kNil);
    mask_ = bucket_count - 1;
    width_ = year_span_ / static_cast<double>(bucket_count);
    cursor_ = ~std::uint64_t{0};
    for (const std::uint32_t nid : spill_) {
      const std::uint64_t vb = virtual_bucket(pool_[nid].item.at);
      link(nid, static_cast<std::size_t>(vb & mask_));
      if (vb < cursor_) cursor_ = vb;
    }
    if (size_ == 0) cursor_ = 0;
  }

  double year_span_;
  std::size_t min_buckets_;
  double width_ = 0;
  std::uint64_t mask_ = 0;
  std::uint64_t cursor_ = 0;  ///< virtual bucket the sweep is parked on
  std::size_t size_ = 0;
  std::vector<Node> pool_;             ///< recycling node storage
  std::vector<std::uint32_t> free_;    ///< released node ids, LIFO
  std::vector<std::uint32_t> head_;    ///< per-bucket list head (maximum)
  std::vector<std::uint32_t> tail_;    ///< per-bucket list tail (minimum)
  std::vector<std::uint32_t> spill_;   ///< rebuild staging, capacity reused
  Item popped_;                        ///< pop_if_at_most landing slot
};

}  // namespace pss::sim
