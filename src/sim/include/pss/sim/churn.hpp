// Continuous churn injection (node joins and leaves between cycles).
//
// The paper studies one catastrophic failure (Section 7); real deployments
// see continuous membership turnover. ChurnModel is the extension used by
// the churn_monitor example and churn tests: per cycle it removes a batch
// of random live nodes and adds a batch of newcomers, each bootstrapped
// from a configurable number of random live contacts.
//
// Cost: apply() is O(changes) — kills and contact draws sample the
// network's incremental live-id pool (Network::live_ids()) instead of
// rebuilding an O(N) live list per join, and each join writes its bootstrap
// descriptors straight into the newcomer's arena slot (no GossipNode
// adapter, no heap View; the contact vectors are reused across joins), so
// steady-state churn performs no per-join allocation and stays O(changes)
// at 10^6 nodes. tests/churn_test.cpp pins the flat join path against the
// historical init_view(View(...)) path descriptor for descriptor.
#pragma once

#include <cstddef>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/membership/node_descriptor.hpp"
#include "pss/sim/network.hpp"

namespace pss::sim {

struct ChurnConfig {
  /// Live nodes killed per cycle.
  std::size_t leaves_per_cycle = 0;
  /// Nodes added per cycle.
  std::size_t joins_per_cycle = 0;
  /// Bootstrap contacts given to each newcomer (drawn uniformly from the
  /// live population, mimicking a rendezvous service handing out addresses).
  std::size_t contacts_per_join = 1;
};

/// Aggregate counters across all apply() calls.
struct ChurnStats {
  std::size_t joined = 0;
  std::size_t left = 0;
};

class ChurnModel {
 public:
  ChurnModel(ChurnConfig config, Rng rng) : config_(config), rng_(rng) {}

  /// Applies one cycle of churn: kills then joins. Never kills below
  /// `contacts_per_join + 1` live nodes so newcomers can always bootstrap.
  void apply(Network& network);

  const ChurnStats& stats() const { return stats_; }

 private:
  ChurnConfig config_;
  Rng rng_;
  ChurnStats stats_;
  // Reused join buffers: contact draws and the newcomer's bootstrap view.
  std::vector<std::size_t> picks_;
  std::vector<std::size_t> fy_;
  std::vector<NodeDescriptor> entries_;
};

}  // namespace pss::sim
