// Greedy conflict-free batch partitioner for the parallel cycle engine.
//
// The paper's cycle model executes the per-cycle permutation of initiators
// strictly in order. Two steps commute exactly when they share no node
// (each atomic exchange reads and writes the slots of its initiator and
// peer, and nothing else — see cycle_step.hpp), so a schedule is
// equivalent to the sequential one iff every pair of *conflicting* steps
// runs in permutation order. This class carves the permutation into
// batches with two properties:
//
//   (a) within a batch, no node is touched by more than one step — the
//       batch can execute on any number of threads, in any order, with no
//       synchronization beyond the end-of-batch barrier;
//   (b) each batch is a contiguous run of the remaining permutation — so
//       every conflicting pair automatically stays in sequential order.
//
// Why contiguous, not "skip the conflicting step and keep scanning": a
// step's peer is *data-dependent* — it is drawn from the initiator's
// current view, which earlier conflicting steps may still change. A
// skipped step therefore has an unknowable footprint, and admitting any
// later step past it could reorder a conflicting pair. Stopping the batch
// at the first conflict keeps the schedule exact; the price is batch
// length. By the birthday bound a batch claims ~2 nodes per step, so the
// first collision lands after ~√N steps — ~700-step batches at N = 10⁶,
// i.e. ~1400 barriers per cycle, which is cheap against ~1 s of exchange
// work (measured in docs/PERFORMANCE.md).
//
// The scan drives phase 1 of each step (the SelectFn callback) exactly at
// the step's sequential position: when a step's initiator is reached and
// is unclaimed, every earlier step that touches it has already executed
// (previous batches ran to completion behind a barrier; earlier steps of
// the *current*, not-yet-running batch are claim-disjoint from it), so the
// selection sees — and its Rng draw consumes — exactly the state the
// sequential engine would. Steps that touch only their initiator (empty
// views, dead contacts) are handed to InlineFn and executed immediately on
// the scanning thread: legal because the current batch has not started
// running and no admitted step shares their node; sequential-order-exact
// because later same-batch steps that read the initiator run after the
// inline mutation.
//
// Claims are a generation-stamped array (one ++generation per batch
// instead of clearing), the slot-claim construction the engine's
// race-freedom argument rests on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "pss/common/check.hpp"
#include "pss/common/types.hpp"
#include "pss/sim/cycle_step.hpp"

namespace pss::sim {

class ConflictScheduler {
 public:
  /// Starts partitioning a new cycle. `order` must stay alive and unchanged
  /// until the cycle is drained; `node_count` bounds every id occurring in
  /// it (initiators and drawn peers).
  void begin_cycle(std::span<const NodeId> order, std::size_t node_count) {
    order_ = order;
    cursor_ = 0;
    pending_ = Pending::kNone;
    if (claim_.size() < node_count) claim_.resize(node_count, 0);
    ++generation_;
    if (generation_ == 0) {
      // Wrapped: the stale stamps below could alias the new generation.
      std::fill(claim_.begin(), claim_.end(), 0u);
      generation_ = 1;
    }
  }

  /// True when the whole permutation has been scheduled.
  bool done() const {
    return cursor_ >= order_.size() && pending_ == Pending::kNone;
  }

  /// Builds the next conflict-free batch into `out` (overwritten).
  ///
  /// `select(NodeId) -> CycleStep` runs phase 1 for one initiator; it is
  /// called exactly once per initiator over the whole cycle, precisely at
  /// the step's sequential position. `inline_exec(const CycleStep&)` runs
  /// phase 2 for single-node steps (kEmptyView / kFailedContact) on the
  /// spot. kExchange steps land in `out` with both nodes claimed.
  ///
  /// Returns false when the cycle is drained (out left empty). A returned
  /// batch may be empty when only inline steps were scanned; callers loop
  /// on next_batch() either way, and every call makes progress (advances
  /// the cursor or retires the carried step), so a degenerate workload —
  /// e.g. every step contending on one hub node — serializes cleanly
  /// instead of deadlocking.
  template <typename SelectFn, typename InlineFn>
  bool next_batch(SelectFn&& select, InlineFn&& inline_exec,
                  std::vector<CycleStep>& out) {
    out.clear();
    if (done()) return false;
    ++generation_;
    if (generation_ == 0) {
      std::fill(claim_.begin(), claim_.end(), 0u);
      generation_ = 1;
    }
    // A step carried out of the previous batch goes first: the conflicts
    // that closed that batch have all executed behind its barrier.
    if (pending_ == Pending::kEvaluated) {
      pending_ = Pending::kNone;
      claim(carried_.initiator);
      claim(carried_.peer);
      out.push_back(carried_);
    } else if (pending_ == Pending::kUnevaluated) {
      pending_ = Pending::kNone;
      if (!admit(select, inline_exec, carried_.initiator, out)) return true;
    }
    while (cursor_ < order_.size()) {
      const NodeId initiator = order_[cursor_];
      ++cursor_;
      if (!admit(select, inline_exec, initiator, out)) return true;
    }
    return true;
  }

 private:
  enum class Pending : std::uint8_t {
    kNone,
    kUnevaluated,  ///< initiator was claimed; selection not yet run
    kEvaluated,    ///< selection ran, peer was claimed; step ready to seed
  };

  bool is_claimed(NodeId id) const {
    PSS_DCHECK(id < claim_.size());
    return claim_[id] == generation_;
  }

  void claim(NodeId id) {
    PSS_DCHECK(id < claim_.size());
    claim_[id] = generation_;
  }

  /// Schedules one initiator. Returns false when the batch must close: the
  /// step conflicted with it and is parked in `carried_` for the next call.
  template <typename SelectFn, typename InlineFn>
  bool admit(SelectFn&& select, InlineFn&& inline_exec, NodeId initiator,
             std::vector<CycleStep>& out) {
    if (is_claimed(initiator)) {
      // Some admitted step will still mutate this initiator — its selection
      // may not run yet (it would read stale state and desync the node's
      // Rng stream). Park it unevaluated.
      carried_ = {initiator, 0, StepKind::kEmptyView};
      pending_ = Pending::kUnevaluated;
      return false;
    }
    const CycleStep step = select(initiator);
    if (step.kind != StepKind::kExchange) {
      // Touches only the initiator, which nothing in this batch claims:
      // execute immediately, exactly at its sequential position.
      inline_exec(step);
      return true;
    }
    if (is_claimed(step.peer)) {
      // Selection already ran (legally — the initiator was current) and its
      // Rng draw is spent; the step itself must wait for the claimed peer.
      // It seeds the next batch.
      carried_ = step;
      pending_ = Pending::kEvaluated;
      return false;
    }
    claim(initiator);
    claim(step.peer);
    out.push_back(step);
    return true;
  }

  std::span<const NodeId> order_;
  std::size_t cursor_ = 0;
  Pending pending_ = Pending::kNone;
  CycleStep carried_;
  std::vector<std::uint32_t> claim_;  ///< node id -> last claiming generation
  std::uint32_t generation_ = 0;
};

}  // namespace pss::sim
