// Cycle-driven execution engine — the paper's simulation model.
//
// In each cycle every live node initiates exactly one exchange (its active
// thread fires once per T time units; the cycle abstracts T). Nodes act in
// a fresh uniform random order each cycle, and an exchange completes
// atomically: the active buffer is delivered, the passive side replies
// within the same step. This matches the simulator used in the paper (and
// the later PeerSim "cycle-based" mode). The EventEngine lifts the
// atomicity assumption; see event_engine.hpp.
//
// Contacting a dead node is a silent failure: no view changes on either
// side (unless the remove_dead_on_failure extension is enabled), which is
// what makes dead-link decay purely a property of view selection, as the
// paper's Section 7 analysis requires.
//
// Execution is batched over the network's flat arena: the permutation is
// built in a reused buffer, the next initiator's view slot is prefetched
// one step ahead, and each exchange runs through the shared per-step body
// in cycle_step.hpp (selection, then aging + the flat_exchange routines)
// with a persistent Scratch — zero per-exchange heap allocation in steady
// state. The result is bit-identical to driving the GossipNode adapter
// methods one message at a time (same Rng streams, same order);
// tests/flat_view_store_test.cpp replays both paths against each other.
// ParallelCycleEngine runs the same body sharded across threads and is in
// turn pinned bit-identical to this engine by
// tests/parallel_cycle_engine_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/membership/flat_ops.hpp"
#include "pss/sim/cycle_step.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/probe.hpp"
#include "pss/sim/trace_probe.hpp"

namespace pss::sim {

class CycleEngine {
 public:
  /// `network` must outlive the engine; the engine stores a reference only.
  explicit CycleEngine(Network& network) : network_(&network) {}

  /// Runs one cycle: permutes live nodes, fires each active thread once.
  void run_cycle();

  /// Runs `cycles` consecutive cycles.
  void run(Cycle cycles);

  /// Number of cycles executed so far.
  Cycle cycle() const { return cycle_; }

  /// Aggregate counters since construction.
  const EngineStats& stats() const { return stats_; }

  /// Registers an observer fired after every `cadence`-th completed cycle
  /// (see pss/sim/probe.hpp for the non-perturbation contract). The probe
  /// must outlive the engine.
  void attach_probe(SnapshotProbe& probe, Cycle cadence = 1) {
    register_probe(probes_, probe, cadence);
  }

  /// Registers the byzantine-injection hook (see ExchangeTamper in
  /// cycle_step.hpp). A tamper that never forges or suppresses leaves the
  /// run bit-identical to an unhooked engine — the differential contract
  /// tests/scenarios_test.cpp pins. The tamper must outlive the engine.
  void attach_adversary(ExchangeTamper& tamper) { tamper_ = &tamper; }

  /// Registers the causal-tracing hook (see TraceProbe in trace_probe.hpp):
  /// select and merge+apply spans per step, labelled by a trace-only
  /// exchange counter. Unhooked, the loop body is the original two calls;
  /// hooked-but-disarmed and armed runs are state-digest-identical to the
  /// unhooked engine (tracing never mutates simulation state). The probe
  /// must outlive the engine.
  void attach_trace(TraceProbe& trace) { trace_ = &trace; }

 private:
  void traced_step(NodeId initiator);

  Network* network_;
  Cycle cycle_ = 0;
  EngineStats stats_;
  std::vector<NodeId> order_;  ///< per-cycle permutation, capacity reused
  flat::Scratch scratch_;      ///< exchange working memory, capacity reused
  std::vector<ProbeRegistration> probes_;
  ExchangeTamper* tamper_ = nullptr;  ///< byzantine seam; null = honest run
  TraceProbe* trace_ = nullptr;       ///< tracing seam; null = untraced run
  std::uint64_t trace_exchange_ = 0;  ///< trace-only per-step id counter
};

}  // namespace pss::sim
