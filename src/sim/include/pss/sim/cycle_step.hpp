// The per-exchange body of the cycle model, split into its two phases.
//
// Both cycle engines — the sequential CycleEngine and the sharded
// ParallelCycleEngine — execute exactly the same step per initiator:
//
//   phase 1, *selection*:  draw the peer from the initiator's view and
//                          classify the step (exchange / dead contact /
//                          empty view). Reads the initiator's slot, consumes
//                          the initiator's Rng stream, mutates nothing.
//   phase 2, *execution*:  age the initiator's view, then run the atomic
//                          Figure-1 exchange (or the failure/empty
//                          bookkeeping). Touches only the slots of the step's
//                          one or two nodes.
//
// The sequential engine runs the phases back to back; the parallel engine
// runs phase 1 inside its conflict scheduler (sequentially, at each step's
// exact position in the permutation) and phase 2 on worker threads. Keeping
// one shared body here is what makes "bit-identical to the sequential
// engine" a structural property instead of a test-only coincidence.
//
// Selection before aging: the historical engine aged the view *before*
// drawing the peer. The two orders are interchangeable because per-cycle
// aging adds +1 to every stored hop count, which preserves the view's
// (hop, address) order, every hop-class boundary, and the class sizes — so
// each peer-selection policy picks the same address and consumes the Rng
// identically on the un-aged view (rand: index below(size); head: first
// entry; tail: uniform draw within the unchanged oldest class). The
// engine-vs-adapter replay in tests/flat_view_store_test.cpp pins this:
// the adapter path still ages first, and the runs stay identical.
#pragma once

#include <cstdint>

#include "pss/common/types.hpp"
#include "pss/membership/flat_ops.hpp"
#include "pss/protocol/flat_exchange.hpp"
#include "pss/sim/network.hpp"

namespace pss::sim {

/// Aggregate counters over a whole engine run.
struct EngineStats {
  std::uint64_t exchanges = 0;        ///< completed active-passive exchanges
  std::uint64_t failed_contacts = 0;  ///< attempts that hit a dead node
  std::uint64_t empty_views = 0;      ///< nodes that had nobody to contact
};

/// How one initiator's cycle step will unfold, decided in phase 1.
enum class StepKind : std::uint8_t {
  kEmptyView,      ///< nobody to contact; execution touches the initiator only
  kFailedContact,  ///< peer dead or unreachable; execution touches the
                   ///< initiator only (failure stats, optional eviction)
  kExchange,       ///< live reachable peer; execution touches both nodes
};

/// Phase-1 result: the initiator, the drawn peer (meaningless for
/// kEmptyView) and the step classification.
struct CycleStep {
  NodeId initiator = 0;
  NodeId peer = 0;
  StepKind kind = StepKind::kEmptyView;
};

/// Phase 1 — selection. Must run at the step's sequential position: after
/// every earlier step that touches `initiator` has executed, and before any
/// later one does. Consumes the initiator's arena Rng stream exactly as the
/// historical engine did.
inline CycleStep select_cycle_step(Network& net, NodeId initiator) {
  flat::NodeArena& arena = net.arena();
  const auto peer =
      flat::select_peer(arena.views.view_of(initiator),
                        net.spec().peer_selection, arena.rngs[initiator]);
  if (!peer) return {initiator, 0, StepKind::kEmptyView};
  if (!net.is_live(*peer) || !net.can_communicate(initiator, *peer)) {
    return {initiator, *peer, StepKind::kFailedContact};
  }
  return {initiator, *peer, StepKind::kExchange};
}

/// Phase 2 — execution. Touches only the slots (views, Rng streams,
/// NodeStats) of `step.initiator` and — for kExchange — `step.peer`, plus
/// the caller-owned scratch and stats; that footprint is the whole basis on
/// which the parallel engine runs non-conflicting steps concurrently.
inline void execute_cycle_step(Network& net, const CycleStep& step,
                               flat::Scratch& scratch, EngineStats& stats) {
  flat::NodeArena& arena = net.arena();
  // Once-per-cycle aging (timestamp semantics; see gossip_node.hpp).
  arena.views.age(step.initiator);
  if (step.kind == StepKind::kEmptyView) {
    ++stats.empty_views;
    return;
  }
  ++arena.stats[step.initiator].initiated;
  if (step.kind == StepKind::kFailedContact) {
    // Dead peer or a network partition between the two: the exchange is
    // silently lost either way.
    flat::contact_failure(arena, step.initiator, step.peer, net.options());
    ++stats.failed_contacts;
    return;
  }
  // Start pulling the passive side's state in while the active buffer is
  // being built.
  arena.prefetch_node(step.peer);
  flat::run_exchange(arena, step.initiator, step.peer, net.spec(),
                     net.options(), scratch);
  ++stats.exchanges;
}

}  // namespace pss::sim
