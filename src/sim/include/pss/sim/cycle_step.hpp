// The per-exchange body of the cycle model, split into its two phases.
//
// Both cycle engines — the sequential CycleEngine and the sharded
// ParallelCycleEngine — execute exactly the same step per initiator:
//
//   phase 1, *selection*:  draw the peer from the initiator's view and
//                          classify the step (exchange / dead contact /
//                          empty view). Reads the initiator's slot, consumes
//                          the initiator's Rng stream, mutates nothing.
//   phase 2, *execution*:  age the initiator's view, then run the atomic
//                          Figure-1 exchange (or the failure/empty
//                          bookkeeping). Touches only the slots of the step's
//                          one or two nodes.
//
// The sequential engine runs the phases back to back; the parallel engine
// runs phase 1 inside its conflict scheduler (sequentially, at each step's
// exact position in the permutation) and phase 2 on worker threads. Keeping
// one shared body here is what makes "bit-identical to the sequential
// engine" a structural property instead of a test-only coincidence.
//
// Selection before aging: the historical engine aged the view *before*
// drawing the peer. The two orders are interchangeable because per-cycle
// aging adds +1 to every stored hop count, which preserves the view's
// (hop, address) order, every hop-class boundary, and the class sizes — so
// each peer-selection policy picks the same address and consumes the Rng
// identically on the un-aged view (rand: index below(size); head: first
// entry; tail: uniform draw within the unchanged oldest class). The
// engine-vs-adapter replay in tests/flat_view_store_test.cpp pins this:
// the adapter path still ages first, and the runs stay identical.
#pragma once

#include <cstdint>

#include "pss/common/types.hpp"
#include "pss/membership/flat_ops.hpp"
#include "pss/protocol/flat_exchange.hpp"
#include "pss/sim/network.hpp"

namespace pss::sim {

/// Aggregate counters over a whole engine run.
struct EngineStats {
  std::uint64_t exchanges = 0;        ///< completed active-passive exchanges
  std::uint64_t failed_contacts = 0;  ///< attempts that hit a dead node
  std::uint64_t empty_views = 0;      ///< nodes that had nobody to contact
};

/// How one initiator's cycle step will unfold, decided in phase 1.
enum class StepKind : std::uint8_t {
  kEmptyView,      ///< nobody to contact; execution touches the initiator only
  kFailedContact,  ///< peer dead or unreachable; execution touches the
                   ///< initiator only (failure stats, optional eviction)
  kExchange,       ///< live reachable peer; execution touches both nodes
};

/// Phase-1 result: the initiator, the drawn peer (meaningless for
/// kEmptyView) and the step classification. `trace_id` is dark unless a
/// TraceProbe is attached (see trace_probe.hpp): the traced selection path
/// stamps a trace-only exchange counter here so the execution phase — which
/// may run on a worker lane — can label its merge+apply span with the same
/// id the selection span carried. It never influences execution.
struct CycleStep {
  NodeId initiator = 0;
  NodeId peer = 0;
  StepKind kind = StepKind::kEmptyView;
  std::uint64_t trace_id = 0;
};

/// Byzantine-injection seam of the engines (pre/post-exchange hook).
///
/// This is mechanism only: the engines consult the tamper at exactly two
/// points — before a node's once-per-cycle aging (suppress_aging) and after
/// an outgoing buffer has been built but before it is delivered
/// (is_byzantine + forge_buffer). What a byzantine node actually sends is
/// entirely the tamper's policy (pss_scenarios::AdversaryModel supplies hub
/// poisoning and descriptor forgery); the engines know nothing beyond this
/// interface, mirroring the SnapshotProbe split on the observation side.
///
/// Contract:
///   - With no tamper attached — or with a tamper whose is_byzantine and
///     suppress_aging return false everywhere — every engine is bit-identical
///     (views, stats, per-node and master Rng consumption) to its unhooked
///     self. The differential suite in tests/scenarios_test.cpp and the
///     bench/scale_scenarios digest gate pin this.
///   - forge_buffer is only invoked when is_byzantine(sender) is true, and
///     must leave `buffer` normalized (sorted by (hop, address),
///     duplicate-free) with at most view_size + 1 entries — the same shape
///     an honest make_active_buffer produces, and the capacity of the event
///     engine's message slabs.
///   - Thread safety: the cycle engines may call these hooks from worker
///     lanes. is_byzantine/suppress_aging must be const lookups; forge_buffer
///     may keep per-sender state (the engines never run two steps of one
///     sender concurrently — the conflict scheduler serializes them in
///     Deterministic mode, the pair locks in Relaxed mode) but must not
///     share mutable state across senders.
class ExchangeTamper {
 public:
  virtual ~ExchangeTamper() = default;

  /// True when `node`'s outgoing buffers are forged.
  virtual bool is_byzantine(NodeId node) const = 0;

  /// True when `node` skips its once-per-cycle view aging (pre-step hook).
  virtual bool suppress_aging(NodeId node) const = 0;

  /// Replaces the buffer `sender` is about to ship to `receiver`. `buffer`
  /// arrives holding the honest content and leaves holding what actually
  /// goes on the wire (see the normalization contract above).
  virtual void forge_buffer(NodeId sender, NodeId receiver,
                            std::vector<NodeDescriptor>& buffer) = 0;
};

/// flat::run_exchange_with with the tamper consulted on both outgoing
/// buffers. The statement sequence — stats updates, absorb order, Rng
/// consumption — mirrors the untampered kernel exactly, so a tamper that
/// never forges leaves the run bit-identical.
inline void run_exchange_tampered(flat::NodeArena& arena, NodeId active,
                                  NodeId passive, const ProtocolSpec& spec,
                                  const ProtocolOptions& options,
                                  flat::Scratch& scratch, Rng& active_rng,
                                  Rng& passive_rng, ExchangeTamper& tamper) {
  FlatViewStore& store = arena.views;
  flat::make_active_buffer(store.view_of(active), active, spec.push(),
                           scratch.buffer);
  if (tamper.is_byzantine(active)) {
    tamper.forge_buffer(active, passive, scratch.buffer);
  }
  ++arena.stats[passive].received;
  const bool pull = spec.pull();
  if (pull) {
    flat::make_active_buffer(store.view_of(passive), passive, /*push=*/true,
                             scratch.reply);
    ++arena.stats[passive].replies_sent;
  }
  flat::absorb(store, passive, passive, spec, options, scratch.buffer,
               passive_rng, scratch, /*age_incoming=*/1);
  if (pull) {
    if (tamper.is_byzantine(passive)) {
      tamper.forge_buffer(passive, active, scratch.reply);
    }
    flat::absorb(store, active, active, spec, options, scratch.reply,
                 active_rng, scratch, /*age_incoming=*/1);
  }
}

/// Phase 1 — selection. Must run at the step's sequential position: after
/// every earlier step that touches `initiator` has executed, and before any
/// later one does. Consumes the initiator's arena Rng stream exactly as the
/// historical engine did.
inline CycleStep select_cycle_step(Network& net, NodeId initiator) {
  flat::NodeArena& arena = net.arena();
  const auto peer =
      flat::select_peer(arena.views.view_of(initiator),
                        net.spec().peer_selection, arena.rngs[initiator]);
  if (!peer) return {initiator, 0, StepKind::kEmptyView};
  if (!net.is_live(*peer) || !net.can_communicate(initiator, *peer)) {
    return {initiator, *peer, StepKind::kFailedContact};
  }
  return {initiator, *peer, StepKind::kExchange};
}

/// Phase 2 — execution. Touches only the slots (views, Rng streams,
/// NodeStats) of `step.initiator` and — for kExchange — `step.peer`, plus
/// the caller-owned scratch and stats; that footprint is the whole basis on
/// which the parallel engine runs non-conflicting steps concurrently.
/// `tamper` (optional) is the byzantine-injection seam; nullptr is the
/// untouched historical path.
inline void execute_cycle_step(Network& net, const CycleStep& step,
                               flat::Scratch& scratch, EngineStats& stats,
                               ExchangeTamper* tamper = nullptr) {
  flat::NodeArena& arena = net.arena();
  // Once-per-cycle aging (timestamp semantics; see gossip_node.hpp).
  if (tamper == nullptr || !tamper->suppress_aging(step.initiator)) {
    arena.views.age(step.initiator);
  }
  if (step.kind == StepKind::kEmptyView) {
    ++stats.empty_views;
    return;
  }
  ++arena.stats[step.initiator].initiated;
  if (step.kind == StepKind::kFailedContact) {
    // Dead peer or a network partition between the two: the exchange is
    // silently lost either way.
    flat::contact_failure(arena, step.initiator, step.peer, net.options());
    ++stats.failed_contacts;
    return;
  }
  // Start pulling the passive side's state in while the active buffer is
  // being built.
  arena.prefetch_node(step.peer);
  if (tamper == nullptr) {
    flat::run_exchange(arena, step.initiator, step.peer, net.spec(),
                       net.options(), scratch);
  } else {
    run_exchange_tampered(arena, step.initiator, step.peer, net.spec(),
                          net.options(), scratch, arena.rngs[step.initiator],
                          arena.rngs[step.peer], *tamper);
  }
  ++stats.exchanges;
}

}  // namespace pss::sim
