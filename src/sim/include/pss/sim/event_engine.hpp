// Asynchronous event-driven execution engine (extension).
//
// The paper's results come from a cycle-based simulator in which an
// exchange is atomic. Real deployments interleave messages with latency,
// losses and timeouts. EventEngine runs the *same* GossipNode logic over an
// explicit discrete-event message layer:
//   - each node's active thread fires every `period` time units, with a
//     uniform random initial phase (as in the skeleton's wait(T));
//   - every message (request or reply) experiences an independent uniform
//     latency in [min_latency, max_latency] and is dropped with probability
//     drop_probability;
//   - a pulling node keeps a single outstanding exchange; a reply that
//     arrives after reply_timeout (or after a newer exchange started) is
//     discarded; timeouts surface as contact failures.
//
// Tests use this engine to show the paper's conclusions are not artifacts
// of the atomic-exchange model (convergence to the same small-world state).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/membership/view.hpp"
#include "pss/sim/network.hpp"

namespace pss::sim {

struct EventEngineConfig {
  double period = 1.0;            ///< T: time between active-thread firings
  double min_latency = 0.01;      ///< per-message latency lower bound
  double max_latency = 0.10;      ///< per-message latency upper bound
  double drop_probability = 0.0;  ///< independent message loss probability
  double reply_timeout = 0.5;     ///< pull reply validity window
};

/// Aggregate counters over the whole run.
struct EventEngineStats {
  std::uint64_t wakeups = 0;            ///< active-thread firings
  std::uint64_t messages_sent = 0;      ///< requests + replies put on the wire
  std::uint64_t messages_dropped = 0;   ///< lost to drop_probability
  std::uint64_t messages_to_dead = 0;   ///< addressed to a dead node
  std::uint64_t replies_delivered = 0;  ///< pull replies accepted in time
  std::uint64_t replies_stale = 0;      ///< late or superseded pull replies
};

class EventEngine {
 public:
  /// Schedules an initial wake-up for every live node at a uniform random
  /// phase in [0, period). `network` must outlive the engine.
  EventEngine(Network& network, EventEngineConfig config);

  /// Processes all events with timestamp <= until (exclusive of later ones).
  void run_until(double until);

  /// Convenience: advances by `cycles * period` time units.
  void run_cycles(std::size_t cycles) {
    run_until(now_ + static_cast<double>(cycles) * config_.period);
  }

  /// Current simulated time; run_until(t) leaves it at t.
  double now() const { return now_; }

  /// Aggregate counters since construction.
  const EventEngineStats& stats() const { return stats_; }

 private:
  enum class Kind { kWakeup, kRequest, kReply };

  struct Event {
    double at = 0;
    std::uint64_t seq = 0;  ///< tie-break for determinism
    Kind kind = Kind::kWakeup;
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    std::uint64_t exchange_id = 0;  ///< matches replies to requests
    View payload;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Per-node pull bookkeeping: which exchange is outstanding, with whom,
  /// and until when the reply is acceptable.
  struct Pending {
    std::uint64_t exchange_id = 0;
    NodeId peer = kInvalidNode;
    double deadline = -1.0;
    bool active = false;
  };

  void schedule(Event e);
  void send(Kind kind, NodeId from, NodeId to, std::uint64_t exchange_id,
            View payload);
  void on_wakeup(NodeId node);
  void on_request(const Event& e);
  void on_reply(const Event& e);
  void expire_pending(NodeId node);

  Network* network_;
  EventEngineConfig config_;
  EventEngineStats stats_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_exchange_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Pending> pending_;
  std::size_t scheduled_nodes_ = 0;  ///< nodes whose wake-up loop is running
};

}  // namespace pss::sim
