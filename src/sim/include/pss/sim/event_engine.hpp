// Asynchronous event-driven execution engine on the flat simulation core.
//
// The paper's results come from a cycle-based simulator in which an
// exchange is atomic. Real deployments interleave messages with latency,
// losses and timeouts. EventEngine runs the *same* protocol mechanics over
// an explicit discrete-event message layer:
//   - each node's active thread fires every `period` time units, with a
//     uniform random initial phase (as in the skeleton's wait(T));
//   - every message (request or reply) experiences an independent uniform
//     latency in [min_latency, max_latency] and is dropped with probability
//     drop_probability;
//   - a pulling node keeps a single outstanding exchange; a reply that
//     arrives after reply_timeout (or after a newer exchange started) is
//     discarded; timeouts surface as contact failures.
//
// Tests use this engine to show the paper's conclusions are not artifacts
// of the atomic-exchange model (convergence to the same small-world state).
//
// Execution runs entirely on the network's flat::NodeArena, mirroring what
// CycleEngine did for the atomic model:
//   - the scheduler is an index-based calendar queue (calendar_queue.hpp):
//     O(1) amortized schedule/pop over ~N pending events instead of a
//     global binary heap's O(log N) pointer-heavy sifts, with the exact
//     (at, seq) pop order of the heap preserved;
//   - message payloads are fixed-stride slabs in a recycling
//     DescriptorSlabPool instead of heap-allocated View objects — an event
//     record is 40 trivially-copyable bytes and steady state allocates
//     nothing;
//   - wakeup/request/reply handling goes straight at the arena slots via
//     the flat_exchange request/reply split kernels, bypassing the
//     GossipNode adapter (and its View materialization) on the hot path.
// The original adapter-path implementation survives as LegacyEventEngine;
// tests/event_engine_flat_test.cpp replays the two against each other
// (identical seeds -> identical EventEngineStats and final views), which is
// the contract that lets this engine keep evolving.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/membership/descriptor_slab_pool.hpp"
#include "pss/membership/flat_ops.hpp"
#include "pss/sim/calendar_queue.hpp"
#include "pss/sim/cycle_step.hpp"
#include "pss/sim/exchange_apply.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/probe.hpp"
#include "pss/sim/trace_probe.hpp"

namespace pss::sim {

struct EventEngineConfig {
  double period = 1.0;            ///< T: time between active-thread firings
  double min_latency = 0.01;      ///< per-message latency lower bound
  double max_latency = 0.10;      ///< per-message latency upper bound
  double drop_probability = 0.0;  ///< independent message loss probability
  double reply_timeout = 0.5;     ///< pull reply validity window
};

/// Aggregate counters over the whole run.
struct EventEngineStats {
  std::uint64_t wakeups = 0;            ///< active-thread firings
  std::uint64_t messages_sent = 0;      ///< requests + replies put on the wire
  std::uint64_t messages_dropped = 0;   ///< lost to drop_probability
  std::uint64_t messages_to_dead = 0;   ///< addressed to a dead node
  std::uint64_t replies_delivered = 0;  ///< pull replies accepted in time
  std::uint64_t replies_stale = 0;      ///< late or superseded pull replies
};

class EventEngine {
 public:
  /// Schedules an initial wake-up for every live node at a uniform random
  /// phase in [0, period). `network` must outlive the engine.
  EventEngine(Network& network, EventEngineConfig config);

  /// Processes all events with timestamp <= until (exclusive of later ones),
  /// and re-anchors the integer cycle counter at `until` (see run_cycles).
  void run_until(double until);

  /// Advances by `cycles * period`. Wake targets are derived from an
  /// integer tick counter anchored at the last explicit run_until (or
  /// construction), i.e. anchor + total_ticks * period — one rounding per
  /// call instead of the legacy now + cycles * period accumulation, whose
  /// error compounds across repeated calls.
  void run_cycles(std::size_t cycles);

  /// Current simulated time; run_until(t) leaves it at t.
  double now() const { return now_; }

  /// Aggregate counters since construction.
  const EventEngineStats& stats() const { return stats_; }

  /// Registers an observer fired at period-tick boundaries during
  /// run_cycles: after every `cadence`-th completed tick, counted across
  /// the engine's lifetime, with the tick count passed as the probe's
  /// cycle. run_until does not fire probes (it has no tick structure).
  /// Event processing is unaffected: events are totally ordered by
  /// (at, seq), so stopping at intermediate tick boundaries replays the
  /// exact same sequence. The probe must outlive the engine.
  void attach_probe(SnapshotProbe& probe, Cycle cadence = 1) {
    register_probe(probes_, probe, cadence);
  }

  /// Registers the byzantine-injection hook (see ExchangeTamper in
  /// cycle_step.hpp): byzantine wake-ups skip view aging, and byzantine
  /// request/reply payloads are rewritten in their message slabs just
  /// before they go on the wire. Message timing, losses and the master Rng
  /// are untouched, so a tamper that never forges or suppresses leaves the
  /// run bit-identical to an unhooked engine. The tamper must outlive the
  /// engine.
  void attach_adversary(ExchangeTamper& tamper) { tamper_ = &tamper; }

  /// Registers the causal-tracing hook (see TraceProbe in trace_probe.hpp):
  /// select / request-sent spans and timeout marks on the active side of
  /// each wakeup, merge+apply on the passive request handler,
  /// reply-received on admitted replies — all labelled with the engine's
  /// u64 exchange id. Tracing reads clocks and engine-local values only,
  /// so hooked runs (armed or disarmed) stay digest-identical to the
  /// unhooked engine. The probe must outlive the engine.
  void attach_trace(TraceProbe& trace) { trace_ = &trace; }

  // --- Introspection (tests, bench drivers) --------------------------------

  /// Events currently scheduled (wake-ups + in-flight messages).
  std::size_t queued_events() const { return queue_.size(); }

  /// Message slabs ever created — the high-water mark of in-flight
  /// messages; boundedness here is what "recycling" means.
  std::size_t message_pool_slabs() const { return pool_.slab_count(); }

  /// Message slabs currently attached to queued events.
  std::size_t message_pool_in_use() const { return pool_.in_use(); }

  /// Bytes resident in engine-owned state (calendar buckets, message pool,
  /// pending table) — the engine's contribution on top of the network's
  /// resident_bytes().
  std::size_t resident_bytes() const {
    return queue_.storage_bytes() + pool_.storage_bytes() +
           pending_.capacity() * sizeof(PendingExchange);
  }

 private:
  enum class Kind : std::uint32_t { kWakeup, kRequest, kReply };

  /// 24-byte trivially-copyable event record; payloads live in the pool.
  struct FlatEvent {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    DescriptorSlabPool::SlabId slab = DescriptorSlabPool::kNoSlab;
    std::uint32_t kind = 0;
    std::uint64_t exchange_id = 0;  ///< matches replies to requests
  };

  void advance_to(double until);
  void schedule_new_nodes();
  /// Rewrites a byzantine sender's slab in place through the tamper; the
  /// slab's entry count after forging is returned (== `size` when honest).
  std::uint32_t maybe_forge_slab(NodeId sender, NodeId receiver,
                                 DescriptorSlabPool::SlabId slab,
                                 std::uint32_t size);
  void push_event(double at, Kind kind, NodeId from, NodeId to,
                  std::uint64_t exchange_id, DescriptorSlabPool::SlabId slab);
  void send_request(NodeId from, NodeId to, std::uint64_t exchange_id,
                    bool age_view);
  void on_wakeup(NodeId node);
  void on_request(const FlatEvent& e);
  void on_reply(const FlatEvent& e);
  void expire_pending(NodeId node);

  Network* network_;
  EventEngineConfig config_;
  EventEngineStats stats_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_exchange_ = 1;
  CalendarQueue<FlatEvent> queue_;
  DescriptorSlabPool pool_;
  // Pull bookkeeping shared with the transport-layer ServiceNode (see
  // exchange_apply.hpp): both drivers admit/expire replies through the
  // same helpers, which the transport differential suite pins.
  std::vector<PendingExchange> pending_;
  flat::Scratch scratch_;            ///< exchange working memory, reused
  std::size_t scheduled_nodes_ = 0;  ///< nodes whose wake-up loop is running
  double tick_anchor_ = 0;           ///< last explicit run_until target
  std::uint64_t ticks_ = 0;          ///< run_cycles ticks since the anchor
  std::vector<ProbeRegistration> probes_;
  Cycle probe_ticks_ = 0;            ///< lifetime tick count for cadence
  ExchangeTamper* tamper_ = nullptr;  ///< byzantine seam; null = honest run
  TraceProbe* trace_ = nullptr;       ///< tracing seam; null = untraced run
  std::vector<NodeDescriptor> forged_;  ///< forge staging buffer, reused
};

}  // namespace pss::sim
