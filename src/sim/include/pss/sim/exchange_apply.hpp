#pragma once

// Pull-exchange bookkeeping shared by every driver of the flat_exchange
// kernels — the in-process EventEngine and the transport-layer ServiceNode
// (src/transport/). A pulling node keeps ONE outstanding exchange; these
// helpers encode the engine's admission discipline so the two drivers
// cannot drift apart:
//
//   * a reply is accepted only if it matches the outstanding exchange id
//     and arrives within its deadline;
//   * starting a new exchange supersedes any outstanding one (the old
//     reply, should it still arrive, is stale);
//   * an exchange whose deadline passed before the next wake-up surfaces
//     as a contact failure against the chosen peer.
//
// The differential suite (tests/transport_test.cpp) and the trace-
// equivalence suite (tests/event_engine_flat_test.cpp) pin that both
// drivers produce identical per-node state through these helpers.

#include <cstdint>

#include "pss/common/types.hpp"
#include "pss/protocol/flat_exchange.hpp"
#include "pss/protocol/node_arena.hpp"
#include "pss/protocol/spec.hpp"

namespace pss::sim {

/// Per-node pull bookkeeping: which exchange is outstanding, with whom,
/// and until when the reply is acceptable.
struct PendingExchange {
  std::uint64_t exchange_id = 0;
  NodeId peer = kInvalidNode;
  double deadline = -1.0;
  bool active = false;
};

/// Wake-up preamble: an outstanding pull whose reply window closed is a
/// failed contact (the peer never answered in time).
inline void expire_overdue(flat::NodeArena& arena, NodeId slot,
                           PendingExchange& pending, double now,
                           const ProtocolOptions& options) {
  if (pending.active && pending.deadline < now) {
    flat::contact_failure(arena, slot, pending.peer, options);
    pending.active = false;
  }
}

/// Records a freshly initiated pull exchange. Returns true when an
/// outstanding exchange was superseded (callers count a stale reply).
inline bool open_exchange(PendingExchange& pending, std::uint64_t exchange_id,
                          NodeId peer, double deadline) {
  const bool superseded = pending.active;
  pending = {exchange_id, peer, deadline, true};
  return superseded;
}

/// Reply admission: true exactly when an arriving reply should be absorbed
/// (matching id, within deadline); clears the pending slot on acceptance.
/// False means the reply is stale — late, superseded, or never asked for.
inline bool admit_reply(PendingExchange& pending, std::uint64_t exchange_id,
                        double now) {
  if (!pending.active || pending.exchange_id != exchange_id ||
      pending.deadline < now) {
    return false;
  }
  pending.active = false;
  return true;
}

}  // namespace pss::sim
