// Cycle-driven simulation of the generalized (H, S) protocol family
// (see hs_node.hpp). Mirrors Network + CycleEngine for HSGossipNode:
// one exchange initiation per live node per cycle in random order, atomic
// pushpull (or push-only) exchanges, silent failure on dead contacts.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/protocol/hs_node.hpp"

namespace pss::sim {

class HSOverlay {
 public:
  /// n nodes, each bootstrapped with min(c, n-1) uniform random peers.
  HSOverlay(std::size_t n, HSParams params, std::uint64_t seed);

  std::size_t size() const { return nodes_.size(); }
  std::size_t live_count() const { return live_count_; }
  const HSParams& params() const { return params_; }

  HSGossipNode& node(NodeId id) { return nodes_[id]; }
  const HSGossipNode& node(NodeId id) const { return nodes_[id]; }
  bool is_live(NodeId id) const { return live_[id] != 0; }

  void kill(NodeId id);
  void kill_random(std::size_t count);

  /// One cycle: every live node ages its view, selects a peer, exchanges.
  void run_cycle();
  void run(Cycle cycles);
  Cycle cycle() const { return cycle_; }

  /// Dead links across live views (Figure-7 style accounting).
  std::uint64_t count_dead_links() const;

  /// Undirected degrees of the live overlay (view entries to live nodes).
  std::vector<std::size_t> degrees() const;

  /// True when the undirected live overlay is connected.
  bool connected() const;

 private:
  HSParams params_;
  Rng rng_;
  std::vector<HSGossipNode> nodes_;
  std::vector<std::uint8_t> live_;
  std::size_t live_count_ = 0;
  Cycle cycle_ = 0;
};

}  // namespace pss::sim
