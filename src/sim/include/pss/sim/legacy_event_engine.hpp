// Reference asynchronous engine: the original object-graph implementation.
//
// This is the pre-flat EventEngine, frozen verbatim: one global
// std::priority_queue of events, each message carrying a heap-allocated
// View payload, and all node interaction routed through the GossipNode
// adapter. It is retained for two jobs only:
//   - the trace-equivalence suite (tests/event_engine_flat_test.cpp)
//     replays it against the flat EventEngine under identical seeds — same
//     EventEngineStats, same final views — which is what pins the flat
//     engine's semantics;
//   - bench/scale_async measures it as the recorded baseline the flat
//     engine's events/s are compared against.
// Do not use it for new work and do not "fix" it: its value is that it
// does not move. Semantic changes belong in EventEngine with the
// equivalence suite updated in lockstep.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/membership/view.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/network.hpp"

namespace pss::sim {

class LegacyEventEngine {
 public:
  /// Schedules an initial wake-up for every live node at a uniform random
  /// phase in [0, period). `network` must outlive the engine.
  LegacyEventEngine(Network& network, EventEngineConfig config);

  /// Processes all events with timestamp <= until (exclusive of later ones).
  void run_until(double until);

  /// Convenience: advances by `cycles * period` time units. Kept with the
  /// original floating-point accumulation (now + cycles * period per call);
  /// the flat engine's run_cycles fixes the drift, which is why equivalence
  /// traces drive both engines through run_until with identical targets.
  void run_cycles(std::size_t cycles) {
    run_until(now_ + static_cast<double>(cycles) * config_.period);
  }

  /// Current simulated time; run_until(t) leaves it at t.
  double now() const { return now_; }

  /// Aggregate counters since construction.
  const EventEngineStats& stats() const { return stats_; }

 private:
  enum class Kind { kWakeup, kRequest, kReply };

  struct Event {
    double at = 0;
    std::uint64_t seq = 0;  ///< tie-break for determinism
    Kind kind = Kind::kWakeup;
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    std::uint64_t exchange_id = 0;  ///< matches replies to requests
    View payload;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Per-node pull bookkeeping: which exchange is outstanding, with whom,
  /// and until when the reply is acceptable.
  struct Pending {
    std::uint64_t exchange_id = 0;
    NodeId peer = kInvalidNode;
    double deadline = -1.0;
    bool active = false;
  };

  void schedule(Event e);
  void send(Kind kind, NodeId from, NodeId to, std::uint64_t exchange_id,
            View payload);
  void on_wakeup(NodeId node);
  void on_request(const Event& e);
  void on_reply(const Event& e);
  void expire_pending(NodeId node);

  Network* network_;
  EventEngineConfig config_;
  EventEngineStats stats_;
  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_exchange_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Pending> pending_;
  std::size_t scheduled_nodes_ = 0;  ///< nodes whose wake-up loop is running
};

}  // namespace pss::sim
