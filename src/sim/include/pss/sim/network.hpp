// Simulated network: the registry of gossip nodes with liveness state.
//
// Addresses are dense ids assigned in creation order; a killed node keeps
// its slot (so descriptors pointing to it become dead links, exactly the
// failure model of the paper's Section 7) and can optionally be revived.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/protocol/gossip_node.hpp"
#include "pss/protocol/spec.hpp"

namespace pss::sim {

class Network {
 public:
  /// All nodes run `spec` with `options`; `seed` drives every random choice
  /// of the whole simulation (node RNGs are split off deterministically).
  Network(ProtocolSpec spec, ProtocolOptions options, std::uint64_t seed);

  const ProtocolSpec& spec() const { return spec_; }
  const ProtocolOptions& options() const { return options_; }

  /// Creates a live node with an empty view; returns its address.
  NodeId add_node();

  /// Creates `n` nodes; returns the address of the first one.
  NodeId add_nodes(std::size_t n);

  /// Total slots ever created (live + dead).
  std::size_t size() const { return nodes_.size(); }

  /// Number of currently live nodes.
  std::size_t live_count() const { return live_count_; }

  GossipNode& node(NodeId id);
  const GossipNode& node(NodeId id) const;

  bool is_live(NodeId id) const;

  /// Marks a node dead. Its descriptors elsewhere become dead links; its own
  /// view is kept (irrelevant while dead, realistic if revived).
  void kill(NodeId id);

  /// Brings a dead node back with an empty view (a rejoin must re-bootstrap).
  void revive(NodeId id);

  /// Kills a uniform random sample of `count` live nodes.
  void kill_random(std::size_t count, Rng& rng);

  /// Addresses of all live nodes, ascending.
  std::vector<NodeId> live_nodes() const;

  /// Total descriptors across live nodes' views that point at dead nodes
  /// (the paper's "overall dead links" metric, Figure 7).
  std::uint64_t count_dead_links() const;

  /// Master RNG of the simulation (engines use it for cycle permutations).
  Rng& rng() { return rng_; }

  // --- Temporary network partitions (paper Section 8 discussion) ----------
  // Nodes carry a partition group id (default 0 = everyone together).
  // Engines treat a contact between different groups like a contact to a
  // dead node: the message is lost, views do not change. This models a
  // network-level split with all nodes still running.

  /// Assigns a node to a partition group.
  void set_partition_group(NodeId id, std::uint32_t group);

  /// Puts every node back into group 0 (heals the split).
  void clear_partitions();

  /// Group of a node (0 when partitions are unused).
  std::uint32_t partition_group(NodeId id) const;

  /// True when a and b can exchange messages (same group, both in range).
  bool can_communicate(NodeId a, NodeId b) const;

  /// True when any node is outside group 0.
  bool partitioned() const { return partitioned_; }

  /// Number of view entries of live group-`from` nodes that point at live
  /// nodes of a DIFFERENT group — the "memory" each side retains of the
  /// other during a split (the quantity the Section 8 discussion is about).
  std::uint64_t count_cross_partition_links() const;

 private:
  ProtocolSpec spec_;
  ProtocolOptions options_;
  Rng rng_;
  std::vector<GossipNode> nodes_;
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> group_;
  std::size_t live_count_ = 0;
  bool partitioned_ = false;
};

}  // namespace pss::sim
