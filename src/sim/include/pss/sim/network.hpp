// Simulated network: the registry of gossip nodes with liveness state.
//
// Addresses are dense ids assigned in creation order; a killed node keeps
// its slot (so descriptors pointing to it become dead links, exactly the
// failure model of the paper's Section 7) and can optionally be revived.
//
// Storage: the network is arena-backed. All node state lives in a
// flat::NodeArena — one contiguous FlatViewStore for every view, plus flat
// vectors of Rng streams and counters — instead of per-node objects with
// per-node heap allocations. The GossipNode objects handed out by node()
// are thin adapters over arena slots (kept in a parallel vector so the
// `GossipNode&` accessor stays reference-stable); the engines bypass them
// and run exchanges directly over the arena. The arena lives behind a
// unique_ptr so moving a Network never invalidates the adapters' back
// pointers.
//
// Liveness is tracked twice: a per-slot byte (the O(1) is_live lookup the
// engines hit on every contact) and an incremental swap-remove pool of live
// ids (live_ids()), so sampling k live nodes — churn joins, kill_random —
// is O(k) instead of a fresh O(N) list build per cycle.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/protocol/gossip_node.hpp"
#include "pss/protocol/node_arena.hpp"
#include "pss/protocol/spec.hpp"

namespace pss::sim {

class Network {
 public:
  /// All nodes run `spec` with `options`; `seed` drives every random choice
  /// of the whole simulation (node RNGs are split off deterministically).
  Network(ProtocolSpec spec, ProtocolOptions options, std::uint64_t seed);

  Network(Network&&) noexcept = default;
  Network& operator=(Network&&) noexcept = default;

  const ProtocolSpec& spec() const { return spec_; }
  const ProtocolOptions& options() const { return options_; }

  /// Creates a live node with an empty view; returns its address.
  NodeId add_node();

  /// Creates `n` nodes; returns the address of the first one.
  NodeId add_nodes(std::size_t n);

  /// Pre-allocates every per-node array for `n` nodes — one contiguous
  /// growth per array instead of repeated doubling (the difference between
  /// seconds and noise when standing up a 10^6-node network).
  void reserve_nodes(std::size_t n);

  /// Total slots ever created (live + dead).
  std::size_t size() const { return adapters_.size(); }

  /// Number of currently live nodes.
  std::size_t live_count() const { return live_ids_.size(); }

  GossipNode& node(NodeId id);
  const GossipNode& node(NodeId id) const;

  /// Zero-copy view access straight from the arena (no adapter, no View
  /// materialization) — the inspection fast path for metrics and graphs.
  std::span<const NodeDescriptor> view_span(NodeId id) const;

  /// The structs-of-arrays node state. CycleEngine and the scale bench run
  /// on this directly; everything else should go through node()/view_span().
  flat::NodeArena& arena() { return *arena_; }
  const flat::NodeArena& arena() const { return *arena_; }

  bool is_live(NodeId id) const {
    return id < live_.size() && live_[id] != 0;
  }

  /// Marks a node dead. Its descriptors elsewhere become dead links; its own
  /// view is kept (irrelevant while dead, realistic if revived).
  void kill(NodeId id);

  /// Brings a dead node back with an empty view (a rejoin must re-bootstrap).
  void revive(NodeId id);

  /// Kills a uniform random sample of `count` live nodes. O(count) via the
  /// incremental live-id pool.
  void kill_random(std::size_t count, Rng& rng);

  /// Addresses of all live nodes, ascending. Allocates and scans every
  /// slot; per-cycle callers (churn, engines) should sample live_ids()
  /// instead.
  std::vector<NodeId> live_nodes() const;

  /// The incremental live-id pool: every live address exactly once, in
  /// UNSPECIFIED order (kills swap-remove, so churn perturbs it). O(1) to
  /// read, maintained incrementally by add/kill/revive — this is what makes
  /// per-cycle churn O(changes) instead of O(N). The span is invalidated by
  /// any membership change (add_node, kill, revive).
  std::span<const NodeId> live_ids() const { return live_ids_; }

  /// Total descriptors across live nodes' views that point at dead nodes
  /// (the paper's "overall dead links" metric, Figure 7).
  std::uint64_t count_dead_links() const;

  /// Master RNG of the simulation (engines use it for cycle permutations).
  Rng& rng() { return rng_; }

  /// Bytes resident in the per-node state arrays (arena storage, adapters,
  /// liveness/partition maps) — the bytes/node numerator in BENCH_scale.
  std::size_t resident_bytes() const;

  // --- Temporary network partitions (paper Section 8 discussion) ----------
  // Nodes carry a partition group id (default 0 = everyone together).
  // Engines treat a contact between different groups like a contact to a
  // dead node: the message is lost, views do not change. This models a
  // network-level split with all nodes still running.

  /// Assigns a node to a partition group.
  void set_partition_group(NodeId id, std::uint32_t group);

  /// Puts every node back into group 0 (heals the split).
  void clear_partitions();

  /// Group of a node (0 when partitions are unused).
  std::uint32_t partition_group(NodeId id) const;

  /// True when a and b can exchange messages (same group, both in range).
  bool can_communicate(NodeId a, NodeId b) const {
    if (a >= group_.size() || b >= group_.size()) return false;
    // Unpartitioned fast path: skips two random reads of the group map on
    // every exchange (all groups are 0, so in-range ids always match).
    if (!partitioned_) return true;
    return group_[a] == group_[b];
  }

  /// True when any node is outside group 0.
  bool partitioned() const { return partitioned_; }

  /// Number of view entries of live group-`from` nodes that point at live
  /// nodes of a DIFFERENT group — the "memory" each side retains of the
  /// other during a split (the quantity the Section 8 discussion is about).
  std::uint64_t count_cross_partition_links() const;

 private:
  ProtocolSpec spec_;
  ProtocolOptions options_;
  Rng rng_;
  std::unique_ptr<flat::NodeArena> arena_;
  std::vector<GossipNode> adapters_;
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> group_;
  // Swap-remove live-id pool: live_ids_ holds every live address once;
  // live_pos_[id] is its index in live_ids_ (kNotLive when dead).
  std::vector<NodeId> live_ids_;
  std::vector<std::uint32_t> live_pos_;
  bool partitioned_ = false;

  static constexpr std::uint32_t kNotLive = ~std::uint32_t{0};
};

}  // namespace pss::sim
