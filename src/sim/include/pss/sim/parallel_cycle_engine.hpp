// Sharded parallel execution of the paper's cycle model.
//
// The sequential CycleEngine is memory-bound at 10⁶ nodes: each exchange
// touches two random ~300 B slots, and one thread cannot cover the miss
// latency. This engine runs the same per-step body (cycle_step.hpp) on a
// persistent thread pool, under one of two documented semantics:
//
// ParallelPolicy::kDeterministic — the equivalence mode. A
// ConflictScheduler carves each cycle's permutation into contiguous,
// conflict-free batches; peer selection runs on the scanning thread at
// every step's exact sequential position, batch bodies run on the pool
// behind a barrier. Two steps commute unless they share a node, every
// conflicting pair stays in permutation order, and each node's state —
// including its per-node Rng stream, whose draws are serialized by the
// claims — sees exactly the sequential schedule. Result: bit-identical
// stats and final views to CycleEngine at ANY thread count (pinned across
// all 8 evaluated protocols by tests/parallel_cycle_engine_test.cpp). The
// price is the sequential scan: selection + scheduling stay on one thread,
// so Amdahl caps the speedup (docs/PERFORMANCE.md quantifies it).
//
// ParallelPolicy::kRelaxed — the throughput mode, an explicit semantics
// variant (like the cycle/event split): the permutation is sharded across
// lanes and every node is guarded by a per-node spinlock; an exchange
// locks its initiator, draws the peer, then locks the (initiator, peer)
// pair in address order. Exchanges that share a node serialize in
// whatever order the lanes reach them, so runs are *not* reproducible —
// the equivalence guarantee is traded for scan-free scaling. What is
// still guaranteed: freedom from data races (every slot access happens
// under its node's lock — the TSan CI job runs this engine's tests), view
// invariants I1-I3, one initiation per live node per cycle, and
// interleaving-independent randomness: draws come from counter-based
// streams (Rng::stream_at keyed by node id and per-node participation
// count), so thread timing decides only which exchanges a node's draws
// apply to, never the draw values themselves — node streams cannot
// entangle. The paper's own model serializes exchanges; Relaxed
// corresponds to the "concurrent cycle" reading where a node's cycle-t
// partners may already have exchanged within cycle t.
//
// Master-Rng discipline: Deterministic mode consumes the master stream
// exactly as the sequential engine does (one shuffle per cycle, nothing
// at construction). Relaxed mode draws one extra master value when the
// engine is constructed (the stream-derivation seed) and the per-cycle
// shuffle thereafter — so constructing a Relaxed engine shifts the master
// stream by one draw relative to a sequential or Deterministic run.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/membership/flat_ops.hpp"
#include "pss/sim/conflict_scheduler.hpp"
#include "pss/sim/cycle_step.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/probe.hpp"
#include "pss/sim/relaxed_lock.hpp"
#include "pss/sim/thread_pool.hpp"
#include "pss/sim/trace_probe.hpp"

#include <atomic>

namespace pss::sim {

/// Execution semantics of the parallel engine; see the header comment.
enum class ParallelPolicy : std::uint8_t {
  kDeterministic,  ///< bit-identical to the sequential CycleEngine
  kRelaxed,        ///< race-free but schedule-dependent; scan-free scaling
};

class ParallelCycleEngine {
 public:
  struct Config {
    /// Total lanes including the driving thread; 0 = hardware concurrency.
    unsigned threads = 0;
    ParallelPolicy policy = ParallelPolicy::kDeterministic;
  };

  /// `network` must outlive the engine. In Relaxed mode construction draws
  /// one value from the master Rng (the stream-derivation seed);
  /// Deterministic construction leaves the network untouched.
  ParallelCycleEngine(Network& network, Config config);

  /// Runs one cycle: permutes live nodes, fires each active thread once.
  void run_cycle();

  /// Runs `cycles` consecutive cycles.
  void run(Cycle cycles);

  /// Number of cycles executed so far.
  Cycle cycle() const { return cycle_; }

  /// Aggregate counters since construction.
  const EngineStats& stats() const { return stats_; }

  unsigned threads() const { return pool_.concurrency(); }
  ParallelPolicy policy() const { return config_.policy; }

  /// Registers an observer fired on the driving thread after every
  /// `cadence`-th cycle's end-of-cycle barrier — all lanes are quiescent, so
  /// the probe may read any slot (see pss/sim/probe.hpp). The probe must
  /// outlive the engine.
  void attach_probe(SnapshotProbe& probe, Cycle cadence = 1) {
    register_probe(probes_, probe, cadence);
  }

  /// Registers the byzantine-injection hook (see ExchangeTamper in
  /// cycle_step.hpp). Hooks fire on worker lanes; the tamper's thread-safety
  /// contract (const classification, per-sender forge state) plus the
  /// engine's schedule (conflict batches / pair locks serialize any one
  /// node's steps) keep this race-free. In Deterministic mode a hooked run
  /// stays bit-identical to the hooked sequential engine at any thread
  /// count, provided the tamper's forgery depends only on (sender,
  /// per-sender call index) — which is how AdversaryModel derives its
  /// streams. The tamper must outlive the engine.
  void attach_adversary(ExchangeTamper& tamper) { tamper_ = &tamper; }

  /// Registers the causal-tracing hook (see TraceProbe in trace_probe.hpp).
  /// In Deterministic mode selection spans fire on the scanning thread at
  /// each step's sequential position and merge+apply spans on whichever
  /// lane executes the step (record() must be thread-safe — the obs
  /// implementations are); in Relaxed mode both spans fire on the
  /// executing lane. Tracing never mutates simulation state, so hooked
  /// runs — armed or disarmed — keep the engine's digest contract intact
  /// at any thread count. The probe must outlive the engine.
  void attach_trace(TraceProbe& trace) { trace_ = &trace; }

 private:
  void build_order();
  void run_cycle_deterministic();
  void run_cycle_relaxed();
  void execute_batch();
  void relaxed_initiate(NodeId initiator, flat::Scratch& scratch,
                        EngineStats& stats);
  /// execute_cycle_step bracketed by the merge+apply span when traced.
  void execute_step(const CycleStep& step, flat::Scratch& scratch,
                    EngineStats& stats);

  Network* network_;
  Config config_;
  ThreadPool pool_;
  ConflictScheduler scheduler_;
  Cycle cycle_ = 0;
  EngineStats stats_;
  std::vector<NodeId> order_;      ///< per-cycle permutation, capacity reused
  std::vector<CycleStep> batch_;   ///< current conflict-free batch
  std::vector<flat::Scratch> lane_scratch_;  ///< one per lane
  std::vector<EngineStats> lane_stats_;      ///< summed into stats_ per cycle
  std::vector<ProbeRegistration> probes_;
  ExchangeTamper* tamper_ = nullptr;  ///< byzantine seam; null = honest run
  TraceProbe* trace_ = nullptr;       ///< tracing seam; null = untraced run
  /// Trace-only step id counter. Relaxed lanes bump it concurrently;
  /// Deterministic mode touches it from the scanning thread alone.
  std::atomic<std::uint64_t> trace_exchange_{0};

  // Relaxed-mode state (empty under kDeterministic).
  std::uint64_t relaxed_seed_ = 0;
  std::vector<RelaxedNodeLock> locks_;          ///< one spinlock per node
  std::vector<std::uint32_t> participations_;   ///< per-node draw counters
};

}  // namespace pss::sim
