// Parallel discrete-event execution of the asynchronous model — the event
// engine counterpart of ParallelCycleEngine, with the same contract: a
// Deterministic schedule that replays the sequential EventEngine
// bit-identically (state digest + counters) at any thread count.
//
// Why the cycle engine's conflict scheduling alone is not enough here: the
// event engine's per-event work is entangled with *global* sequential state
// — the master Rng (drop/latency draws), the event sequence counter, the
// exchange-id counter and the slab pool — whose consumption order defines
// the sequential run. The engine therefore splits every event into:
//
//   S-part (sequencer): everything that touches global state, executed on
//     the driving thread in exact (at, seq) pop order — timer re-arms,
//     liveness checks, master-Rng draws, slab acquisition, event pushes,
//     pull admission (pending table), engine counters;
//   W-part (worker): the per-node kernel work — handle_request /
//     handle_reply, i.e. the merge/select absorb into one node's slot with
//     that node's own Rng stream — deferred into a batch and executed in
//     parallel after the window's S-parts finished.
//
// Batches are bounded by a conservative lookahead window of width
//   W = min(min_latency, period):
// every event an in-window handler creates lands at least W after the
// window start (messages by the latency floor, re-arms by the period), so
// nothing processed in a window can be scheduled into it — the popped
// prefix is causally closed (the same safe-horizon argument LoopbackDriver
// uses to totally order timer + frame events). Within a window, W-parts on
// distinct nodes commute: each touches only its node's slot, stats row and
// Rng stream, plus message slabs no other task holds. Two W-parts on the
// SAME node must keep their pop order, so a window also closes early at the
// first event whose target is already claimed by a deferred task —
// ConflictScheduler's contiguous-batch discipline transplanted to event
// targets. Wakeups run entirely on the sequencer (they read and write
// their node's slot inline), which is safe because the S-phase strictly
// precedes the W-phase and one node wakes at most once per window (W <=
// period).
//
// With min_latency == 0 the safe horizon is empty, every window holds one
// event, and the engine degrades to a (correct) sequential run — zero-delay
// configurations have no exploitable causal slack, which docs/PERFORMANCE.md
// records honestly.
//
// Bit-identity vs the sequential engine, the invariant
// tests/parallel_event_engine_test.cpp and bench/scale_async's digest gate
// pin: the pop order is the sequential order (same queue, same pushes in
// the same S-part order, so the same (at, seq) tags); master-Rng,
// exchange-id and sequence-counter consumption happen on the sequencer in
// that order; per-node draws are serialized per node by the claim rule; and
// counters are S-phase only. The one invisible difference: slabs consumed
// by W-parts are recycled at the window barrier instead of mid-event, so
// the pool's free-list order — and possibly its high-water mark — may
// differ. Slab ids are opaque handles; no payload, view, stat or Rng value
// depends on them.
//
// Thread count changes nothing but which lane runs a W-part: batch
// composition is fixed by the schedule, so runs are bit-identical across
// thread counts by construction, and ThreadPool(1) (or small batches, which
// run inline on the sequencer) is the sequential special case.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/membership/descriptor_slab_pool.hpp"
#include "pss/membership/flat_ops.hpp"
#include "pss/sim/calendar_queue.hpp"
#include "pss/sim/cycle_step.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/exchange_apply.hpp"
#include "pss/sim/network.hpp"
#include "pss/sim/probe.hpp"
#include "pss/sim/thread_pool.hpp"

namespace pss::sim {

class ParallelEventEngine {
 public:
  /// Schedules an initial wake-up for every live node at a uniform random
  /// phase in [0, period), exactly as EventEngine does (same master-Rng
  /// draws in id order). `threads` is the total lane count (0 = hardware
  /// concurrency); `network` must outlive the engine.
  ParallelEventEngine(Network& network, EventEngineConfig config,
                      unsigned threads);

  /// Processes all events with timestamp <= until and re-anchors the
  /// integer cycle counter (see EventEngine::run_until).
  void run_until(double until);

  /// Advances by `cycles * period` from the tick anchor; fires attached
  /// probes at tick boundaries (see EventEngine::run_cycles).
  void run_cycles(std::size_t cycles);

  double now() const { return now_; }
  const EventEngineStats& stats() const { return stats_; }

  /// Same probe contract as EventEngine::attach_probe. Probes fire on the
  /// driving thread between windows, never while workers run.
  void attach_probe(SnapshotProbe& probe, Cycle cadence = 1) {
    register_probe(probes_, probe, cadence);
  }

  /// Same seam as EventEngine::attach_adversary, with the parallel-engine
  /// addendum (see ExchangeTamper in cycle_step.hpp): reply forging runs on
  /// worker lanes, so is_byzantine / forge_buffer must be safe to call
  /// concurrently (pure functions of their arguments in practice). Wakeup
  /// hooks (suppress_aging, request forging) stay on the sequencer.
  void attach_adversary(ExchangeTamper& tamper) { tamper_ = &tamper; }

  /// Same seam as EventEngine::attach_trace, with the parallel-engine
  /// addendum: select / request-sent / timeout spans fire on the
  /// sequencer in exact pop order; merge+apply and reply-received spans
  /// fire on whichever lane runs the deferred W-part, so record() must be
  /// safe under concurrent callers (the TraceProbe contract; the obs
  /// implementations are). Tracing never mutates simulation state, so the
  /// engine's bit-identity contract vs the sequential EventEngine holds
  /// hooked, disarmed or armed, at any thread count.
  void attach_trace(TraceProbe& trace) { trace_ = &trace; }

  // --- Introspection (tests, bench drivers) --------------------------------

  std::size_t queued_events() const { return queue_.size(); }
  std::size_t message_pool_slabs() const { return pool_.slab_count(); }
  std::size_t message_pool_in_use() const { return pool_.in_use(); }
  unsigned threads() const { return pool_threads_.concurrency(); }

  /// The conservative safe horizon W = min(min_latency, period).
  double lookahead() const { return lookahead_; }

  /// Windows closed (conflict-closed windows count once).
  std::uint64_t windows() const { return windows_; }

  /// Deferred W-parts executed, and how many ran through the thread pool
  /// (the rest ran inline on the sequencer: batches below the dispatch
  /// threshold, or a 1-lane pool).
  std::uint64_t deferred_tasks() const { return deferred_tasks_; }
  std::uint64_t pooled_tasks() const { return pooled_tasks_; }

  std::size_t resident_bytes() const {
    return queue_.storage_bytes() + pool_.storage_bytes() +
           pending_.capacity() * sizeof(PendingExchange) +
           claim_.capacity() * sizeof(std::uint64_t) +
           batch_.capacity() * sizeof(SlotTask);
  }

 private:
  enum class Kind : std::uint32_t { kWakeup, kRequest, kReply };

  struct FlatEvent {
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    DescriptorSlabPool::SlabId slab = DescriptorSlabPool::kNoSlab;
    std::uint32_t kind = 0;
    std::uint64_t exchange_id = 0;
  };

  /// A deferred W-part: one node's absorb kernel over one message slab.
  struct SlotTask {
    NodeId node = kInvalidNode;  ///< target (the event's `to`)
    NodeId peer = kInvalidNode;  ///< the event's `from` (forge receiver)
    DescriptorSlabPool::SlabId slab = DescriptorSlabPool::kNoSlab;
    DescriptorSlabPool::SlabId reply_slab = DescriptorSlabPool::kNoSlab;
    std::uint32_t size = 0;      ///< payload entries in `slab`
    std::uint32_t kind = 0;      ///< kRequest or kReply
    std::uint64_t exchange_id = 0;  ///< trace span label (see attach_trace)
  };

  /// Per-lane working state, cache-line separated: the absorb kernels are
  /// allocation-free given a warm Scratch, so lanes never share memory.
  struct alignas(64) LaneState {
    flat::Scratch scratch;
    std::vector<NodeDescriptor> forged;  ///< per-lane forge staging buffer
  };

  void advance_to(double until);
  void schedule_new_nodes();
  void push_event(double at, Kind kind, NodeId from, NodeId to,
                  std::uint64_t exchange_id, DescriptorSlabPool::SlabId slab);
  /// S-parts (sequencer only). seq_request/seq_reply may defer a SlotTask.
  void seq_wakeup(NodeId id);
  void seq_request(const FlatEvent& e);
  void seq_reply(const FlatEvent& e);
  /// Runs the current batch's W-parts (pool or inline), then recycles the
  /// consumed slabs in batch order and clears the batch.
  void flush_batch();
  void run_task(const SlotTask& t, LaneState& lane);
  std::uint32_t forge_slab(NodeId sender, NodeId receiver,
                           DescriptorSlabPool::SlabId slab, std::uint32_t size,
                           std::vector<NodeDescriptor>& staging);

  bool claimed(NodeId node) const { return claim_[node] == claim_gen_; }
  void claim(NodeId node) { claim_[node] = claim_gen_; }

  Network* network_;
  EventEngineConfig config_;
  EventEngineStats stats_;
  double now_ = 0;
  double lookahead_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_exchange_ = 1;
  CalendarQueue<FlatEvent> queue_;
  DescriptorSlabPool pool_;
  std::vector<PendingExchange> pending_;
  std::size_t scheduled_nodes_ = 0;
  double tick_anchor_ = 0;
  std::uint64_t ticks_ = 0;
  std::vector<ProbeRegistration> probes_;
  Cycle probe_ticks_ = 0;
  ExchangeTamper* tamper_ = nullptr;
  TraceProbe* trace_ = nullptr;  ///< tracing seam; null = untraced run

  ThreadPool pool_threads_;
  std::vector<LaneState> lanes_;       ///< one per pool lane
  std::vector<SlotTask> batch_;        ///< current window's deferred W-parts
  std::vector<std::uint64_t> claim_;   ///< generation-stamped target claims
  std::uint64_t claim_gen_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t deferred_tasks_ = 0;
  std::uint64_t pooled_tasks_ = 0;
};

}  // namespace pss::sim
