// Policy-free observation hooks for the simulation engines.
//
// A SnapshotProbe is the mechanism half of measurement: each engine exposes
// attach_probe(probe, cadence) and invokes the probe between steps — after
// every `cadence`-th completed cycle (cycle engines) or period tick (event
// engine) — with the network in a consistent between-steps state. What the
// probe computes is entirely its own policy (the pss_obs module supplies the
// streaming estimators); the engines know nothing beyond this interface, so
// measurement can never leak into exchange mechanics.
//
// Contract:
//   - The network is handed out const. A probe must not mutate simulation
//     state, directly or indirectly — in particular it must bring its own
//     Rng for sampled estimators instead of drawing from the network's
//     master stream. tests/obs_test.cpp pins this with a state digest:
//     a run with probes attached ends bit-identical to one without.
//   - Probes fire on the engine's driving thread (for ParallelCycleEngine,
//     after the end-of-cycle barrier), so they may freely read any slot.
//   - `cycle` is the number of completed cycles/ticks at the moment of the
//     call (1-based: the first call of a cadence-1 probe reports 1).
#pragma once

#include <cstdint>
#include <vector>

#include "pss/common/check.hpp"
#include "pss/common/types.hpp"

namespace pss::sim {

class Network;

class SnapshotProbe {
 public:
  virtual ~SnapshotProbe() = default;

  /// Called between engine steps; `network` is the live simulation state
  /// and must not be perturbed (see the contract above).
  virtual void on_snapshot(const Network& network, Cycle cycle) = 0;
};

/// One registered probe: fires when the completed-step count is a multiple
/// of `cadence`.
struct ProbeRegistration {
  SnapshotProbe* probe = nullptr;
  Cycle cadence = 1;
};

/// Shared firing helper for the three engines.
inline void fire_probes(const std::vector<ProbeRegistration>& probes,
                        const Network& network, Cycle completed) {
  for (const ProbeRegistration& r : probes) {
    if (completed % r.cadence == 0) r.probe->on_snapshot(network, completed);
  }
}

/// Shared registration helper (validates the cadence once, in one place).
inline void register_probe(std::vector<ProbeRegistration>& probes,
                           SnapshotProbe& probe, Cycle cadence) {
  PSS_CHECK_MSG(cadence > 0, "probe cadence must be positive");
  probes.push_back({&probe, cadence});
}

}  // namespace pss::sim
