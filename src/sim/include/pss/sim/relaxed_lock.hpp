// Per-node spinlock for the parallel engine's Relaxed mode.
//
// One byte-wide test-and-set lock guards each node's arena slots (view,
// Rng/counter, stats). Critical sections are one exchange body — a few
// hundred nanoseconds — and contention is rare (two of N nodes collide per
// step), so a spinning TAS beats a futex-backed std::mutex per node by an
// order of magnitude in memory (1 B vs 40 B) and avoids any syscall on the
// hot path. The exchange/store pair uses acquire/release ordering, which
// is exactly the mutual-exclusion contract ThreadSanitizer understands —
// the TSan CI job runs the Relaxed tests against this lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace pss::sim {

class RelaxedNodeLock {
 public:
  RelaxedNodeLock() = default;

  /// Vector-resize support only: a "copied" lock starts unlocked. The
  /// engine resizes the lock array strictly between cycles, when no lock
  /// is held, so no state is ever lost.
  RelaxedNodeLock(const RelaxedNodeLock&) noexcept {}
  RelaxedNodeLock& operator=(const RelaxedNodeLock&) noexcept { return *this; }

  void lock() {
    unsigned spins = 0;
    while (flag_.exchange(1, std::memory_order_acquire) != 0) {
      // Bounded busy-wait, then yield: the holder is mid-exchange, so the
      // lock frees in sub-µs unless the holder lost its time slice.
      if (++spins >= kSpinsBeforeYield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }

  void unlock() { flag_.store(0, std::memory_order_release); }

 private:
  static constexpr unsigned kSpinsBeforeYield = 1024;

  std::atomic<std::uint8_t> flag_{0};
};

}  // namespace pss::sim
