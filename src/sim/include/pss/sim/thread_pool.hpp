// Persistent fork-join worker pool for the parallel cycle engine.
//
// The engine dispatches one task per conflict-free batch — on the order of
// √N batches per cycle (see conflict_scheduler.hpp) — so workers must
// already be up and waiting: spawning threads per batch would cost more
// than a batch's work. The pool keeps `concurrency() - 1` blocked workers
// and counts the calling thread as lane 0, so `ThreadPool(1)` degenerates
// to a plain function call with no threads, no locks and no wakeups —
// which is what makes "threads = 1" runs exactly as cheap to reason about
// as the sequential engine.
//
// Synchronization is a mutex + two condition variables around an epoch
// counter (workers run one task invocation per epoch). Everything the task
// reads or writes is ordered by the mutex: publish-before-wake on entry,
// drain-before-return on exit, so run() is a full barrier — by the time it
// returns, every lane's writes are visible to the caller. Plain blocking
// primitives keep the pool ThreadSanitizer-clean by construction; the
// wakeup latency (a few µs per batch) is noise against batch execution
// time and is measured honestly in docs/PERFORMANCE.md.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pss::sim {

class ThreadPool {
 public:
  /// A pool with `concurrency` lanes total: the calling thread plus
  /// `concurrency - 1` workers. 0 means std::thread::hardware_concurrency()
  /// (itself falling back to 1 when the runtime reports nothing).
  explicit ThreadPool(unsigned concurrency);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Total lanes, caller included. Always >= 1.
  unsigned concurrency() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Invokes `task(lane)` once per lane in [0, concurrency()) — lane 0 on
  /// the calling thread — and returns after every invocation finished
  /// (full barrier). Not reentrant: run() must not be called from inside a
  /// task, and only one thread may drive the pool.
  ///
  /// The callable is shared by pointer into the caller's frame (alive
  /// until the barrier) through a function-pointer thunk — no
  /// type-erasure allocation, so the engines' per-batch dispatch stays on
  /// the flat core's zero-steady-state-allocation budget.
  ///
  /// Exception safety: if any lane's invocation throws (the check macros
  /// throw std::logic_error by design), the barrier still completes —
  /// every lane runs to its own end, so no captured caller state is
  /// destroyed under a running worker — and the first-recorded exception
  /// is rethrown from run() on the calling thread. The pool stays usable.
  template <typename Task>
  void run(Task&& task) {
    run_impl(std::addressof(task), [](void* ctx, unsigned lane) {
      (*static_cast<std::remove_reference_t<Task>*>(ctx))(lane);
    });
  }

 private:
  using TaskThunk = void (*)(void*, unsigned);

  void run_impl(void* ctx, TaskThunk thunk);
  void worker_loop(unsigned lane);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;  ///< caller -> workers: new epoch
  std::condition_variable done_cv_;   ///< workers -> caller: all finished
  void* task_ctx_ = nullptr;          ///< caller-frame task, valid for epoch
  TaskThunk task_thunk_ = nullptr;
  std::exception_ptr first_error_;    ///< first throw of the current epoch
  std::uint64_t epoch_ = 0;  ///< bumped per run(); workers run once per bump
  unsigned done_ = 0;        ///< workers finished with the current epoch
  bool stop_ = false;
};

}  // namespace pss::sim
