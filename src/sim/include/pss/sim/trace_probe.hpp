// Policy-free causal-tracing hooks for the execution engines — the span
// counterpart of SnapshotProbe (probe.hpp) and ExchangeTamper
// (cycle_step.hpp).
//
// A TraceProbe receives one TraceSpan per exchange *phase*: the paper's
// active thread contributes select / request-sent / timeout spans, the
// passive thread merge+apply, and the active thread again reply-received.
// What the probe does with spans is entirely its own policy (pss_obs
// supplies a flight recorder and a histogram profiler); the engines know
// nothing beyond this interface, so tracing can never leak into exchange
// mechanics.
//
// Contract:
//   - Non-perturbation. Recording reads wall clocks and engine-local
//     values only; it must never mutate simulation state, draw from any
//     simulation Rng, or change control flow. An engine with a probe
//     attached — armed or not — finishes bit-identical (state digest,
//     stats, Rng positions) to its unhooked self. tests/trace_test.cpp
//     pins this on all engines; bench/scale_trace hard-gates it.
//   - Unhooked cost. With no probe attached the per-phase check is one
//     pointer compare; no clock is read. With a probe attached but
//     disarmed (armed() == false), the engines skip both the clock reads
//     and the record() calls — the disarmed path is the original code.
//   - Thread safety. The parallel engines call armed()/record() from
//     worker lanes concurrently. armed() must be a const load; record()
//     must be safe under concurrent callers (the obs implementations use
//     a leaf spinlock / relaxed atomics, so no lock-order cycle with the
//     engines' own locks is possible).
//   - exchange_id. Engines label spans of one logical exchange with one
//     id. The event engines and ServiceNode use their wire exchange id —
//     the same u64 the PR-7 WireCodec header carries — which is what lets
//     scripts/trace_tool.py stitch dumps from two UDP processes into one
//     causal request->reply chain. The cycle engines have no wire id and
//     use a trace-only counter. Ids are only unique per process; the
//     stitcher keys on (exchange_id, initiator, peer).
#pragma once

#include <chrono>
#include <cstdint>

#include "pss/common/types.hpp"

namespace pss::sim {

/// Exchange phases, in causal order. Values are the wire encoding of the
/// PSSTRACE1 dump's `kind` byte — append-only, never renumber.
enum class TracePhase : std::uint8_t {
  kSelect = 0,         ///< active: expire + age + peer selection
  kMergeApply = 1,     ///< passive: absorb request, build reply
  kRequestSent = 2,    ///< active: request buffer built and handed off
  kReplyReceived = 3,  ///< active: admitted reply absorbed
  kTimeout = 4,        ///< active: reply window closed unanswered
};

inline constexpr std::size_t kTracePhaseCount = 5;

/// Stable lower-case phase name ("select", "merge_apply", ...).
inline const char* trace_phase_name(TracePhase phase) {
  switch (phase) {
    case TracePhase::kSelect: return "select";
    case TracePhase::kMergeApply: return "merge_apply";
    case TracePhase::kRequestSent: return "request_sent";
    case TracePhase::kReplyReceived: return "reply_received";
    case TracePhase::kTimeout: return "timeout";
  }
  return "unknown";
}

/// One recorded phase of one exchange. `tick` is the engine's cycle/tick
/// counter at record time (advisory; wraps to 16 bits in the packed event
/// encoding). Instantaneous phases (timeout detection) carry
/// start_ns == end_ns.
struct TraceSpan {
  TracePhase phase = TracePhase::kSelect;
  NodeId node = kInvalidNode;  ///< the node doing the work
  NodeId peer = kInvalidNode;  ///< the other endpoint, kInvalidNode if none
  std::uint64_t exchange_id = 0;
  std::uint64_t tick = 0;
  std::uint64_t start_ns = 0;  ///< wall clock, trace_clock_ns()
  std::uint64_t end_ns = 0;
};

class TraceProbe {
 public:
  virtual ~TraceProbe() = default;

  /// Cheap const gate consulted before any clock read. Disarmed probes
  /// stay attached at zero tracing cost (no clocks, no records).
  virtual bool armed() const = 0;

  /// Receives one span. Must obey the non-perturbation and thread-safety
  /// contract above.
  virtual void record(const TraceSpan& span) = 0;
};

/// Wall-clock nanoseconds since the Unix epoch. system_clock rather than
/// steady_clock deliberately: spans from *different processes* (the UDP
/// daemons) must live on one comparable axis for causal stitching, and on
/// the supported platforms system_clock is the realtime clock.
inline std::uint64_t trace_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace pss::sim
