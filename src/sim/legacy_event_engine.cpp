#include "pss/sim/legacy_event_engine.hpp"

#include "pss/common/check.hpp"

namespace pss::sim {

LegacyEventEngine::LegacyEventEngine(Network& network, EventEngineConfig config)
    : network_(&network), config_(config) {
  PSS_CHECK_MSG(config_.period > 0, "period must be positive");
  PSS_CHECK_MSG(config_.min_latency >= 0 &&
                    config_.min_latency <= config_.max_latency,
                "latency bounds must satisfy 0 <= min <= max");
  PSS_CHECK_MSG(config_.drop_probability >= 0 && config_.drop_probability <= 1,
                "drop probability must be in [0,1]");
}

void LegacyEventEngine::schedule(Event e) {
  e.seq = next_seq_++;
  queue_.push(std::move(e));
}

void LegacyEventEngine::send(Kind kind, NodeId from, NodeId to,
                             std::uint64_t exchange_id, View payload) {
  ++stats_.messages_sent;
  Rng& rng = network_->rng();
  if (rng.chance(config_.drop_probability)) {
    ++stats_.messages_dropped;
    return;
  }
  const double latency =
      config_.min_latency +
      rng.uniform() * (config_.max_latency - config_.min_latency);
  Event e;
  e.at = now_ + latency;
  e.kind = kind;
  e.from = from;
  e.to = to;
  e.exchange_id = exchange_id;
  e.payload = std::move(payload);
  schedule(std::move(e));
}

void LegacyEventEngine::expire_pending(NodeId node) {
  Pending& p = pending_[node];
  if (p.active && p.deadline < now_) {
    // The pull reply never arrived in time: treat as a failed contact.
    network_->node(node).on_contact_failure(p.peer);
    p.active = false;
  }
}

void LegacyEventEngine::on_wakeup(NodeId id) {
  // Re-arm the periodic timer first so a node keeps its phase forever.
  Event next;
  next.at = now_ + config_.period;
  next.kind = Kind::kWakeup;
  next.to = id;
  schedule(std::move(next));

  if (!network_->is_live(id)) return;
  ++stats_.wakeups;
  GossipNode& node = network_->node(id);
  expire_pending(id);

  node.age_view();  // once-per-period aging (timestamp semantics)
  auto peer = node.select_peer();
  if (!peer) return;
  node.note_initiated();

  const std::uint64_t exchange_id = next_exchange_++;
  if (node.spec().pull()) {
    // Starting a new exchange supersedes any outstanding one.
    if (pending_[id].active) ++stats_.replies_stale;
    pending_[id] = {exchange_id, *peer, now_ + config_.reply_timeout, true};
  }
  send(Kind::kRequest, id, *peer, exchange_id, node.make_active_buffer());
}

void LegacyEventEngine::on_request(const Event& e) {
  if (!network_->is_live(e.to) || !network_->can_communicate(e.from, e.to)) {
    ++stats_.messages_to_dead;
    return;
  }
  GossipNode& node = network_->node(e.to);
  auto reply = node.handle_message(e.payload);
  if (reply) send(Kind::kReply, e.to, e.from, e.exchange_id, std::move(*reply));
}

void LegacyEventEngine::on_reply(const Event& e) {
  if (!network_->is_live(e.to) || !network_->can_communicate(e.from, e.to)) {
    ++stats_.messages_to_dead;
    return;
  }
  Pending& p = pending_[e.to];
  if (!p.active || p.exchange_id != e.exchange_id || p.deadline < now_) {
    ++stats_.replies_stale;
    return;
  }
  p.active = false;
  network_->node(e.to).handle_reply(e.payload);
  ++stats_.replies_delivered;
}

void LegacyEventEngine::run_until(double until) {
  // Nodes created since the last call get a first wake-up with a uniform
  // random phase inside one period, matching the skeleton's independent
  // per-node timers.
  while (scheduled_nodes_ < network_->size()) {
    const NodeId id = static_cast<NodeId>(scheduled_nodes_++);
    pending_.resize(network_->size());
    Event first;
    first.at = now_ + network_->rng().uniform() * config_.period;
    first.kind = Kind::kWakeup;
    first.to = id;
    schedule(std::move(first));
  }
  pending_.resize(network_->size());

  while (!queue_.empty() && queue_.top().at <= until) {
    Event e = queue_.top();
    queue_.pop();
    now_ = e.at;
    switch (e.kind) {
      case Kind::kWakeup: on_wakeup(e.to); break;
      case Kind::kRequest: on_request(e); break;
      case Kind::kReply: on_reply(e); break;
    }
  }
  now_ = until;
}

}  // namespace pss::sim
