#include "pss/sim/network.hpp"

#include <algorithm>

#include "pss/common/check.hpp"

namespace pss::sim {

Network::Network(ProtocolSpec spec, ProtocolOptions options, std::uint64_t seed)
    : spec_(spec),
      options_(options),
      rng_(seed),
      arena_(std::make_unique<flat::NodeArena>(options.view_size)) {}

NodeId Network::add_node() {
  const NodeId id = arena_->add_node(rng_.split());
  adapters_.emplace_back(id, spec_, options_, arena_.get(), id);
  live_.push_back(1);
  group_.push_back(0);
  live_pos_.push_back(static_cast<std::uint32_t>(live_ids_.size()));
  live_ids_.push_back(id);
  return id;
}

NodeId Network::add_nodes(std::size_t n) {
  PSS_CHECK(n > 0);
  const NodeId first = static_cast<NodeId>(adapters_.size());
  reserve_nodes(adapters_.size() + n);
  for (std::size_t i = 0; i < n; ++i) add_node();
  return first;
}

void Network::reserve_nodes(std::size_t n) {
  arena_->reserve(n);
  adapters_.reserve(n);
  live_.reserve(n);
  group_.reserve(n);
  live_ids_.reserve(n);
  live_pos_.reserve(n);
}

GossipNode& Network::node(NodeId id) {
  PSS_CHECK_MSG(id < adapters_.size(), "node id out of range");
  return adapters_[id];
}

const GossipNode& Network::node(NodeId id) const {
  PSS_CHECK_MSG(id < adapters_.size(), "node id out of range");
  return adapters_[id];
}

std::span<const NodeDescriptor> Network::view_span(NodeId id) const {
  PSS_CHECK_MSG(id < adapters_.size(), "node id out of range");
  return arena_->views.view_of(id);
}

void Network::kill(NodeId id) {
  PSS_CHECK_MSG(id < adapters_.size(), "node id out of range");
  if (live_[id]) {
    live_[id] = 0;
    // Swap-remove from the live-id pool; the displaced tail id keeps the
    // pool dense so uniform sampling stays an array index.
    const std::uint32_t pos = live_pos_[id];
    const NodeId tail = live_ids_.back();
    live_ids_[pos] = tail;
    live_pos_[tail] = pos;
    live_ids_.pop_back();
    live_pos_[id] = kNotLive;
  }
}

void Network::revive(NodeId id) {
  PSS_CHECK_MSG(id < adapters_.size(), "node id out of range");
  if (!live_[id]) {
    live_[id] = 1;
    live_pos_[id] = static_cast<std::uint32_t>(live_ids_.size());
    live_ids_.push_back(id);
    arena_->views.clear(id);
  }
}

void Network::kill_random(std::size_t count, Rng& rng) {
  PSS_CHECK_MSG(count <= live_ids_.size(),
                "cannot kill more nodes than are live");
  auto picks = rng.sample_indices(live_ids_.size(), count);
  // Snapshot the victims first: each kill() swap-removes and would shift
  // later picked positions under us.
  std::vector<NodeId> victims;
  victims.reserve(count);
  for (std::size_t i : picks) victims.push_back(live_ids_[i]);
  for (NodeId id : victims) kill(id);
}

std::vector<NodeId> Network::live_nodes() const {
  std::vector<NodeId> out;
  out.reserve(live_ids_.size());
  for (NodeId id = 0; id < live_.size(); ++id) {
    if (live_[id]) out.push_back(id);
  }
  return out;
}

void Network::set_partition_group(NodeId id, std::uint32_t group) {
  PSS_CHECK_MSG(id < adapters_.size(), "node id out of range");
  group_[id] = group;
  partitioned_ = false;
  for (std::uint32_t g : group_) {
    if (g != 0) {
      partitioned_ = true;
      break;
    }
  }
}

void Network::clear_partitions() {
  std::fill(group_.begin(), group_.end(), 0u);
  partitioned_ = false;
}

std::uint32_t Network::partition_group(NodeId id) const {
  PSS_CHECK_MSG(id < group_.size(), "node id out of range");
  return group_[id];
}

std::uint64_t Network::count_cross_partition_links() const {
  std::uint64_t cross = 0;
  for (NodeId id = 0; id < adapters_.size(); ++id) {
    if (!live_[id]) continue;
    for (const auto& d : arena_->views.view_of(id)) {
      if (is_live(d.address) && group_[d.address] != group_[id]) ++cross;
    }
  }
  return cross;
}

std::uint64_t Network::count_dead_links() const {
  std::uint64_t dead = 0;
  for (NodeId id = 0; id < adapters_.size(); ++id) {
    if (!live_[id]) continue;
    for (const auto& d : arena_->views.view_of(id)) {
      if (!is_live(d.address)) ++dead;
    }
  }
  return dead;
}

std::size_t Network::resident_bytes() const {
  return arena_->views.storage_bytes() +
         arena_->rngs.capacity() * sizeof(Rng) +
         arena_->stats.capacity() * sizeof(NodeStats) +
         adapters_.capacity() * sizeof(GossipNode) +
         live_.capacity() * sizeof(std::uint8_t) +
         group_.capacity() * sizeof(std::uint32_t) +
         live_ids_.capacity() * sizeof(NodeId) +
         live_pos_.capacity() * sizeof(std::uint32_t);
}

}  // namespace pss::sim
