#include "pss/sim/parallel_cycle_engine.hpp"

#include <algorithm>
#include <atomic>

#include "pss/protocol/flat_exchange.hpp"

namespace pss::sim {

namespace {

// Steps a lane grabs per fetch_add: large enough that the shared counter is
// cold, small enough that uneven step costs still balance across lanes.
constexpr std::size_t kChunk = 16;

// Batches at or below this size run on the scanning thread: a pool wakeup
// costs a few µs, which only pays for itself once a batch carries more
// work than that.
constexpr std::size_t kInlineBatch = 16;

// Same scan lookahead as the sequential engine (see cycle_engine.cpp).
constexpr std::size_t kPrefetchAhead = 8;

// Shared work distribution of both policies: lanes grab kChunk-sized index
// ranges off one counter and run `body(index, scratch, stats)` for each;
// per-lane stats merge once per dispatch instead of per step (the shared
// lane_stats array would otherwise false-share across lanes).
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::size_t count,
                         std::vector<flat::Scratch>& lane_scratch,
                         std::vector<EngineStats>& lane_stats, Body&& body) {
  std::atomic<std::size_t> next{0};
  pool.run([&](unsigned lane) {
    flat::Scratch& scratch = lane_scratch[lane];
    EngineStats local;
    for (;;) {
      const std::size_t begin =
          next.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= count) break;
      const std::size_t end = std::min(begin + kChunk, count);
      for (std::size_t i = begin; i < end; ++i) body(i, scratch, local);
    }
    lane_stats[lane].exchanges += local.exchanges;
    lane_stats[lane].failed_contacts += local.failed_contacts;
    lane_stats[lane].empty_views += local.empty_views;
  });
}

}  // namespace

ParallelCycleEngine::ParallelCycleEngine(Network& network, Config config)
    : network_(&network), config_(config), pool_(config.threads) {
  lane_scratch_.resize(pool_.concurrency());
  lane_stats_.resize(pool_.concurrency());
  if (config_.policy == ParallelPolicy::kRelaxed) {
    // Base of every counter-derived stream this engine will ever hand out.
    // Drawn once so Relaxed runs are a pure function of (network seed,
    // construction order), like everything else in the simulator.
    relaxed_seed_ = network.rng()();
  }
}

void ParallelCycleEngine::build_order() {
  // Identical permutation construction (and master-Rng consumption) to the
  // sequential engine: ascending live ids, one Fisher–Yates shuffle.
  order_.clear();
  const std::size_t n = network_->size();
  for (NodeId id = 0; id < n; ++id) {
    if (network_->is_live(id)) order_.push_back(id);
  }
  network_->rng().shuffle(order_);
}

void ParallelCycleEngine::run_cycle() {
  for (EngineStats& s : lane_stats_) s = EngineStats{};
  if (config_.policy == ParallelPolicy::kDeterministic) {
    run_cycle_deterministic();
  } else {
    run_cycle_relaxed();
  }
  for (const EngineStats& s : lane_stats_) {
    stats_.exchanges += s.exchanges;
    stats_.failed_contacts += s.failed_contacts;
    stats_.empty_views += s.empty_views;
  }
  ++cycle_;
  fire_probes(probes_, *network_, cycle_);
}

void ParallelCycleEngine::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) run_cycle();
}

void ParallelCycleEngine::run_cycle_deterministic() {
  build_order();
  scheduler_.begin_cycle(order_, network_->size());
  const flat::NodeArena& arena = network_->arena();
  for (std::size_t i = 0; i < std::min(kPrefetchAhead, order_.size()); ++i) {
    arena.prefetch_node(order_[i]);
  }
  // The scan calls select exactly once per initiator, in permutation order
  // (carried steps included), so a running count doubles as the scan
  // position for lookahead prefetch.
  std::size_t scanned = 0;
  auto select = [&](NodeId initiator) {
    if (scanned + kPrefetchAhead < order_.size()) {
      arena.prefetch_node(order_[scanned + kPrefetchAhead]);
    }
    ++scanned;
    if (trace_ == nullptr) return select_cycle_step(*network_, initiator);
    // Traced path: bracket selection with wall clocks and stamp the
    // trace-only id so the lane that later executes the step can label its
    // merge+apply span. Only the scanning thread touches the counter here.
    const bool armed = trace_->armed();
    const std::uint64_t t0 = armed ? trace_clock_ns() : 0;
    CycleStep step = select_cycle_step(*network_, initiator);
    step.trace_id =
        trace_exchange_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (armed) {
      trace_->record({TracePhase::kSelect, initiator,
                      step.kind == StepKind::kEmptyView ? kInvalidNode
                                                        : step.peer,
                      step.trace_id, cycle_ + 1, t0, trace_clock_ns()});
    }
    return step;
  };
  // Single-node steps execute on the scanning thread, lane 0.
  auto inline_exec = [&](const CycleStep& step) {
    execute_step(step, lane_scratch_[0], lane_stats_[0]);
  };
  while (scheduler_.next_batch(select, inline_exec, batch_)) {
    execute_batch();
  }
}

void ParallelCycleEngine::execute_step(const CycleStep& step,
                                       flat::Scratch& scratch,
                                       EngineStats& stats) {
  // May run on any lane: the armed check is a pointer compare + relaxed
  // load, and record() is thread-safe by the TraceProbe contract.
  const bool armed = trace_ != nullptr && trace_->armed() &&
                     step.kind == StepKind::kExchange;
  const std::uint64_t t0 = armed ? trace_clock_ns() : 0;
  execute_cycle_step(*network_, step, scratch, stats, tamper_);
  if (armed) {
    trace_->record({TracePhase::kMergeApply, step.initiator, step.peer,
                    step.trace_id, cycle_ + 1, t0, trace_clock_ns()});
  }
}

void ParallelCycleEngine::execute_batch() {
  if (batch_.empty()) return;
  if (pool_.concurrency() == 1 || batch_.size() <= kInlineBatch) {
    for (const CycleStep& step : batch_) {
      execute_step(step, lane_scratch_[0], lane_stats_[0]);
    }
    return;
  }
  const flat::NodeArena& arena = network_->arena();
  parallel_for_chunks(
      pool_, batch_.size(), lane_scratch_, lane_stats_,
      [&](std::size_t i, flat::Scratch& scratch, EngineStats& stats) {
        // Warm the next step's initiator while this one runs (its peer is
        // prefetched inside the step body, as in the sequential engine).
        if (i + 1 < batch_.size()) {
          arena.prefetch_node(batch_[i + 1].initiator);
        }
        execute_step(batch_[i], scratch, stats);
      });
}

void ParallelCycleEngine::run_cycle_relaxed() {
  build_order();
  const std::size_t n = network_->size();
  // Grown strictly between cycles, while no lock is held / counter in use.
  if (locks_.size() < n) locks_.resize(n);
  if (participations_.size() < n) participations_.resize(n, 0);
  parallel_for_chunks(
      pool_, order_.size(), lane_scratch_, lane_stats_,
      [&](std::size_t i, flat::Scratch& scratch, EngineStats& stats) {
        relaxed_initiate(order_[i], scratch, stats);
      });
}

void ParallelCycleEngine::relaxed_initiate(NodeId initiator,
                                           flat::Scratch& scratch,
                                           EngineStats& stats) {
  flat::NodeArena& arena = network_->arena();
  // Byzantine aging suppression, decided once (const lookup, no lock
  // needed); see ExchangeTamper in cycle_step.hpp.
  const bool age_self =
      tamper_ == nullptr || !tamper_->suppress_aging(initiator);
  // Tracing in Relaxed mode fires both spans on the executing lane; the
  // id comes off the shared trace-only counter (relaxed order — ids need
  // to be distinct, not sequenced).
  const bool traced = trace_ != nullptr && trace_->armed();
  const std::uint64_t trace_id =
      traced ? trace_exchange_.fetch_add(1, std::memory_order_relaxed) + 1
             : 0;
  std::uint64_t t0 = traced ? trace_clock_ns() : 0;
  // Phase 1 under the initiator's lock alone: draw the peer from a
  // counter-derived stream (the arena's sequential per-node streams stay
  // untouched in Relaxed mode). The same derived generator later serves
  // the initiator's reply-absorb draws — one stream per participation.
  locks_[initiator].lock();
  Rng rng = Rng::stream_at(relaxed_seed_, initiator,
                           participations_[initiator]++);
  const auto peer = flat::select_peer(arena.views.view_of(initiator),
                                      network_->spec().peer_selection, rng);
  if (!peer) {
    if (age_self) arena.views.age(initiator);
    locks_[initiator].unlock();
    ++stats.empty_views;
    if (traced) {
      trace_->record({TracePhase::kSelect, initiator, kInvalidNode, trace_id,
                      cycle_ + 1, t0, trace_clock_ns()});
    }
    return;
  }
  if (!network_->is_live(*peer) ||
      !network_->can_communicate(initiator, *peer)) {
    if (age_self) arena.views.age(initiator);
    ++arena.stats[initiator].initiated;
    flat::contact_failure(arena, initiator, *peer, network_->options());
    locks_[initiator].unlock();
    ++stats.failed_contacts;
    if (traced) {
      trace_->record({TracePhase::kSelect, initiator, *peer, trace_id,
                      cycle_ + 1, t0, trace_clock_ns()});
    }
    return;
  }
  locks_[initiator].unlock();
  if (traced) {
    const std::uint64_t t1 = trace_clock_ns();
    trace_->record({TracePhase::kSelect, initiator, *peer, trace_id,
                    cycle_ + 1, t0, t1});
    t0 = t1;
  }
  // Phase 2 under both locks, acquired in address order so two exchanges
  // meeting on crossed pairs cannot deadlock. Dropping the initiator's
  // lock in between means its view can change before the buffer is built —
  // the drawn peer stands regardless; that is the Relaxed semantics.
  PSS_DCHECK(*peer != initiator);
  const NodeId lo = std::min(initiator, *peer);
  const NodeId hi = std::max(initiator, *peer);
  locks_[lo].lock();
  locks_[hi].lock();
  if (age_self) arena.views.age(initiator);
  ++arena.stats[initiator].initiated;
  Rng peer_rng =
      Rng::stream_at(relaxed_seed_, *peer, participations_[*peer]++);
  if (tamper_ == nullptr) {
    flat::run_exchange_with(arena, initiator, *peer, network_->spec(),
                            network_->options(), scratch, rng, peer_rng);
  } else {
    run_exchange_tampered(arena, initiator, *peer, network_->spec(),
                          network_->options(), scratch, rng, peer_rng,
                          *tamper_);
  }
  locks_[hi].unlock();
  locks_[lo].unlock();
  ++stats.exchanges;
  if (traced) {
    trace_->record({TracePhase::kMergeApply, initiator, *peer, trace_id,
                    cycle_ + 1, t0, trace_clock_ns()});
  }
}

}  // namespace pss::sim
