#include "pss/sim/parallel_event_engine.hpp"

#include <algorithm>

#include "pss/common/check.hpp"
#include "pss/protocol/flat_exchange.hpp"

namespace pss::sim {

namespace {
// Same calendar-year sizing as the sequential engine (see event_engine.cpp).
constexpr double kYearsPerPeriod = 2.0;
// Batches at or below this many W-parts run inline on the sequencer: the
// pool's wake/barrier latency exceeds a handful of absorb kernels (the
// same economics as ParallelCycleEngine's inline-batch threshold).
constexpr std::size_t kInlineBatch = 4;
}  // namespace

ParallelEventEngine::ParallelEventEngine(Network& network,
                                         EventEngineConfig config,
                                         unsigned threads)
    : network_(&network),
      config_(config),
      queue_(kYearsPerPeriod * (config.period > 0 ? config.period : 1.0)),
      pool_(network.options().view_size + 1),
      pool_threads_(threads) {
  PSS_CHECK_MSG(config_.period > 0, "period must be positive");
  PSS_CHECK_MSG(config_.min_latency >= 0 &&
                    config_.min_latency <= config_.max_latency,
                "latency bounds must satisfy 0 <= min <= max");
  PSS_CHECK_MSG(config_.drop_probability >= 0 && config_.drop_probability <= 1,
                "drop probability must be in [0,1]");
  lookahead_ = std::min(config_.min_latency, config_.period);
  lanes_.resize(pool_threads_.concurrency());
}

void ParallelEventEngine::push_event(double at, Kind kind, NodeId from,
                                     NodeId to, std::uint64_t exchange_id,
                                     DescriptorSlabPool::SlabId slab) {
  FlatEvent e;
  e.from = from;
  e.to = to;
  e.slab = slab;
  e.kind = static_cast<std::uint32_t>(kind);
  e.exchange_id = exchange_id;
  queue_.push(at, next_seq_++, e);
}

std::uint32_t ParallelEventEngine::forge_slab(
    NodeId sender, NodeId receiver, DescriptorSlabPool::SlabId slab,
    std::uint32_t size, std::vector<NodeDescriptor>& staging) {
  if (tamper_ == nullptr || !tamper_->is_byzantine(sender)) return size;
  NodeDescriptor* data = pool_.data(slab);
  staging.assign(data, data + size);
  tamper_->forge_buffer(sender, receiver, staging);
  PSS_CHECK_MSG(staging.size() <= network_->options().view_size + 1,
                "forged buffer exceeds message slab capacity");
  std::copy(staging.begin(), staging.end(), data);
  return static_cast<std::uint32_t>(staging.size());
}

void ParallelEventEngine::seq_wakeup(NodeId id) {
  // Sequencer-only handler: the wakeup reads and writes its own node's
  // slot, which is safe ahead of the window's W-phase (and the claim rule
  // closed the window if a deferred task already targets this node).
  // Mirrors EventEngine::on_wakeup + send_request exactly — same statement
  // order, same Rng consumption.
  push_event(now_ + config_.period, Kind::kWakeup, kInvalidNode, id, 0,
             DescriptorSlabPool::kNoSlab);

  if (!network_->is_live(id)) return;
  ++stats_.wakeups;
  flat::NodeArena& arena = network_->arena();
  const bool traced = trace_ != nullptr && trace_->armed();
  std::uint64_t t0 = 0;
  if (traced) {
    t0 = trace_clock_ns();
    const PendingExchange& p = pending_[id];
    if (p.active && p.deadline < now_) {
      trace_->record({TracePhase::kTimeout, id, p.peer, p.exchange_id, ticks_,
                      t0, t0});
    }
  }
  expire_overdue(arena, id, pending_[id], now_, network_->options());

  const bool age_view = tamper_ == nullptr || !tamper_->suppress_aging(id);
  auto peer = flat::select_peer(arena.views.view_of(id),
                                network_->spec().peer_selection,
                                arena.rngs[id]);
  if (!peer) {
    if (age_view) arena.views.age(id);
    if (traced) {
      trace_->record({TracePhase::kSelect, id, kInvalidNode, 0, ticks_, t0,
                      trace_clock_ns()});
    }
    return;
  }
  ++arena.stats[id].initiated;

  const std::uint64_t exchange_id = next_exchange_++;
  if (network_->spec().pull()) {
    if (open_exchange(pending_[id], exchange_id, *peer,
                      now_ + config_.reply_timeout)) {
      ++stats_.replies_stale;
    }
  }
  if (traced) {
    const std::uint64_t t1 = trace_clock_ns();
    trace_->record(
        {TracePhase::kSelect, id, *peer, exchange_id, ticks_, t0, t1});
    t0 = t1;
  }

  ++stats_.messages_sent;
  Rng& rng = network_->rng();
  if (rng.chance(config_.drop_probability)) {
    ++stats_.messages_dropped;
    if (age_view) arena.views.age(id);
    if (traced) {
      trace_->record({TracePhase::kRequestSent, id, *peer, exchange_id,
                      ticks_, t0, trace_clock_ns()});
    }
    return;
  }
  const double latency =
      config_.min_latency +
      rng.uniform() * (config_.max_latency - config_.min_latency);
  const DescriptorSlabPool::SlabId slab = pool_.acquire();
  std::uint32_t n =
      age_view ? flat::age_write_active_buffer(arena.views, id, id,
                                               network_->spec().push(),
                                               pool_.data(slab))
               : flat::write_active_buffer(arena.views.view_of(id), id,
                                           network_->spec().push(),
                                           pool_.data(slab));
  n = forge_slab(id, *peer, slab, n, lanes_[0].forged);
  pool_.set_size(slab, n);
  push_event(now_ + latency, Kind::kRequest, id, *peer, exchange_id, slab);
  if (traced) {
    trace_->record({TracePhase::kRequestSent, id, *peer, exchange_id, ticks_,
                    t0, trace_clock_ns()});
  }
}

void ParallelEventEngine::seq_request(const FlatEvent& e) {
  if (!network_->is_live(e.to) || !network_->can_communicate(e.from, e.to)) {
    ++stats_.messages_to_dead;
    // Nothing will read this payload; recycling it immediately matches the
    // sequential engine's release point for dead-target requests.
    pool_.release(e.slab);
    return;
  }
  // Master-stream reply dispatch, in pop order on the sequencer — the
  // exact draw sequence of EventEngine::on_request.
  bool deliver_reply = false;
  double latency = 0;
  DescriptorSlabPool::SlabId reply_slab = DescriptorSlabPool::kNoSlab;
  if (network_->spec().pull()) {
    ++stats_.messages_sent;
    Rng& rng = network_->rng();
    if (rng.chance(config_.drop_probability)) {
      ++stats_.messages_dropped;
    } else {
      latency = config_.min_latency +
                rng.uniform() * (config_.max_latency - config_.min_latency);
      deliver_reply = true;
      reply_slab = pool_.acquire();
    }
  }
  if (deliver_reply) {
    // The reply event is scheduled now (sequence numbers are global
    // state); its payload and entry count land during the W-phase, which
    // completes before the window barrier — and the reply's arrival lies
    // beyond the lookahead horizon, so no pop can observe the slab early.
    push_event(now_ + latency, Kind::kReply, e.to, e.from, e.exchange_id,
               reply_slab);
  }
  claim(e.to);
  SlotTask t;
  t.node = e.to;
  t.peer = e.from;
  t.slab = e.slab;
  t.reply_slab = reply_slab;
  t.size = pool_.size(e.slab);
  t.kind = static_cast<std::uint32_t>(Kind::kRequest);
  t.exchange_id = e.exchange_id;
  batch_.push_back(t);
}

void ParallelEventEngine::seq_reply(const FlatEvent& e) {
  if (!network_->is_live(e.to) || !network_->can_communicate(e.from, e.to)) {
    ++stats_.messages_to_dead;
    pool_.release(e.slab);
    return;
  }
  if (!admit_reply(pending_[e.to], e.exchange_id, now_)) {
    ++stats_.replies_stale;
    pool_.release(e.slab);
    return;
  }
  ++stats_.replies_delivered;
  claim(e.to);
  SlotTask t;
  t.node = e.to;
  t.peer = e.from;
  t.slab = e.slab;
  t.size = pool_.size(e.slab);
  t.kind = static_cast<std::uint32_t>(Kind::kReply);
  t.exchange_id = e.exchange_id;
  batch_.push_back(t);
}

void ParallelEventEngine::run_task(const SlotTask& t, LaneState& lane) {
  flat::NodeArena& arena = network_->arena();
  // May run on any lane; record() is thread-safe by the probe contract.
  // ticks_ is stable while lanes run (mutated only between windows).
  const bool traced = trace_ != nullptr && trace_->armed();
  const std::uint64_t t0 = traced ? trace_clock_ns() : 0;
  if (t.kind == static_cast<std::uint32_t>(Kind::kRequest)) {
    NodeDescriptor* request = pool_.data(t.slab);
    NodeDescriptor* reply_out =
        t.reply_slab != DescriptorSlabPool::kNoSlab ? pool_.data(t.reply_slab)
                                                    : nullptr;
    std::uint32_t reply_size = flat::handle_request(
        arena, t.node, request, t.size, reply_out, network_->spec(),
        network_->options(), lane.scratch);
    if (t.reply_slab != DescriptorSlabPool::kNoSlab) {
      reply_size =
          forge_slab(t.node, t.peer, t.reply_slab, reply_size, lane.forged);
      // Distinct slabs own distinct size-table entries, so concurrent
      // set_size calls never share a location (no acquire can run here).
      pool_.set_size(t.reply_slab, reply_size);
    }
  } else {
    flat::handle_reply(arena, t.node, pool_.data(t.slab), t.size,
                       network_->spec(), network_->options(), lane.scratch);
  }
  if (traced) {
    const bool request = t.kind == static_cast<std::uint32_t>(Kind::kRequest);
    trace_->record({request ? TracePhase::kMergeApply
                            : TracePhase::kReplyReceived,
                    t.node, t.peer, t.exchange_id, ticks_, t0,
                    trace_clock_ns()});
  }
}

void ParallelEventEngine::flush_batch() {
  ++windows_;
  if (batch_.empty()) return;
  deferred_tasks_ += batch_.size();
  const unsigned lanes = pool_threads_.concurrency();
  if (lanes == 1 || batch_.size() <= kInlineBatch) {
    for (const SlotTask& t : batch_) run_task(t, lanes_[0]);
  } else {
    pooled_tasks_ += batch_.size();
    pool_threads_.run([&](unsigned lane) {
      for (std::size_t k = lane; k < batch_.size(); k += lanes) {
        run_task(batch_[k], lanes_[lane]);
      }
    });
  }
  // Consumed payloads recycle at the barrier, in batch (= pop) order. This
  // is the one divergence from the sequential engine's mid-event releases;
  // slab ids are opaque, so nothing observable depends on it (see the
  // header's bit-identity argument).
  for (const SlotTask& t : batch_) pool_.release(t.slab);
  batch_.clear();
}

void ParallelEventEngine::schedule_new_nodes() {
  const std::size_t n = network_->size();
  if (scheduled_nodes_ >= n) return;
  pending_.resize(n);
  claim_.resize(n, 0);
  while (scheduled_nodes_ < n) {
    const NodeId id = static_cast<NodeId>(scheduled_nodes_++);
    const double at = now_ + network_->rng().uniform() * config_.period;
    push_event(at, Kind::kWakeup, kInvalidNode, id, 0,
               DescriptorSlabPool::kNoSlab);
  }
}

void ParallelEventEngine::advance_to(double until) {
  schedule_new_nodes();
  FlatEvent carry_event;
  double carry_at = 0;
  bool have_carry = false;
  for (;;) {
    double at;
    FlatEvent e;
    if (have_carry) {
      at = carry_at;
      e = carry_event;
      have_carry = false;
    } else if (const auto* item = queue_.pop_if_at_most(until)) {
      at = item->at;
      e = item->value;
    } else {
      break;
    }
    // Open a window at this event's timestamp. Claim generations make the
    // per-window reset one counter bump (generation 0 marks "never
    // claimed" in freshly grown claim_ entries, so the counter starts
    // above it and only ever grows).
    ++claim_gen_;
    const double window_end = at + lookahead_;
    now_ = at;
    switch (static_cast<Kind>(e.kind)) {
      case Kind::kWakeup: seq_wakeup(e.to); break;
      case Kind::kRequest: seq_request(e); break;
      case Kind::kReply: seq_reply(e); break;
    }
    // Fill the window: sequencer parts run in exact pop order; the window
    // closes at the lookahead horizon, the run target, or the first event
    // whose target a deferred task already claims (kept for the next
    // window so conflicting pairs retain their global order).
    while (const auto* item = queue_.pop_if_at_most(until)) {
      if (item->at >= window_end || claimed(item->value.to)) {
        carry_at = item->at;
        carry_event = item->value;
        have_carry = true;
        break;
      }
      now_ = item->at;
      const FlatEvent next = item->value;  // handlers push, repointing item
      switch (static_cast<Kind>(next.kind)) {
        case Kind::kWakeup: seq_wakeup(next.to); break;
        case Kind::kRequest: seq_request(next); break;
        case Kind::kReply: seq_reply(next); break;
      }
    }
    flush_batch();
  }
  now_ = until;
}

void ParallelEventEngine::run_until(double until) {
  advance_to(until);
  tick_anchor_ = now_;
  ticks_ = 0;
}

void ParallelEventEngine::run_cycles(std::size_t cycles) {
  if (probes_.empty()) {
    ticks_ += cycles;
    probe_ticks_ += static_cast<Cycle>(cycles);
    advance_to(tick_anchor_ + static_cast<double>(ticks_) * config_.period);
    return;
  }
  for (std::size_t i = 0; i < cycles; ++i) {
    ++ticks_;
    advance_to(tick_anchor_ + static_cast<double>(ticks_) * config_.period);
    ++probe_ticks_;
    fire_probes(probes_, *network_, probe_ticks_);
  }
}

}  // namespace pss::sim
