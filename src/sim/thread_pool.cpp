#include "pss/sim/thread_pool.hpp"

#include <utility>

namespace pss::sim {

ThreadPool::ThreadPool(unsigned concurrency) {
  if (concurrency == 0) {
    concurrency = std::thread::hardware_concurrency();
    if (concurrency == 0) concurrency = 1;
  }
  workers_.reserve(concurrency - 1);
  for (unsigned lane = 1; lane < concurrency; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run_impl(void* ctx, TaskThunk thunk) {
  if (workers_.empty()) {
    // Single-lane pool: a plain call, no synchronization at all.
    thunk(ctx, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ctx_ = ctx;
    task_thunk_ = thunk;
    first_error_ = nullptr;
    done_ = 0;
    ++epoch_;
  }
  start_cv_.notify_all();
  try {
    thunk(ctx, 0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  // Unwinding before this barrier would destroy caller-scoped state the
  // task captured while workers still execute it — so even on error the
  // wait always completes first.
  done_cv_.wait(lock, [this] {
    return done_ == static_cast<unsigned>(workers_.size());
  });
  task_ctx_ = nullptr;
  task_thunk_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = nullptr;
    std::swap(error, first_error_);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(unsigned lane) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    void* ctx = nullptr;
    TaskThunk thunk = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      ctx = task_ctx_;
      thunk = task_thunk_;
    }
    try {
      thunk(ctx, lane);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++done_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace pss::sim
