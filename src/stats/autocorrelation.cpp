#include "pss/stats/autocorrelation.hpp"

#include <cmath>

#include "pss/common/check.hpp"
#include "pss/stats/descriptive.hpp"

namespace pss::stats {

std::vector<double> autocorrelation(std::span<const double> series,
                                    std::size_t max_lag) {
  const std::size_t k_count = series.size();
  PSS_CHECK_MSG(k_count >= 2, "autocorrelation needs at least two samples");
  PSS_CHECK_MSG(max_lag < k_count, "max_lag must be below the series length");
  const double avg = mean(series);
  double denom = 0;
  for (double x : series) denom += (x - avg) * (x - avg);
  std::vector<double> r(max_lag + 1, 0.0);
  r[0] = 1.0;
  if (denom == 0) return r;  // constant series
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    double num = 0;
    for (std::size_t j = 0; j + lag < k_count; ++j)
      num += (series[j] - avg) * (series[j + lag] - avg);
    r[lag] = num / denom;
  }
  return r;
}

double autocorrelation_confidence99(std::size_t sample_size) {
  PSS_CHECK_MSG(sample_size > 0, "sample size must be positive");
  return 2.5758293035489004 / std::sqrt(static_cast<double>(sample_size));
}

double autocorrelation_excess_fraction(std::span<const double> series,
                                       std::size_t max_lag) {
  const auto r = autocorrelation(series, max_lag);
  const double band = autocorrelation_confidence99(series.size());
  std::size_t excess = 0;
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    if (std::abs(r[lag]) > band) ++excess;
  }
  return max_lag == 0 ? 0.0
                      : static_cast<double>(excess) / static_cast<double>(max_lag);
}

}  // namespace pss::stats
