#include "pss/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

namespace pss::stats {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance_population() const {
  if (n_ < 1) return 0;
  return m2_ / static_cast<double>(n_);
}

double Accumulator::variance_sample() const {
  if (n_ < 2) return 0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev_population() const {
  return std::sqrt(variance_population());
}

double Accumulator::stddev_sample() const {
  return std::sqrt(variance_sample());
}

double mean(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.mean();
}

double variance_population(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.variance_population();
}

double variance_sample(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.variance_sample();
}

Summary summarize(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  Summary s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.variance_sample = acc.variance_sample();
  s.stddev_sample = acc.stddev_sample();
  s.min = acc.min();
  s.max = acc.max();
  return s;
}

}  // namespace pss::stats
