#include "pss/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "pss/common/check.hpp"

namespace pss::stats {

Histogram::Histogram(std::span<const std::size_t> samples) {
  for (std::size_t s : samples) add(s);
}

void Histogram::add(std::size_t value, std::size_t count) {
  if (count == 0) return;
  counts_[value] += count;
  total_ += count;
}

std::size_t Histogram::count(std::size_t value) const {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::size_t Histogram::min_value() const {
  PSS_CHECK_MSG(!counts_.empty(), "min_value() on empty histogram");
  return counts_.begin()->first;
}

std::size_t Histogram::max_value() const {
  PSS_CHECK_MSG(!counts_.empty(), "max_value() on empty histogram");
  return counts_.rbegin()->first;
}

double Histogram::mean() const {
  if (total_ == 0) return 0;
  double sum = 0;
  for (const auto& [value, count] : counts_)
    sum += static_cast<double>(value) * static_cast<double>(count);
  return sum / static_cast<double>(total_);
}

std::vector<std::pair<std::size_t, std::size_t>> Histogram::points() const {
  return {counts_.begin(), counts_.end()};
}

std::vector<std::pair<std::size_t, std::size_t>> Histogram::log_binned(
    double factor) const {
  PSS_CHECK_MSG(factor > 1.0, "log binning factor must exceed 1");
  std::vector<std::pair<std::size_t, std::size_t>> bins;
  if (counts_.empty()) return bins;
  const std::size_t lo = min_value();
  std::size_t bound = std::max<std::size_t>(lo, 1);
  // Generate bucket lower bounds lo = b0 < b1 < ... covering max_value().
  std::vector<std::size_t> bounds{bound};
  while (bound <= max_value()) {
    auto next = static_cast<std::size_t>(
        std::ceil(static_cast<double>(bound) * factor));
    if (next <= bound) next = bound + 1;
    bounds.push_back(next);
    bound = next;
  }
  bins.reserve(bounds.size() - 1);
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b)
    bins.emplace_back(bounds[b], 0);
  for (const auto& [value, count] : counts_) {
    // Find the bucket whose [lower, next_lower) range holds `value`.
    auto it = std::upper_bound(bounds.begin(), bounds.end(), value);
    PSS_CHECK(it != bounds.begin());
    const auto idx = static_cast<std::size_t>(it - bounds.begin()) - 1;
    if (idx < bins.size()) bins[idx].second += count;
  }
  // Drop empty trailing buckets for compact output (keep interior zeros).
  while (!bins.empty() && bins.back().second == 0) bins.pop_back();
  return bins;
}

void Histogram::print_loglog(std::ostream& os, const std::string& title,
                             double factor) const {
  os << title << " (n=" << total_ << ")\n";
  if (counts_.empty()) {
    os << "  <empty>\n";
    return;
  }
  for (const auto& [lower, count] : log_binned(factor)) {
    os << "  " << std::setw(8) << lower << " | ";
    if (count > 0) {
      const int bar =
          1 + static_cast<int>(std::round(8.0 * std::log10(static_cast<double>(count))));
      for (int i = 0; i < bar; ++i) os << '#';
      os << ' ' << count;
    }
    os << '\n';
  }
}

}  // namespace pss::stats
