// Sample autocorrelation of a time series (paper Figure 5).
//
// For the degree series d(1..K) of a fixed node, the paper plots
//   r_k = Σ_{j=1..K-k} (d(j) − d̄)(d(j+k) − d̄) / Σ_{j=1..K} (d(j) − d̄)²
// together with the 99% confidence band ±2.576/√K under the null
// hypothesis that the series is white noise.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pss::stats {

/// r_k for k = 0..max_lag (r_0 == 1 for any non-constant series).
/// A constant series has zero denominator; by convention all r_k = 0 then
/// except r_0 = 1.
std::vector<double> autocorrelation(std::span<const double> series,
                                    std::size_t max_lag);

/// Half-width of the 99% white-noise confidence band: 2.576/√K.
double autocorrelation_confidence99(std::size_t sample_size);

/// Fraction of lags 1..max_lag whose |r_k| exceeds the 99% band — a simple
/// whiteness score (≈0.01 for white noise, large for periodic series).
double autocorrelation_excess_fraction(std::span<const double> series,
                                       std::size_t max_lag);

}  // namespace pss::stats
