// Descriptive statistics used by the experiment harness (Table 2 of the
// paper uses means, empirical variances and standard deviations of degree
// time series).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pss::stats {

/// Streaming mean/variance accumulator (Welford's algorithm: numerically
/// stable for long series).
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Population variance (divide by n); 0 when n < 1.
  double variance_population() const;

  /// Sample variance (divide by n-1, as the paper's σ with 49 = 50-1);
  /// 0 when n < 2.
  double variance_sample() const;

  double stddev_population() const;
  double stddev_sample() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

double mean(std::span<const double> xs);
double variance_population(std::span<const double> xs);
double variance_sample(std::span<const double> xs);

/// One-shot summary of a series.
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double variance_sample = 0;
  double stddev_sample = 0;
  double min = 0;
  double max = 0;
};
Summary summarize(std::span<const double> xs);

}  // namespace pss::stats
