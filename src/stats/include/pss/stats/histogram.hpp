// Integer-valued histogram with log-log rendering support (paper Figure 4
// shows degree distributions on a log-log scale).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace pss::stats {

class Histogram {
 public:
  Histogram() = default;

  /// Builds from raw integer samples.
  explicit Histogram(std::span<const std::size_t> samples);

  void add(std::size_t value, std::size_t count = 1);

  std::size_t total() const { return total_; }
  bool empty() const { return counts_.empty(); }

  /// Count of samples with exactly this value.
  std::size_t count(std::size_t value) const;

  std::size_t min_value() const;
  std::size_t max_value() const;

  double mean() const;

  /// (value, count) pairs in ascending value order.
  std::vector<std::pair<std::size_t, std::size_t>> points() const;

  /// Re-bins into geometrically growing buckets (factor > 1), returning
  /// (bucket_lower_bound, count) pairs; preserves total mass. Useful for
  /// rendering heavy-tailed distributions compactly.
  std::vector<std::pair<std::size_t, std::size_t>> log_binned(double factor) const;

  /// Renders an ASCII frequency plot (one row per log-bin, bar length
  /// proportional to log10(count)), mimicking the paper's log-log plots.
  void print_loglog(std::ostream& os, const std::string& title,
                    double factor = 1.25) const;

 private:
  std::map<std::size_t, std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace pss::stats
