#pragma once

// Deterministic event loop running a whole sim::Network over ServiceNodes
// and a LoopbackTransport — the bridge that makes EventEngine the wire
// stack's reference semantics.
//
// The driver merge-pops two queues — its own periodic node timers and the
// bus's in-flight frames — by (at, seq), with every seq drawn from the
// bus's single counter (LoopbackTransport::allocate_seq). That recreates
// EventEngine's one totally-ordered event stream, and the handlers fire in
// EventEngine's exact statement order:
//
//   timer due   -> rearm first (seq!), then liveness gate, then on_tick
//   frame due   -> decode, liveness/partition gate (messages_to_dead),
//                  then on_frame
//
// Because LoopbackTransport also mirrors the engine's master-Rng draw
// pattern per message (see loopback_transport.hpp), a run under any
// latency/loss configuration — not just the zero/zero case — finishes
// bit-identical to EventEngine under the same seed: same views, same
// NodeStats, same per-node Rng positions, i.e. equal scenarios digests.
// tests/transport_test.cpp and bench/scale_transport.cpp (phase 1, a hard
// gate) enforce this; the reorder/duplication knobs are outside the
// correspondence and are only exercised by invariant tests.

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/network.hpp"
#include "pss/transport/loopback_transport.hpp"
#include "pss/transport/service_node.hpp"
#include "pss/transport/wire.hpp"

namespace pss::transport {

struct LoopbackDriverConfig {
  double period = 1.0;
  double reply_timeout = 0.5;
};

class LoopbackDriver {
 public:
  /// `network` and `bus` must outlive the driver. For differential runs
  /// against EventEngine, `bus` must draw from network.rng() so the master
  /// stream is shared. Nodes present at construction get their initial
  /// wake-up phases immediately (uniform in [0, period), id order — the
  /// engine's schedule_new_nodes discipline); later additions are picked
  /// up by the next run_* call.
  LoopbackDriver(sim::Network& network, LoopbackTransport& bus,
                 LoopbackDriverConfig config = {});

  /// Processes all timer and frame events with timestamp <= until.
  void run_until(double until);

  /// Advances by `cycles * period` from the integer tick anchor — the same
  /// rounding discipline as EventEngine::run_cycles, so both hit identical
  /// floating-point stop times.
  void run_cycles(std::size_t cycles);

  double now() const { return now_; }

  /// EventEngineStats-shaped aggregate for differential comparison.
  sim::EventEngineStats engine_stats() const;

  const ServiceNode& node(NodeId id) const { return nodes_[id]; }
  std::uint64_t rejected_frames() const { return rejected_frames_; }

  /// Forwards the causal-tracing hook to every ServiceNode, present and
  /// future (see ServiceNode::attach_trace). Same non-perturbation
  /// contract: a traced loopback run stays digest-identical to the
  /// EventEngine reference.
  void attach_trace(sim::TraceProbe& trace) {
    trace_ = &trace;
    for (ServiceNode& node : nodes_) node.attach_trace(trace);
  }

 private:
  void schedule_new_nodes();
  void advance_to(double until);

  struct Timer {
    double at = 0.0;
    std::uint64_t seq = 0;
    NodeId node = kInvalidNode;
  };
  struct LaterFirst {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  sim::Network* network_;
  LoopbackTransport* bus_;
  LoopbackDriverConfig config_;
  std::deque<ServiceNode> nodes_;  ///< deque: stable addresses across growth
  sim::TraceProbe* trace_ = nullptr;  ///< forwarded to nodes on creation
  std::priority_queue<Timer, std::vector<Timer>, LaterFirst> timers_;
  WireCodec codec_;
  double now_ = 0.0;
  std::uint64_t messages_to_dead_ = 0;
  std::uint64_t rejected_frames_ = 0;
  std::size_t scheduled_nodes_ = 0;
  double tick_anchor_ = 0.0;
  std::uint64_t ticks_ = 0;
};

}  // namespace pss::transport
