#pragma once

// Deterministic in-process Transport backend.
//
// Frames are buffered in a (deliver_at, seq) min-ordered queue; seq is a
// monotone counter that makes the order a strict total order, exactly the
// tie-break discipline of EventEngine's calendar queue. The differential
// tests lean on a stronger property: LoopbackTransport draws its fault
// decisions from the SAME master Rng, in the SAME per-message pattern, as
// EventEngine's send path —
//
//     chance(loss_probability)            (no draw consumed at p = 0)
//     min_delay + uniform() * (max_delay - min_delay)
//
// — so a LoopbackDriver run over this backend consumes master-stream draws
// value-for-value like an EventEngine run of the same seed, and the two
// finish digest-identical even under nonzero latency and loss. The
// reorder / duplication knobs have no EventEngine counterpart and consume
// extra draws, so they are only exercised by the invariant tests.
//
// allocate_seq() is exposed so a driver can thread its own timer events
// through the same counter, recreating the event engine's single totally-
// ordered event stream across two queues.

#include <cstdint>
#include <optional>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/transport/transport.hpp"

namespace pss::transport {

struct LoopbackConfig {
  double min_delay = 0.0;
  double max_delay = 0.0;
  double loss_probability = 0.0;
  // With probability `reorder_probability`, a frame's delay is stretched by
  // uniform() * reorder_jitter, letting later sends overtake it.
  double reorder_probability = 0.0;
  double reorder_jitter = 0.0;
  // With probability `duplicate_probability`, a second copy is enqueued
  // with an independently drawn delay.
  double duplicate_probability = 0.0;
};

struct LoopbackStats {
  std::uint64_t frames_sent = 0;        // send() calls accepted
  std::uint64_t frames_dropped = 0;     // lost to the loss knob
  std::uint64_t frames_duplicated = 0;  // extra copies enqueued
  std::uint64_t frames_delivered = 0;   // handler invocations
};

class LoopbackTransport final : public Transport {
 public:
  // `rng` must outlive the transport. Pass the simulation's master Rng to
  // share its draw stream with an EventEngine reference run.
  LoopbackTransport(LoopbackConfig config, Rng& rng);

  bool send(NodeId to, std::span<const std::byte> frame) override;

  // Delivers every frame with deliver_at <= now(), earliest (at, seq) first.
  std::size_t poll(const FrameHandler& handler) override;

  // Delivers exactly the earliest due frame; false when none is due.
  bool poll_one(const FrameHandler& handler);

  // (deliver_at, seq) of the earliest queued frame, nullopt when empty.
  std::optional<std::pair<double, std::uint64_t>> next_event() const;

  void set_now(double now) { now_ = now; }
  double now() const { return now_; }

  std::uint64_t allocate_seq() { return next_seq_++; }

  const LoopbackStats& stats() const { return stats_; }
  std::size_t in_flight() const { return queue_.size(); }

 private:
  struct InFlight {
    double at = 0.0;
    std::uint64_t seq = 0;
    NodeId to = kInvalidNode;
    std::uint32_t buffer = 0;  // index into buffers_
  };
  struct LaterFirst {
    bool operator()(const InFlight& a, const InFlight& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void enqueue(NodeId to, std::span<const std::byte> frame, double delay);
  void deliver_head(const FrameHandler& handler);

  LoopbackConfig config_;
  Rng* rng_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  LoopbackStats stats_;
  std::priority_queue<InFlight, std::vector<InFlight>, LaterFirst> queue_;
  // Recycled payload buffers, indexed by InFlight::buffer: steady-state
  // operation allocates nothing once the pool has grown to the high-water
  // in-flight count.
  std::vector<std::vector<std::byte>> buffers_;
  std::vector<std::uint32_t> free_buffers_;
};

}  // namespace pss::transport
