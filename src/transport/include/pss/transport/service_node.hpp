#pragma once

// One protocol participant served over a Transport — the middleware driver
// the paper's deployment story implies: the active thread becomes a
// timer-driven request emitter (on_tick), the passive thread a poll-loop
// frame handler (on_frame / on_datagram).
//
// ServiceNode is a statement-level mirror of EventEngine's wakeup /
// request / reply handlers over the same flat_exchange kernels and the
// same sim::PendingExchange pull bookkeeping, with the in-flight message
// slab replaced by an encoded wire frame. That mirroring is a tested
// contract, not an aspiration: tests/transport_test.cpp proves a
// LoopbackTransport run digest-identical to an EventEngine run of the
// same seed, so every future wire-format or driver change stays
// replay-testable against the simulation reference.
//
// Two attachment modes, mirroring GossipNode:
//   * attached  — a slot in a shared flat::NodeArena (the LoopbackDriver
//     runs a whole sim::Network's arena this way, slot == self);
//   * standalone — the node owns a private single-slot arena (the UDP
//     daemon/client processes, slot 0, self = the configured address;
//     this is why absorb()'s slot/self split exists).
//
// The node's PeerSamplingService API surface is exposed through
// gossip_node(): construct a PeerSamplingService over it to get
// init()/getPeer() backed by the transport-maintained view.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/common/types.hpp"
#include "pss/membership/flat_ops.hpp"
#include "pss/obs/metric_sink.hpp"
#include "pss/protocol/flat_exchange.hpp"
#include "pss/protocol/gossip_node.hpp"
#include "pss/protocol/node_arena.hpp"
#include "pss/protocol/spec.hpp"
#include "pss/sim/exchange_apply.hpp"
#include "pss/sim/trace_probe.hpp"
#include "pss/transport/transport.hpp"
#include "pss/transport/wire.hpp"

namespace pss::transport {

struct ServiceNodeConfig {
  double period = 1.0;         ///< T between on_tick firings (caller-driven)
  double reply_timeout = 0.5;  ///< pull reply validity window
};

/// Driver-level counters (arena NodeStats keeps the protocol-level ones).
struct ServiceNodeStats {
  std::uint64_t wakeups = 0;             ///< on_tick firings
  std::uint64_t requests_sent = 0;       ///< request frames handed to send()
  std::uint64_t replies_delivered = 0;   ///< pull replies accepted in time
  std::uint64_t replies_stale = 0;       ///< late or superseded pull replies
  std::uint64_t frames_rejected = 0;     ///< on_datagram wire decode failures
  std::uint64_t protocol_mismatches = 0; ///< valid frame, foreign protocol
  std::uint64_t misaddressed = 0;        ///< valid frame, to != self
};

class ServiceNode {
 public:
  /// Attached mode: runs slot `slot` of `arena` (must outlive the node).
  /// `self` is the node's wire address — the LoopbackDriver passes
  /// slot == self, the address every other view descriptor refers to.
  ServiceNode(flat::NodeArena& arena, NodeId slot, NodeId self,
              ProtocolSpec spec, ProtocolOptions options, Transport& transport,
              ServiceNodeConfig config = {});

  /// Standalone mode (daemon/client processes): owns a private single-slot
  /// arena; `rng` drives this node's protocol choices.
  ServiceNode(NodeId self, ProtocolSpec spec, ProtocolOptions options, Rng rng,
              Transport& transport, ServiceNodeConfig config = {});

  ServiceNode(ServiceNode&&) = delete;
  ServiceNode& operator=(ServiceNode&&) = delete;

  /// Seeds the view from bootstrap contacts (hop 0), dropping self and
  /// truncating to c — the init() of the peer sampling API.
  void init(std::span<const NodeId> contacts);

  /// Streams one obs::schemas::kServiceTick row at the end of every
  /// on_tick firing — the daemon's live observability path (JSONL file,
  /// in-memory ring, or both via FanOutSink). The node calls
  /// sink.begin() here; the caller keeps ownership. Write-only
  /// observation: attaching a sink never alters protocol behaviour.
  void attach_sink(obs::MetricSink& sink, const obs::RunMetadata& meta);

  /// Registers the causal-tracing hook (see sim::TraceProbe): select /
  /// request-sent / timeout spans on on_tick, merge+apply on request
  /// frames, reply-received on admitted replies — every span labelled
  /// with the wire frame's u64 exchange id, which is what lets
  /// scripts/trace_tool.py stitch the dumps of two daemon processes into
  /// one causal request->reply chain. Same write-only contract as
  /// attach_sink: tracing never alters protocol behaviour (digest-pinned
  /// by the loopback differential in tests/trace_test.cpp).
  void attach_trace(sim::TraceProbe& trace) { trace_ = &trace; }

  /// Active thread firing at time `now` (caller-driven: a wall-clock timer
  /// in the daemon, the LoopbackDriver's event loop in tests). Expires the
  /// overdue pull, ages the view, selects a peer and emits one request.
  void on_tick(double now);

  /// Passive thread: applies one decoded frame. The caller has already
  /// routed the frame here; mis-addressed or foreign-protocol frames are
  /// counted and dropped, never absorbed.
  void on_frame(const ParsedFrame& frame, double now);

  /// Decode-and-dispatch for raw datagrams (the UDP poll loop): returns
  /// the decode verdict, counting rejects.
  WireError on_datagram(std::span<const std::byte> bytes, double now);

  NodeId self() const { return self_; }
  const ProtocolSpec& spec() const { return spec_; }
  flat::DescSpan view() const { return arena_->views.view_of(slot_); }
  const ServiceNodeStats& stats() const { return stats_; }
  const NodeStats& node_stats() const { return arena_->stats[slot_]; }
  const sim::PendingExchange& pending() const { return pending_; }
  Cycle tick() const { return tick_; }

  /// Adapter for the service API layer: a PeerSamplingService constructed
  /// over this node samples from the transport-maintained view.
  GossipNode& gossip_node() { return gossip_node_; }

 private:
  void record_tick(double now);
  void send_request(NodeId peer, std::uint64_t exchange_id);
  void handle_request_frame(const ParsedFrame& frame);
  void handle_reply_frame(const ParsedFrame& frame, double now);

  std::unique_ptr<flat::NodeArena> owned_;  ///< standalone mode backing
  flat::NodeArena* arena_;
  NodeId slot_;
  NodeId self_;
  ProtocolSpec spec_;
  ProtocolOptions options_;
  ServiceNodeConfig config_;
  Transport* transport_;
  WireCodec codec_;
  GossipNode gossip_node_;
  sim::PendingExchange pending_;
  std::uint64_t next_exchange_ = 1;
  Cycle tick_ = 0;
  ServiceNodeStats stats_;
  obs::MetricSink* sink_ = nullptr;
  sim::TraceProbe* trace_ = nullptr;  ///< tracing seam; null = untraced
  flat::Scratch scratch_;
  std::vector<NodeDescriptor> buffer_;       ///< request staging, c+1 entries
  std::vector<NodeDescriptor> reply_buffer_; ///< reply staging, c+1 entries
  std::vector<std::byte> bytes_;             ///< encoded frame staging
};

}  // namespace pss::transport
