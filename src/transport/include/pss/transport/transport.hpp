#pragma once

// The backend seam that turns the peer sampling service into middleware.
//
// A Transport moves opaque encoded frames between addresses; it knows
// nothing about the gossip protocol beyond the destination NodeId. Policy
// (which peer, what payload, how views merge) stays in the flat_exchange
// kernels above the seam; delivery (queues, sockets, loss, delay) lives
// below it. Backends:
//
//   LoopbackTransport — deterministic in-process queue, seeded delay /
//                       loss / reorder / duplication; the test workhorse
//                       and the differential reference against EventEngine.
//   UdpTransport      — nonblocking UDP datagrams over localhost; the
//                       deployment path used by the examples/ daemon.
//
// Contract:
//   * send() is best-effort: true means the frame was accepted for
//     delivery, false means the backend rejected it outright (no route,
//     kernel buffer full). Acceptance is not a delivery guarantee — the
//     protocol tolerates loss by design (paper Section 4.4).
//   * poll() synchronously invokes the handler once per deliverable frame
//     and returns how many were delivered. The `to` argument is the
//     destination as the backend knows it — the send() argument for
//     loopback, the header's to-field peeked from the datagram for UDP
//     (kInvalidNode when too short to carry one) — so one backend instance
//     can host many logical nodes; full validation happens in WireCodec.
//   * The byte span passed to the handler is valid only for the duration
//     of the call.
//   * Implementations are single-threaded; run one Transport per poll
//     loop and synchronize externally if frames cross threads.

#include <cstddef>
#include <functional>
#include <span>

#include "pss/common/types.hpp"

namespace pss::transport {

using FrameHandler =
    std::function<void(NodeId to, std::span<const std::byte> frame)>;

class Transport {
 public:
  virtual ~Transport() = default;

  virtual bool send(NodeId to, std::span<const std::byte> frame) = 0;

  virtual std::size_t poll(const FrameHandler& handler) = 0;
};

}  // namespace pss::transport
