#pragma once

// Nonblocking UDP datagram backend over localhost — the deployment path.
//
// One UdpTransport wraps one bound socket; the address book maps NodeId to
// (ip, port), so a socket can host any number of logical nodes (frames are
// demuxed by the wire header's to-field, which poll() peeks without full
// validation). Gossip frames fit well inside one datagram (28 + 8*(c+1)
// bytes, e.g. 276 bytes at the paper's c = 30), so frame == datagram and
// no reassembly exists.
//
// Loss realism comes for free: a full kernel buffer drops datagrams
// exactly like the simulation's drop_probability, and the protocol is
// built to tolerate it (paper Section 4.4). send() therefore treats
// EWOULDBLOCK/ECONNREFUSED as a counted best-effort loss, not an error.

#include <cstdint>
#include <string>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/transport/transport.hpp"

namespace pss::transport {

/// NodeId -> UDP endpoint map. Endpoints are IPv4 localhost by default;
/// node ids index a dense vector (the repo's NodeIds are dense slots).
class UdpAddressBook {
 public:
  /// n nodes on 127.0.0.1, node i at base_port + (i % sockets). With
  /// sockets == n every node owns a port (one process per node, the
  /// examples); with fewer, ports are shared and frames demux by header
  /// (the bench's many-nodes-per-socket mode).
  static UdpAddressBook local_range(std::uint16_t base_port, std::size_t n,
                                    std::size_t sockets = 0);

  void set(NodeId id, const std::string& ip, std::uint16_t port);
  bool contains(NodeId id) const;
  std::uint32_t ip(NodeId id) const;    ///< network byte order
  std::uint16_t port(NodeId id) const;  ///< host byte order
  std::size_t size() const { return ports_.size(); }

 private:
  std::vector<std::uint32_t> ips_;     ///< network byte order, 0 = unset
  std::vector<std::uint16_t> ports_;   ///< host byte order, 0 = unset
};

struct UdpStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t send_failures = 0;      ///< EWOULDBLOCK etc: best-effort loss
  std::uint64_t datagrams_received = 0;
  std::uint64_t oversized_dropped = 0;  ///< datagram larger than any frame
};

class UdpTransport final : public Transport {
 public:
  /// Binds the endpoint the book assigns to `host_node` (every node the
  /// socket hosts must map to the same port). `max_frame_bytes` bounds the
  /// receive buffer — pass WireCodec::max_frame_bytes().
  UdpTransport(const UdpAddressBook& book, NodeId host_node,
               std::size_t max_frame_bytes);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  bool send(NodeId to, std::span<const std::byte> frame) override;

  /// Drains every datagram currently readable (until EWOULDBLOCK).
  std::size_t poll(const FrameHandler& handler) override;

  const UdpStats& stats() const { return stats_; }
  std::uint16_t bound_port() const { return bound_port_; }

 private:
  const UdpAddressBook* book_;
  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
  UdpStats stats_;
  std::vector<std::byte> recv_buffer_;
};

}  // namespace pss::transport
