#pragma once

// Wire format for descriptor-buffer exchanges (the middleware framing).
//
// A frame is one request or one reply of the paper's Figure-1 exchange,
// serialized to a bounded little-endian byte span:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     2  magic          0x50 0x53 ("PS")
//        2     1  version        kVersion (currently 1)
//        3     1  type           1 = request, 2 = reply
//        4     1  protocol id    ps*9 + vs*3 + vp, in [0, 27)
//        5     1  reserved       must be 0
//        6     2  count          number of descriptor records, u16
//        8     4  from           sender address (NodeId)
//       12     4  to             destination address (NodeId)
//       16     4  tick           sender-local period-tick stamp (Cycle)
//       20     8  exchange id    active side's exchange counter, u64
//       28   8*k  records        count x fixed-stride (address u32, age u32)
//
// Records reuse NodeDescriptor's layout semantics: `address` is the peer's
// NodeId, `age` its hop count. The payload must be normalized exactly like
// an in-arena view buffer — sorted by (age, address) with unique addresses —
// so a decoded span can feed flat_exchange kernels without re-validation.
//
// Decoding is strict and total: every malformed input maps to a typed
// WireError without reading past the span and without UB. The codec never
// trusts `count` before bounds-checking it against both the declared span
// length and the codec's configured capacity (view_size + 1, the largest
// buffer make_active_buffer can emit).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pss/common/types.hpp"
#include "pss/membership/flat_ops.hpp"
#include "pss/membership/node_descriptor.hpp"
#include "pss/protocol/spec.hpp"

namespace pss::transport {

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kReply = 2,
};

enum class WireError : std::uint8_t {
  kOk = 0,
  kTruncated,       // span shorter than header, or than header + count records
  kBadMagic,        // first two bytes are not "PS"
  kBadVersion,      // version byte != kVersion
  kBadType,         // type byte is neither request nor reply
  kBadProtocol,     // protocol id outside [0, 27)
  kBadReserved,     // reserved byte non-zero
  kOversized,       // count exceeds the codec's view_size + 1 capacity
  kTrailingBytes,   // span longer than header + count records
  kBadAddress,      // from/to invalid or equal (self-addressed frame)
  kBadDescriptor,   // a record carries the kInvalidNode sentinel address
  kNotNormalized,   // records not sorted by (age, address) or address repeated
};

const char* to_string(WireError error);

// Encode input: `entries` is borrowed for the duration of the call.
struct WireFrame {
  FrameType type = FrameType::kRequest;
  ProtocolSpec spec;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Cycle tick = 0;
  std::uint64_t exchange_id = 0;
  flat::DescSpan entries;
};

// Decode output: `entries` points into codec-owned storage and is valid
// until the next decode() on the same codec.
struct ParsedFrame {
  FrameType type = FrameType::kRequest;
  ProtocolSpec spec;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Cycle tick = 0;
  std::uint64_t exchange_id = 0;
  flat::DescSpan entries;
};

// Maps a ProtocolSpec onto the single-byte wire id (ps*9 + vs*3 + vp) and
// back. decode_protocol returns false for ids outside the 27-point design
// space without touching `out`.
std::uint8_t encode_protocol(const ProtocolSpec& spec);
bool decode_protocol(std::uint8_t id, ProtocolSpec& out);

// One codec per node (or per driver thread): decode reuses internal
// buffers, so parsed entry spans are invalidated by the next decode and
// the codec is not thread-safe.
class WireCodec {
 public:
  static constexpr std::size_t kHeaderBytes = 28;
  static constexpr std::size_t kRecordBytes = 8;
  static constexpr std::uint8_t kMagic0 = 0x50;  // 'P'
  static constexpr std::uint8_t kMagic1 = 0x53;  // 'S'
  static constexpr std::uint8_t kVersion = 1;

  // view_size is the protocol's c; the largest legal payload is c+1 records
  // (own descriptor prepended to a full view by make_active_buffer).
  explicit WireCodec(std::size_t view_size);

  std::size_t max_entries() const { return max_entries_; }
  std::size_t max_frame_bytes() const {
    return frame_bytes(max_entries_);
  }
  static constexpr std::size_t frame_bytes(std::size_t count) {
    return kHeaderBytes + kRecordBytes * count;
  }

  // Serializes `frame` into `out` (resized to the exact frame length,
  // capacity reused across calls). PSS_CHECKs the frame is one the decoder
  // would accept; honest senders built from arena views always satisfy it.
  void encode(const WireFrame& frame, std::vector<std::byte>& out) const;

  // Parses `bytes`, filling `out` on success. On any error `out` is left
  // unspecified and no byte past bytes.size() is read.
  WireError decode(std::span<const std::byte> bytes, ParsedFrame& out);

 private:
  std::size_t max_entries_;
  std::vector<NodeDescriptor> entries_;
  std::vector<NodeId> addr_scratch_;
};

}  // namespace pss::transport
