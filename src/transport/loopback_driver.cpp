#include "pss/transport/loopback_driver.hpp"

#include "pss/common/check.hpp"

namespace pss::transport {

LoopbackDriver::LoopbackDriver(sim::Network& network, LoopbackTransport& bus,
                               LoopbackDriverConfig config)
    : network_(&network),
      bus_(&bus),
      config_(config),
      codec_(network.options().view_size) {
  PSS_CHECK_MSG(config.period > 0 && config.reply_timeout > 0,
                "LoopbackDriver: period and reply_timeout must be positive");
  schedule_new_nodes();
}

void LoopbackDriver::schedule_new_nodes() {
  // Mirror of EventEngine::schedule_new_nodes: each new node draws its
  // phase from the master Rng in id order and takes the next seq.
  const std::size_t n = network_->size();
  while (scheduled_nodes_ < n) {
    const NodeId id = static_cast<NodeId>(scheduled_nodes_++);
    nodes_.emplace_back(network_->arena(), id, id, network_->spec(),
                        network_->options(), *bus_,
                        ServiceNodeConfig{config_.period,
                                          config_.reply_timeout});
    if (trace_ != nullptr) nodes_.back().attach_trace(*trace_);
    const double at = now_ + network_->rng().uniform() * config_.period;
    timers_.push(Timer{at, bus_->allocate_seq(), id});
  }
}

void LoopbackDriver::advance_to(double until) {
  schedule_new_nodes();
  for (;;) {
    const auto frame_next = bus_->next_event();
    const bool have_timer = !timers_.empty();
    const bool have_frame = frame_next.has_value();
    if (!have_timer && !have_frame) break;
    // Merge-pop the two queues by (at, seq): one strict total order, the
    // engine's calendar discipline split across timers and wire.
    const bool timer_first =
        have_timer &&
        (!have_frame || timers_.top().at < frame_next->first ||
         (timers_.top().at == frame_next->first &&
          timers_.top().seq < frame_next->second));
    const double at = timer_first ? timers_.top().at : frame_next->first;
    if (at > until) break;
    now_ = at;
    bus_->set_now(at);
    if (timer_first) {
      const Timer t = timers_.top();
      timers_.pop();
      // Rearm before handling so the rearm takes its seq ahead of the
      // request — EventEngine::on_wakeup's event order.
      timers_.push(Timer{now_ + config_.period, bus_->allocate_seq(), t.node});
      if (!network_->is_live(t.node)) continue;
      nodes_[t.node].on_tick(now_);
    } else {
      bus_->poll_one([&](NodeId, std::span<const std::byte> bytes) {
        ParsedFrame frame;
        if (codec_.decode(bytes, frame) != WireError::kOk) {
          ++rejected_frames_;  // only injectable via raw bus sends
          return;
        }
        if (!network_->is_live(frame.to) ||
            !network_->can_communicate(frame.from, frame.to)) {
          ++messages_to_dead_;
          return;
        }
        nodes_[frame.to].on_frame(frame, now_);
      });
    }
  }
  now_ = until;
  bus_->set_now(until);
}

void LoopbackDriver::run_until(double until) {
  advance_to(until);
  tick_anchor_ = now_;
  ticks_ = 0;
}

void LoopbackDriver::run_cycles(std::size_t cycles) {
  ticks_ += cycles;
  advance_to(tick_anchor_ + static_cast<double>(ticks_) * config_.period);
}

sim::EventEngineStats LoopbackDriver::engine_stats() const {
  sim::EventEngineStats s;
  for (const ServiceNode& node : nodes_) {
    s.wakeups += node.stats().wakeups;
    s.replies_delivered += node.stats().replies_delivered;
    s.replies_stale += node.stats().replies_stale;
  }
  s.messages_sent = bus_->stats().frames_sent;
  s.messages_dropped = bus_->stats().frames_dropped;
  s.messages_to_dead = messages_to_dead_;
  return s;
}

}  // namespace pss::transport
