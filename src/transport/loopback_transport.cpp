#include "pss/transport/loopback_transport.hpp"

#include <algorithm>

#include "pss/common/check.hpp"

namespace pss::transport {

LoopbackTransport::LoopbackTransport(LoopbackConfig config, Rng& rng)
    : config_(config), rng_(&rng) {
  PSS_CHECK_MSG(config.min_delay >= 0.0 && config.max_delay >= config.min_delay,
                "LoopbackTransport: need 0 <= min_delay <= max_delay");
  PSS_CHECK_MSG(config.loss_probability >= 0.0 &&
                    config.loss_probability <= 1.0,
                "LoopbackTransport: loss_probability out of [0,1]");
  PSS_CHECK_MSG(config.reorder_jitter >= 0.0,
                "LoopbackTransport: reorder_jitter must be >= 0");
}

bool LoopbackTransport::send(NodeId to, std::span<const std::byte> frame) {
  ++stats_.frames_sent;
  // Draw order mirrors EventEngine::send_request exactly: the loss draw
  // first (skipped entirely at p = 0 by Rng::chance), then one uniform for
  // the delay of every non-dropped frame, even when min == max.
  if (rng_->chance(config_.loss_probability)) {
    ++stats_.frames_dropped;
    return true;
  }
  double delay =
      config_.min_delay + rng_->uniform() * (config_.max_delay - config_.min_delay);
  if (config_.reorder_probability > 0.0 &&
      rng_->chance(config_.reorder_probability)) {
    delay += rng_->uniform() * config_.reorder_jitter;
  }
  enqueue(to, frame, delay);
  if (config_.duplicate_probability > 0.0 &&
      rng_->chance(config_.duplicate_probability)) {
    const double dup_delay =
        config_.min_delay +
        rng_->uniform() * (config_.max_delay - config_.min_delay);
    enqueue(to, frame, dup_delay);
    ++stats_.frames_duplicated;
  }
  return true;
}

void LoopbackTransport::enqueue(NodeId to, std::span<const std::byte> frame,
                                double delay) {
  std::uint32_t buf;
  if (!free_buffers_.empty()) {
    buf = free_buffers_.back();
    free_buffers_.pop_back();
  } else {
    buf = static_cast<std::uint32_t>(buffers_.size());
    buffers_.emplace_back();
  }
  buffers_[buf].assign(frame.begin(), frame.end());
  queue_.push(InFlight{now_ + delay, next_seq_++, to, buf});
}

std::size_t LoopbackTransport::poll(const FrameHandler& handler) {
  std::size_t delivered = 0;
  while (!queue_.empty() && queue_.top().at <= now_) {
    deliver_head(handler);
    ++delivered;
  }
  return delivered;
}

bool LoopbackTransport::poll_one(const FrameHandler& handler) {
  if (queue_.empty() || queue_.top().at > now_) return false;
  deliver_head(handler);
  return true;
}

void LoopbackTransport::deliver_head(const FrameHandler& handler) {
  const InFlight head = queue_.top();
  queue_.pop();
  ++stats_.frames_delivered;
  // The buffer is recycled only after the handler returns; handlers must
  // not retain the span (Transport contract).
  handler(head.to, std::span<const std::byte>(buffers_[head.buffer]));
  free_buffers_.push_back(head.buffer);
}

std::optional<std::pair<double, std::uint64_t>> LoopbackTransport::next_event()
    const {
  if (queue_.empty()) return std::nullopt;
  return std::make_pair(queue_.top().at, queue_.top().seq);
}

}  // namespace pss::transport
