#include "pss/transport/service_node.hpp"

#include <algorithm>

#include "pss/common/check.hpp"
#include "pss/membership/view.hpp"
#include "pss/obs/schemas.hpp"

namespace pss::transport {

ServiceNode::ServiceNode(flat::NodeArena& arena, NodeId slot, NodeId self,
                         ProtocolSpec spec, ProtocolOptions options,
                         Transport& transport, ServiceNodeConfig config)
    : arena_(&arena),
      slot_(slot),
      self_(self),
      spec_(spec),
      options_(options),
      config_(config),
      transport_(&transport),
      codec_(options.view_size),
      gossip_node_(self, spec, options, &arena, slot) {
  PSS_CHECK_MSG(slot < arena.node_count(), "ServiceNode: slot out of range");
  PSS_CHECK_MSG(config.period > 0 && config.reply_timeout > 0,
                "ServiceNode: period and reply_timeout must be positive");
  buffer_.resize(options_.view_size + 1);
  reply_buffer_.resize(options_.view_size + 1);
  bytes_.reserve(codec_.max_frame_bytes());
}

ServiceNode::ServiceNode(NodeId self, ProtocolSpec spec,
                         ProtocolOptions options, Rng rng, Transport& transport,
                         ServiceNodeConfig config)
    : owned_(std::make_unique<flat::NodeArena>(options.view_size)),
      arena_(owned_.get()),
      slot_(owned_->add_node(rng)),
      self_(self),
      spec_(spec),
      options_(options),
      config_(config),
      transport_(&transport),
      codec_(options.view_size),
      gossip_node_(self, spec, options, owned_.get(), slot_) {
  PSS_CHECK_MSG(config.period > 0 && config.reply_timeout > 0,
                "ServiceNode: period and reply_timeout must be positive");
  buffer_.resize(options_.view_size + 1);
  reply_buffer_.resize(options_.view_size + 1);
  bytes_.reserve(codec_.max_frame_bytes());
}

void ServiceNode::init(std::span<const NodeId> contacts) {
  std::vector<NodeDescriptor> boot;
  boot.reserve(contacts.size());
  for (NodeId c : contacts) boot.push_back(NodeDescriptor{c, 0});
  gossip_node_.init_view(View(std::move(boot)));
}

void ServiceNode::attach_sink(obs::MetricSink& sink,
                              const obs::RunMetadata& meta) {
  sink_ = &sink;
  sink_->begin(obs::schemas::kServiceTick, meta);
}

void ServiceNode::record_tick(double now) {
  if (sink_ == nullptr) return;
  sink_->row({static_cast<std::uint64_t>(tick_), now, view().size(),
              stats_.wakeups, stats_.requests_sent, stats_.replies_delivered,
              stats_.replies_stale, stats_.frames_rejected,
              stats_.protocol_mismatches, stats_.misaddressed});
}

void ServiceNode::on_tick(double now) {
  ++stats_.wakeups;
  ++tick_;
  const bool traced = trace_ != nullptr && trace_->armed();
  std::uint64_t t0 = 0;
  if (traced) {
    t0 = sim::trace_clock_ns();
    // expire_overdue is about to surface this as a contact failure; mark
    // the timeout against the exchange whose reply never came.
    if (pending_.active && pending_.deadline < now) {
      trace_->record({sim::TracePhase::kTimeout, self_, pending_.peer,
                      pending_.exchange_id, tick_, t0, t0});
    }
  }
  // Statement-level mirror of EventEngine::on_wakeup (minus the timer
  // rearm, which belongs to the caller's event loop): expire the overdue
  // pull, age once per period, select, then emit.
  sim::expire_overdue(*arena_, slot_, pending_, now, options_);
  arena_->views.age(slot_);
  auto peer = flat::select_peer(arena_->views.view_of(slot_),
                                spec_.peer_selection, arena_->rngs[slot_]);
  if (!peer) {
    if (traced) {
      trace_->record({sim::TracePhase::kSelect, self_, kInvalidNode, 0, tick_,
                      t0, sim::trace_clock_ns()});
    }
    record_tick(now);
    return;
  }
  ++arena_->stats[slot_].initiated;

  const std::uint64_t exchange_id = next_exchange_++;
  if (spec_.pull()) {
    if (sim::open_exchange(pending_, exchange_id, *peer,
                           now + config_.reply_timeout)) {
      ++stats_.replies_stale;
    }
  }
  if (traced) {
    trace_->record({sim::TracePhase::kSelect, self_, *peer, exchange_id,
                    tick_, t0, sim::trace_clock_ns()});
  }
  send_request(*peer, exchange_id);
  record_tick(now);
}

void ServiceNode::send_request(NodeId peer, std::uint64_t exchange_id) {
  const bool traced = trace_ != nullptr && trace_->armed();
  const std::uint64_t t0 = traced ? sim::trace_clock_ns() : 0;
  const std::uint32_t n = flat::write_active_buffer(
      arena_->views.view_of(slot_), self_, spec_.push(), buffer_.data());
  WireFrame frame;
  frame.type = FrameType::kRequest;
  frame.spec = spec_;
  frame.from = self_;
  frame.to = peer;
  frame.tick = tick_;
  frame.exchange_id = exchange_id;
  frame.entries = flat::DescSpan(buffer_.data(), n);
  codec_.encode(frame, bytes_);
  ++stats_.requests_sent;
  transport_->send(peer, bytes_);
  if (traced) {
    trace_->record({sim::TracePhase::kRequestSent, self_, peer, exchange_id,
                    tick_, t0, sim::trace_clock_ns()});
  }
}

void ServiceNode::on_frame(const ParsedFrame& frame, double now) {
  if (frame.to != self_) {
    ++stats_.misaddressed;
    return;
  }
  if (frame.spec != spec_) {
    ++stats_.protocol_mismatches;
    return;
  }
  switch (frame.type) {
    case FrameType::kRequest: handle_request_frame(frame); break;
    case FrameType::kReply: handle_reply_frame(frame, now); break;
  }
}

WireError ServiceNode::on_datagram(std::span<const std::byte> bytes,
                                   double now) {
  ParsedFrame frame;
  const WireError err = codec_.decode(bytes, frame);
  if (err != WireError::kOk) {
    ++stats_.frames_rejected;
    return err;
  }
  on_frame(frame, now);
  return WireError::kOk;
}

void ServiceNode::handle_request_frame(const ParsedFrame& frame) {
  const bool traced = trace_ != nullptr && trace_->armed();
  const std::uint64_t t0 = traced ? sim::trace_clock_ns() : 0;
  // flat::handle_request with the slot/self split (the kernels' passive
  // half assumes slot == self; a standalone daemon's slot is 0): counters,
  // pre-merge reply build and in-merge aging in the exact kernel order.
  ++arena_->stats[slot_].received;
  std::uint32_t reply_size = 0;
  if (spec_.pull()) {
    reply_size = flat::write_active_buffer(arena_->views.view_of(slot_), self_,
                                           /*push=*/true, reply_buffer_.data());
    ++arena_->stats[slot_].replies_sent;
  }
  flat::absorb(arena_->views, slot_, self_, spec_, options_, frame.entries,
               arena_->rngs[slot_], scratch_, /*age_incoming=*/1);
  if (spec_.pull()) {
    WireFrame reply;
    reply.type = FrameType::kReply;
    reply.spec = spec_;
    reply.from = self_;
    reply.to = frame.from;
    reply.tick = tick_;
    reply.exchange_id = frame.exchange_id;
    reply.entries = flat::DescSpan(reply_buffer_.data(), reply_size);
    codec_.encode(reply, bytes_);
    transport_->send(frame.from, bytes_);
  }
  if (traced) {
    trace_->record({sim::TracePhase::kMergeApply, self_, frame.from,
                    frame.exchange_id, tick_, t0, sim::trace_clock_ns()});
  }
}

void ServiceNode::handle_reply_frame(const ParsedFrame& frame, double now) {
  if (!sim::admit_reply(pending_, frame.exchange_id, now)) {
    ++stats_.replies_stale;
    return;
  }
  const bool traced = trace_ != nullptr && trace_->armed();
  const std::uint64_t t0 = traced ? sim::trace_clock_ns() : 0;
  flat::absorb(arena_->views, slot_, self_, spec_, options_, frame.entries,
               arena_->rngs[slot_], scratch_, /*age_incoming=*/1);
  ++stats_.replies_delivered;
  if (traced) {
    trace_->record({sim::TracePhase::kReplyReceived, self_, frame.from,
                    frame.exchange_id, tick_, t0, sim::trace_clock_ns()});
  }
}

}  // namespace pss::transport
