#include "pss/transport/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "pss/common/check.hpp"
#include "pss/transport/wire.hpp"

namespace pss::transport {

UdpAddressBook UdpAddressBook::local_range(std::uint16_t base_port,
                                           std::size_t n,
                                           std::size_t sockets) {
  if (sockets == 0 || sockets > n) sockets = n;
  UdpAddressBook book;
  for (std::size_t i = 0; i < n; ++i) {
    book.set(static_cast<NodeId>(i), "127.0.0.1",
             static_cast<std::uint16_t>(base_port + (i % sockets)));
  }
  return book;
}

void UdpAddressBook::set(NodeId id, const std::string& ip,
                         std::uint16_t port) {
  PSS_CHECK_MSG(port != 0, "UdpAddressBook: port 0 is reserved for unset");
  if (id >= ports_.size()) {
    ips_.resize(id + 1, 0);
    ports_.resize(id + 1, 0);
  }
  in_addr addr{};
  PSS_CHECK_MSG(inet_pton(AF_INET, ip.c_str(), &addr) == 1,
                "UdpAddressBook: bad IPv4 address");
  ips_[id] = addr.s_addr;
  ports_[id] = port;
}

bool UdpAddressBook::contains(NodeId id) const {
  return id < ports_.size() && ports_[id] != 0;
}

std::uint32_t UdpAddressBook::ip(NodeId id) const { return ips_[id]; }

std::uint16_t UdpAddressBook::port(NodeId id) const { return ports_[id]; }

UdpTransport::UdpTransport(const UdpAddressBook& book, NodeId host_node,
                           std::size_t max_frame_bytes)
    : book_(&book) {
  PSS_CHECK_MSG(book.contains(host_node),
                "UdpTransport: host node not in the address book");
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  PSS_CHECK_MSG(fd_ >= 0, "UdpTransport: socket() failed");

  const int flags = ::fcntl(fd_, F_GETFL, 0);
  PSS_CHECK_MSG(flags >= 0 && ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0,
                "UdpTransport: O_NONBLOCK failed");
  int reuse = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  // Gossip bursts (every hosted node ticking in one loop pass) overflow
  // the default receive buffer long before the network is the bottleneck;
  // a bigger buffer is best-effort, capped by the kernel's rmem_max.
  int rcvbuf = 1 << 21;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = book.ip(host_node);
  addr.sin_port = htons(book.port(host_node));
  PSS_CHECK_MSG(::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "UdpTransport: bind() failed (port in use?)");
  bound_port_ = book.port(host_node);
  // One extra byte distinguishes "exactly max frame" from "too long"
  // under MSG_TRUNC-less fallback reads.
  recv_buffer_.resize(max_frame_bytes + 1);
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpTransport::send(NodeId to, std::span<const std::byte> frame) {
  if (!book_->contains(to)) {
    ++stats_.send_failures;
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = book_->ip(to);
  addr.sin_port = htons(book_->port(to));
  const ssize_t n =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (n != static_cast<ssize_t>(frame.size())) {
    ++stats_.send_failures;  // kernel buffer full etc — best-effort loss
    return false;
  }
  ++stats_.datagrams_sent;
  return true;
}

std::size_t UdpTransport::poll(const FrameHandler& handler) {
  std::size_t delivered = 0;
  for (;;) {
    const ssize_t n =
        ::recvfrom(fd_, recv_buffer_.data(), recv_buffer_.size(), 0, nullptr,
                   nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A queued ICMP error (peer not yet bound) is consumed by this read;
      // keep draining. Anything else ends the poll pass.
      if (errno == ECONNREFUSED) continue;
      break;
    }
    ++stats_.datagrams_received;
    if (static_cast<std::size_t>(n) >= recv_buffer_.size()) {
      ++stats_.oversized_dropped;  // cannot be a legal frame; possibly cut off
      continue;
    }
    const std::span<const std::byte> bytes(recv_buffer_.data(),
                                           static_cast<std::size_t>(n));
    // Peek the destination for demux; full validation happens in WireCodec
    // downstream.
    NodeId to = kInvalidNode;
    if (bytes.size() >= WireCodec::kHeaderBytes) {
      to = std::to_integer<std::uint32_t>(bytes[12]) |
           (std::to_integer<std::uint32_t>(bytes[13]) << 8) |
           (std::to_integer<std::uint32_t>(bytes[14]) << 16) |
           (std::to_integer<std::uint32_t>(bytes[15]) << 24);
    }
    handler(to, bytes);
    ++delivered;
  }
  return delivered;
}

}  // namespace pss::transport
