#include "pss/transport/wire.hpp"

#include <algorithm>

#include "pss/common/check.hpp"

namespace pss::transport {
namespace {

// All multi-byte fields are little-endian, assembled byte-by-byte so the
// codec is endian-agnostic and never type-puns the input span.

void store_u16(std::byte* p, std::uint16_t v) {
  p[0] = static_cast<std::byte>(v & 0xFF);
  p[1] = static_cast<std::byte>((v >> 8) & 0xFF);
}

void store_u32(std::byte* p, std::uint32_t v) {
  p[0] = static_cast<std::byte>(v & 0xFF);
  p[1] = static_cast<std::byte>((v >> 8) & 0xFF);
  p[2] = static_cast<std::byte>((v >> 16) & 0xFF);
  p[3] = static_cast<std::byte>((v >> 24) & 0xFF);
}

void store_u64(std::byte* p, std::uint64_t v) {
  store_u32(p, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  store_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t load_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(std::to_integer<std::uint16_t>(p[0]) |
                                    (std::to_integer<std::uint16_t>(p[1]) << 8));
}

std::uint32_t load_u32(const std::byte* p) {
  return std::to_integer<std::uint32_t>(p[0]) |
         (std::to_integer<std::uint32_t>(p[1]) << 8) |
         (std::to_integer<std::uint32_t>(p[2]) << 16) |
         (std::to_integer<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const std::byte* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

}  // namespace

const char* to_string(WireError error) {
  switch (error) {
    case WireError::kOk: return "ok";
    case WireError::kTruncated: return "truncated";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kBadType: return "bad-type";
    case WireError::kBadProtocol: return "bad-protocol";
    case WireError::kBadReserved: return "bad-reserved";
    case WireError::kOversized: return "oversized";
    case WireError::kTrailingBytes: return "trailing-bytes";
    case WireError::kBadAddress: return "bad-address";
    case WireError::kBadDescriptor: return "bad-descriptor";
    case WireError::kNotNormalized: return "not-normalized";
  }
  return "unknown";
}

std::uint8_t encode_protocol(const ProtocolSpec& spec) {
  return static_cast<std::uint8_t>(static_cast<int>(spec.peer_selection) * 9 +
                                   static_cast<int>(spec.view_selection) * 3 +
                                   static_cast<int>(spec.view_propagation));
}

bool decode_protocol(std::uint8_t id, ProtocolSpec& out) {
  if (id >= 27) return false;
  out.peer_selection = static_cast<PeerSelection>(id / 9);
  out.view_selection = static_cast<ViewSelection>((id / 3) % 3);
  out.view_propagation = static_cast<ViewPropagation>(id % 3);
  return true;
}

WireCodec::WireCodec(std::size_t view_size) : max_entries_(view_size + 1) {
  PSS_CHECK_MSG(view_size >= 1, "WireCodec: view_size must be positive");
  PSS_CHECK_MSG(max_entries_ <= 0xFFFF,
                "WireCodec: view_size overflows the u16 count field");
  entries_.reserve(max_entries_);
  addr_scratch_.reserve(max_entries_);
}

void WireCodec::encode(const WireFrame& frame,
                       std::vector<std::byte>& out) const {
  const std::size_t count = frame.entries.size();
  PSS_CHECK_MSG(count <= max_entries_, "WireCodec::encode: payload too large");
  PSS_CHECK_MSG(frame.from != kInvalidNode && frame.to != kInvalidNode &&
                    frame.from != frame.to,
                "WireCodec::encode: invalid addressing");
#ifndef NDEBUG
  PSS_DCHECK(flat::detail::is_normalized(frame.entries));
#endif

  out.resize(frame_bytes(count));
  std::byte* p = out.data();
  p[0] = static_cast<std::byte>(kMagic0);
  p[1] = static_cast<std::byte>(kMagic1);
  p[2] = static_cast<std::byte>(kVersion);
  p[3] = static_cast<std::byte>(frame.type);
  p[4] = static_cast<std::byte>(encode_protocol(frame.spec));
  p[5] = static_cast<std::byte>(0);
  store_u16(p + 6, static_cast<std::uint16_t>(count));
  store_u32(p + 8, frame.from);
  store_u32(p + 12, frame.to);
  store_u32(p + 16, frame.tick);
  store_u64(p + 20, frame.exchange_id);
  std::byte* rec = p + kHeaderBytes;
  for (const NodeDescriptor& d : frame.entries) {
    store_u32(rec, d.address);
    store_u32(rec + 4, d.hop_count);
    rec += kRecordBytes;
  }
}

WireError WireCodec::decode(std::span<const std::byte> bytes,
                            ParsedFrame& out) {
  if (bytes.size() < kHeaderBytes) return WireError::kTruncated;
  const std::byte* p = bytes.data();
  if (std::to_integer<std::uint8_t>(p[0]) != kMagic0 ||
      std::to_integer<std::uint8_t>(p[1]) != kMagic1) {
    return WireError::kBadMagic;
  }
  if (std::to_integer<std::uint8_t>(p[2]) != kVersion) {
    return WireError::kBadVersion;
  }
  const std::uint8_t type = std::to_integer<std::uint8_t>(p[3]);
  if (type != static_cast<std::uint8_t>(FrameType::kRequest) &&
      type != static_cast<std::uint8_t>(FrameType::kReply)) {
    return WireError::kBadType;
  }
  if (!decode_protocol(std::to_integer<std::uint8_t>(p[4]), out.spec)) {
    return WireError::kBadProtocol;
  }
  if (std::to_integer<std::uint8_t>(p[5]) != 0) {
    return WireError::kBadReserved;
  }
  const std::size_t count = load_u16(p + 6);
  if (count > max_entries_) return WireError::kOversized;
  // Bounds-check the declared payload before touching a single record byte:
  // `count` is attacker-controlled until this line.
  if (bytes.size() < frame_bytes(count)) return WireError::kTruncated;
  if (bytes.size() > frame_bytes(count)) return WireError::kTrailingBytes;

  out.type = static_cast<FrameType>(type);
  out.from = load_u32(p + 8);
  out.to = load_u32(p + 12);
  out.tick = load_u32(p + 16);
  out.exchange_id = load_u64(p + 20);
  if (out.from == kInvalidNode || out.to == kInvalidNode ||
      out.from == out.to) {
    return WireError::kBadAddress;
  }

  entries_.resize(count);
  const std::byte* rec = p + kHeaderBytes;
  for (std::size_t i = 0; i < count; ++i) {
    entries_[i].address = load_u32(rec);
    entries_[i].hop_count = load_u32(rec + 4);
    rec += kRecordBytes;
  }
  for (const NodeDescriptor& d : entries_) {
    if (d.address == kInvalidNode) return WireError::kBadDescriptor;
  }
  // Normalization is what lets a decoded span feed absorb() directly:
  // strictly increasing sort keys give (age, address) order, and a separate
  // address pass catches the same address at two different ages.
  for (std::size_t i = 0; i + 1 < entries_.size(); ++i) {
    if (flat::detail::sort_key(entries_[i]) >=
        flat::detail::sort_key(entries_[i + 1])) {
      return WireError::kNotNormalized;
    }
  }
  addr_scratch_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    addr_scratch_[i] = entries_[i].address;
  }
  std::sort(addr_scratch_.begin(), addr_scratch_.end());
  if (std::adjacent_find(addr_scratch_.begin(), addr_scratch_.end()) !=
      addr_scratch_.end()) {
    return WireError::kNotNormalized;
  }

  out.entries = flat::DescSpan(entries_.data(), count);
  return WireError::kOk;
}

}  // namespace pss::transport
