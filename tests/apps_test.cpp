// Unit and behaviour tests for the gossip applications built on the peer
// sampling service: epidemic broadcast and push-pull averaging.
#include <gtest/gtest.h>

#include <cmath>

#include "pss/apps/aggregation.hpp"
#include "pss/apps/broadcast.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace pss::apps {
namespace {

TEST(BroadcastIdeal, ReachesEveryoneInLogarithmicRounds) {
  const std::size_t n = 1000;
  const auto r = run_broadcast_ideal(n, {.fanout = 1, .max_rounds = 60},
                                     /*origin=*/0, Rng(1));
  ASSERT_TRUE(r.reached_all());
  // Pittel's bound: ~log2(n) + ln(n) + O(1) ≈ 17 for n=1000.
  EXPECT_LE(r.rounds_to_full, 30u);
  EXPECT_GE(r.rounds_to_full, 10u);
  // Coverage is monotone and ends exactly at n.
  for (std::size_t i = 1; i < r.infected_per_round.size(); ++i)
    EXPECT_GE(r.infected_per_round[i], r.infected_per_round[i - 1]);
  EXPECT_EQ(r.infected_per_round.back(), n);
}

TEST(BroadcastIdeal, FanoutSpeedsUpDissemination) {
  const std::size_t n = 2000;
  const auto f1 = run_broadcast_ideal(n, {.fanout = 1, .max_rounds = 80}, 0, Rng(2));
  const auto f3 = run_broadcast_ideal(n, {.fanout = 3, .max_rounds = 80}, 0, Rng(3));
  ASSERT_TRUE(f1.reached_all());
  ASSERT_TRUE(f3.reached_all());
  EXPECT_LT(f3.rounds_to_full, f1.rounds_to_full);
  EXPECT_GT(f3.messages, f1.messages / 2);  // fanout costs messages
}

TEST(BroadcastIdeal, EarlyGrowthIsNearlyExponential) {
  const auto r = run_broadcast_ideal(100000, {.fanout = 1, .max_rounds = 12},
                                     0, Rng(4));
  // While coverage << n, each round roughly doubles the infected set.
  for (std::size_t i = 1; i < 8; ++i) {
    const double ratio = static_cast<double>(r.infected_per_round[i]) /
                         static_cast<double>(r.infected_per_round[i - 1]);
    EXPECT_GT(ratio, 1.5) << "round " << i;
    EXPECT_LE(ratio, 2.0) << "round " << i;
  }
}

TEST(BroadcastIdeal, ValidatesArguments) {
  EXPECT_THROW(run_broadcast_ideal(1, {.fanout = 1, .max_rounds = 5}, 0, Rng(5)),
               std::logic_error);
  EXPECT_THROW(run_broadcast_ideal(10, {.fanout = 0, .max_rounds = 5}, 0, Rng(6)),
               std::logic_error);
  EXPECT_THROW(run_broadcast_ideal(10, {.fanout = 1, .max_rounds = 5}, 10, Rng(7)),
               std::logic_error);
}

TEST(BroadcastOverGossip, MatchesIdealWithinSmallFactor) {
  const std::size_t n = 1000;
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{20, false}, n, 8);
  sim::CycleEngine engine(net);
  engine.run(40);
  const auto gossip = run_broadcast_over_gossip(
      net, engine, {.fanout = 1, .max_rounds = 100}, 0, Rng(9));
  const auto ideal =
      run_broadcast_ideal(n, {.fanout = 1, .max_rounds = 100}, 0, Rng(10));
  ASSERT_TRUE(gossip.reached_all());
  ASSERT_TRUE(ideal.reached_all());
  // The paper's point: gossip sampling is NOT uniform, but it is good
  // enough that dissemination pays at most a small constant factor.
  EXPECT_LE(gossip.rounds_to_full, ideal.rounds_to_full * 2);
}

TEST(BroadcastOverGossip, RequiresLiveOrigin) {
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{10, false}, 50, 11);
  sim::CycleEngine engine(net);
  net.kill(0);
  EXPECT_THROW(run_broadcast_over_gossip(net, engine, {.fanout = 1}, 0, Rng(12)),
               std::logic_error);
}

TEST(BroadcastOverGossip, SurvivesDeadLinks) {
  // After a failure, messages to dead links are lost but the epidemic
  // still covers all survivors.
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{20, false}, 600, 13);
  sim::CycleEngine engine(net);
  engine.run(40);
  Rng kill_rng(14);
  net.kill_random(200, kill_rng);
  const auto origin = net.live_nodes().front();
  const auto r = run_broadcast_over_gossip(
      net, engine, {.fanout = 2, .max_rounds = 100}, origin, Rng(15));
  EXPECT_TRUE(r.reached_all());
}

TEST(AggregationHelpers, RampAndPeak) {
  const auto ramp = ramp_values(5);
  EXPECT_EQ(ramp, (std::vector<double>{0, 1, 2, 3, 4}));
  const auto peak = peak_values(4);
  EXPECT_EQ(peak, (std::vector<double>{4, 0, 0, 0}));
}

TEST(AggregationIdeal, PreservesMeanAndContractsVariance) {
  const std::size_t n = 500;
  const auto r = run_averaging_ideal({.rounds = 30}, ramp_values(n), Rng(16));
  EXPECT_NEAR(r.true_mean, (n - 1) / 2.0, 1e-9);
  // Variance decays to (near) zero and is monotone non-increasing.
  EXPECT_LT(r.variance_per_round.back(), 1e-3 * r.variance_per_round.front());
  for (std::size_t i = 1; i < r.variance_per_round.size(); ++i)
    EXPECT_LE(r.variance_per_round[i], r.variance_per_round[i - 1] + 1e-9);
}

TEST(AggregationIdeal, ContractionNearTheory) {
  // Uniform-sampling pairwise averaging contracts variance by roughly
  // 1/(2 sqrt(e)) ≈ 0.303 per round (Jelasity-Montresor-Babaoglu).
  const auto r = run_averaging_ideal({.rounds = 25}, ramp_values(2000), Rng(17));
  EXPECT_NEAR(r.mean_contraction(), 0.303, 0.06);
}

TEST(AggregationIdeal, RoundsToVarianceSemantics) {
  AggregationResult r;
  r.variance_per_round = {100, 10, 1, 0.1};
  EXPECT_EQ(r.rounds_to_variance(10), 1u);
  EXPECT_EQ(r.rounds_to_variance(0.5), 3u);
  EXPECT_EQ(r.rounds_to_variance(1000), 0u);
  EXPECT_EQ(r.rounds_to_variance(0.001), AggregationResult::kNever);
}

TEST(AggregationOverGossip, ConvergesToTrueMean) {
  const std::size_t n = 500;
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{20, false}, n, 18);
  sim::CycleEngine engine(net);
  engine.run(40);
  const auto r = run_averaging_over_gossip(net, engine, {.rounds = 40},
                                           ramp_values(n), Rng(19));
  EXPECT_NEAR(r.true_mean, (n - 1) / 2.0, 1e-9);
  EXPECT_LT(r.variance_per_round.back(), 1e-4 * r.variance_per_round.front());
}

TEST(AggregationOverGossip, GossipContractionWithinFactorOfIdeal) {
  const std::size_t n = 1000;
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{20, false}, n, 20);
  sim::CycleEngine engine(net);
  engine.run(40);
  const auto gossip = run_averaging_over_gossip(net, engine, {.rounds = 25},
                                                ramp_values(n), Rng(21));
  const auto ideal =
      run_averaging_ideal({.rounds = 25}, ramp_values(n), Rng(22));
  // Non-uniform sampling slows contraction, but not catastrophically.
  EXPECT_LT(gossip.mean_contraction(), std::pow(ideal.mean_contraction(), 0.5));
}

TEST(AggregationOverGossip, ValidatesValueCount) {
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{10, false}, 50, 23);
  sim::CycleEngine engine(net);
  EXPECT_THROW(run_averaging_over_gossip(net, engine, {.rounds = 5},
                                         ramp_values(49), Rng(24)),
               std::logic_error);
}

TEST(AggregationOverGossip, PeakDistributionCounts) {
  // Counting via averaging: start with one node at n, rest at 0; the mean
  // is 1, so 1/estimate ≈ network size once converged.
  const std::size_t n = 400;
  auto net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{20, false}, n, 25);
  sim::CycleEngine engine(net);
  engine.run(40);
  const auto r = run_averaging_over_gossip(net, engine, {.rounds = 60},
                                           peak_values(n), Rng(26));
  EXPECT_NEAR(r.true_mean, 1.0, 1e-9);
  EXPECT_LT(r.variance_per_round.back(), 1e-6);
}

}  // namespace
}  // namespace pss::apps
