// Unit tests for the bootstrap initializers: random, ring lattice, star.
#include <gtest/gtest.h>

#include <set>

#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/sim/bootstrap.hpp"

namespace pss::sim {
namespace {

TEST(RandomBootstrap, ViewsAreFullDistinctAndExcludeSelf) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{10, false}, 100, 1);
  for (NodeId id = 0; id < 100; ++id) {
    const auto& view = net.node(id).view();
    EXPECT_EQ(view.size(), 10u);
    EXPECT_FALSE(view.contains(id));
    for (const auto& d : view.entries()) {
      EXPECT_LT(d.address, 100u);
      EXPECT_EQ(d.hop_count, 0u);
    }
    view.validate();
  }
}

TEST(RandomBootstrap, SmallNetworkViewsCapAtNMinusOne) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{30, false}, 5, 2);
  for (NodeId id = 0; id < 5; ++id) {
    EXPECT_EQ(net.node(id).view().size(), 4u);
  }
}

TEST(RandomBootstrap, RejectsDegenerateSizes) {
  Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 3);
  net.add_node();
  EXPECT_THROW(bootstrap::init_random(net), std::logic_error);
}

TEST(RandomBootstrap, DegreeNearTheoreticalBaseline) {
  const std::size_t n = 2000, c = 10;
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{c, false}, n, 3);
  const auto g = graph::UndirectedGraph::from_network(net);
  // Expected undirected degree: 2c - c^2/(n-1).
  EXPECT_NEAR(graph::average_degree(g), 2.0 * c - c * c / (n - 1.0), 0.3);
}

TEST(RandomBootstrap, DifferentSeedsGiveDifferentViews) {
  auto a = bootstrap::make_random(ProtocolSpec::newscast(),
                                  ProtocolOptions{5, false}, 50, 10);
  auto b = bootstrap::make_random(ProtocolSpec::newscast(),
                                  ProtocolOptions{5, false}, 50, 11);
  int same = 0;
  for (NodeId id = 0; id < 50; ++id) {
    if (a.node(id).view() == b.node(id).view()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(LatticeBootstrap, ViewsHoldNearestRingNeighbours) {
  auto net = bootstrap::make_lattice(ProtocolSpec::newscast(),
                                     ProtocolOptions{4, false}, 10, 4);
  // Node 0's 4 nearest ring neighbours are 1, 9, 2, 8.
  const auto& view = net.node(0).view();
  EXPECT_EQ(view.size(), 4u);
  for (NodeId expected : {1u, 9u, 2u, 8u}) {
    EXPECT_TRUE(view.contains(expected)) << expected;
  }
}

TEST(LatticeBootstrap, IsSymmetricAndRegular) {
  const std::size_t n = 60, c = 6;
  auto net = bootstrap::make_lattice(ProtocolSpec::newscast(),
                                     ProtocolOptions{c, false}, n, 5);
  const auto g = graph::UndirectedGraph::from_network(net);
  // A symmetric ring lattice: every vertex has exactly c neighbours.
  for (std::uint32_t v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), c);
}

TEST(LatticeBootstrap, HasLargePathLengthAndClustering) {
  // The motivation for the scenario: structured start far from random.
  const std::size_t n = 400, c = 8;
  auto lattice = bootstrap::make_lattice(ProtocolSpec::newscast(),
                                         ProtocolOptions{c, false}, n, 6);
  auto random = bootstrap::make_random(ProtocolSpec::newscast(),
                                       ProtocolOptions{c, false}, n, 6);
  const auto gl = graph::UndirectedGraph::from_network(lattice);
  const auto gr = graph::UndirectedGraph::from_network(random);
  EXPECT_GT(graph::average_path_length(gl).average,
            3 * graph::average_path_length(gr).average);
  EXPECT_GT(graph::clustering_coefficient(gl),
            5 * graph::clustering_coefficient(gr));
}

TEST(LatticeBootstrap, ConnectedRing) {
  auto net = bootstrap::make_lattice(ProtocolSpec::newscast(),
                                     ProtocolOptions{2, false}, 30, 7);
  const auto g = graph::UndirectedGraph::from_network(net);
  EXPECT_TRUE(graph::connected_components(g).connected());
}

TEST(StarBootstrap, HubAndSpokes) {
  Network net(ProtocolSpec::newscast(), ProtocolOptions{10, false}, 8);
  net.add_nodes(7);
  bootstrap::init_star(net);
  EXPECT_EQ(net.node(0).view().size(), 6u);
  for (NodeId id = 1; id < 7; ++id) {
    EXPECT_EQ(net.node(id).view().size(), 1u);
    EXPECT_TRUE(net.node(id).view().contains(0));
  }
  const auto g = graph::UndirectedGraph::from_network(net);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
}

TEST(StarBootstrap, HubViewRespectsCapacity) {
  Network net(ProtocolSpec::newscast(), ProtocolOptions{3, false}, 9);
  net.add_nodes(10);
  bootstrap::init_star(net);
  EXPECT_EQ(net.node(0).view().size(), 3u);
}

}  // namespace
}  // namespace pss::sim
