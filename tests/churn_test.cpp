// Unit tests for the churn model and overlay behaviour under sustained
// membership turnover.
#include <gtest/gtest.h>

#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/churn.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace pss::sim {
namespace {

TEST(ChurnModel, JoinsAndLeavesAreApplied) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 50, 1);
  ChurnModel churn({.leaves_per_cycle = 3, .joins_per_cycle = 2,
                    .contacts_per_join = 2},
                   Rng(2));
  churn.apply(net);
  EXPECT_EQ(churn.stats().left, 3u);
  EXPECT_EQ(churn.stats().joined, 2u);
  EXPECT_EQ(net.live_count(), 50u - 3u + 2u);
  EXPECT_EQ(net.size(), 52u);
}

TEST(ChurnModel, NewcomersGetContactViews) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 20, 3);
  ChurnModel churn({.leaves_per_cycle = 0, .joins_per_cycle = 1,
                    .contacts_per_join = 3},
                   Rng(4));
  churn.apply(net);
  const NodeId newcomer = 20;
  EXPECT_TRUE(net.is_live(newcomer));
  EXPECT_EQ(net.node(newcomer).view().size(), 3u);
  for (const auto& d : net.node(newcomer).view().entries()) {
    EXPECT_LT(d.address, 20u);  // contacts come from the old population
  }
}

TEST(ChurnModel, NeverKillsBelowFloor) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{3, false}, 5, 5);
  ChurnModel churn({.leaves_per_cycle = 100, .joins_per_cycle = 0,
                    .contacts_per_join = 2},
                   Rng(6));
  churn.apply(net);
  EXPECT_GE(net.live_count(), 3u);  // contacts_per_join + 1
  churn.apply(net);
  EXPECT_GE(net.live_count(), 3u);
}

TEST(ChurnModel, OverlayStaysConnectedUnderMildChurn) {
  // Newscast under 2% churn per cycle must keep the live overlay connected
  // (its self-healing headline property).
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{15, false}, 300, 7);
  CycleEngine engine(net);
  ChurnModel churn({.leaves_per_cycle = 5, .joins_per_cycle = 5,
                    .contacts_per_join = 1},
                   Rng(8));
  for (int cycle = 0; cycle < 40; ++cycle) {
    churn.apply(net);
    engine.run_cycle();
  }
  EXPECT_EQ(net.live_count(), 300u);
  const auto g = graph::UndirectedGraph::from_network(net);
  EXPECT_TRUE(graph::connected_components(g).connected());
}

TEST(ChurnModel, DeadLinksStayBoundedWithHeadSelection) {
  // Head view selection ages dead descriptors out quickly; under steady
  // churn the dead-link count must stabilize well below the total link
  // count rather than growing without bound.
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{10, false}, 200, 9);
  CycleEngine engine(net);
  ChurnModel churn({.leaves_per_cycle = 4, .joins_per_cycle = 4,
                    .contacts_per_join = 1},
                   Rng(10));
  std::uint64_t last = 0;
  for (int cycle = 0; cycle < 60; ++cycle) {
    churn.apply(net);
    engine.run_cycle();
    last = net.count_dead_links();
  }
  const std::uint64_t total_links = net.live_count() * 10u;
  EXPECT_LT(last, total_links / 4);
}

}  // namespace
}  // namespace pss::sim
