// Unit tests for the churn model and overlay behaviour under sustained
// membership turnover.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/membership/view.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/churn.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace pss::sim {
namespace {

TEST(ChurnModel, JoinsAndLeavesAreApplied) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 50, 1);
  ChurnModel churn({.leaves_per_cycle = 3, .joins_per_cycle = 2,
                    .contacts_per_join = 2},
                   Rng(2));
  churn.apply(net);
  EXPECT_EQ(churn.stats().left, 3u);
  EXPECT_EQ(churn.stats().joined, 2u);
  EXPECT_EQ(net.live_count(), 50u - 3u + 2u);
  EXPECT_EQ(net.size(), 52u);
}

TEST(ChurnModel, NewcomersGetContactViews) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 20, 3);
  ChurnModel churn({.leaves_per_cycle = 0, .joins_per_cycle = 1,
                    .contacts_per_join = 3},
                   Rng(4));
  churn.apply(net);
  const NodeId newcomer = 20;
  EXPECT_TRUE(net.is_live(newcomer));
  EXPECT_EQ(net.node(newcomer).view().size(), 3u);
  for (const auto& d : net.node(newcomer).view().entries()) {
    EXPECT_LT(d.address, 20u);  // contacts come from the old population
  }
}

TEST(ChurnModel, NeverKillsBelowFloor) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{3, false}, 5, 5);
  ChurnModel churn({.leaves_per_cycle = 100, .joins_per_cycle = 0,
                    .contacts_per_join = 2},
                   Rng(6));
  churn.apply(net);
  EXPECT_GE(net.live_count(), 3u);  // contacts_per_join + 1
  churn.apply(net);
  EXPECT_GE(net.live_count(), 3u);
}

TEST(ChurnModel, OverlayStaysConnectedUnderMildChurn) {
  // Newscast under 2% churn per cycle must keep the live overlay connected
  // (its self-healing headline property).
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{15, false}, 300, 7);
  CycleEngine engine(net);
  ChurnModel churn({.leaves_per_cycle = 5, .joins_per_cycle = 5,
                    .contacts_per_join = 1},
                   Rng(8));
  for (int cycle = 0; cycle < 40; ++cycle) {
    churn.apply(net);
    engine.run_cycle();
  }
  EXPECT_EQ(net.live_count(), 300u);
  const auto g = graph::UndirectedGraph::from_network(net);
  EXPECT_TRUE(graph::connected_components(g).connected());
}

TEST(ChurnModel, FlatJoinPathMatchesHistoricalInitViewPath) {
  // The flat join (descriptors written straight into the newcomer's arena
  // slot) must be indistinguishable — views, liveness, Rng consumption —
  // from the historical path that went through GossipNode::init_view and a
  // heap View. The reference below reimplements that path verbatim.
  constexpr std::uint64_t kChurnSeed = 77;
  const ChurnConfig config{.leaves_per_cycle = 4, .joins_per_cycle = 6,
                           .contacts_per_join = 9};
  const ProtocolOptions options{5, false};  // contacts > c: truncation path
  auto flat_net = bootstrap::make_random(ProtocolSpec::newscast(), options,
                                         60, 12);
  auto ref_net = bootstrap::make_random(ProtocolSpec::newscast(), options,
                                        60, 12);
  ChurnModel churn(config, Rng(kChurnSeed));
  Rng ref_rng(kChurnSeed);
  for (int round = 0; round < 8; ++round) {
    churn.apply(flat_net);
    // Reference: the pre-flat ChurnModel::apply body.
    {
      const std::size_t floor = config.contacts_per_join + 1;
      std::size_t kills = config.leaves_per_cycle;
      if (ref_net.live_count() > floor) {
        kills = std::min(kills, ref_net.live_count() - floor);
      } else {
        kills = 0;
      }
      if (kills > 0) ref_net.kill_random(kills, ref_rng);
      for (std::size_t j = 0; j < config.joins_per_cycle; ++j) {
        const auto live = ref_net.live_ids();
        const std::size_t contacts =
            std::min(config.contacts_per_join, live.size());
        auto picks = ref_rng.sample_indices(live.size(), contacts);
        std::vector<NodeDescriptor> entries;
        entries.reserve(contacts);
        for (std::size_t p : picks) entries.push_back({live[p], 0});
        const NodeId newcomer = ref_net.add_node();
        ref_net.node(newcomer).init_view(View(std::move(entries)));
      }
    }
    ASSERT_EQ(flat_net.size(), ref_net.size());
    ASSERT_EQ(flat_net.live_count(), ref_net.live_count());
    for (NodeId id = 0; id < flat_net.size(); ++id) {
      ASSERT_EQ(flat_net.is_live(id), ref_net.is_live(id)) << "node " << id;
      const auto a = flat_net.view_span(id);
      const auto b = ref_net.view_span(id);
      ASSERT_EQ(std::vector<NodeDescriptor>(a.begin(), a.end()),
                std::vector<NodeDescriptor>(b.begin(), b.end()))
          << "node " << id;
    }
    // Divergent Rng consumption would desynchronize every later round, so
    // 8 identical rounds also pin the draw sequence, not just the views.
  }
}

TEST(ChurnModel, FlatJoinTruncatesToViewSize) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{4, false}, 30, 21);
  ChurnModel churn({.leaves_per_cycle = 0, .joins_per_cycle = 1,
                    .contacts_per_join = 10},
                   Rng(22));
  churn.apply(net);
  const auto view = net.view_span(30);
  ASSERT_EQ(view.size(), 4u);
  // Normalized (I1/I2) straight out of the join: hop-0 entries in
  // ascending address order, no duplicates, no self.
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i].hop_count, 0u);
    EXPECT_NE(view[i].address, 30u);
    if (i + 1 < view.size()) {
      EXPECT_LT(view[i].address, view[i + 1].address);
    }
  }
}

TEST(ChurnModel, KillFloorLandsExactlyAtContactsPlusOne) {
  // The floor is contacts_per_join + 1, exactly: a kill budget larger than
  // the population must stop at the floor, not one above or below it.
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{4, false}, 40, 31);
  ChurnModel churn({.leaves_per_cycle = 1000, .joins_per_cycle = 0,
                    .contacts_per_join = 6},
                   Rng(32));
  churn.apply(net);
  EXPECT_EQ(net.live_count(), 7u);
  EXPECT_EQ(churn.stats().left, 33u);
  // At the floor, further kill budgets are entirely suppressed — but joins
  // still work and bootstrap from the floor population.
  ChurnModel more({.leaves_per_cycle = 5, .joins_per_cycle = 2,
                   .contacts_per_join = 6},
                  Rng(33));
  more.apply(net);
  EXPECT_EQ(more.stats().left, 0u);
  EXPECT_EQ(more.stats().joined, 2u);
  EXPECT_EQ(net.live_count(), 9u);
}

TEST(ChurnModel, ZeroChurnIsAPerfectNoOp) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 30, 35);
  std::vector<std::vector<NodeDescriptor>> before;
  for (NodeId id = 0; id < net.size(); ++id) {
    const auto v = net.view_span(id);
    before.emplace_back(v.begin(), v.end());
  }
  ChurnModel churn({.leaves_per_cycle = 0, .joins_per_cycle = 0,
                    .contacts_per_join = 2},
                   Rng(36));
  churn.apply(net);
  churn.apply(net);
  EXPECT_EQ(churn.stats().left, 0u);
  EXPECT_EQ(churn.stats().joined, 0u);
  ASSERT_EQ(net.size(), 30u);
  EXPECT_EQ(net.live_count(), 30u);
  for (NodeId id = 0; id < net.size(); ++id) {
    const auto v = net.view_span(id);
    EXPECT_EQ(before[id],
              std::vector<NodeDescriptor>(v.begin(), v.end()))
        << "node " << id;
  }
}

TEST(ChurnModel, JoinsIntoNearEmptyNetworkClampContacts) {
  // One live node: every newcomer asks for 5 contacts but can only get as
  // many as are live at its join instant — earlier newcomers count.
  Network net(ProtocolSpec::newscast(), ProtocolOptions{8, false}, 37);
  net.add_node();
  ChurnModel churn({.leaves_per_cycle = 0, .joins_per_cycle = 3,
                    .contacts_per_join = 5},
                   Rng(38));
  churn.apply(net);
  ASSERT_EQ(net.live_count(), 4u);
  EXPECT_EQ(net.view_span(1).size(), 1u);  // only node 0 was live
  EXPECT_EQ(net.view_span(2).size(), 2u);  // nodes 0 and 1
  EXPECT_EQ(net.view_span(3).size(), 3u);
  for (NodeId id = 1; id < 4; ++id) {
    for (const auto& d : net.view_span(id)) {
      EXPECT_NE(d.address, id);
      EXPECT_LT(d.address, id);  // contacts predate the newcomer
    }
  }
}

TEST(ChurnModel, JoinIntoFullyDeadNetworkYieldsEmptyView) {
  // Degenerate but reachable via external kills: no live contacts at all.
  // The join must still succeed, producing an isolated empty-view node.
  Network net(ProtocolSpec::newscast(), ProtocolOptions{4, false}, 39);
  net.add_nodes(3);
  for (NodeId id = 0; id < 3; ++id) net.kill(id);
  ASSERT_EQ(net.live_count(), 0u);
  ChurnModel churn({.leaves_per_cycle = 0, .joins_per_cycle = 1,
                    .contacts_per_join = 4},
                   Rng(40));
  churn.apply(net);
  EXPECT_EQ(net.live_count(), 1u);
  EXPECT_TRUE(net.is_live(3));
  EXPECT_TRUE(net.view_span(3).empty());
}

TEST(ChurnModel, DeadLinksStayBoundedWithHeadSelection) {
  // Head view selection ages dead descriptors out quickly; under steady
  // churn the dead-link count must stabilize well below the total link
  // count rather than growing without bound.
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{10, false}, 200, 9);
  CycleEngine engine(net);
  ChurnModel churn({.leaves_per_cycle = 4, .joins_per_cycle = 4,
                    .contacts_per_join = 1},
                   Rng(10));
  std::uint64_t last = 0;
  for (int cycle = 0; cycle < 60; ++cycle) {
    churn.apply(net);
    engine.run_cycle();
    last = net.count_dead_links();
  }
  const std::uint64_t total_links = net.live_count() * 10u;
  EXPECT_LT(last, total_links / 4);
}

}  // namespace
}  // namespace pss::sim
