// Unit tests for pss_common: RNG determinism and distribution sanity,
// environment configuration, table formatting, CSV escaping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>
#include <vector>

#include "pss/common/check.hpp"
#include "pss/common/env.hpp"
#include "pss/common/rng.hpp"
#include "pss/common/table.hpp"

namespace pss {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 1234567 from the SplitMix64 reference
  // implementation (Vigna).
  std::uint64_t state = 1234567;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  EXPECT_NE(a, b);
  // Determinism: same seed, same stream.
  std::uint64_t state2 = 1234567;
  EXPECT_EQ(splitmix64(state2), a);
  EXPECT_EQ(splitmix64(state2), b);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, StreamAtIsAPureFunctionOfItsArguments) {
  Rng a = Rng::stream_at(42, 7, 3);
  Rng b = Rng::stream_at(42, 7, 3);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamAtDecorrelatesAcrossEveryArgument) {
  // Neighbouring (seed, stream, counter) tuples — the common case: same
  // seed, adjacent node ids, adjacent participation counters — must land
  // in unrelated states.
  const std::uint64_t base = Rng::stream_at(42, 7, 3)();
  EXPECT_NE(base, Rng::stream_at(43, 7, 3)());
  EXPECT_NE(base, Rng::stream_at(42, 8, 3)());
  EXPECT_NE(base, Rng::stream_at(42, 7, 4)());
  // First draws across a counter range collide (64-bit) essentially never.
  std::vector<std::uint64_t> firsts;
  for (std::uint64_t ctr = 0; ctr < 512; ++ctr) {
    firsts.push_back(Rng::stream_at(42, 7, ctr)());
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int count : counts) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.between(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(13);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is astronomically small
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(17);
  for (std::size_t n : {5ul, 20ul, 1000ul}) {
    for (std::size_t k : {0ul, 1ul, 3ul, n / 2, n}) {
      auto picks = rng.sample_indices(n, k);
      EXPECT_EQ(picks.size(), k);
      std::set<std::size_t> unique(picks.begin(), picks.end());
      EXPECT_EQ(unique.size(), k);
      for (std::size_t p : picks) EXPECT_LT(p, n);
    }
  }
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(17);
  EXPECT_THROW(rng.sample_indices(3, 4), std::logic_error);
}

TEST(Rng, SampleIndicesCoversPopulation) {
  Rng rng(19);
  // Sampling 1 of 4, 4000 times: every index should appear ~1000 times.
  int counts[4] = {};
  for (int i = 0; i < 4000; ++i) ++counts[rng.sample_indices(4, 1)[0]];
  for (int count : counts) EXPECT_NEAR(count, 1000, 150);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(21);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Check, ThrowsOnViolation) {
  EXPECT_THROW(PSS_CHECK(false), std::logic_error);
  EXPECT_NO_THROW(PSS_CHECK(true));
  try {
    PSS_CHECK_MSG(false, "context here");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("context here"), std::string::npos);
  }
}

TEST(Env, IntParsingAndFallback) {
  ::unsetenv("PSS_TEST_INT");
  EXPECT_EQ(env::get_int("PSS_TEST_INT", 7), 7);
  ::setenv("PSS_TEST_INT", "123", 1);
  EXPECT_EQ(env::get_int("PSS_TEST_INT", 7), 123);
  ::setenv("PSS_TEST_INT", "12x", 1);
  EXPECT_THROW(env::get_int("PSS_TEST_INT", 7), std::runtime_error);
  ::unsetenv("PSS_TEST_INT");
}

TEST(Env, DoubleParsing) {
  ::setenv("PSS_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(env::get_double("PSS_TEST_DBL", 1.0), 0.25);
  ::unsetenv("PSS_TEST_DBL");
  EXPECT_DOUBLE_EQ(env::get_double("PSS_TEST_DBL", 1.0), 1.0);
}

TEST(Env, FlagSemantics) {
  ::unsetenv("PSS_TEST_FLAG");
  EXPECT_FALSE(env::get_flag("PSS_TEST_FLAG"));
  for (const char* off : {"0", "false", "OFF", "no"}) {
    ::setenv("PSS_TEST_FLAG", off, 1);
    EXPECT_FALSE(env::get_flag("PSS_TEST_FLAG")) << off;
  }
  for (const char* on : {"1", "true", "yes", "anything"}) {
    ::setenv("PSS_TEST_FLAG", on, 1);
    EXPECT_TRUE(env::get_flag("PSS_TEST_FLAG")) << on;
  }
  ::unsetenv("PSS_TEST_FLAG");
}

TEST(Env, ScaledPicksQuickOrFull) {
  ::unsetenv("PSS_TEST_SCALED");
  ::unsetenv("PSS_FULL");
  EXPECT_EQ(env::scaled("PSS_TEST_SCALED", 10, 100), 10);
  ::setenv("PSS_FULL", "1", 1);
  EXPECT_EQ(env::scaled("PSS_TEST_SCALED", 10, 100), 100);
  ::setenv("PSS_TEST_SCALED", "55", 1);
  EXPECT_EQ(env::scaled("PSS_TEST_SCALED", 10, 100), 55);
  ::unsetenv("PSS_TEST_SCALED");
  ::unsetenv("PSS_FULL");
}

TEST(TextTable, AlignsColumnsAndCountsRows) {
  TextTable t;
  t.row().cell("name").cell("value");
  t.row().cell("x").cell(static_cast<std::int64_t>(42));
  t.row().cell("longer-name").cell(3.14159, 2);
  EXPECT_EQ(t.data_rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CellBeforeRowThrows) {
  TextTable t;
  EXPECT_THROW(t.cell("oops"), std::logic_error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace pss
