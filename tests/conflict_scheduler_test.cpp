// Unit tests for the greedy conflict-free batch partitioner, driven with
// synthetic selection oracles (no network): every batch must be
// conflict-free, the batches plus inline steps must partition the
// permutation exactly, conflicting steps must retire in permutation order,
// selection must run exactly once per initiator, and adversarial inputs
// (every step contending on one hub node) must degrade to batch-size-1
// serialization without deadlock or starvation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include "pss/sim/conflict_scheduler.hpp"

namespace pss::sim {
namespace {

struct DrainResult {
  std::vector<std::vector<CycleStep>> batches;
  // (batch index the step retired *before*, step) for inline executions:
  // inline steps run during the scan of batch `batch_index`, i.e. after
  // batch `batch_index - 1` finished and before `batch_index` starts.
  std::vector<std::pair<std::size_t, CycleStep>> inline_steps;
  std::size_t select_calls = 0;
};

/// Drains a whole cycle through the scheduler with `select` as the oracle,
/// recording batches, inline executions and selection-call accounting.
template <typename SelectFn>
DrainResult drain(ConflictScheduler& sched, std::span<const NodeId> order,
                  std::size_t node_count, SelectFn&& select,
                  std::size_t max_batches = 100000) {
  DrainResult r;
  sched.begin_cycle(order, node_count);
  std::vector<CycleStep> batch;
  std::set<NodeId> selected;  // each initiator selected at most once
  auto counted_select = [&](NodeId u) {
    ++r.select_calls;
    EXPECT_TRUE(selected.insert(u).second)
        << "initiator " << u << " selected twice";
    return select(u);
  };
  auto inline_exec = [&](const CycleStep& s) {
    r.inline_steps.emplace_back(r.batches.size(), s);
  };
  while (sched.next_batch(counted_select, inline_exec, batch)) {
    r.batches.push_back(batch);
    if (r.batches.size() > max_batches) {
      ADD_FAILURE() << "scheduler failed to terminate";
      break;
    }
  }
  EXPECT_TRUE(sched.done());
  return r;
}

std::vector<NodeId> ascending(std::size_t n) {
  std::vector<NodeId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);
  return order;
}

/// Asserts the two partition properties: (a) within a batch no node occurs
/// twice; (b) batches + inline steps cover each initiator exactly once.
void check_partition(const DrainResult& r, std::span<const NodeId> order) {
  std::multiset<NodeId> initiators;
  for (const auto& batch : r.batches) {
    std::set<NodeId> touched;
    for (const CycleStep& s : batch) {
      EXPECT_EQ(s.kind, StepKind::kExchange);
      EXPECT_TRUE(touched.insert(s.initiator).second)
          << "node " << s.initiator << " touched twice in one batch";
      EXPECT_TRUE(touched.insert(s.peer).second)
          << "node " << s.peer << " touched twice in one batch";
      initiators.insert(s.initiator);
    }
  }
  for (const auto& [batch_index, s] : r.inline_steps) {
    initiators.insert(s.initiator);
  }
  const std::multiset<NodeId> expected(order.begin(), order.end());
  EXPECT_EQ(initiators, expected);
}

TEST(ConflictScheduler, PartitionsAFixedPeerMapCompletely) {
  constexpr std::size_t kN = 97;
  const auto order = ascending(kN);
  ConflictScheduler sched;
  auto select = [](NodeId u) {
    NodeId peer = (u * 17 + 3) % kN;
    if (peer == u) peer = (peer + 1) % kN;
    return CycleStep{u, peer, StepKind::kExchange};
  };
  const DrainResult r = drain(sched, order, kN, select);
  EXPECT_EQ(r.select_calls, kN);
  EXPECT_TRUE(r.inline_steps.empty());
  check_partition(r, order);
  // A random-ish peer map at N=97 must yield real parallelism: strictly
  // fewer batches than steps.
  EXPECT_LT(r.batches.size(), kN);
  EXPECT_GT(r.batches.front().size(), 1u);
}

TEST(ConflictScheduler, ConflictingStepsRetireInPermutationOrder) {
  // Execution timeline: inline steps recorded before batch k run at time
  // 2k, batch-k steps at time 2k+1. For every pair of steps sharing a
  // node, the earlier-in-permutation one must retire strictly earlier.
  constexpr std::size_t kN = 64;
  const auto order = ascending(kN);
  ConflictScheduler sched;
  auto select = [](NodeId u) {
    // Dense conflicts: clusters of 8 all peer with their cluster base.
    const NodeId base = (u / 8) * 8;
    const NodeId peer = (u == base) ? base + 1 : base;
    return CycleStep{u, peer, StepKind::kExchange};
  };
  const DrainResult r = drain(sched, order, kN, select);
  check_partition(r, order);
  std::map<NodeId, std::size_t> retire_time;  // initiator -> timeline slot
  for (std::size_t b = 0; b < r.batches.size(); ++b) {
    for (const CycleStep& s : r.batches[b]) {
      retire_time[s.initiator] = 2 * b + 1;
    }
  }
  for (const auto& [batch_index, s] : r.inline_steps) {
    retire_time[s.initiator] = 2 * batch_index;
  }
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = i + 1; j < kN; ++j) {
      const CycleStep a = select(order[i]);
      const CycleStep b = select(order[j]);
      const bool conflict = a.initiator == b.initiator ||
                            a.initiator == b.peer || a.peer == b.initiator ||
                            a.peer == b.peer;
      if (!conflict) continue;
      ASSERT_LT(retire_time.at(a.initiator), retire_time.at(b.initiator))
          << "steps of " << a.initiator << " and " << b.initiator
          << " retired out of order";
    }
  }
}

TEST(ConflictScheduler, HubContentionDegradesToBatchSizeOne) {
  // Adversarial input: every initiator's peer is node 0. No two steps
  // commute, so the schedule must serialize — one step per batch — and
  // still terminate with full coverage.
  constexpr std::size_t kN = 50;
  const auto order = ascending(kN);
  ConflictScheduler sched;
  auto select = [](NodeId u) {
    return CycleStep{u, u == 0 ? NodeId{1} : NodeId{0}, StepKind::kExchange};
  };
  const DrainResult r = drain(sched, order, kN, select);
  EXPECT_EQ(r.select_calls, kN);
  check_partition(r, order);
  ASSERT_EQ(r.batches.size(), kN);
  for (const auto& batch : r.batches) EXPECT_EQ(batch.size(), 1u);
}

TEST(ConflictScheduler, SingleNodeStepsExecuteInlineAndNeverBatch) {
  constexpr std::size_t kN = 30;
  const auto order = ascending(kN);
  ConflictScheduler sched;
  auto select = [](NodeId u) {
    if (u % 3 == 0) return CycleStep{u, 0, StepKind::kEmptyView};
    if (u % 3 == 1) {
      const NodeId peer = (u + 1) % kN;
      return CycleStep{u, peer, StepKind::kFailedContact};
    }
    NodeId peer = (u + 5) % kN;
    if (peer == u) peer = (peer + 1) % kN;
    return CycleStep{u, peer, StepKind::kExchange};
  };
  const DrainResult r = drain(sched, order, kN, select);
  check_partition(r, order);
  std::size_t empties = 0;
  std::size_t fails = 0;
  for (const auto& [batch_index, s] : r.inline_steps) {
    if (s.kind == StepKind::kEmptyView) ++empties;
    if (s.kind == StepKind::kFailedContact) ++fails;
  }
  EXPECT_EQ(empties, 10u);
  EXPECT_EQ(fails, 10u);
  for (const auto& batch : r.batches) {
    for (const CycleStep& s : batch) {
      EXPECT_EQ(s.kind, StepKind::kExchange);
    }
  }
}

TEST(ConflictScheduler, ClaimedInitiatorIsCarriedUnevaluated) {
  // Order [0, 2, 1]: step 0 claims {0, 2}; initiator 2 is then claimed, so
  // the batch must close *without* selecting 2, and 2's selection must
  // happen in the next next_batch call.
  const std::vector<NodeId> order{0, 2, 1};
  ConflictScheduler sched;
  std::vector<std::pair<NodeId, std::size_t>> select_log;  // (node, call#)
  std::size_t batch_no = 0;
  std::vector<CycleStep> batch;
  auto select = [&](NodeId u) {
    select_log.emplace_back(u, batch_no);
    return CycleStep{u, u == 0 ? NodeId{2} : NodeId{0}, StepKind::kExchange};
  };
  auto inline_exec = [](const CycleStep&) { FAIL() << "no inline steps"; };
  sched.begin_cycle(order, 3);
  ASSERT_TRUE(sched.next_batch(select, inline_exec, batch));
  ASSERT_EQ(batch.size(), 1u);  // only step 0
  EXPECT_EQ(batch[0].initiator, 0u);
  ++batch_no;
  ASSERT_TRUE(sched.next_batch(select, inline_exec, batch));
  ASSERT_EQ(batch.size(), 1u);  // step 2, selected only now
  EXPECT_EQ(batch[0].initiator, 2u);
  ++batch_no;
  // Step 1's selection ran during batch 1's scan (legal: nothing admitted
  // there touches node 1), but its peer 0 was claimed, so the evaluated
  // step seeds batch 2 without a second selection.
  ASSERT_TRUE(sched.next_batch(select, inline_exec, batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].initiator, 1u);
  EXPECT_FALSE(sched.next_batch(select, inline_exec, batch));
  ASSERT_EQ(select_log.size(), 3u);
  EXPECT_EQ(select_log[0], (std::pair<NodeId, std::size_t>{0, 0}));
  EXPECT_EQ(select_log[1], (std::pair<NodeId, std::size_t>{2, 1}));
  EXPECT_EQ(select_log[2], (std::pair<NodeId, std::size_t>{1, 1}));
}

TEST(ConflictScheduler, EmptyOrderIsImmediatelyDone) {
  ConflictScheduler sched;
  std::vector<NodeId> order;
  sched.begin_cycle(order, 0);
  EXPECT_TRUE(sched.done());
  std::vector<CycleStep> batch;
  auto select = [](NodeId) { return CycleStep{}; };
  auto inline_exec = [](const CycleStep&) {};
  EXPECT_FALSE(sched.next_batch(select, inline_exec, batch));
}

TEST(ConflictScheduler, ReusableAcrossCyclesWithGenerationStamps) {
  // Many cycles through one scheduler instance: stale claims from earlier
  // cycles must never leak into later ones (generation stamping).
  constexpr std::size_t kN = 40;
  const auto order = ascending(kN);
  ConflictScheduler sched;
  for (int cycle = 0; cycle < 200; ++cycle) {
    auto select = [&](NodeId u) {
      NodeId peer = (u + 1 + static_cast<NodeId>(cycle) % (kN - 1)) % kN;
      if (peer == u) peer = (peer + 1) % kN;
      return CycleStep{u, peer, StepKind::kExchange};
    };
    const DrainResult r = drain(sched, order, kN, select);
    EXPECT_EQ(r.select_calls, kN);
    check_partition(r, order);
  }
}

}  // namespace
}  // namespace pss::sim
