// Unit tests for the cycle-driven engine: one initiation per live node per
// cycle, correct exchange wiring for each propagation mode, dead-contact
// behaviour, and stats accounting.
#include <gtest/gtest.h>

#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace pss::sim {
namespace {

TEST(CycleEngine, EveryLiveNodeInitiatesOncePerCycle) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 30, 1);
  CycleEngine engine(net);
  engine.run(4);
  for (NodeId id = 0; id < 30; ++id) {
    EXPECT_EQ(net.node(id).stats().initiated, 4u) << "node " << id;
  }
  EXPECT_EQ(engine.cycle(), 4u);
}

TEST(CycleEngine, DeadNodesDoNotInitiateOrRespond) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 20, 2);
  net.kill(3);
  CycleEngine engine(net);
  engine.run(5);
  EXPECT_EQ(net.node(3).stats().initiated, 0u);
  EXPECT_EQ(net.node(3).stats().received, 0u);
}

TEST(CycleEngine, PushOnlyLeavesInitiatorViewUntouched) {
  // Two nodes, push-only: the active node's view must never change.
  Network net(ProtocolSpec::lpbcast(), ProtocolOptions{5, false}, 3);
  net.add_nodes(2);
  net.node(0).set_view(View{{1, 1}});
  net.node(1).set_view(View{{0, 1}});
  CycleEngine engine(net);
  const View before0 = net.node(0).view();
  engine.run(3);
  // Node 0 only ever knows node 1 (its own view is static under push from
  // its side; incoming pushes can only add node 1's knowledge = node 0
  // itself which is dropped, or node 1).
  EXPECT_EQ(net.node(0).view().size(), 1u);
  EXPECT_TRUE(net.node(0).view().contains(1));
  EXPECT_EQ(before0.entries()[0].address, 1u);
}

TEST(CycleEngine, PushPullExchangesBothDirections) {
  Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 4);
  net.add_nodes(3);
  // 0 knows 1; 1 knows 2; 2 knows 0. One cycle of pushpull should spread
  // knowledge both ways along each contacted edge.
  net.node(0).set_view(View{{1, 0}});
  net.node(1).set_view(View{{2, 0}});
  net.node(2).set_view(View{{0, 0}});
  CycleEngine engine(net);
  engine.run(1);
  std::size_t total = 0;
  for (NodeId id = 0; id < 3; ++id) total += net.node(id).view().size();
  EXPECT_GT(total, 3u);  // somebody learned something new
  EXPECT_EQ(engine.stats().exchanges, 3u);
}

TEST(CycleEngine, ContactingDeadPeerCountsAsFailure) {
  Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 5);
  net.add_nodes(2);
  net.node(0).set_view(View{{1, 1}});
  net.node(1).set_view(View{{0, 1}});
  net.kill(1);
  CycleEngine engine(net);
  engine.run(2);
  EXPECT_EQ(engine.stats().exchanges, 0u);
  EXPECT_EQ(engine.stats().failed_contacts, 2u);
  EXPECT_EQ(net.node(0).stats().contact_failures, 2u);
  // Paper default: the dead link is NOT removed.
  EXPECT_TRUE(net.node(0).view().contains(1));
}

TEST(CycleEngine, RemoveDeadOnFailureEvictsAndEmptiesView) {
  Network net(ProtocolSpec::newscast(), ProtocolOptions{5, true}, 6);
  net.add_nodes(2);
  net.node(0).set_view(View{{1, 1}});
  net.kill(1);
  CycleEngine engine(net);
  engine.run(1);
  EXPECT_FALSE(net.node(0).view().contains(1));
  engine.run(1);
  EXPECT_EQ(engine.stats().empty_views, 1u);  // second cycle: nothing to do
}

TEST(CycleEngine, EmptyViewNodesAreCountedNotCrashing) {
  Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 7);
  net.add_nodes(3);  // all views empty
  CycleEngine engine(net);
  engine.run(2);
  EXPECT_EQ(engine.stats().empty_views, 6u);
  EXPECT_EQ(engine.stats().exchanges, 0u);
}

TEST(CycleEngine, ExchangeCountMatchesLiveInitiatorsWithPeers) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 25, 8);
  CycleEngine engine(net);
  engine.run(6);
  EXPECT_EQ(engine.stats().exchanges, 25u * 6u);
  EXPECT_EQ(engine.stats().failed_contacts, 0u);
}

TEST(CycleEngine, PullOnlyStarAttractorSetup) {
  // (*,*,pull) with a star bootstrap: leaves can only pull from the hub and
  // the hub never learns anything new (requests are empty). The topology
  // must remain a star — the Section 4.3 degeneracy.
  Network net({PeerSelection::kRand, ViewSelection::kHead, ViewPropagation::kPull},
              ProtocolOptions{5, false}, 9);
  net.add_nodes(6);
  bootstrap::init_star(net);
  CycleEngine engine(net);
  engine.run(10);
  // Hub (node 0) view contains only original leaves; leaves' views must
  // still contain the hub and can contain other leaves learned via the
  // hub's replies.
  for (NodeId id = 1; id < 6; ++id) {
    EXPECT_TRUE(net.node(id).view().contains(0) ||
                net.node(id).view().size() > 0);
  }
  // The hub never absorbed anything: its view keeps only bootstrap entries.
  EXPECT_EQ(net.node(0).view().size(), 5u);
}

TEST(CycleEngine, RunZeroCyclesIsNoop) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 10, 10);
  CycleEngine engine(net);
  engine.run(0);
  EXPECT_EQ(engine.cycle(), 0u);
  EXPECT_EQ(engine.stats().exchanges, 0u);
}

}  // namespace
}  // namespace pss::sim
