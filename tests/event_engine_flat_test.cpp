// The flat event engine's contract, in two halves:
//   1. CalendarQueue unit tests — deterministic (at, seq) pop order under
//      ties, bucket growth/shrink, far-future events (the sparse direct-
//      search path), and a randomized replay against std::priority_queue.
//   2. Trace equivalence — the flat EventEngine must reproduce the frozen
//      LegacyEventEngine bit-for-bit from the same seed: identical
//      EventEngineStats, identical final views and per-node counters, for
//      every evaluated protocol and under loss, timeouts, kills, revivals,
//      partitions and late joiners. This is the pin that let the engine
//      move off the object graph without the semantics moving.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "pss/common/rng.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/calendar_queue.hpp"
#include "pss/sim/event_engine.hpp"
#include "pss/sim/legacy_event_engine.hpp"

namespace pss::sim {
namespace {

// --- CalendarQueue ---------------------------------------------------------

TEST(CalendarQueue, PopsInTimeOrderWithSeqTieBreak) {
  CalendarQueue<int> q(2.0);
  // Three timestamp ties (same at -> same bucket) interleaved with others,
  // pushed out of order; seq decides within a tie.
  q.push(0.5, 4, 40);
  q.push(0.25, 1, 10);
  q.push(0.5, 2, 20);
  q.push(1.75, 5, 50);
  q.push(0.5, 3, 30);
  q.push(0.0, 0, 0);
  std::vector<int> order;
  while (!q.empty()) order.push_back(q.pop().value);
  EXPECT_EQ(order, (std::vector<int>{0, 10, 20, 30, 40, 50}));
}

TEST(CalendarQueue, BucketResizeKeepsOrderAndShrinksBack) {
  CalendarQueue<int> q(2.0, 16);
  const std::size_t initial_buckets = q.bucket_count();
  Rng rng(7);
  std::vector<double> times;
  for (int i = 0; i < 4000; ++i) times.push_back(rng.uniform() * 2.0);
  for (std::size_t i = 0; i < times.size(); ++i) {
    q.push(times[i], i, static_cast<int>(i));
  }
  EXPECT_GT(q.bucket_count(), initial_buckets);  // growth triggered
  double last = -1.0;
  while (q.size() > times.size() / 100) {
    const auto item = q.pop();
    EXPECT_GE(item.at, last);
    last = item.at;
  }
  EXPECT_LT(q.bucket_count(), 4000 / 4);  // shrink triggered on the way down
  while (!q.empty()) {
    const auto item = q.pop();
    EXPECT_GE(item.at, last);
    last = item.at;
  }
}

TEST(CalendarQueue, FarFutureEventsTakeTheSparsePath) {
  CalendarQueue<int> q(1.0);
  // Everything sits many "years" beyond the cursor: pop must fall back to
  // the direct bucket-minima scan and still produce total order.
  q.push(5000.25, 0, 1);
  q.push(123.5, 1, 2);
  q.push(99999.75, 2, 3);
  q.push(123.5, 3, 4);
  std::vector<int> order;
  while (!q.empty()) order.push_back(q.pop().value);
  EXPECT_EQ(order, (std::vector<int>{2, 4, 1, 3}));
  // And the queue keeps working for near events afterwards.
  q.push(0.5, 4, 5);
  EXPECT_EQ(q.pop().value, 5);
}

TEST(CalendarQueue, MatchesBinaryHeapUnderRandomizedHold) {
  // The event engine's access pattern: pop the minimum, push a mix of
  // near-future (message-like) and one-period-ahead (rearm-like) events.
  using Ref = std::pair<double, std::uint64_t>;
  std::priority_queue<Ref, std::vector<Ref>, std::greater<Ref>> ref;
  CalendarQueue<std::uint64_t> q(2.0);
  Rng rng(11);
  std::uint64_t seq = 0;
  for (int i = 0; i < 200; ++i) {
    const double at = rng.uniform();
    ref.emplace(at, seq);
    q.push(at, seq, seq);
    ++seq;
  }
  double now = 0;
  for (int step = 0; step < 5000; ++step) {
    ASSERT_EQ(q.empty(), ref.empty());
    if (!ref.empty() && (ref.size() > 300 || rng.chance(0.6))) {
      const auto [at, id] = ref.top();
      ref.pop();
      const auto item = q.pop();
      ASSERT_DOUBLE_EQ(item.at, at);
      ASSERT_EQ(item.seq, id);
      now = at;
    } else {
      const double at =
          now + (rng.chance(0.3) ? 1.0 : rng.uniform() * 0.1);
      ref.emplace(at, seq);
      q.push(at, seq, seq);
      ++seq;
    }
  }
}

// --- Trace equivalence: flat engine vs. frozen legacy reference ------------

EventEngineConfig async_config() {
  EventEngineConfig cfg;
  cfg.period = 1.0;
  cfg.min_latency = 0.01;
  cfg.max_latency = 0.10;
  cfg.reply_timeout = 0.5;
  return cfg;
}

void expect_stats_equal(const EventEngineStats& a, const EventEngineStats& b) {
  EXPECT_EQ(a.wakeups, b.wakeups);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_to_dead, b.messages_to_dead);
  EXPECT_EQ(a.replies_delivered, b.replies_delivered);
  EXPECT_EQ(a.replies_stale, b.replies_stale);
}

void expect_networks_equal(const Network& a, const Network& b) {
  ASSERT_EQ(a.size(), b.size());
  for (NodeId id = 0; id < a.size(); ++id) {
    const auto va = a.view_span(id);
    const auto vb = b.view_span(id);
    ASSERT_EQ(va.size(), vb.size()) << "view size diverged at node " << id;
    for (std::size_t i = 0; i < va.size(); ++i) {
      EXPECT_EQ(va[i], vb[i]) << "view entry diverged at node " << id;
    }
    const NodeStats& sa = a.node(id).stats();
    const NodeStats& sb = b.node(id).stats();
    EXPECT_EQ(sa.initiated, sb.initiated) << "node " << id;
    EXPECT_EQ(sa.received, sb.received) << "node " << id;
    EXPECT_EQ(sa.replies_sent, sb.replies_sent) << "node " << id;
    EXPECT_EQ(sa.contact_failures, sb.contact_failures) << "node " << id;
  }
}

TEST(EventEngineTraceEquivalence, AllEvaluatedProtocols) {
  // Same seed -> two identical networks; the legacy engine drives one, the
  // flat engine the other, through identical run_until targets. Every
  // counter and every final view must match for all 8 evaluated protocols.
  for (const ProtocolSpec& spec : ProtocolSpec::evaluated()) {
    auto legacy_net =
        bootstrap::make_random(spec, ProtocolOptions{8, false}, 120, 99);
    auto flat_net =
        bootstrap::make_random(spec, ProtocolOptions{8, false}, 120, 99);
    LegacyEventEngine legacy(legacy_net, async_config());
    EventEngine flat(flat_net, async_config());
    legacy.run_until(12.5);
    flat.run_until(12.5);
    EXPECT_DOUBLE_EQ(legacy.now(), flat.now());
    expect_stats_equal(legacy.stats(), flat.stats());
    expect_networks_equal(legacy_net, flat_net);
    if (::testing::Test::HasFailure()) {
      FAIL() << "trace divergence under " << spec.name();
    }
  }
}

TEST(EventEngineTraceEquivalence, LossTimeoutsKillsRevivalsAndLateJoiners) {
  // The adversarial trace: message loss, tight reply timeouts, mid-run
  // kills and revivals, and nodes joining while the engines run. Exercises
  // drops, messages_to_dead, stale replies and contact failures.
  auto cfg = async_config();
  cfg.drop_probability = 0.25;
  cfg.reply_timeout = 0.08;  // tighter than max_latency: real timeouts
  auto legacy_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                           ProtocolOptions{6, false}, 80, 7);
  auto flat_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{6, false}, 80, 7);
  LegacyEventEngine legacy(legacy_net, cfg);
  EventEngine flat(flat_net, cfg);

  legacy.run_until(5.0);
  flat.run_until(5.0);
  for (NodeId id = 0; id < 20; ++id) {
    legacy_net.kill(id);
    flat_net.kill(id);
  }
  legacy.run_until(10.0);
  flat.run_until(10.0);
  for (NodeId id = 0; id < 10; ++id) {
    legacy_net.revive(id);
    flat_net.revive(id);
  }
  const NodeId late_l = legacy_net.add_node();
  const NodeId late_f = flat_net.add_node();
  ASSERT_EQ(late_l, late_f);
  legacy_net.node(late_l).init_view(View{{late_l - 1, 0}});
  flat_net.node(late_f).init_view(View{{late_f - 1, 0}});
  legacy.run_until(20.0);
  flat.run_until(20.0);

  EXPECT_GT(legacy.stats().messages_dropped, 0u);
  EXPECT_GT(legacy.stats().messages_to_dead, 0u);
  EXPECT_GT(legacy.stats().replies_stale, 0u);
  expect_stats_equal(legacy.stats(), flat.stats());
  expect_networks_equal(legacy_net, flat_net);
}

TEST(EventEngineTraceEquivalence, NetworkPartitions) {
  auto legacy_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                           ProtocolOptions{6, false}, 60, 13);
  auto flat_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                         ProtocolOptions{6, false}, 60, 13);
  LegacyEventEngine legacy(legacy_net, async_config());
  EventEngine flat(flat_net, async_config());
  for (NodeId id = 0; id < 30; ++id) {
    legacy_net.set_partition_group(id, 1);
    flat_net.set_partition_group(id, 1);
  }
  legacy.run_until(8.0);
  flat.run_until(8.0);
  legacy_net.clear_partitions();
  flat_net.clear_partitions();
  legacy.run_until(16.0);
  flat.run_until(16.0);
  EXPECT_GT(legacy.stats().messages_to_dead, 0u);  // cross-group losses
  expect_stats_equal(legacy.stats(), flat.stats());
  expect_networks_equal(legacy_net, flat_net);
}

// --- Flat-engine-specific behavior -----------------------------------------

TEST(EventEngineFlat, RunCyclesDerivesWakeTimesFromIntegerTicks) {
  // now + cycles * period accumulated 0.1 ten times lands at
  // 0.9999999999999999; the tick counter lands at double(10) * 0.1 == 1.0.
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 10, 3);
  auto cfg = async_config();
  cfg.period = 0.1;
  EventEngine engine(net, cfg);
  for (int i = 0; i < 10; ++i) engine.run_cycles(1);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);

  // The legacy accumulation demonstrably drifts on the same schedule.
  auto ref_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                        ProtocolOptions{5, false}, 10, 3);
  LegacyEventEngine legacy(ref_net, cfg);
  for (int i = 0; i < 10; ++i) legacy.run_cycles(1);
  EXPECT_NE(legacy.now(), 1.0);

  // An explicit run_until re-anchors the counter.
  engine.run_until(1.25);
  engine.run_cycles(2);
  EXPECT_DOUBLE_EQ(engine.now(), 1.25 + 2.0 * 0.1);
}

TEST(EventEngineFlat, MessagePoolRecyclesSlabs) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 50, 21);
  EventEngine engine(net, async_config());
  engine.run_cycles(40);
  // ~3 messages per node per period for 40 periods; a non-recycling pool
  // would hold thousands of slabs. The high-water mark is bounded by the
  // in-flight population (≲ 2 per node).
  EXPECT_GT(engine.stats().messages_sent, 3000u);
  EXPECT_LE(engine.message_pool_slabs(), 2 * net.size());
  // Between events nothing leaks: every slab not attached to a queued
  // message is back on the free list.
  EXPECT_LE(engine.message_pool_in_use(), engine.queued_events());
}

TEST(EventEngineFlat, QueuedEventsTrackThePendingPopulation) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 64, 5);
  EventEngine engine(net, async_config());
  engine.run_cycles(5);
  // Every node keeps exactly one wake-up queued; in-flight messages ride on
  // top of that.
  EXPECT_GE(engine.queued_events(), net.size());
  EXPECT_LE(engine.queued_events(), 3 * net.size());
}

// --- Incremental live-id pool (Network) ------------------------------------

TEST(NetworkLivePool, TracksKillsRevivesAndAdds) {
  Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 17);
  net.add_nodes(10);
  EXPECT_EQ(net.live_ids().size(), 10u);
  net.kill(3);
  net.kill(7);
  EXPECT_EQ(net.live_ids().size(), 8u);
  // Pool holds exactly the live set (order unspecified).
  std::vector<NodeId> got(net.live_ids().begin(), net.live_ids().end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<NodeId>{0, 1, 2, 4, 5, 6, 8, 9}));
  net.kill(3);  // idempotent
  EXPECT_EQ(net.live_ids().size(), 8u);
  net.revive(3);
  const NodeId fresh = net.add_node();
  got.assign(net.live_ids().begin(), net.live_ids().end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 8, 9, fresh}));
  // live_nodes() (ascending contract) agrees with the pool contents.
  EXPECT_EQ(net.live_nodes(), got);
}

TEST(NetworkLivePool, KillRandomIsUniformAndExact) {
  Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 23);
  net.add_nodes(200);
  Rng rng(31);
  net.kill_random(150, rng);
  EXPECT_EQ(net.live_count(), 50u);
  EXPECT_EQ(net.live_nodes().size(), 50u);
  EXPECT_THROW(net.kill_random(51, rng), std::logic_error);
  net.kill_random(50, rng);
  EXPECT_EQ(net.live_count(), 0u);
}

}  // namespace
}  // namespace pss::sim
