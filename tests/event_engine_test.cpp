// Unit tests for the asynchronous event-driven engine: scheduling, message
// semantics, loss/timeout handling, and agreement with the cycle model.
#include <gtest/gtest.h>

#include "pss/graph/metrics.hpp"
#include "pss/graph/undirected_graph.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/event_engine.hpp"

namespace pss::sim {
namespace {

EventEngineConfig fast_config() {
  EventEngineConfig cfg;
  cfg.period = 1.0;
  cfg.min_latency = 0.01;
  cfg.max_latency = 0.05;
  cfg.reply_timeout = 0.5;
  return cfg;
}

TEST(EventEngine, ValidatesConfig) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 10, 1);
  EventEngineConfig bad = fast_config();
  bad.period = 0;
  EXPECT_THROW(EventEngine(net, bad), std::logic_error);
  bad = fast_config();
  bad.min_latency = 0.5;
  bad.max_latency = 0.1;
  EXPECT_THROW(EventEngine(net, bad), std::logic_error);
  bad = fast_config();
  bad.drop_probability = 1.5;
  EXPECT_THROW(EventEngine(net, bad), std::logic_error);
}

TEST(EventEngine, EveryNodeWakesOncePerPeriod) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 20, 2);
  EventEngine engine(net, fast_config());
  engine.run_until(10.0);
  // 10 time units / period 1.0 -> about 10 wakeups per node (first one is
  // phase-shifted so allow one of slack).
  EXPECT_GE(engine.stats().wakeups, 20u * 9u);
  EXPECT_LE(engine.stats().wakeups, 20u * 11u);
}

TEST(EventEngine, PushPullDeliversReplies) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 20, 3);
  EventEngine engine(net, fast_config());
  engine.run_until(20.0);
  EXPECT_GT(engine.stats().replies_delivered, 0u);
  // With generous timeout and no loss, nearly all exchanges complete.
  EXPECT_GT(engine.stats().replies_delivered,
            engine.stats().wakeups * 9 / 10);
}

TEST(EventEngine, PushOnlyNeverGeneratesReplies) {
  auto net = bootstrap::make_random(ProtocolSpec::lpbcast(),
                                    ProtocolOptions{5, false}, 20, 4);
  EventEngine engine(net, fast_config());
  engine.run_until(10.0);
  EXPECT_EQ(engine.stats().replies_delivered, 0u);
  EXPECT_GT(engine.stats().messages_sent, 0u);
}

TEST(EventEngine, MessageLossIsApplied) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 30, 5);
  auto cfg = fast_config();
  cfg.drop_probability = 0.3;
  EventEngine engine(net, cfg);
  engine.run_until(20.0);
  const double drop_rate =
      static_cast<double>(engine.stats().messages_dropped) /
      static_cast<double>(engine.stats().messages_sent);
  EXPECT_NEAR(drop_rate, 0.3, 0.05);
}

TEST(EventEngine, MessagesToDeadNodesVanish) {
  Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 6);
  net.add_nodes(2);
  net.node(0).set_view(View{{1, 0}});
  net.node(1).set_view(View{{0, 0}});
  net.kill(1);
  EventEngine engine(net, fast_config());
  engine.run_until(5.0);
  EXPECT_GT(engine.stats().messages_to_dead, 0u);
  EXPECT_EQ(engine.stats().replies_delivered, 0u);
  // Timeouts surfaced as contact failures on the survivor.
  EXPECT_GT(net.node(0).stats().contact_failures, 0u);
}

TEST(EventEngine, DeterministicGivenSeed) {
  auto run_once = [] {
    auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                      ProtocolOptions{5, false}, 15, 7);
    EventEngine engine(net, fast_config());
    engine.run_until(12.0);
    std::vector<View> views;
    for (NodeId id = 0; id < 15; ++id) views.push_back(net.node(id).view());
    return views;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EventEngine, LateJoinersGetScheduled) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 10, 8);
  EventEngine engine(net, fast_config());
  engine.run_until(3.0);
  const NodeId late = net.add_node();
  net.node(late).init_view(View{{0, 0}});
  engine.run_until(10.0);
  EXPECT_GT(net.node(late).stats().initiated, 0u);
  EXPECT_FALSE(net.node(late).view().empty());
}

TEST(EventEngine, ConvergesToSameStateAsCycleModel) {
  // The headline validation: the async engine with modest latency must
  // reach the same converged regime (average degree and connectivity) as
  // the paper's atomic cycle model.
  const std::size_t n = 300;
  const std::size_t c = 10;
  auto cycle_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                          ProtocolOptions{c, false}, n, 9);
  CycleEngine cycle_engine(cycle_net);
  cycle_engine.run(40);

  auto event_net = bootstrap::make_random(ProtocolSpec::newscast(),
                                          ProtocolOptions{c, false}, n, 10);
  EventEngine event_engine(event_net, fast_config());
  event_engine.run_cycles(40);

  const auto gc = graph::UndirectedGraph::from_network(cycle_net);
  const auto ge = graph::UndirectedGraph::from_network(event_net);
  EXPECT_TRUE(graph::connected_components(ge).connected());
  EXPECT_NEAR(graph::average_degree(ge), graph::average_degree(gc),
              0.15 * graph::average_degree(gc));
}

TEST(EventEngine, TimeAdvancesMonotonically) {
  auto net = bootstrap::make_random(ProtocolSpec::newscast(),
                                    ProtocolOptions{5, false}, 10, 11);
  EventEngine engine(net, fast_config());
  engine.run_until(1.0);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
  engine.run_until(4.5);
  EXPECT_DOUBLE_EQ(engine.now(), 4.5);
  engine.run_until(4.5);  // idempotent
  EXPECT_DOUBLE_EQ(engine.now(), 4.5);
}

}  // namespace
}  // namespace pss::sim
