// Unit tests for the catastrophic-failure experiments (Section 7): static
// robustness sweeps and dynamic self-healing after 50% node failure.
#include <gtest/gtest.h>

#include "pss/experiments/failure.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"

namespace pss::experiments {
namespace {

ScenarioParams small_params() {
  ScenarioParams p;
  p.n = 300;
  p.view_size = 15;  // keeps c/ln(N) near the paper's density regime
  p.cycles = 30;
  p.seed = 7;
  p.exact_metrics = true;
  return p;
}

sim::Network converged_network(ProtocolSpec spec, const ScenarioParams& p) {
  auto net = sim::bootstrap::make_random(spec, p.protocol_options(), p.n, p.seed);
  sim::CycleEngine engine(net);
  engine.run(p.cycles);
  return net;
}

TEST(StaticRobustness, NoPartitionAtLowRemoval) {
  const auto net = converged_network(ProtocolSpec::newscast(), small_params());
  const auto points = run_static_robustness(net, {0.1, 0.3, 0.5}, 10, 99);
  ASSERT_EQ(points.size(), 3u);
  for (const auto& point : points) {
    EXPECT_DOUBLE_EQ(point.avg_outside_largest, 0.0)
        << "removal " << point.removed_fraction;
    EXPECT_DOUBLE_EQ(point.partitioned_fraction, 0.0);
    EXPECT_EQ(point.trials, 10u);
  }
}

TEST(StaticRobustness, HighRemovalFragmentsButGiantComponentSurvives) {
  // The paper's Figure 6 shape: beyond ~70% removal some nodes fall outside
  // the largest cluster, but the survivors still form one dominant blob.
  const auto net = converged_network(ProtocolSpec::newscast(), small_params());
  const auto points = run_static_robustness(net, {0.90, 0.95}, 30, 100);
  EXPECT_GT(points[1].avg_outside_largest, points[0].avg_outside_largest);
  // Even at 95% removal the bulk of survivors stay connected: of ~15
  // survivors, on average only a few are outside the giant component.
  EXPECT_LT(points[1].avg_outside_largest, 10.0);
}

TEST(StaticRobustness, MonotoneRemovalSweep) {
  const auto net = converged_network(ProtocolSpec::newscast(), small_params());
  const auto points =
      run_static_robustness(net, {0.0, 0.5, 0.8, 0.92, 0.97}, 20, 101);
  EXPECT_DOUBLE_EQ(points[0].avg_outside_largest, 0.0);  // nothing removed
  // Fragmentation is (statistically) increasing along the sweep tail.
  EXPECT_LE(points[1].avg_outside_largest, points[3].avg_outside_largest + 1e-9);
  EXPECT_LE(points[2].partitioned_fraction, points[4].partitioned_fraction + 1e-9);
}

TEST(StaticRobustness, ValidatesInputs) {
  const auto net = converged_network(ProtocolSpec::newscast(), small_params());
  EXPECT_THROW(run_static_robustness(net, {0.5}, 0, 1), std::logic_error);
  EXPECT_THROW(run_static_robustness(net, {1.0}, 1, 1), std::logic_error);
  EXPECT_THROW(run_static_robustness(net, {-0.1}, 1, 1), std::logic_error);
}

TEST(SelfHealing, HeadSelectionRemovesDeadLinksExponentially) {
  ScenarioParams p = small_params();
  const auto healing =
      run_self_healing(ProtocolSpec::newscast(), p, /*extra_cycles=*/40,
                       /*kill_fraction=*/0.5);
  EXPECT_EQ(healing.failure_cycle, 30u);
  EXPECT_GT(healing.dead_links_at_failure, 0u);
  // Newscast heals completely within tens of cycles.
  EXPECT_EQ(healing.dead_links.back(), 0u);
  const auto half_life = healing.cycles_to_reach(healing.dead_links_at_failure / 2);
  EXPECT_NE(half_life, SelfHealingResult::kNever);
  EXPECT_LE(half_life, 10u);
}

TEST(SelfHealing, RandSelectionHealsMuchSlower) {
  ScenarioParams p = small_params();
  const ProtocolSpec rand_vs{PeerSelection::kRand, ViewSelection::kRand,
                             ViewPropagation::kPushPull};
  const auto head = run_self_healing(ProtocolSpec::newscast(), p, 30, 0.5);
  const auto rand = run_self_healing(rand_vs, p, 30, 0.5);
  // After 30 cycles head selection is (near) clean, rand retains a large
  // fraction of its dead links — the Figure 7 contrast.
  EXPECT_LT(head.dead_links.back() * 10, rand.dead_links.back() + 10);
  EXPECT_GT(rand.dead_links.back(), rand.dead_links_at_failure / 4);
}

TEST(SelfHealing, SurvivorsStayConnected) {
  ScenarioParams p = small_params();
  const auto healing = run_self_healing(ProtocolSpec::newscast(), p, 10, 0.5);
  // Indirect connectivity check: dead links decline monotonically-ish and
  // the run completes; direct check via a fresh converged run.
  auto net = converged_network(ProtocolSpec::newscast(), p);
  Rng rng(1);
  net.kill_random(150, rng);
  sim::CycleEngine engine(net);
  engine.run(10);
  const auto g = graph::UndirectedGraph::from_network(net);
  EXPECT_TRUE(graph::connected_components(g).connected());
  EXPECT_EQ(healing.dead_links.size(), 10u);
}

TEST(SelfHealing, ValidatesKillFraction) {
  ScenarioParams p = small_params();
  EXPECT_THROW(run_self_healing(ProtocolSpec::newscast(), p, 5, 0.0),
               std::logic_error);
  EXPECT_THROW(run_self_healing(ProtocolSpec::newscast(), p, 5, 1.0),
               std::logic_error);
}

TEST(SelfHealing, CyclesToReachSemantics) {
  SelfHealingResult r;
  r.dead_links = {100, 50, 20, 5, 0};
  EXPECT_EQ(r.cycles_to_reach(60), 2u);
  EXPECT_EQ(r.cycles_to_reach(0), 5u);
  EXPECT_EQ(r.cycles_to_reach(200), 1u);
  r.dead_links = {100, 100};
  EXPECT_EQ(r.cycles_to_reach(10), SelfHealingResult::kNever);
}

}  // namespace
}  // namespace pss::experiments
