// Tests for the flat simulation core: FlatViewStore storage invariants and
// the bit-for-bit equivalence between the flat:: kernels and the legacy
// View algebra they mirror.
//
// The equivalence tests are the contract that lets CycleEngine batch
// exchanges over raw arena slots while GossipNode keeps exposing Views:
// every flat op must produce the identical canonical array AND consume the
// node's Rng stream identically (same number of draws in the same order),
// or seeded experiments would silently fork between the two paths. Each
// randomized trial therefore checks outputs and then draws one more value
// from both generators to pin the stream position.
#include <gtest/gtest.h>

#include <vector>

#include "pss/membership/flat_ops.hpp"
#include "pss/membership/flat_view_store.hpp"
#include "pss/membership/view.hpp"
#include "pss/protocol/flat_exchange.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/sim/network.hpp"

namespace pss {
namespace {

std::vector<NodeDescriptor> random_entries(Rng& rng, std::size_t max_size,
                                           NodeId address_space = 40,
                                           HopCount max_hop = 12) {
  std::vector<NodeDescriptor> entries;
  const auto size = static_cast<std::size_t>(rng.below(max_size + 1));
  for (std::size_t i = 0; i < size; ++i) {
    entries.push_back({static_cast<NodeId>(rng.below(address_space)),
                       static_cast<HopCount>(rng.below(max_hop))});
  }
  return entries;
}

View random_view(Rng& rng, std::size_t max_size, NodeId address_space = 40,
                 HopCount max_hop = 12) {
  return View(random_entries(rng, max_size, address_space, max_hop));
}

std::vector<NodeDescriptor> to_vec(flat::DescSpan s) {
  return {s.begin(), s.end()};
}

// --- FlatViewStore storage ------------------------------------------------

TEST(FlatViewStore, SlotsStartEmptyAndCapacityIsEnforced) {
  FlatViewStore store(3);
  EXPECT_EQ(store.view_capacity(), 3u);
  const NodeId a = store.add_node();
  const NodeId b = store.add_node();
  EXPECT_EQ(store.node_count(), 2u);
  EXPECT_TRUE(store.view_of(a).empty());
  EXPECT_TRUE(store.view_of(b).empty());

  const std::vector<NodeDescriptor> three = {{1, 0}, {2, 0}, {3, 1}};
  store.assign(a, three);
  EXPECT_EQ(store.view_size(a), 3u);
  EXPECT_EQ(to_vec(store.view_of(a)), three);
  // Slot b is untouched by a's assignment (no cross-slot bleed).
  EXPECT_TRUE(store.view_of(b).empty());

  const std::vector<NodeDescriptor> four = {{1, 0}, {2, 0}, {3, 1}, {4, 1}};
  EXPECT_THROW(store.assign(a, four), std::logic_error);
  EXPECT_THROW(store.assign(99, three), std::logic_error);

  store.clear(a);
  EXPECT_TRUE(store.view_of(a).empty());
}

TEST(FlatViewStore, ZeroCapacityRejected) {
  EXPECT_THROW(FlatViewStore store(0), std::logic_error);
}

TEST(FlatViewStore, AgeIncrementsEveryEntry) {
  FlatViewStore store(4);
  const NodeId s = store.add_node();
  store.assign(s, std::vector<NodeDescriptor>{{5, 0}, {1, 2}, {9, 7}});
  store.age(s);
  EXPECT_EQ(to_vec(store.view_of(s)),
            (std::vector<NodeDescriptor>{{5, 1}, {1, 3}, {9, 8}}));
  store.age(s);
  EXPECT_EQ(to_vec(store.view_of(s)),
            (std::vector<NodeDescriptor>{{5, 2}, {1, 4}, {9, 9}}));
}

TEST(FlatViewStore, EraseAddressShiftsAndReports) {
  FlatViewStore store(4);
  const NodeId s = store.add_node();
  store.assign(s, std::vector<NodeDescriptor>{{5, 0}, {1, 2}, {9, 7}});
  EXPECT_FALSE(store.erase_address(s, 42));
  EXPECT_TRUE(store.erase_address(s, 1));
  EXPECT_EQ(to_vec(store.view_of(s)),
            (std::vector<NodeDescriptor>{{5, 0}, {9, 7}}));
  EXPECT_FALSE(store.erase_address(s, 1));
}

TEST(FlatViewStore, VersionStampsEveryMutation) {
  FlatViewStore store(4);
  const NodeId a = store.add_node();
  const NodeId b = store.add_node();
  const auto v0 = store.version(a);
  store.assign(a, std::vector<NodeDescriptor>{{1, 0}});
  const auto v1 = store.version(a);
  EXPECT_GT(v1, v0);
  store.age(a);
  EXPECT_GT(store.version(a), v1);
  // Mutating a does not stamp b.
  const auto vb = store.version(b);
  store.clear(a);
  EXPECT_EQ(store.version(b), vb);
}

// --- flat ops vs the View algebra ----------------------------------------

TEST(FlatOps, MergeMatchesViewMergeIncludingDuplicates) {
  Rng rng(11);
  flat::Scratch scratch;
  std::vector<NodeDescriptor> out;
  for (int trial = 0; trial < 500; ++trial) {
    const View a = random_view(rng, 20);
    const View b = random_view(rng, 20);
    flat::merge_into(a.entries(), b.entries(), out, scratch);
    EXPECT_EQ(out, View::merge(a, b).entries()) << "trial " << trial;
  }
}

TEST(FlatOps, MergeOversizedInputsFallBackToSortPath) {
  Rng rng(12);
  flat::Scratch scratch;
  std::vector<NodeDescriptor> out;
  // Address space 400 with up to 120 entries per side: the combined size
  // exceeds AddressSet::kMaxEntries and must route through normalize().
  for (int trial = 0; trial < 50; ++trial) {
    const View a = random_view(rng, 120, 400);
    const View b = random_view(rng, 120, 400);
    flat::merge_into(a.entries(), b.entries(), out, scratch);
    EXPECT_EQ(out, View::merge(a, b).entries()) << "trial " << trial;
  }
}

TEST(FlatOps, SelectionsMatchViewWithClonedRngs) {
  Rng rng(13);
  flat::Scratch scratch;
  for (int trial = 0; trial < 500; ++trial) {
    const View v = random_view(rng, 25);
    const auto c = static_cast<std::size_t>(rng.below(28));
    const std::uint64_t seed = rng();

    // Each policy gets two generators seeded identically: one consumed by
    // the View implementation, one by the flat mirror. Outputs must match
    // and both generators must land on the same stream position.
    {
      Rng r1(seed), r2(seed);
      std::vector<NodeDescriptor> buf = v.entries();
      flat::select_head_unbiased(buf, c, r2, scratch);
      EXPECT_EQ(buf, v.select_head_unbiased(c, r1).entries())
          << "head trial " << trial;
      EXPECT_EQ(r1(), r2()) << "head rng divergence, trial " << trial;
    }
    {
      Rng r1(seed), r2(seed);
      std::vector<NodeDescriptor> buf = v.entries();
      flat::select_tail_unbiased(buf, c, r2, scratch);
      EXPECT_EQ(buf, v.select_tail_unbiased(c, r1).entries())
          << "tail trial " << trial;
      EXPECT_EQ(r1(), r2()) << "tail rng divergence, trial " << trial;
    }
    {
      Rng r1(seed), r2(seed);
      std::vector<NodeDescriptor> buf = v.entries();
      flat::select_rand(buf, c, r2, scratch);
      EXPECT_EQ(buf, v.select_rand(c, r1).entries())
          << "rand trial " << trial;
      EXPECT_EQ(r1(), r2()) << "rand rng divergence, trial " << trial;
    }
    {
      std::vector<NodeDescriptor> buf = v.entries();
      flat::select_head(buf, c);
      EXPECT_EQ(buf, v.select_head(c).entries()) << "det head trial " << trial;
    }
  }
}

TEST(FlatOps, PeerSelectionMatchesViewWithClonedRngs) {
  Rng rng(14);
  for (int trial = 0; trial < 500; ++trial) {
    const View v = random_view(rng, 25);
    if (v.empty()) continue;
    const std::uint64_t seed = rng();
    {
      Rng r1(seed), r2(seed);
      EXPECT_EQ(flat::peer_rand(v.entries(), r2), v.peer_rand(r1));
      EXPECT_EQ(r1(), r2());
    }
    {
      Rng r1(seed), r2(seed);
      EXPECT_EQ(flat::peer_tail_unbiased(v.entries(), r2),
                v.peer_tail_unbiased(r1));
      EXPECT_EQ(r1(), r2());
    }
    EXPECT_EQ(flat::peer_head(v.entries()), v.peer_head());
  }
}

TEST(FlatOps, RandomizedTraceKeepsSlotAndViewInLockstep) {
  // Drive one flat slot and one View through the same random op sequence:
  // merge-in, age, erase — the full mutation surface a node's view sees.
  Rng rng(15);
  flat::Scratch scratch;
  std::vector<NodeDescriptor> buf;
  for (int run = 0; run < 30; ++run) {
    FlatViewStore store(64);
    const NodeId slot = store.add_node();
    View reference;
    for (int step = 0; step < 60; ++step) {
      switch (rng.below(3)) {
        case 0: {
          const View incoming = random_view(rng, 12);
          flat::merge_into(incoming.entries(), store.view_of(slot), buf,
                           scratch);
          store.assign(slot, buf);
          reference = View::merge(incoming, reference);
          break;
        }
        case 1:
          store.age(slot);
          reference.increase_hop_count();
          break;
        default: {
          const auto victim = static_cast<NodeId>(rng.below(40));
          EXPECT_EQ(store.erase_address(slot, victim),
                    reference.erase(victim));
          break;
        }
      }
      ASSERT_EQ(to_vec(store.view_of(slot)), reference.entries())
          << "run " << run << " step " << step;
    }
  }
}

// --- Engine vs adapter: identical protocol semantics ----------------------

// Replays the legacy CycleEngine loop one message at a time through the
// public GossipNode adapter API and checks that the batched flat engine
// produces the identical network state at every cycle. This is the
// acceptance check that the flat refactor preserved the paper's semantics
// through the adapter, including Rng stream consumption, stats accounting
// and the dead-contact path.
void expect_networks_identical(sim::Network& a, sim::Network& b,
                               const char* where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (NodeId id = 0; id < a.size(); ++id) {
    ASSERT_EQ(to_vec(a.view_span(id)), to_vec(b.view_span(id)))
        << where << ", node " << id;
    // The adapter's materialized View must agree with the raw slot.
    ASSERT_EQ(a.node(id).view().entries(), to_vec(a.view_span(id)))
        << where << ", node " << id;
    ASSERT_EQ(a.node(id).stats().initiated, b.node(id).stats().initiated)
        << where << ", node " << id;
    ASSERT_EQ(a.node(id).stats().received, b.node(id).stats().received)
        << where << ", node " << id;
    ASSERT_EQ(a.node(id).stats().replies_sent, b.node(id).stats().replies_sent)
        << where << ", node " << id;
    ASSERT_EQ(a.node(id).stats().contact_failures,
              b.node(id).stats().contact_failures)
        << where << ", node " << id;
  }
}

void run_legacy_style_cycle(sim::Network& net) {
  auto order = net.live_nodes();
  net.rng().shuffle(order);
  for (NodeId initiator : order) {
    if (!net.is_live(initiator)) continue;
    GossipNode& active = net.node(initiator);
    active.age_view();
    auto peer = active.select_peer();
    if (!peer) continue;
    active.note_initiated();
    if (!net.is_live(*peer) || !net.can_communicate(initiator, *peer)) {
      active.on_contact_failure(*peer);
      continue;
    }
    GossipNode& passive = net.node(*peer);
    const View buffer = active.make_active_buffer();
    auto reply = passive.handle_message(buffer);
    if (active.spec().pull()) active.handle_reply(*reply);
  }
}

void check_engine_adapter_equivalence(ProtocolSpec spec) {
  constexpr std::size_t kNodes = 60;
  constexpr std::uint64_t kSeed = 97;
  const ProtocolOptions options{8, false};
  sim::Network engine_net =
      sim::bootstrap::make_random(spec, options, kNodes, kSeed);
  sim::Network manual_net =
      sim::bootstrap::make_random(spec, options, kNodes, kSeed);
  sim::CycleEngine engine(engine_net);
  for (Cycle cycle = 0; cycle < 8; ++cycle) {
    if (cycle == 3) {
      // Kill the same nodes in both networks so dead-contact handling and
      // the failure stats path are exercised identically.
      for (NodeId id = 0; id < kNodes / 5; ++id) {
        engine_net.kill(id);
        manual_net.kill(id);
      }
    }
    engine.run_cycle();
    run_legacy_style_cycle(manual_net);
    expect_networks_identical(engine_net, manual_net, spec.name().c_str());
  }
}

TEST(FlatEngineEquivalence, NewscastMatchesAdapterDrivenExchanges) {
  check_engine_adapter_equivalence(ProtocolSpec::newscast());
}

TEST(FlatEngineEquivalence, AllEvaluatedInstancesMatchAdapterDriven) {
  for (const ProtocolSpec& spec : ProtocolSpec::evaluated()) {
    check_engine_adapter_equivalence(spec);
  }
}

// --- GossipNode adapter specifics ----------------------------------------

TEST(GossipNodeAdapter, SetViewRejectsOversizedViews) {
  GossipNode node(0, ProtocolSpec::newscast(), ProtocolOptions{3, false},
                  Rng(1));
  node.set_view(View{{1, 0}, {2, 0}, {3, 0}});
  EXPECT_EQ(node.view().size(), 3u);
  EXPECT_THROW(node.set_view(View{{1, 0}, {2, 0}, {3, 0}, {4, 0}}),
               std::logic_error);
}

TEST(GossipNodeAdapter, CopyOfStandaloneNodeIsIndependent) {
  GossipNode a(0, ProtocolSpec::newscast(), ProtocolOptions{4, false}, Rng(7));
  a.set_view(View{{1, 1}, {2, 2}});
  GossipNode b(a);
  b.set_view(View{{9, 0}});
  EXPECT_EQ(a.view(), (View{{1, 1}, {2, 2}}));
  EXPECT_EQ(b.view(), (View{{9, 0}}));
}

TEST(GossipNodeAdapter, CopyOfAttachedNodeDetachesFromTheNetwork) {
  sim::Network net = sim::bootstrap::make_random(
      ProtocolSpec::newscast(), ProtocolOptions{5, false}, 20, 21);
  GossipNode snapshot = net.node(3);
  const View before = snapshot.view();
  EXPECT_EQ(before.entries(), to_vec(net.view_span(3)));
  sim::CycleEngine engine(net);
  engine.run(3);
  // The copy kept its pre-run state; mutating it touches nothing in the
  // network.
  EXPECT_EQ(snapshot.view(), before);
  snapshot.set_view(View{{19, 0}});
  EXPECT_NE(to_vec(net.view_span(3)), snapshot.view().entries());
}

TEST(GossipNodeAdapter, ViewCacheTracksEngineMutations) {
  // The engine mutates arena slots without going through the adapter; the
  // adapter's cached View must still follow via the version stamps.
  sim::Network net = sim::bootstrap::make_random(
      ProtocolSpec::newscast(), ProtocolOptions{5, false}, 20, 3);
  const View before = net.node(4).view();
  EXPECT_EQ(before.entries(), to_vec(net.view_span(4)));
  sim::CycleEngine engine(net);
  engine.run(2);
  EXPECT_EQ(net.node(4).view().entries(), to_vec(net.view_span(4)));
}

}  // namespace
}  // namespace pss
