// Unit tests for the Figure-1 skeleton semantics: active buffer
// construction, passive handling with aging and reply, view absorption per
// selection policy, and the dead-contact extension hook.
#include <gtest/gtest.h>

#include "pss/protocol/gossip_node.hpp"

namespace pss {
namespace {

GossipNode make_node(NodeId self, ProtocolSpec spec, std::size_t c = 30,
                     bool remove_dead = false) {
  return GossipNode(self, spec, ProtocolOptions{c, remove_dead}, Rng(self + 100));
}

TEST(GossipNode, InitViewDropsSelfAndTruncates) {
  auto node = make_node(5, ProtocolSpec::newscast(), 2);
  node.init_view(View{{5, 0}, {1, 0}, {2, 1}, {3, 2}});
  EXPECT_EQ(node.view().size(), 2u);
  EXPECT_FALSE(node.view().contains(5));
  EXPECT_TRUE(node.view().contains(1));  // head selection keeps freshest
  EXPECT_TRUE(node.view().contains(2));
}

TEST(GossipNode, ZeroViewSizeRejected) {
  EXPECT_THROW(GossipNode(0, ProtocolSpec::newscast(), ProtocolOptions{0, false},
                          Rng(1)),
               std::logic_error);
}

TEST(GossipNode, SelectPeerOnEmptyViewIsNullopt) {
  auto node = make_node(0, ProtocolSpec::newscast());
  EXPECT_FALSE(node.select_peer().has_value());
}

TEST(GossipNode, SelectPeerHonoursPolicy) {
  const View view{{10, 1}, {20, 3}, {30, 7}};
  auto head = make_node(0, {PeerSelection::kHead, ViewSelection::kHead,
                            ViewPropagation::kPushPull});
  head.set_view(view);
  EXPECT_EQ(head.select_peer(), 10u);

  auto tail = make_node(0, {PeerSelection::kTail, ViewSelection::kHead,
                            ViewPropagation::kPushPull});
  tail.set_view(view);
  EXPECT_EQ(tail.select_peer(), 30u);

  auto rand_node = make_node(0, ProtocolSpec::newscast());
  rand_node.set_view(view);
  for (int i = 0; i < 50; ++i) {
    auto peer = rand_node.select_peer();
    ASSERT_TRUE(peer.has_value());
    EXPECT_TRUE(view.contains(*peer));
  }
}

TEST(GossipNode, ActiveBufferContainsSelfAtHopZeroWhenPushing) {
  auto node = make_node(7, ProtocolSpec::newscast());
  node.set_view(View{{1, 2}, {2, 3}});
  const View buffer = node.make_active_buffer();
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_TRUE(buffer.contains(7));
  EXPECT_EQ(buffer.hop_count_of(7), 0u);
  EXPECT_EQ(buffer.head().address, 7u);  // hop 0 sorts first
}

TEST(GossipNode, ActiveBufferEmptyForPullOnly) {
  auto node = make_node(7, {PeerSelection::kRand, ViewSelection::kHead,
                            ViewPropagation::kPull});
  node.set_view(View{{1, 2}, {2, 3}});
  EXPECT_TRUE(node.make_active_buffer().empty());
}

TEST(GossipNode, HandleMessageAgesIncomingByOneHop) {
  auto node = make_node(0, {PeerSelection::kRand, ViewSelection::kHead,
                            ViewPropagation::kPush});
  node.set_view(View{});
  node.handle_message(View{{9, 0}, {8, 4}});
  EXPECT_EQ(node.view().hop_count_of(9), 1u);
  EXPECT_EQ(node.view().hop_count_of(8), 5u);
}

TEST(GossipNode, HandleMessageRepliesOnlyWhenPulling) {
  auto push_node = make_node(1, {PeerSelection::kRand, ViewSelection::kHead,
                                 ViewPropagation::kPush});
  EXPECT_FALSE(push_node.handle_message(View{{2, 0}}).has_value());

  auto pushpull_node = make_node(1, ProtocolSpec::newscast());
  auto reply = pushpull_node.handle_message(View{{2, 0}});
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->contains(1));
  EXPECT_EQ(reply->hop_count_of(1), 0u);
}

TEST(GossipNode, ReplyIsBuiltFromPreMergeView) {
  // Figure 1(b): the passive thread sends merge(view, {me,0}) BEFORE
  // absorbing the incoming buffer.
  auto node = make_node(1, ProtocolSpec::newscast());
  node.set_view(View{{5, 2}});
  auto reply = node.handle_message(View{{9, 0}});
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->contains(5));
  EXPECT_TRUE(reply->contains(1));
  EXPECT_FALSE(reply->contains(9));  // 9 must not leak into the reply
  EXPECT_TRUE(node.view().contains(9));  // but is absorbed afterwards
}

TEST(GossipNode, AbsorbDropsOwnDescriptor) {
  auto node = make_node(3, ProtocolSpec::newscast());
  node.set_view(View{{1, 1}});
  node.handle_message(View{{3, 0}, {2, 0}});
  EXPECT_FALSE(node.view().contains(3));
  EXPECT_TRUE(node.view().contains(1));
  EXPECT_TRUE(node.view().contains(2));
}

TEST(GossipNode, AbsorbTruncatesToViewSizeHead) {
  auto node = make_node(0, ProtocolSpec::newscast(), 3);
  node.set_view(View{{1, 1}, {2, 2}, {3, 3}});
  node.handle_message(View{{4, 0}, {5, 0}});
  EXPECT_EQ(node.view().size(), 3u);
  // Head selection keeps the freshest: 4 and 5 arrive at hop 1.
  EXPECT_TRUE(node.view().contains(4));
  EXPECT_TRUE(node.view().contains(5));
  EXPECT_TRUE(node.view().contains(1));
  EXPECT_FALSE(node.view().contains(3));
}

TEST(GossipNode, AbsorbTailSelectionKeepsOldest) {
  auto node = make_node(0, {PeerSelection::kRand, ViewSelection::kTail,
                            ViewPropagation::kPushPull}, 2);
  node.set_view(View{{1, 5}, {2, 6}});
  node.handle_message(View{{3, 0}});
  EXPECT_EQ(node.view().size(), 2u);
  EXPECT_TRUE(node.view().contains(1));
  EXPECT_TRUE(node.view().contains(2));
  EXPECT_FALSE(node.view().contains(3));  // freshest is truncated away
}

TEST(GossipNode, AbsorbRandSelectionKeepsSubset) {
  auto node = make_node(0, {PeerSelection::kRand, ViewSelection::kRand,
                            ViewPropagation::kPushPull}, 4);
  node.set_view(View{{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  node.handle_message(View{{5, 0}, {6, 0}});
  EXPECT_EQ(node.view().size(), 4u);
  for (const auto& d : node.view().entries()) {
    EXPECT_GE(d.address, 1u);
    EXPECT_LE(d.address, 6u);
  }
  node.view().validate();
}

TEST(GossipNode, HandleReplyMergesAndAges) {
  auto node = make_node(0, ProtocolSpec::newscast());
  node.set_view(View{{1, 3}});
  node.handle_reply(View{{2, 0}, {1, 0}});
  EXPECT_EQ(node.view().hop_count_of(2), 1u);
  EXPECT_EQ(node.view().hop_count_of(1), 1u);  // fresher copy wins
}

TEST(GossipNode, MergeKeepsLowestHopAcrossExchange) {
  auto node = make_node(0, ProtocolSpec::newscast());
  node.set_view(View{{1, 1}});
  node.handle_message(View{{1, 5}});  // aged to 6, staler than local 1
  EXPECT_EQ(node.view().hop_count_of(1), 1u);
}

TEST(GossipNode, ContactFailureDefaultKeepsDeadLink) {
  auto node = make_node(0, ProtocolSpec::newscast());
  node.set_view(View{{1, 1}, {2, 2}});
  node.on_contact_failure(1);
  EXPECT_TRUE(node.view().contains(1));  // paper-faithful: no eviction
  EXPECT_EQ(node.stats().contact_failures, 1u);
}

TEST(GossipNode, ContactFailureWithRemovalEvicts) {
  auto node = make_node(0, ProtocolSpec::newscast(), 30, /*remove_dead=*/true);
  node.set_view(View{{1, 1}, {2, 2}});
  node.on_contact_failure(1);
  EXPECT_FALSE(node.view().contains(1));
  EXPECT_TRUE(node.view().contains(2));
}

TEST(GossipNode, StatsCountHandledMessagesAndReplies) {
  auto node = make_node(0, ProtocolSpec::newscast());
  node.handle_message(View{{1, 0}});
  node.handle_message(View{{2, 0}});
  EXPECT_EQ(node.stats().received, 2u);
  EXPECT_EQ(node.stats().replies_sent, 2u);
  auto push_node = make_node(1, ProtocolSpec::lpbcast());
  push_node.handle_message(View{{2, 0}});
  EXPECT_EQ(push_node.stats().replies_sent, 0u);
}

TEST(GossipNode, PullOnlyPassiveViewUnchangedByEmptyTrigger) {
  // In pull-only mode the active side sends {}; the passive side replies
  // but its own view must not change (selectView of its own view).
  auto node = make_node(1, {PeerSelection::kRand, ViewSelection::kHead,
                            ViewPropagation::kPull});
  node.set_view(View{{5, 2}, {6, 3}});
  const View before = node.view();
  auto reply = node.handle_message(View{});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(node.view(), before);
}

TEST(GossipNode, DeterministicGivenSameSeed) {
  auto spec = ProtocolSpec{PeerSelection::kRand, ViewSelection::kRand,
                           ViewPropagation::kPushPull};
  auto a = GossipNode(0, spec, ProtocolOptions{5, false}, Rng(77));
  auto b = GossipNode(0, spec, ProtocolOptions{5, false}, Rng(77));
  const View incoming{{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {6, 0}, {7, 0}};
  a.set_view(View{{8, 1}, {9, 2}});
  b.set_view(View{{8, 1}, {9, 2}});
  for (int i = 0; i < 10; ++i) {
    a.handle_message(incoming);
    b.handle_message(incoming);
    EXPECT_EQ(a.view(), b.view());
    EXPECT_EQ(a.select_peer(), b.select_peer());
  }
}

}  // namespace
}  // namespace pss
