// Unit tests for the undirected graph snapshot: CSR construction,
// deduplication, network extraction with dead-link filtering, re-indexing.
#include <gtest/gtest.h>

#include "pss/graph/undirected_graph.hpp"
#include "pss/sim/bootstrap.hpp"

namespace pss::graph {
namespace {

TEST(UndirectedGraph, BuildsFromEdgeList) {
  UndirectedGraph g(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(UndirectedGraph, DeduplicatesParallelAndReversedEdges) {
  UndirectedGraph g(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(UndirectedGraph, DropsSelfLoops) {
  UndirectedGraph g(2, {{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(UndirectedGraph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(UndirectedGraph(2, {{0, 2}}), std::logic_error);
}

TEST(UndirectedGraph, NeighborsAreSorted) {
  UndirectedGraph g(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
}

TEST(UndirectedGraph, EmptyAndEdgelessGraphs) {
  UndirectedGraph g0(0, {});
  EXPECT_EQ(g0.vertex_count(), 0u);
  EXPECT_EQ(g0.edge_count(), 0u);
  UndirectedGraph g3(3, {});
  EXPECT_EQ(g3.vertex_count(), 3u);
  EXPECT_EQ(g3.degree(1), 0u);
  EXPECT_TRUE(g3.neighbors(1).empty());
}

TEST(UndirectedGraph, FromViewsUsesDirectedEntriesAsUndirectedEdges) {
  std::vector<View> views(3);
  views[0] = View{{1, 0}};
  views[1] = View{{0, 5}, {2, 1}};  // (1,0) duplicates (0,1)
  const auto g = UndirectedGraph::from_views(views);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(UndirectedGraph, FromViewsRejectsForeignAddresses) {
  std::vector<View> views(2);
  views[0] = View{{7, 0}};
  EXPECT_THROW(UndirectedGraph::from_views(views), std::logic_error);
}

TEST(UndirectedGraph, FromNetworkSkipsDeadNodesAndDeadLinks) {
  sim::Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 1);
  net.add_nodes(4);
  net.node(0).set_view(View{{1, 0}, {3, 0}});
  net.node(1).set_view(View{{2, 0}});
  net.node(2).set_view(View{{3, 0}});
  net.kill(3);
  const auto g = UndirectedGraph::from_network(net);
  EXPECT_EQ(g.vertex_count(), 3u);  // nodes 0, 1, 2
  EXPECT_EQ(g.edge_count(), 2u);    // 0-1, 1-2; links to 3 ignored
}

TEST(UndirectedGraph, FromNetworkReindexesAddresses) {
  sim::Network net(ProtocolSpec::newscast(), ProtocolOptions{5, false}, 2);
  net.add_nodes(5);
  net.kill(0);
  net.kill(2);
  net.node(1).set_view(View{{3, 0}});
  net.node(3).set_view(View{{4, 0}});
  const auto g = UndirectedGraph::from_network(net);
  ASSERT_EQ(g.vertex_count(), 3u);
  // Vertices map to live addresses 1, 3, 4 in order.
  EXPECT_EQ(g.address_of(0), 1u);
  EXPECT_EQ(g.address_of(1), 3u);
  EXPECT_EQ(g.address_of(2), 4u);
  EXPECT_EQ(g.vertex_of(3), 1u);
  EXPECT_EQ(g.vertex_of(0), UndirectedGraph::kNoVertex);
  EXPECT_EQ(g.vertex_of(99), UndirectedGraph::kNoVertex);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(UndirectedGraph, CompleteGraphDegrees) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::uint32_t n = 6;
  for (std::uint32_t u = 0; u < n; ++u)
    for (std::uint32_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  UndirectedGraph g(n, std::move(edges));
  EXPECT_EQ(g.edge_count(), n * (n - 1) / 2);
  for (std::uint32_t v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), n - 1);
}

}  // namespace
}  // namespace pss::graph
