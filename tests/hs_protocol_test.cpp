// Tests for the generalized (H, S) protocol family (TOCS-2007 design
// space, the follow-up the Middleware'04 conclusion points to): node-level
// buffer/select semantics, invariants across the (H, S) grid, and the
// healer/swapper behavioural signatures.
#include <gtest/gtest.h>

#include <cmath>

#include "pss/protocol/hs_node.hpp"
#include "pss/sim/hs_overlay.hpp"
#include "pss/stats/descriptive.hpp"

namespace pss {
namespace {

std::vector<NodeDescriptor> make_entries(std::size_t n, HopCount age = 0,
                                         NodeId base = 1) {
  std::vector<NodeDescriptor> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back({static_cast<NodeId>(base + i), age});
  return out;
}

TEST(HSParams, ProfilesAndValidation) {
  const auto blind = HSParams::blind(30);
  EXPECT_EQ(blind.healer, 0u);
  EXPECT_EQ(blind.swapper, 0u);
  EXPECT_EQ(HSParams::healer_profile(30).healer, 15u);
  EXPECT_EQ(HSParams::swapper_profile(30).swapper, 15u);
  EXPECT_EQ(blind.buffer_size(), 15u);
  EXPECT_THROW(HSGossipNode(0, {30, 16, 0, false, true}, Rng(1)),
               std::logic_error);
  EXPECT_THROW(HSGossipNode(0, {30, 8, 8, false, true}, Rng(1)),
               std::logic_error);
}

TEST(HSGossipNode, InitDropsSelfAndTruncates) {
  HSGossipNode node(2, HSParams::blind(4), Rng(1));
  node.init_view({{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {6, 0}});
  EXPECT_EQ(node.view_size(), 4u);
  EXPECT_FALSE(node.knows(2));
  node.validate();
}

TEST(HSGossipNode, BufferContainsSelfFirstAtAgeZero) {
  HSGossipNode node(0, HSParams::blind(10), Rng(2));
  node.init_view(make_entries(10, 3));
  const auto buffer = node.make_buffer();
  ASSERT_FALSE(buffer.empty());
  EXPECT_EQ(buffer.front().address, 0u);
  EXPECT_EQ(buffer.front().hop_count, 0u);
  EXPECT_EQ(buffer.size(), 5u);  // c/2
  for (std::size_t i = 1; i < buffer.size(); ++i)
    EXPECT_TRUE(node.knows(buffer[i].address));
}

TEST(HSGossipNode, HealerBufferExcludesOldest) {
  // With H = c/2, the H oldest items are moved behind the send window, so
  // the buffer carries only the freshest half.
  HSGossipNode node(0, HSParams::healer_profile(8), Rng(3));
  std::vector<NodeDescriptor> entries;
  for (NodeId id = 1; id <= 4; ++id) entries.push_back({id, 1});    // fresh
  for (NodeId id = 5; id <= 8; ++id) entries.push_back({id, 9});    // old
  node.init_view(entries);
  for (int trial = 0; trial < 20; ++trial) {
    const auto buffer = node.make_buffer();
    for (std::size_t i = 1; i < buffer.size(); ++i) {
      EXPECT_LE(buffer[i].hop_count, 1u) << "old item leaked into buffer";
    }
  }
}

TEST(HSGossipNode, IntegrateRespectsCapacityAndDedup) {
  HSGossipNode node(0, HSParams::blind(6), Rng(4));
  node.init_view(make_entries(6, 2));
  node.integrate({{10, 0}, {11, 0}, {1, 0}});  // 1 is a duplicate, fresher
  EXPECT_EQ(node.view_size(), 6u);
  node.validate();
  // The duplicate kept the minimum age.
  for (const auto& d : node.entries()) {
    if (d.address == 1) {
      EXPECT_EQ(d.hop_count, 0u);
    }
  }
}

TEST(HSGossipNode, IntegrateIgnoresSelf) {
  HSGossipNode node(7, HSParams::blind(4), Rng(5));
  node.integrate({{7, 0}, {1, 0}});
  EXPECT_FALSE(node.knows(7));
  EXPECT_TRUE(node.knows(1));
}

TEST(HSGossipNode, HealerEvictsOldestOnOverflow) {
  HSGossipNode node(0, {6, 3, 0, false, true}, Rng(6));
  std::vector<NodeDescriptor> entries;
  for (NodeId id = 1; id <= 6; ++id)
    entries.push_back({id, static_cast<HopCount>(id)});  // ages 1..6
  node.init_view(entries);
  node.integrate({{10, 0}, {11, 0}, {12, 0}});  // overflow by 3 -> H removes 3 oldest
  EXPECT_EQ(node.view_size(), 6u);
  EXPECT_FALSE(node.knows(6));
  EXPECT_FALSE(node.knows(5));
  EXPECT_FALSE(node.knows(4));
  for (NodeId id : {10u, 11u, 12u}) EXPECT_TRUE(node.knows(id));
}

TEST(HSGossipNode, SwapperDropsSentItems) {
  HSGossipNode node(0, {6, 0, 3, false, true}, Rng(7));
  node.init_view(make_entries(6, 1));
  const auto sent = node.make_buffer();  // head of the list = sent items
  node.integrate({{20, 0}, {21, 0}, {22, 0}});
  EXPECT_EQ(node.view_size(), 6u);
  // The swapped-out items are exactly (a subset of) what was sent.
  std::size_t sent_still_known = 0;
  for (std::size_t i = 1; i < sent.size(); ++i)
    sent_still_known += node.knows(sent[i].address) ? 1 : 0;
  EXPECT_LE(sent_still_known, sent.size() - 1 - 3 + 1);
  for (NodeId id : {20u, 21u, 22u}) EXPECT_TRUE(node.knows(id));
}

TEST(HSGossipNode, TailPeerSelectionPicksOldestClass) {
  HSParams params = HSParams::blind(6);
  params.tail_peer_selection = true;
  HSGossipNode node(0, params, Rng(8));
  node.init_view({{1, 1}, {2, 9}, {3, 9}, {4, 2}});
  for (int trial = 0; trial < 50; ++trial) {
    const auto peer = node.select_peer();
    ASSERT_TRUE(peer.has_value());
    EXPECT_TRUE(*peer == 2 || *peer == 3);
  }
}

TEST(HSGossipNode, AgeIncreasesUniformly) {
  HSGossipNode node(0, HSParams::blind(4), Rng(9));
  node.init_view({{1, 0}, {2, 5}});
  node.increase_age();
  for (const auto& d : node.entries()) {
    if (d.address == 1) {
      EXPECT_EQ(d.hop_count, 1u);
    }
    if (d.address == 2) {
      EXPECT_EQ(d.hop_count, 6u);
    }
  }
}

class HSGrid : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(HSGrid, InvariantsHoldAcrossTheDesignSpace) {
  const auto [h, s] = GetParam();
  HSParams params{16, h, s, false, true};
  sim::HSOverlay overlay(120, params, 99);
  overlay.run(25);
  for (NodeId id = 0; id < overlay.size(); ++id) {
    ASSERT_NO_THROW(overlay.node(id).validate());
    ASSERT_EQ(overlay.node(id).view_size(), 16u);
  }
  EXPECT_TRUE(overlay.connected());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HSGrid,
    ::testing::Values(std::pair<std::size_t, std::size_t>{0, 0},
                      std::pair<std::size_t, std::size_t>{8, 0},
                      std::pair<std::size_t, std::size_t>{0, 8},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{2, 6},
                      std::pair<std::size_t, std::size_t>{6, 2}),
    [](const auto& info) {
      return "H" + std::to_string(info.param.first) + "_S" +
             std::to_string(info.param.second);
    });

TEST(HSOverlay, HealerRemovesDeadLinksFastest) {
  auto run = [](HSParams params) {
    sim::HSOverlay overlay(400, params, 17);
    overlay.run(30);
    overlay.kill_random(200);
    const auto at_failure = overlay.count_dead_links();
    overlay.run(20);
    return std::pair<std::uint64_t, std::uint64_t>{at_failure,
                                                   overlay.count_dead_links()};
  };
  const auto healer = run(HSParams::healer_profile(16));
  const auto blind = run(HSParams::blind(16));
  EXPECT_GT(healer.first, 0u);
  // Healer purges essentially everything within 20 cycles; blind retains
  // a clearly larger share.
  EXPECT_LT(healer.second * 5, blind.second + 5);
}

TEST(HSOverlay, SwapperBalancesDegreesBest) {
  auto degree_stddev = [](HSParams params) {
    sim::HSOverlay overlay(500, params, 23);
    overlay.run(40);
    const auto degs = overlay.degrees();
    stats::Accumulator acc;
    for (std::size_t d : degs) acc.add(static_cast<double>(d));
    return acc.stddev_population();
  };
  const double swapper = degree_stddev(HSParams::swapper_profile(16));
  const double blind = degree_stddev(HSParams::blind(16));
  // TOCS 2007 Fig. 5: swapper's degree distribution is the narrowest.
  EXPECT_LT(swapper, blind);
}

TEST(HSOverlay, DeterministicGivenSeed) {
  auto snapshot = [] {
    sim::HSOverlay overlay(100, HSParams::healer_profile(12), 31);
    overlay.run(15);
    std::vector<std::vector<NodeDescriptor>> views;
    for (NodeId id = 0; id < overlay.size(); ++id)
      views.push_back(overlay.node(id).entries());
    return views;
  };
  EXPECT_EQ(snapshot(), snapshot());
}

TEST(HSOverlay, PushOnlyStillConverges) {
  HSParams params = HSParams::blind(16);
  params.pushpull = false;
  sim::HSOverlay overlay(200, params, 37);
  overlay.run(40);
  EXPECT_TRUE(overlay.connected());
}

}  // namespace
}  // namespace pss
