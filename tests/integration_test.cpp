// Integration tests: miniature versions of the paper's experiments with
// assertions on the qualitative shape of each published result.
#include <gtest/gtest.h>

#include <set>

#include "pss/experiments/degree_trace.hpp"
#include "pss/experiments/failure.hpp"
#include "pss/experiments/reporting.hpp"
#include "pss/experiments/scenario.hpp"
#include "pss/graph/random_graph.hpp"
#include "pss/sim/bootstrap.hpp"
#include "pss/sim/cycle_engine.hpp"
#include "pss/stats/autocorrelation.hpp"
#include "pss/stats/descriptive.hpp"

namespace pss::experiments {
namespace {

// Miniature paper parameters. The c / ln(N) density ratio matters: the
// paper runs N = 10^4 with c = 30 (ratio ~3.3); tests use N = 500 with
// c = 20 (ratio ~3.2) so the overlays sit in the same connectivity regime.
ScenarioParams mini() {
  ScenarioParams p;
  p.n = 500;
  p.view_size = 20;
  p.cycles = 60;
  p.seed = 2024;
  p.sample_interval = 10;
  p.exact_metrics = false;
  p.path_sources = 100;
  p.clustering_sample = 200;
  p.growth_per_cycle = 25;
  return p;
}

// --- Section 5 / Figures 2-3: convergence ---------------------------------

TEST(PaperShape, LatticeAndRandomConvergeToSameState) {
  // Self-organization: the converged clustering coefficient and degree are
  // independent of the initial configuration.
  const auto spec = ProtocolSpec::newscast();
  const auto lattice = run_lattice_scenario(spec, mini());
  const auto random = run_random_scenario(spec, mini());
  const auto& l = lattice.final_sample();
  const auto& r = random.final_sample();
  EXPECT_NEAR(l.avg_degree, r.avg_degree, 0.25 * r.avg_degree);
  EXPECT_NEAR(l.path_length, r.path_length, 0.25 * r.path_length);
  EXPECT_NEAR(l.clustering, r.clustering, 0.3 * r.clustering);
  EXPECT_LT(l.clustering, 0.45);  // lattice started at ~0.7
  EXPECT_EQ(l.components, 1u);
  EXPECT_EQ(r.components, 1u);
}

TEST(PaperShape, ConvergedClusteringAboveRandomBaseline) {
  // "In all cases ... the clustering coefficient is significantly larger
  // than that of the random graph" (Section 8).
  const auto result = run_random_scenario(ProtocolSpec::newscast(), mini());
  const auto baseline = measure_random_baseline(mini());
  EXPECT_GT(result.final_sample().clustering, baseline.clustering);
  // While path length stays almost as small as the random graph.
  EXPECT_LT(result.final_sample().path_length, 1.6 * baseline.path_length);
}

TEST(PaperShape, GrowingScenarioPushPullConnects) {
  ScenarioParams p = mini();
  p.cycles = 80;
  // Match the paper's relative growth rate (10^4 nodes at 100/cycle = 1% of
  // the final size per cycle); the default mini rate of 5%/cycle is a much
  // harsher join load than the experiment being reproduced.
  p.growth_per_cycle = 10;
  // Newscast absorbs the growing overlay completely.
  const auto newscast_run = run_growing_scenario(ProtocolSpec::newscast(), p);
  EXPECT_EQ(newscast_run.final_sample().components, 1u);
  // (tail,head,pushpull) is also stable in the paper (Table 1 lists only
  // push protocols as partitioning); at miniature scale the single-contact
  // bootstrap occasionally splits off a sliver, so assert a giant component
  // instead of strict connectivity.
  const ProtocolSpec tail_pp{PeerSelection::kTail, ViewSelection::kHead,
                             ViewPropagation::kPushPull};
  const auto tail_run = run_growing_scenario(tail_pp, p);
  EXPECT_GE(tail_run.final_sample().largest_component, p.n * 9 / 10);
}

TEST(PaperShape, GrowingScenarioPushFarBehindPushPull) {
  // Table 1 / Figure 2: push-only protocols partition at paper scale and
  // converge extremely slowly. At miniature scale partitioning is not
  // guaranteed, but the slow-convergence signature is robust: shortly after
  // growth ends, the push overlay is much sparser (star-dominated) than the
  // pushpull overlay.
  ScenarioParams p = mini();
  p.cycles = 20;  // exactly when growth completes: the gap is at its widest
  const ProtocolSpec push_head{PeerSelection::kRand, ViewSelection::kHead,
                               ViewPropagation::kPush};
  const auto push_run = run_growing_scenario(push_head, p);
  const auto pushpull_run = run_growing_scenario(ProtocolSpec::newscast(), p);
  const bool partitioned = push_run.final_sample().components > 1;
  const bool far_behind = push_run.final_sample().avg_degree <
                          0.6 * pushpull_run.final_sample().avg_degree;
  EXPECT_TRUE(partitioned || far_behind)
      << "push degree " << push_run.final_sample().avg_degree << " vs pushpull "
      << pushpull_run.final_sample().avg_degree;
}

// --- Section 6 / Figure 4, Table 2: degree distribution -------------------

TEST(PaperShape, HeadViewSelectionGivesNarrowerDegreesThanRand) {
  ScenarioParams p = mini();
  const auto head = run_degree_trace(ProtocolSpec::newscast(), p, 20, 40);
  const ProtocolSpec rand_vs{PeerSelection::kRand, ViewSelection::kRand,
                             ViewPropagation::kPushPull};
  const auto rand = run_degree_trace(rand_vs, p, 20, 40);
  // Table 2's key contrast: sqrt(sigma) is several times larger for rand
  // view selection; per-node oscillation amplitude likewise.
  EXPECT_LT(head.stddev_of_node_means() * 2, rand.stddev_of_node_means());
  // And the average degree under rand is higher (heavier tail).
  EXPECT_GT(rand.final_avg_degree, head.final_avg_degree);
}

TEST(PaperShape, DegreeTraceDimensionsAndPlausibility) {
  ScenarioParams p = mini();
  const auto trace = run_degree_trace(ProtocolSpec::newscast(), p, 10, 25);
  ASSERT_EQ(trace.series.size(), 10u);
  for (const auto& s : trace.series) {
    ASSERT_EQ(s.size(), 25u);
    for (double d : s) {
      EXPECT_GE(d, static_cast<double>(p.view_size));  // degree >= c
      EXPECT_LT(d, static_cast<double>(p.n));
    }
  }
  // d-bar close to D_K: node means hover around the global mean.
  EXPECT_NEAR(trace.mean_of_node_means(), trace.final_avg_degree,
              0.2 * trace.final_avg_degree);
}

// --- Figure 5: autocorrelation --------------------------------------------

TEST(PaperShape, HeadSelectionDegreeSeriesNearWhiteRandSelectionCorrelated) {
  ScenarioParams p = mini();
  const auto head = run_degree_trace(ProtocolSpec::newscast(), p, 5, 60);
  const ProtocolSpec rand_vs{PeerSelection::kRand, ViewSelection::kRand,
                             ViewPropagation::kPushPull};
  const auto rand = run_degree_trace(rand_vs, p, 5, 60);
  double head_excess = 0, rand_excess = 0;
  for (int i = 0; i < 5; ++i) {
    head_excess += stats::autocorrelation_excess_fraction(head.series[i], 20);
    rand_excess += stats::autocorrelation_excess_fraction(rand.series[i], 20);
  }
  // (rand,head,pushpull) is "practically random"; (*,rand,*) shows strong
  // short-term correlation (Figure 5).
  EXPECT_LT(head_excess, rand_excess);
  EXPECT_GT(rand_excess / 5, 0.25);
}

// --- Figure 7: self-healing -----------------------------------------------

TEST(PaperShape, SelfHealingSpeedRanking) {
  ScenarioParams p = mini();
  p.cycles = 40;
  const auto newscast = run_self_healing(ProtocolSpec::newscast(), p, 25, 0.5);
  const ProtocolSpec tail_rand_push{PeerSelection::kTail, ViewSelection::kRand,
                                    ViewPropagation::kPush};
  const auto worst = run_self_healing(tail_rand_push, p, 25, 0.5);
  // Newscast removes essentially all dead links; (tail,rand,push) barely
  // heals (the paper observed it can even accumulate dead links).
  EXPECT_EQ(newscast.dead_links.back(), 0u);
  EXPECT_GT(worst.dead_links.back(), worst.dead_links_at_failure / 2);
}

// --- Section 4.3: excluded degenerate variants ----------------------------

TEST(PaperShape, HeadPeerSelectionClustersSeverely) {
  // (head,*,*) "results in severe clustering".
  ScenarioParams p = mini();
  p.cycles = 40;
  const ProtocolSpec head_ps{PeerSelection::kHead, ViewSelection::kHead,
                             ViewPropagation::kPushPull};
  const auto head_run = run_random_scenario(head_ps, p);
  const auto newscast_run = run_random_scenario(ProtocolSpec::newscast(), p);
  EXPECT_GT(head_run.final_sample().clustering,
            2 * newscast_run.final_sample().clustering);
}

TEST(PaperShape, PullOnlyDegeneratesTowardStar) {
  // (*,*,pull) "converges to a star topology": degree variance explodes
  // compared with pushpull.
  ScenarioParams p = mini();
  p.n = 300;
  p.cycles = 50;
  const ProtocolSpec pull_only{PeerSelection::kRand, ViewSelection::kHead,
                               ViewPropagation::kPull};
  auto pull_net = sim::bootstrap::make_random(pull_only, p.protocol_options(),
                                              p.n, p.seed);
  sim::CycleEngine pull_engine(pull_net);
  pull_engine.run(p.cycles);
  const auto pull_summary =
      graph::degree_summary(graph::UndirectedGraph::from_network(pull_net));

  auto pp_net = sim::bootstrap::make_random(ProtocolSpec::newscast(),
                                            p.protocol_options(), p.n, p.seed);
  sim::CycleEngine pp_engine(pp_net);
  pp_engine.run(p.cycles);
  const auto pp_summary =
      graph::degree_summary(graph::UndirectedGraph::from_network(pp_net));
  EXPECT_GT(pull_summary.max, 2 * pp_summary.max);
  EXPECT_GT(pull_summary.variance, 10 * pp_summary.variance);
}

TEST(PaperShape, TailViewSelectionMakesJoinersInvisible) {
  // (*,tail,*) "cannot handle dynamism (joining nodes) at all": keeping the
  // OLDEST descriptors means fresh descriptors of newcomers are always
  // truncated away, so late joiners acquire (almost) no in-links — they can
  // reach the old core but the rest of the network never learns they exist.
  ScenarioParams p = mini();
  p.n = 200;
  p.cycles = 60;
  p.growth_per_cycle = 10;
  const ProtocolSpec tail_vs{PeerSelection::kRand, ViewSelection::kTail,
                             ViewPropagation::kPushPull};
  auto count_known_latecomers = [&](const ScenarioResult& result) {
    // How many distinct nodes from the last-joined half appear in any view?
    std::set<NodeId> referenced;
    for (NodeId id = 0; id < result.network.size(); ++id) {
      for (const auto& d : result.network.node(id).view().entries()) {
        if (d.address >= p.n / 2) referenced.insert(d.address);
      }
    }
    return referenced.size();
  };
  const auto tail_run = run_growing_scenario(tail_vs, p);
  const auto good_run = run_growing_scenario(ProtocolSpec::newscast(), p);
  const auto tail_known = count_known_latecomers(tail_run);
  const auto good_known = count_known_latecomers(good_run);
  // Under Newscast essentially every latecomer is referenced somewhere;
  // under tail view selection almost none are.
  EXPECT_GT(good_known, p.n / 2 * 3 / 4);
  EXPECT_LT(tail_known, good_known / 4)
      << "tail-known=" << tail_known << " good-known=" << good_known;
}

}  // namespace
}  // namespace pss::experiments
