// Unit tests for the view algebra (paper Section 3): ordering, merge
// semantics, hop-count aging, and the three view-selection policies.
#include <gtest/gtest.h>

#include <set>

#include "pss/membership/view.hpp"

namespace pss {
namespace {

TEST(NodeDescriptor, OrderingByHopThenAddress) {
  ByHopThenAddress less;
  EXPECT_TRUE(less({1, 0}, {2, 1}));
  EXPECT_TRUE(less({5, 2}, {3, 4}));
  EXPECT_TRUE(less({1, 3}, {2, 3}));  // hop tie -> address
  EXPECT_FALSE(less({2, 3}, {1, 3}));
  EXPECT_FALSE(less({1, 3}, {1, 3}));  // irreflexive
}

TEST(View, ConstructionSortsByHopCount) {
  View v{{7, 5}, {2, 1}, {9, 3}};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at(0).address, 2u);
  EXPECT_EQ(v.at(1).address, 9u);
  EXPECT_EQ(v.at(2).address, 7u);
  v.validate();
}

TEST(View, ConstructionDeduplicatesKeepingLowestHop) {
  View v{{4, 9}, {4, 2}, {4, 5}};
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.at(0).address, 4u);
  EXPECT_EQ(v.at(0).hop_count, 2u);
}

TEST(View, EmptyViewBasics) {
  View v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_FALSE(v.contains(0));
  EXPECT_THROW(v.head(), std::logic_error);
  EXPECT_THROW(v.tail(), std::logic_error);
  EXPECT_THROW(v.at(0), std::logic_error);
}

TEST(View, HeadAndTailFollowHopOrder) {
  View v{{10, 4}, {20, 1}, {30, 9}};
  EXPECT_EQ(v.head().address, 20u);
  EXPECT_EQ(v.tail().address, 30u);
}

TEST(View, ContainsAndHopCountOf) {
  View v{{1, 2}, {2, 3}};
  EXPECT_TRUE(v.contains(1));
  EXPECT_TRUE(v.contains(2));
  EXPECT_FALSE(v.contains(3));
  EXPECT_EQ(v.hop_count_of(1), 2u);
  EXPECT_EQ(v.hop_count_of(2), 3u);
  EXPECT_THROW(v.hop_count_of(3), std::logic_error);
}

TEST(View, InsertNewKeepsOrder) {
  View v{{1, 5}};
  EXPECT_TRUE(v.insert({2, 1}));
  EXPECT_TRUE(v.insert({3, 9}));
  EXPECT_EQ(v.at(0).address, 2u);
  EXPECT_EQ(v.at(2).address, 3u);
  v.validate();
}

TEST(View, InsertDuplicateKeepsLowerHop) {
  View v{{1, 5}};
  EXPECT_TRUE(v.insert({1, 2}));   // fresher info wins
  EXPECT_EQ(v.hop_count_of(1), 2u);
  EXPECT_FALSE(v.insert({1, 7}));  // staler info is discarded
  EXPECT_EQ(v.hop_count_of(1), 2u);
  EXPECT_EQ(v.size(), 1u);
}

TEST(View, EraseRemovesOnlyTarget) {
  View v{{1, 1}, {2, 2}, {3, 3}};
  EXPECT_TRUE(v.erase(2));
  EXPECT_FALSE(v.erase(2));
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.contains(1));
  EXPECT_TRUE(v.contains(3));
}

TEST(View, IncreaseHopCountAgesEveryEntry) {
  View v{{1, 0}, {2, 4}};
  v.increase_hop_count();
  EXPECT_EQ(v.hop_count_of(1), 1u);
  EXPECT_EQ(v.hop_count_of(2), 5u);
  v.validate();
}

TEST(View, IncreaseHopCountOnEmptyIsNoop) {
  View v;
  v.increase_hop_count();
  EXPECT_TRUE(v.empty());
}

TEST(View, MergeIsUnionByAddress) {
  View a{{1, 1}, {2, 2}};
  View b{{3, 3}, {4, 4}};
  View m = View::merge(a, b);
  EXPECT_EQ(m.size(), 4u);
  for (NodeId id : {1u, 2u, 3u, 4u}) EXPECT_TRUE(m.contains(id));
}

TEST(View, MergeKeepsLowestHopOnConflict) {
  // The paper: "When there is a descriptor for the same node in each view,
  // only the one with the lowest hop count is inserted."
  View a{{1, 5}, {2, 1}};
  View b{{1, 2}, {2, 8}};
  View m = View::merge(a, b);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.hop_count_of(1), 2u);
  EXPECT_EQ(m.hop_count_of(2), 1u);
}

TEST(View, MergeIsCommutative) {
  View a{{1, 5}, {2, 1}, {7, 3}};
  View b{{1, 2}, {9, 0}};
  EXPECT_EQ(View::merge(a, b), View::merge(b, a));
}

TEST(View, MergeWithEmptyIsIdentity) {
  View a{{1, 1}, {2, 2}};
  EXPECT_EQ(View::merge(a, View{}), a);
  EXPECT_EQ(View::merge(View{}, a), a);
}

TEST(View, SelectHeadTakesFreshest) {
  View v{{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  View h = v.select_head(2);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_TRUE(h.contains(1));
  EXPECT_TRUE(h.contains(2));
}

TEST(View, SelectTailTakesOldest) {
  View v{{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  View t = v.select_tail(2);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.contains(3));
  EXPECT_TRUE(t.contains(4));
}

TEST(View, SelectionWithLargeCapacityIsIdentity) {
  View v{{1, 1}, {2, 2}};
  Rng rng(1);
  EXPECT_EQ(v.select_head(10), v);
  EXPECT_EQ(v.select_tail(10), v);
  EXPECT_EQ(v.select_rand(10, rng), v);
}

TEST(View, SelectRandIsSubsetOfRightSize) {
  std::vector<NodeDescriptor> entries;
  for (NodeId i = 0; i < 20; ++i) entries.push_back({i, i});
  View v(entries);
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    View r = v.select_rand(7, rng);
    EXPECT_EQ(r.size(), 7u);
    for (const auto& d : r.entries()) EXPECT_TRUE(v.contains(d.address));
    r.validate();
  }
}

TEST(View, SelectRandCoversAllEntriesEventually) {
  View v{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  Rng rng(3);
  std::set<NodeId> seen;
  for (int trial = 0; trial < 200; ++trial) {
    const View picked = v.select_rand(1, rng);
    for (const auto& d : picked.entries()) seen.insert(d.address);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(View, PeerSelectionPolicies) {
  View v{{10, 1}, {20, 5}, {30, 3}};
  EXPECT_EQ(v.peer_head(), 10u);
  EXPECT_EQ(v.peer_tail(), 20u);
  Rng rng(4);
  std::set<NodeId> seen;
  for (int i = 0; i < 300; ++i) seen.insert(v.peer_rand(rng));
  EXPECT_EQ(seen, (std::set<NodeId>{10, 20, 30}));
}

TEST(View, PeerSelectionOnEmptyThrows) {
  View v;
  Rng rng(5);
  EXPECT_THROW(v.peer_rand(rng), std::logic_error);
}

TEST(View, HopCountTieOrderIsDeterministic) {
  View a{{3, 2}, {1, 2}, {2, 2}};
  View b{{2, 2}, {3, 2}, {1, 2}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.at(0).address, 1u);
  EXPECT_EQ(a.at(2).address, 3u);
}

TEST(View, MergePreservesBothWhenDisjointHops) {
  // Realistic exchange-shaped merge: aged remote view vs local view.
  View local{{1, 1}, {2, 2}, {3, 3}};
  View remote{{4, 2}, {5, 2}, {1, 4}};
  View m = View::merge(remote, local);
  EXPECT_EQ(m.size(), 5u);
  EXPECT_EQ(m.hop_count_of(1), 1u);
  m.validate();
}

}  // namespace
}  // namespace pss
